"""Bank transfer + auditor: where does Read Committed lose money?

A transfer moves 10 from account x to account y; an auditor reads both
accounts and computes the total.  Under Read Committed the auditor may see
the withdrawal but not the deposit (its first read observes the transfer,
its second read misses it), so the audited total dips by 10.  Read Atomic —
whose whole point is that transactions are observed atomically — already
repairs this, as do all stronger levels.

Run:  python examples/banking_audit.py
"""

from repro import L, ModelChecker, ProgramBuilder, assertion

INITIAL = 100


def build_program():
    p = ProgramBuilder(
        "bank-audit",
        initial_values={"acct_x": INITIAL, "acct_y": INITIAL},
    )
    transfer = p.session("teller").transaction("transfer")
    transfer.read("bx", "acct_x")
    transfer.write("acct_x", L("bx") - 10)
    transfer.read("by", "acct_y")
    transfer.write("acct_y", L("by") + 10)

    audit = p.session("auditor").transaction("audit")
    audit.read("ax", "acct_x")
    audit.read("ay", "acct_y")
    audit.assign("total", L("ax") + L("ay"))
    return p.build()


@assertion("audited total is conserved")
def total_conserved(outcome):
    return outcome.value("auditor", "total") == 2 * INITIAL


def main():
    program = build_program()
    for isolation in ("RC", "RA", "CC", "SI", "SER"):
        result = ModelChecker(program, isolation=isolation).run(
            assertions=[total_conserved], keep_outcomes=True
        )
        totals = sorted({o.value("auditor", "total") for o in result.outcomes})
        print(f"{result.summary()}   audited totals seen: {totals}")
        if not result.ok:
            print("  counterexample:")
            for line in result.violations[0].outcome.describe().splitlines():
                print("   ", line)


if __name__ == "__main__":
    main()
