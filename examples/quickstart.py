"""Quickstart: find a lost update, then prove it away.

Two clients concurrently increment a counter:

    begin; a := read(counter); write(counter, a + 1); commit

Under Causal Consistency both can read 0 and one increment is lost; under
Snapshot Isolation or Serializability the model checker proves the bug
cannot happen for this (bounded) program.

Run:  python examples/quickstart.py
"""

from repro import L, ModelChecker, ProgramBuilder, assertion


def build_program():
    p = ProgramBuilder("lost-update")
    for who in ("alice", "bob"):
        t = p.session(who).transaction("increment")
        t.read("a", "counter")
        t.write("counter", L("a") + 1)
    return p.build()


@assertion("someone observed the other's increment")
def no_lost_update(outcome):
    return outcome.value("alice", "a") == 1 or outcome.value("bob", "a") == 1


def main():
    program = build_program()
    print(f"program: {program!r}\n")

    for isolation in ("CC", "SI", "SER"):
        result = ModelChecker(program, isolation=isolation).run(assertions=[no_lost_update])
        print(result.summary())
        for violation in result.violations[:1]:
            print("  counterexample history:")
            for line in violation.outcome.describe().splitlines():
                print("   ", line)
    print(
        "\nBecause the exploration is sound and complete (Theorem 5.1 / "
        "Corollary 6.2 of the paper),\nthe PASS verdicts are proofs for this "
        "bounded program, not mere test outcomes."
    )


if __name__ == "__main__":
    main()
