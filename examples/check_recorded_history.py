"""Tutorial: recorded executions, portable traces, and online checking.

Besides model checking programs, the library answers the Biswas–Enea
question directly: *given a history observed from a real database (who
read from whom), which isolation levels does it satisfy?*  This walkthrough
takes the paper's Fig. 3 — a causality violation that Read Atomic
tolerates — through the full trace pipeline:

1. **declare** the recorded history with :class:`repro.HistoryBuilder`;
2. **serialize** it to the portable JSONL trace format
   (``docs/trace_format.md``) and load it back, round-trip intact;
3. **batch-check** the replayed history against every level (cross-checked
   with the brute-force axiomatic reference);
4. **online-check** the same trace one event at a time with
   :class:`repro.OnlineChecker`, watching the CC verdict flip exactly at
   the stale read.

Run:  python examples/check_recorded_history.py
"""

import os
import tempfile

from repro import (
    HistoryBuilder,
    OnlineChecker,
    Trace,
    format_history,
    get_level,
    satisfies_reference,
)

LEVELS = ("RC", "RA", "CC", "SI", "SER")


# -- 1. declare the recorded execution ---------------------------------------------


def fig3_history():
    """The paper's Fig. 3: session3 reads x stale although session2's newer
    write is in its causal past (via session4's write to y)."""
    b = HistoryBuilder(["x", "y"])
    t1 = b.txn("session1")
    t1.write("x", 1)
    t1.commit()
    t2 = b.txn("session2")
    t2.read("x", source=t1)
    t2.write("x", 2)
    t2.commit()
    t4 = b.txn("session4")
    t4.read("x", source=t2)
    t4.write("y", 1)
    t4.commit()
    t3 = b.txn("session3")
    t3.read("x", source=t1)  # stale: t2 is causally before t3 via t4
    t3.read("y", source=t4)
    t3.commit()
    return b.build()


def main():
    history = fig3_history()
    print("recorded history (paper Fig. 3):\n")
    print(format_history(history, indent="  "))

    # -- 2. serialize to the portable trace format, and back ---------------------
    trace = Trace.from_history(history, name="fig3", meta={"origin": "paper Fig. 3"})
    print("\nas a JSONL trace (first four lines):\n")
    for line in trace.dumps().splitlines()[:4]:
        print(f"  {line}")

    path = os.path.join(tempfile.mkdtemp(prefix="repro-trace-"), "fig3.trace.jsonl")
    trace.dump(path)
    loaded = Trace.load(path)
    assert loaded == trace, "load(dump(t)) must be the identity"
    replayed = loaded.to_history()
    assert replayed.canonical_key() == history.canonical_key(), "round-trip must preserve the history"
    print(f"\nround-trip via {path}: {len(loaded)} events, history preserved")

    # -- 3. batch check every level ----------------------------------------------
    print("\nbatch verdicts on the replayed history:\n")
    for name in LEVELS:
        fast = get_level(name).satisfies(replayed)
        reference = satisfies_reference(replayed, name)
        assert fast == reference, "efficient checker must agree with the axioms"
        verdict = "consistent" if fast else "VIOLATION"
        print(f"  {name:4s}: {verdict}")

    # -- 4. replay the same trace online, one event at a time --------------------
    print("\nonline replay (verdict per level after each event):\n")
    checker = OnlineChecker.from_trace(loaded)
    print("  event" + " " * 31 + " ".join(f"{name:>4s}" for name in LEVELS))
    for event in loaded:
        step = checker.feed(event)
        cells = " ".join(" ok " if step.verdicts[name] else "VIOL" for name in LEVELS)
        label = event.op + (f"({event.var})" if event.var else "")
        flag = f"   <- {', '.join(step.newly_violated)} violated here" if step.newly_violated else ""
        print(f"  #{step.index:<2d} {event.session}/{event.txn} {label:<18s} {cells}{flag}")

    cc_step = checker.first_violation("CC")
    assert cc_step is not None and cc_step.event.op == "read"
    assert checker.verdicts == {
        name: get_level(name).satisfies(replayed) for name in LEVELS
    }, "online final verdicts must equal the batch verdicts"
    print(
        f"\nthe stale read (event #{cc_step.index}) is where causal consistency "
        "breaks: session3 reads x\nwritten by session1 although session2's newer "
        "write is in its causal past (via\nsession4's y) — visible from CC "
        "upward, invisible to RC/RA."
    )


if __name__ == "__main__":
    main()
