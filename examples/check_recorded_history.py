"""Standalone consistency checking of a recorded history.

Besides model checking programs, the library can answer the Biswas–Enea
question directly: *given a history observed from a real database (who read
from whom), which isolation levels does it satisfy?*

We rebuild Fig. 3 of the paper — a causality violation that Read Atomic
tolerates — and ask every checker, including the brute-force axiomatic
reference.

Run:  python examples/check_recorded_history.py
"""

from repro import HistoryBuilder, format_history, get_level, satisfies_reference


def fig3_history():
    b = HistoryBuilder(["x", "y"])
    t1 = b.txn("session1")
    t1.write("x", 1)
    t1.commit()
    t2 = b.txn("session2")
    t2.read("x", source=t1)
    t2.write("x", 2)
    t2.commit()
    t4 = b.txn("session4")
    t4.read("x", source=t2)
    t4.write("y", 1)
    t4.commit()
    t3 = b.txn("session3")
    t3.read("x", source=t1)  # stale: t2 is causally before t3 via t4
    t3.read("y", source=t4)
    t3.commit()
    return b.build()


def main():
    history = fig3_history()
    print("recorded history (paper Fig. 3):\n")
    print(format_history(history, indent="  "))
    print()
    for name in ("RC", "RA", "CC", "SI", "SER"):
        fast = get_level(name).satisfies(history)
        reference = satisfies_reference(history, name)
        assert fast == reference, "efficient checker must agree with the axioms"
        verdict = "consistent" if fast else "VIOLATION"
        print(f"  {name:4s}: {verdict}")
    print(
        "\nsession3 reads x written by session1 although session2's newer "
        "write is in its causal past\n(via session4's y) — visible from CC "
        "upward, invisible to RC/RA."
    )


if __name__ == "__main__":
    main()
