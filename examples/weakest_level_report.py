"""Find the weakest isolation level under which an application is correct.

Programs can also be written in the paper's concrete syntax and parsed; the
report runs the checker up the RC → RA → CC → SI → SER ladder and points at
the weakest level where every assertion holds — the level you should
configure (or the cheapest one you may downgrade to).

Also demonstrates exporting a counterexample history to Graphviz DOT.

Run:  python examples/weakest_level_report.py
"""

from repro import assertion, compare_levels, history_to_dot, parse_program

PROGRAM_TEXT = """
// Two tellers race on the same account; an auditor sums both accounts.
session teller1 {
  transaction withdraw {
    b := read(acct_a);
    if (b >= 50) { write(acct_a, b - 50); }
  }
}
session teller2 {
  transaction withdraw {
    b := read(acct_a);
    if (b >= 50) { write(acct_a, b - 50); }
  }
}
session auditor {
  transaction audit {
    a := read(acct_a);
  }
}
"""


@assertion("account never overdrawn")
def no_overdraft(outcome):
    return outcome.value("auditor", "a") is None or outcome.value("auditor", "a") >= -20


@assertion("at most one withdrawal succeeds on a balance of 60")
def single_withdrawal(outcome):
    wrote1 = outcome.value("teller1", "b") == 60
    wrote2 = outcome.value("teller2", "b") == 60
    return not (wrote1 and wrote2)


def main():
    program = parse_program(PROGRAM_TEXT, name="double-withdrawal")
    program.initial_values["acct_a"] = 60

    comparison = compare_levels(program, [single_withdrawal])
    print(comparison.render())

    failing = comparison.results.get("CC")
    if failing is not None and not failing.ok:
        witness = failing.violations[0].outcome.history
        dot = history_to_dot(witness, title="double withdrawal under CC")
        print("\nGraphviz rendering of the CC counterexample (pipe into `dot -Tpdf`):\n")
        print(dot)


if __name__ == "__main__":
    main()
