"""Compare the paper's algorithms on one TPC-C client program.

Reproduces one row of the evaluation: the strongly optimal explore-ce(CC)
against the plain-optimal explore-ce*(I0, CC) variants and the no-reduction
DFS baseline, reporting end states, explore calls and wall time — the same
ordering the cactus plots of Fig. 14 show.

Run:  python examples/algorithm_comparison.py
"""

from repro.apps import client_program
from repro.bench import ALGORITHMS, format_table


def main():
    program = client_program("tpcc", sessions=3, txns_per_session=2, seed=1)
    print(f"program: {program!r}\n")
    rows = []
    for name, algorithm in ALGORITHMS.items():
        record = algorithm(program, 120.0)
        rows.append(
            [
                name,
                record.histories,
                record.end_states,
                record.explore_calls,
                round(record.seconds, 3),
                "yes" if record.timed_out else "",
            ]
        )
    print(
        format_table(
            ["algorithm", "histories", "end states", "explore calls", "time (s)", "timeout"],
            rows,
        )
    )
    print(
        "\nreading the table: every DPOR variant outputs the same CC histories;"
        "\nweaker exploration levels (RA/RC/true) walk more end states to find"
        "\nthem, and DFS(CC) — no partial order reduction — re-explores the"
        "\nsame histories over and over."
    )


if __name__ == "__main__":
    main()
