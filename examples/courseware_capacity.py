"""Courseware write skew: course capacity can be exceeded below SER.

The courseware application (Nair et al. 2020, one of the paper's benchmark
apps) enrolls a student only if the course is open and under capacity.  Two
concurrent enrollments each read the other's enrollment flag as 0, both
pass the capacity check, and both commit — a *write skew*: their write sets
are disjoint, so even Snapshot Isolation admits it.  Only Serializability
rules it out.

Run:  python examples/courseware_capacity.py
"""

from repro import ModelChecker
from repro.apps import courseware


def main():
    program = courseware.capacity_violation_program(capacity=1)
    check = courseware.capacity_assertion("auditor", capacity=1)

    print("scenario: admin opens course c0 (capacity 1); alice and bob enroll")
    print("          concurrently; an auditor counts enrollments.\n")

    for isolation in ("RC", "RA", "CC", "SI", "SER"):
        result = ModelChecker(program, isolation=isolation).run(assertions=[check])
        print(result.summary())
        if not result.ok:
            witness = result.violations[0].outcome
            count = witness.value("auditor", "count")
            print(f"  -> auditor counted {count} enrollments in a course of capacity 1")

    print(
        "\nNote the SI line: the two enrollments write different variables "
        "(per-student flags),\nso first-committer-wins never fires — the "
        "anomaly survives Snapshot Isolation.\nThis is why 'check under the "
        "database's actual isolation level' matters."
    )


if __name__ == "__main__":
    main()
