"""Differential isolation testing: the engine's seeded bugs vs. the checker.

Acceptance for the engine subsystem:

* every seeded engine bug is detected by :class:`OnlineChecker` at exactly
  the demoted level its knob implies, on a deterministic scheduler seed,
  and the reported first violation names a transaction that actually
  conflicted (and, where the anomaly requires it, temporally raced);
* every honest engine configuration upholds its claimed level across the
  full workload matrix and ≥20 scheduler seeds.

When ``REPRO_DIFFTEST_ARTIFACTS`` is set (the CI difftest job does), any
failing assertion first dumps the offending traces there so regressions
ship a reproducible witness.
"""

import os
from contextlib import contextmanager

import pytest

from repro.checking.online import DEFAULT_LEVELS
from repro.core.events import INIT_SESSION
from repro.engine import SEEDED_BUGS, HONEST_CONFIGS, run_difftest, run_program
from repro.engine.harness import BUG_DEMOS, workload_program

LADDER = DEFAULT_LEVELS  # ("RC", "RA", "CC", "SI", "SER")

#: Per-bug expectations: the exact verdict vector of the signature anomaly
#: (True = level holds), the sweep-wide detected floor, and whether the
#: anomaly requires the involved transactions to overlap in time.
EXPECTED = {
    "no_read_locks": {
        "pattern": (True, True, True, True, False),
        "detected": "SI",
        "overlap": True,
    },
    "first_committer_loses": {
        "pattern": (True, True, True, False, False),
        "detected": "CC",
        "overlap": True,
    },
    "stale_snapshot": {
        "pattern": (True, False, False, False, False),
        "detected": "RC",
        "overlap": False,  # a visibility bug: the race is with the commit counter
    },
    "early_release": {
        "pattern": (False, False, False, False, False),
        "detected": None,
        "overlap": True,
    },
    "lagging_replica": {
        "pattern": (False, False, False, False, False),
        "detected": None,
        "overlap": False,  # the race is with replication, not another client
    },
}

SWEEP_SEEDS = range(30)


@contextmanager
def artifacts_on_failure(runs):
    """Dump the given runs' traces to $REPRO_DIFFTEST_ARTIFACTS on failure."""
    try:
        yield
    except BaseException:
        outdir = os.environ.get("REPRO_DIFFTEST_ARTIFACTS")
        if outdir:
            os.makedirs(outdir, exist_ok=True)
            for run in runs:
                safe = run.trace.header.name.replace("/", "_").replace(":", "_")
                run.trace.dump(os.path.join(outdir, f"{safe}.trace.jsonl"))
        raise


def _verdict_vector(verdicts):
    return tuple(verdicts[name] for name in LADDER)


def _accesses(trace):
    """Per-transaction (session, txn) → (vars read or written, vars written)."""
    touched, wrote = {}, {}
    for event in trace.events:
        tid = (event.session, event.txn)
        if event.var is not None:
            touched.setdefault(tid, set()).add(event.var)
            if event.op == "write":
                wrote.setdefault(tid, set()).add(event.var)
    return touched, wrote


def _sweep(bug_name):
    """Run the bug's demo workload across the seed sweep; returns RunVerdicts."""
    config = SEEDED_BUGS[bug_name].config()
    program = BUG_DEMOS[bug_name]()
    results = []
    for seed in SWEEP_SEEDS:
        run = run_program(program, config, seed=seed,
                          name=f"demo:{bug_name}#s{seed}")
        results.append(run.check())
    return results


class TestSeededBugRegressions:
    """One deterministic regression scenario per planted engine defect."""

    @pytest.mark.parametrize("bug_name", sorted(SEEDED_BUGS))
    def test_bug_is_detected_at_exactly_the_demoted_level(self, bug_name):
        expected = EXPECTED[bug_name]
        bug = SEEDED_BUGS[bug_name]
        results = _sweep(bug_name)
        with artifacts_on_failure([r.run for r in results]):
            # The lie must be caught: some seed exhibits the claimed-level
            # violation, and it exhibits the bug's *signature* verdict
            # vector — not something weaker and not something stronger.
            violating = [r for r in results if not r.claim_holds]
            assert violating, f"{bug_name}: no seed in {SWEEP_SEEDS} caught the lie"
            signature = [
                r for r in violating if _verdict_vector(r.verdicts) == expected["pattern"]
            ]
            assert signature, (
                f"{bug_name}: no violating run matches the signature "
                f"{expected['pattern']}; saw "
                f"{sorted({_verdict_vector(r.verdicts) for r in violating})}"
            )
            # Across the whole sweep the detection floor is exactly the
            # documented demotion — seeds may produce consistent runs or
            # the signature anomaly, but never anything below the floor.
            floors = {r.detected for r in results if not r.claim_holds}
            assert min(
                (LADDER.index(f) if f else -1) for f in floors
            ) == (LADDER.index(expected["detected"]) if expected["detected"] else -1), (
                f"{bug_name}: sweep floor {floors} != documented {expected['detected']}"
            )
            assert bug.detected == expected["detected"], "SEEDED_BUGS metadata drifted"
            assert _verdict_vector(
                {lv: LADDER.index(lv) < LADDER.index(bug.breaks) for lv in LADDER}
            ) == expected["pattern"], "breaks/pattern metadata drifted"

    @pytest.mark.parametrize("bug_name", sorted(SEEDED_BUGS))
    def test_first_violation_names_a_transaction_that_raced(self, bug_name):
        expected = EXPECTED[bug_name]
        breaks = SEEDED_BUGS[bug_name].breaks
        results = _sweep(bug_name)
        signature = [
            r
            for r in results
            if not r.claim_holds and _verdict_vector(r.verdicts) == expected["pattern"]
        ]
        with artifacts_on_failure([r.run for r in signature]):
            assert signature
            for result in signature:
                step = result.first_violations[breaks]
                assert step is not None
                culprit = (step.event.session, step.event.txn)
                assert culprit[0] != INIT_SESSION
                touched, wrote = _accesses(result.run.trace)
                # The named transaction conflicts for real: some *other*
                # transaction wrote a variable it touched.
                rivals = [
                    tid
                    for tid, vars_written in wrote.items()
                    if tid != culprit and vars_written & touched.get(culprit, set())
                ]
                assert rivals, (
                    f"{bug_name}: flagged {culprit} has no conflicting rival "
                    f"(touched {touched.get(culprit)})"
                )
                if expected["overlap"]:
                    # The anomaly needs a genuine race: the culprit's engine
                    # operation span overlapped a conflicting rival's.
                    assert any(
                        result.run.spans[culprit][0] <= result.run.spans[r][1]
                        and result.run.spans[r][0] <= result.run.spans[culprit][1]
                        for r in rivals
                    ), f"{bug_name}: flagged {culprit} never overlapped a rival"

    def test_run_difftest_reports_every_liar_and_no_honest_config(self):
        report = run_difftest(seeds=range(10))
        bugged = {SEEDED_BUGS[b].config().name for b in SEEDED_BUGS}
        assert set(report.liars) == bugged
        for name, config_report in report.configs.items():
            assert config_report.honest == (name not in bugged)
        rendered = report.render()
        assert "LYING" in rendered and "ok" in rendered


HONEST_WORKLOADS = (
    "hotkeys",
    "increments",
    "courseware",
    "shoppingCart",
    "tpcc",
    "twitter",
    "wikipedia",
)


class TestHonestConfigs:
    """The other half of differential testing: no false accusations."""

    @pytest.mark.slow
    @pytest.mark.parametrize("config_name", sorted(HONEST_CONFIGS))
    def test_honest_config_upholds_claim_across_the_matrix(self, config_name):
        config = HONEST_CONFIGS[config_name]
        for workload in HONEST_WORKLOADS:
            for seed in range(20):
                program = workload_program(workload, sessions=2, txns_per_session=2, seed=seed)
                run = run_program(program, config, seed=seed,
                                  name=f"{workload}@{config_name}#s{seed}")
                result = run.check()
                with artifacts_on_failure([run]):
                    assert result.claim_holds, (
                        f"{config_name} violated its claimed {config.claimed} on "
                        f"{workload} seed {seed}: {result.verdicts}"
                    )

    @pytest.mark.parametrize("config_name", sorted(HONEST_CONFIGS))
    def test_honest_config_quick_matrix(self, config_name):
        """Reduced matrix (used by the CI difftest step via -m 'not slow')."""
        config = HONEST_CONFIGS[config_name]
        for workload in ("hotkeys", "tpcc", "twitter"):
            for seed in range(5):
                program = workload_program(workload, sessions=2, txns_per_session=2, seed=seed)
                run = run_program(program, config, seed=seed,
                                  name=f"{workload}@{config_name}#s{seed}")
                result = run.check()
                with artifacts_on_failure([run]):
                    assert result.claim_holds, (
                        f"{config_name} violated {config.claimed} on "
                        f"{workload} seed {seed}: {result.verdicts}"
                    )


class TestSerializableStress:
    """Hot-key increment stress: real thread contention, zero anomalies."""

    @pytest.mark.slow
    def test_hot_key_increments_pass_all_levels_across_20_seeds(self):
        program = workload_program("increments", sessions=3, txns_per_session=4)
        config = HONEST_CONFIGS["serializable"]
        # Upgrade deadlocks make the requester the victim, so under hot-key
        # contention a session can lose many rounds in a row; the property
        # under test is consistency, not retry efficiency.
        for seed in range(20):
            run = run_program(program, config, seed=seed, max_retries=40,
                              name=f"stress-increments#s{seed}")
            result = run.check()
            with artifacts_on_failure([run]):
                assert all(result.verdicts.values()), (
                    f"seed {seed}: {result.verdicts}"
                )
                assert not run.gave_up, f"seed {seed}: retries exhausted {run.gave_up}"
                assert run.stats.commits == 12
                # The schedule actually contended: S2PL on a hot key must
                # produce lock waits somewhere in 12 colliding increments.
                assert run.stats.lock_waits > 0

    def test_hot_key_increments_quick(self):
        program = workload_program("increments", sessions=3, txns_per_session=2)
        config = HONEST_CONFIGS["serializable"]
        for seed in range(5):
            run = run_program(program, config, seed=seed, max_retries=12)
            result = run.check()
            with artifacts_on_failure([run]):
                assert all(result.verdicts.values())
                assert run.stats.commits == 6

    def test_free_running_stress_is_consistent(self):
        """No seed: genuine OS-thread interleavings, checked the same way."""
        program = workload_program("increments", sessions=3, txns_per_session=2)
        run = run_program(program, HONEST_CONFIGS["serializable"], max_retries=20)
        result = run.check()
        with artifacts_on_failure([run]):
            assert all(result.verdicts.values())
