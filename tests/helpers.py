"""Shared fixtures and builders for the test suite.

Contains the paper's example programs (Figs. 8–13, D.1), a seeded random
program generator used by the completeness/optimality sweeps, and history
generators for checker cross-validation.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.core import History, HistoryBuilder
from repro.isolation import get_level
from repro.lang import L, Program, ProgramBuilder, abort
from repro.semantics import enumerate_histories


# -- paper example programs ------------------------------------------------------


def fig8_program() -> Program:
    """Fig. 8(a): conditional write guarded by an observed value."""
    p = ProgramBuilder("fig8")
    s1 = p.session("s1")
    t = s1.transaction("t1")
    t.read("a", "x").if_(L("a") == 3, then=[]).write("y", 1)
    s1.transaction("t2").read("b", "x").read("c", "y")
    p.session("s2").transaction("t3").read("d", "x").write("x", 3)
    return p.build()


def fig10_program() -> Program:
    """Fig. 10(a): reader of x,y vs writer of x,y."""
    p = ProgramBuilder("fig10")
    r = p.session("reader").transaction("r")
    r.read("a", "x").read("b", "y")
    w = p.session("writer").transaction("w")
    w.write("x", 2).write("y", 2)
    return p.build()


def fig11_program() -> Program:
    """Fig. 11(a): abort-guarded write plus two writer transactions."""
    p = ProgramBuilder("fig11")
    s1 = p.session("s1")
    t = s1.transaction("t1")
    t.read("a", "x").if_(L("a") == 0, then=[abort()]).write("y", 1)
    s1.transaction("t2").read("b", "x")
    s2 = p.session("s2")
    s2.transaction("t3").write("y", 3)
    s2.transaction("t4").write("x", 4)
    return p.build()


def fig12_program() -> Program:
    """Fig. 12(a): two readers and two writers of x, four sessions."""
    p = ProgramBuilder("fig12")
    p.session("w1").transaction("t1").write("x", 2)
    p.session("r1").transaction("t2").read("a", "x")
    p.session("r2").transaction("t3").read("b", "x")
    p.session("w2").transaction("t4").write("x", 4)
    return p.build()


def fig13_program() -> Program:
    """Fig. 13(a): read x | read y | write y | write x, four sessions."""
    p = ProgramBuilder("fig13")
    p.session("s1").transaction("t1").read("a", "x")
    p.session("s2").transaction("t2").read("b", "y")
    p.session("s3").transaction("t3").write("y", 3)
    p.session("s4").transaction("t4").write("x", 4)
    return p.build()


def figd1_program(extra_writes: int = 1) -> Program:
    """Fig. D.1(a): the Theorem 6.1 impossibility program (two sessions)."""
    p = ProgramBuilder("figD1")
    t1 = p.session("s1").transaction("t1")
    t1.read("a", "x").write("z", 1).write("y", 1)
    for i in range(extra_writes):
        t1.write(f"w{i}", 1)
    t2 = p.session("s2").transaction("t2")
    t2.read("b", "y").write("z", 2).write("x", 2)
    for i in range(extra_writes):
        t2.write(f"v{i}", 1)
    return p.build()


PAPER_PROGRAMS = [
    fig8_program,
    fig10_program,
    fig11_program,
    fig12_program,
    fig13_program,
    figd1_program,
]


# -- random generators ---------------------------------------------------------------


def random_program(rng: random.Random, name: str = "random") -> Program:
    """A small random program: ≤3 sessions × ≤2 txns × ≤3 instructions."""
    variables = ["x", "y", "z"][: rng.randint(1, 3)]
    p = ProgramBuilder(name)
    for s in range(rng.randint(1, 3)):
        session = p.session(f"s{s}")
        for _ in range(rng.randint(1, 2)):
            txn = session.transaction()
            for i in range(rng.randint(1, 3)):
                var = rng.choice(variables)
                roll = rng.random()
                if roll < 0.40:
                    txn.read(f"a{i}", var)
                elif roll < 0.85:
                    txn.write(var, rng.randint(1, 3))
                else:
                    txn.read(f"a{i}", var)
                    txn.if_(L(f"a{i}") == 0, then=[abort()])
    return p.build()


def random_history(rng: random.Random, allow_pending: bool = False) -> History:
    """A random well-formed history (possibly inconsistent with any level).

    Transactions read from arbitrary *earlier-declared* committed
    transactions, so ``wr ∪ so`` stays acyclic by construction yet the
    history can violate every isolation level's axioms.  With
    ``allow_pending`` the last declared transaction may stay open.
    """
    variables = ["x", "y"][: rng.randint(1, 2)]
    b = HistoryBuilder(variables)
    committed_writers = {var: [b.init] for var in variables}
    specs = [(s, k) for s in range(rng.randint(1, 3)) for k in range(rng.randint(1, 2))]
    for position, (s, _k) in enumerate(specs):
        t = b.txn(f"s{s}")
        wrote = set()
        for _ in range(rng.randint(1, 3)):
            var = rng.choice(variables)
            if rng.random() < 0.5:
                if var in wrote:
                    t.read(var)
                else:
                    t.read(var, source=rng.choice(committed_writers[var]))
            else:
                t.write(var, rng.randint(1, 3))
                wrote.add(var)
        is_last = position == len(specs) - 1
        if allow_pending and is_last and rng.random() < 0.6:
            continue  # leave pending
        if rng.random() < 0.9:
            t.commit()
            for var in wrote:
                committed_writers[var].append(t)
        else:
            t.abort()
    return b.build(auto_commit=False)


# -- comparison utilities -----------------------------------------------------------------


def reference_history_set(program: Program, level_name: str):
    """The ground-truth ``hist_I(P)`` via exhaustive DFS."""
    return enumerate_histories(program, get_level(level_name)).histories


def assert_explore_matches_reference(program, level_name: str, explore_result) -> None:
    """Completeness + soundness + optimality against the DFS reference."""
    reference = reference_history_set(program, level_name)
    got = explore_result.histories
    only_ref, only_got = reference.symmetric_difference(got)
    assert not only_ref, f"incomplete under {level_name}: missing {len(only_ref)} histories"
    assert not only_got, f"unsound under {level_name}: {len(only_got)} extra histories"
    assert got.duplicates == 0, f"not optimal under {level_name}: {got.duplicates} duplicates"
