"""Unit tests for Next, ValidWrites and history extension (repro.semantics.scheduler)."""

import pytest

from repro.core.events import EventType, INIT_TXN, TxnId
from repro.core.ordered_history import OrderedHistory
from repro.isolation import get_level
from repro.lang import L, ProgramBuilder
from repro.semantics import (
    apply_action,
    extend_history,
    next_action,
    pending_transaction,
    unstarted_transactions,
    valid_writes,
)

CC = get_level("CC")
RC = get_level("RC")


def two_session_program():
    p = ProgramBuilder("sched")
    p.session("s0").transaction("t").write("x", 1)
    p.session("s1").transaction("u").read("a", "x")
    return p.build()


def drive(program, *, until_events=None):
    """Run Next/apply deterministically, taking the first valid write."""
    oh = OrderedHistory.initial(program.initial_history())
    while True:
        action = next_action(program, oh.history)
        if action is None:
            return oh
        if action.is_external_read:
            writer, _ = valid_writes(oh.history, action, CC)[0]
            oh = apply_action(oh, action, writer)
        else:
            oh = apply_action(oh, action)
        if until_events is not None and len(oh.order) >= until_events:
            return oh


class TestNextAction:
    def test_starts_oracle_minimal_session_first(self):
        p = two_session_program()
        action = next_action(p, p.initial_history())
        assert action.kind is EventType.BEGIN
        assert action.txn == TxnId("s0", 0)

    def test_completes_pending_before_starting_new(self):
        p = two_session_program()
        h, _ = p.initial_history().begin_transaction("s0")
        action = next_action(p, h)
        assert action.kind is EventType.WRITE and action.txn == TxnId("s0", 0)

    def test_commit_after_body_exhausted(self):
        p = two_session_program()
        oh = drive(p, until_events=5)  # init(3) + begin + write
        action = next_action(p, oh.history)
        assert action.kind is EventType.COMMIT

    def test_none_when_program_finished(self):
        p = two_session_program()
        oh = drive(p)
        assert next_action(p, oh.history) is None
        assert oh.history.txns[TxnId("s1", 0)].is_committed

    def test_local_read_detected(self):
        p = ProgramBuilder("local")
        p.session("s").transaction("t").write("x", 9).read("a", "x")
        prog = p.build()
        oh = drive(prog, until_events=5)  # init(3) + begin + write
        action = next_action(prog, oh.history)
        assert action.kind is EventType.READ and action.local and action.value == 9

    def test_pending_transaction_invariant_enforced(self):
        p = two_session_program()
        h, _ = p.initial_history().begin_transaction("s0")
        h, _ = h.begin_transaction("s1")
        with pytest.raises(AssertionError):
            pending_transaction(h)


class TestUnstarted:
    def test_all_unstarted_initially(self):
        p = two_session_program()
        assert unstarted_transactions(p, p.initial_history()) == [
            TxnId("s0", 0),
            TxnId("s1", 0),
        ]

    def test_empty_when_all_started(self):
        p = two_session_program()
        oh = drive(p)
        assert unstarted_transactions(p, oh.history) == []


class TestValidWrites:
    def writers_program(self):
        p = ProgramBuilder("vw")
        p.session("w1").transaction().write("x", 1)
        p.session("w2").transaction().write("x", 2)
        p.session("r").transaction().read("a", "x").read("b", "y")
        return p.build()

    def test_returns_all_consistent_writers(self):
        p = self.writers_program()
        oh = drive(p, until_events=11)  # init(4) + 2 writer txns + begin reader
        action = next_action(p, oh.history)
        assert action.is_external_read and action.var == "x"
        writers = {w for w, _ in valid_writes(oh.history, action, CC)}
        assert writers == {INIT_TXN, TxnId("w1", 0), TxnId("w2", 0)}

    def test_aborted_writers_excluded(self):
        p = ProgramBuilder("aborted")
        t = p.session("w").transaction()
        t.write("x", 1).abort()
        p.session("r").transaction().read("a", "x")
        prog = p.build()
        oh = drive(prog, until_events=7)
        action = next_action(prog, oh.history)
        writers = {w for w, _ in valid_writes(oh.history, action, CC)}
        assert writers == {INIT_TXN}

    def test_extension_carries_value_and_wr(self):
        p = self.writers_program()
        oh = drive(p, until_events=11)
        action = next_action(p, oh.history)
        for writer, extended in valid_writes(oh.history, action, CC):
            read = extended.txns[action.txn].reads()[0]
            assert extended.wr[read.eid] == writer
            assert read.value == extended.visible_write_value(writer, "x")


class TestApplyAction:
    def test_begin_appends_block(self):
        p = two_session_program()
        oh = OrderedHistory.initial(p.initial_history())
        action = next_action(p, oh.history)
        oh2 = apply_action(oh, action)
        assert oh2.order[-1].txn == TxnId("s0", 0)
        oh2.validate()

    def test_external_read_requires_writer(self):
        p = two_session_program()
        oh = drive(p, until_events=7)  # s0 done, reader begun
        action = next_action(p, oh.history)
        assert action.is_external_read
        with pytest.raises(ValueError):
            apply_action(oh, action)

    def test_non_read_rejects_writer(self):
        p = two_session_program()
        oh = OrderedHistory.initial(p.initial_history())
        action = next_action(p, oh.history)
        with pytest.raises(ValueError):
            apply_action(oh, action, writer=INIT_TXN)

    def test_extend_history_matches_apply_action(self):
        p = two_session_program()
        oh = OrderedHistory.initial(p.initial_history())
        action = next_action(p, oh.history)
        assert (
            extend_history(oh.history, action).canonical_key()
            == apply_action(oh, action).history.canonical_key()
        )
