"""Property-based tests for the isolation layer (hypothesis).

Cross-validates the efficient checkers against the brute-force reference on
randomly generated histories, and re-verifies the structural theorems of §3:
prefix closure (Thm. 3.2) and the monotone strength chain.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core import History, HistorySet, canonical_key
from repro.core.events import EventType, INIT_TXN
from repro.isolation import get_level, satisfies_reference

from tests.helpers import random_history

LEVELS = ("RC", "RA", "CC", "SI", "SER")


@st.composite
def histories(draw):
    seed = draw(st.integers(min_value=0, max_value=10**9))
    return random_history(random.Random(seed))


@given(histories())
@settings(max_examples=120, deadline=None)
def test_fast_checkers_agree_with_reference(history):
    for level in LEVELS:
        assert get_level(level).satisfies(history) == satisfies_reference(history, level), level


@given(histories())
@settings(max_examples=120, deadline=None)
def test_strength_chain_is_monotone(history):
    """If a history satisfies a level it satisfies every weaker level."""
    results = [get_level(level).satisfies(history) for level in LEVELS]
    for weaker, stronger in zip(results, results[1:]):
        assert weaker or not stronger, results


def _transaction_prefixes(history):
    """All histories obtained by truncating one transaction (po-prefix) and
    dropping everything outside the (po ∪ so ∪ wr)*-downward closure.

    Transactions ending in ABORT are left alone: truncating the abort turns
    the log pending, flipping its writes from invisible to visible and
    *adding* axiom instances — Theorem 3.2's restriction argument does not
    cover that shape (a counterexample for SI exists: a truncated-abort
    writer of x that read x stale trips the Conflict axiom).  Such shapes
    also never arise in the algorithms (Swap only truncates the re-ordered
    reader's transaction).
    """
    prefixes = []
    for tid, log in history.txns.items():
        if tid == INIT_TXN or len(log.events) <= 1 or log.is_aborted:
            continue
        # Drop the last event of `tid` and all later txns of its session,
        # plus any read elsewhere whose wr source got truncated away.
        cut = {log.events[-1].eid}
        session_order = history.sessions[tid.session]
        for later in session_order[session_order.index(tid) + 1:]:
            cut.update(e.eid for e in history.txns[later].events)
        candidate = history.remove_events(cut)
        # Downward closure at event level: the *visible* write each read
        # sources must survive the truncation unchanged.
        closed = True
        for read, writer in candidate.wr.items():
            var = candidate.event(read).var
            original = history.txns[writer].writes().get(var)
            if original is None or not candidate.has_event(original.eid):
                closed = False
                break
        if not closed:
            continue  # not a prefix; skip rather than repair
        prefixes.append(candidate)
    return prefixes


@given(histories())
@settings(max_examples=80, deadline=None)
def test_prefix_closure_theorem_3_2(history):
    """Every prefix of an I-consistent history is I-consistent."""
    for level in LEVELS:
        if not get_level(level).satisfies(history):
            continue
        for prefix in _transaction_prefixes(history):
            assert get_level(level).satisfies(prefix), level


@given(histories())
@settings(max_examples=60, deadline=None)
def test_canonical_key_round_trip(history):
    """Canonical keys are stable and discriminate at least status/wr changes."""
    assert canonical_key(history) == canonical_key(history)
    s = HistorySet()
    assert s.add(history) and not s.add(history)
