"""Tests for the bitset relation engine (repro.core.bitrel).

Two halves:

* property-style cross-checks of :class:`RelationMatrix` against the naive
  dict-of-set DFS reference on random DAGs and cyclic graphs, including
  incremental ``add_edge`` vs. full-recompute equivalence;
* "single construction per check" regressions: the saturation, SER, SI and
  DPOR call sites must reuse a history's cached matrix instead of
  rebuilding adjacency per query (tracked via ``RelationMatrix.full_builds``).
"""

import random

import pytest

from repro.core.bitrel import RelationMatrix
from repro.isolation import get_level
from repro.isolation.axioms import AXIOMS_BY_LEVEL
from repro.isolation.saturation import satisfies_by_saturation
from repro.isolation.serializability import satisfies_ser
from repro.isolation.snapshot import satisfies_si
from repro.semantics.scheduler import next_action, valid_writes

from tests.helpers import fig12_program, random_history

# Naive references, deliberately independent of repro.core.relations (which
# itself delegates to bitrel now).


def naive_reachable(adj, start):
    seen, stack = set(), list(adj[start])
    while stack:
        node = stack.pop()
        if node not in seen:
            seen.add(node)
            stack.extend(adj[node])
    return seen


def naive_closure(adj):
    return {node: naive_reachable(adj, node) for node in adj}


def naive_acyclic(adj):
    return all(node not in naive_reachable(adj, node) for node in adj)


def random_graph(rng, cyclic_ok=True):
    n = rng.randrange(1, 14)
    limit = 2 * n if cyclic_ok else n
    edges = set()
    for _ in range(rng.randrange(0, limit)):
        u, v = rng.randrange(n), rng.randrange(n)
        if not cyclic_ok and u >= v:
            continue  # forward edges only → DAG
        edges.add((u, v))
    adj = {i: set() for i in range(n)}
    for u, v in edges:
        adj[u].add(v)
    return n, sorted(edges), adj


class TestCrossChecks:
    @pytest.mark.parametrize("cyclic_ok", [False, True], ids=["dags", "cyclic"])
    def test_matches_naive_on_random_graphs(self, cyclic_ok):
        rng = random.Random(20230729 + cyclic_ok)
        for _ in range(200):
            n, edges, adj = random_graph(rng, cyclic_ok)
            matrix = RelationMatrix(range(n), edges)
            assert matrix.transitive_closure() == naive_closure(adj)
            assert matrix.is_acyclic() == naive_acyclic(adj)
            for node in range(n):
                assert matrix.descendants(node) == naive_reachable(adj, node)
                assert matrix.ancestors(node) == {
                    other for other in adj if node in naive_reachable(adj, other)
                }

    def test_incremental_add_edge_equals_full_recompute(self):
        rng = random.Random(42)
        for _ in range(150):
            n, edges, _adj = random_graph(rng)
            rng.shuffle(edges)
            incremental = RelationMatrix(range(n))
            for step, (u, v) in enumerate(edges):
                expected_cycle = incremental.would_close_cycle(u, v)
                incremental.add_edge(u, v)
                rebuilt = RelationMatrix(range(n), edges[: step + 1])
                assert incremental.transitive_closure() == rebuilt.transitive_closure()
                assert incremental.is_acyclic() == rebuilt.is_acyclic()
                if expected_cycle:
                    assert not incremental.is_acyclic()

    def test_reaches_and_reflexive(self):
        matrix = RelationMatrix("abc", [("a", "b"), ("b", "c")])
        assert matrix.reaches("a", "c") and not matrix.reaches("c", "a")
        assert not matrix.reaches("a", "a")
        assert matrix.reaches_reflexive("a", "a")

    def test_self_loop_and_cycle_flags(self):
        matrix = RelationMatrix(range(3), [(0, 1)])
        assert matrix.is_acyclic()
        assert matrix.would_close_cycle(1, 1)
        assert matrix.would_close_cycle(1, 0)
        assert not matrix.would_close_cycle(1, 2)
        matrix.add_edge(1, 0)
        assert not matrix.is_acyclic()
        assert matrix.reaches(0, 0)

    def test_redundant_edge_reports_no_change(self):
        matrix = RelationMatrix(range(3), [(0, 1), (1, 2)])
        assert matrix.add_edge(0, 2) is False, "edge already in the closure"
        assert matrix.add_edge(2, 0) is True

    def test_cached_history_matrix_is_frozen(self):
        rng = random.Random(5)
        history = random_history(rng)
        cached = history.causal_matrix()
        tids = list(history.txns)
        with pytest.raises(ValueError, match="frozen"):
            cached.add_edge(tids[0], tids[-1])
        cached.copy().add_edge(tids[0], tids[-1])  # copies stay mutable
        assert history.causal_matrix() is cached

    def test_copy_is_independent(self):
        base = RelationMatrix(range(3), [(0, 1)])
        dup = base.copy()
        dup.add_edge(1, 2)
        assert dup.reaches(0, 2)
        assert not base.reaches(0, 2)
        assert base.transitive_closure() == RelationMatrix(range(3), [(0, 1)]).transitive_closure()

    def test_masks_roundtrip(self):
        matrix = RelationMatrix("xyz")
        mask = matrix.mask_of("xz")
        assert matrix.nodes_of_mask(mask) == {"x", "z"}
        assert matrix.index_of("y") == 1 and matrix.node_at(1) == "y"
        assert "y" in matrix and "w" not in matrix
        assert len(matrix) == 3

    def test_rejects_dangling_edges_and_duplicates(self):
        with pytest.raises(ValueError):
            RelationMatrix([1, 2], [(1, 3)])
        with pytest.raises(ValueError):
            RelationMatrix([1, 1])


class TestSingleConstructionPerCheck:
    """The checkers must not rebuild the so∪wr relation per query."""

    def fresh_history(self, seed=7):
        rng = random.Random(seed)
        history = random_history(rng)
        history.causal_matrix()  # warm the per-history cache
        return history

    def builds(self):
        return RelationMatrix.full_builds

    def test_saturation_builds_nothing_on_warm_history(self):
        history = self.fresh_history()
        for level in ("RC", "RA", "CC"):
            before = self.builds()
            satisfies_by_saturation(history, AXIOMS_BY_LEVEL[level])
            assert self.builds() == before, f"{level} saturation rebuilt the relation"

    def test_ser_and_si_build_nothing_on_warm_history(self):
        history = self.fresh_history()
        before = self.builds()
        satisfies_ser(history)
        satisfies_si(history)
        assert self.builds() == before

    def test_cold_check_builds_exactly_once(self):
        from repro.core import History

        rng = random.Random(11)
        warm = random_history(rng)
        history = History(warm.sessions, warm.txns, warm.wr)  # fresh, cache-cold
        before = self.builds()
        satisfies_by_saturation(history, AXIOMS_BY_LEVEL["CC"])
        assert self.builds() == before + 1
        satisfies_ser(history)
        satisfies_si(history)
        satisfies_by_saturation(history, AXIOMS_BY_LEVEL["RA"])
        assert self.builds() == before + 1, "later checks must reuse the cached matrix"

    def test_valid_writes_derives_candidate_matrices_incrementally(self):
        """Every ValidWrites candidate adopts base-closure + one add_edge."""
        from repro.semantics.scheduler import apply_action
        from repro.core.ordered_history import OrderedHistory

        program = fig12_program()
        level = get_level("CC")
        oh = OrderedHistory.initial(program.initial_history())
        action = next_action(program, oh.history)
        # Drive the scheduler until it proposes an external read.
        while action is not None and not action.is_external_read:
            oh = apply_action(oh, action)
            action = next_action(program, oh.history)
        assert action is not None and action.is_external_read
        oh.history.causal_matrix()
        before = self.builds()
        choices = valid_writes(oh.history, action, level)
        assert choices, "scheduler should offer at least the init writer"
        assert self.builds() == before, "ValidWrites rebuilt a relation from scratch"
        for _writer, candidate in choices:
            assert candidate.is_so_wr_acyclic()  # served by the adopted matrix
        assert self.builds() == before

    def test_swap_candidates_share_one_matrix(self):
        from repro.dpor.swaps import compute_reorderings, doomed_events
        from repro.core.ordered_history import OrderedHistory
        from repro.semantics.scheduler import apply_action
        from repro.core.events import EventId

        program = fig12_program()
        level = get_level("CC")
        oh = OrderedHistory.initial(program.initial_history())
        action = next_action(program, oh.history)
        while action is not None:
            if action.is_external_read:
                choices = valid_writes(oh.history, action, level)
                eid = EventId(action.txn, len(oh.history.txns[action.txn].events))
                oh = oh.extended(choices[0][1], eid)
            else:
                oh = apply_action(oh, action)
            action = next_action(program, oh.history)
        oh.history.causal_matrix()
        before = self.builds()
        pairs = compute_reorderings(oh)
        for read, target in pairs:
            doomed_events(oh, read, target)
        assert self.builds() == before, "swap computation rebuilt the relation per pair"

        # readLatest builds exactly one matrix (the pruned history's) per
        # call; every writer candidate adopts pruned-closure + add_edge.
        from repro.dpor.optimality import read_latest

        assert pairs, "fig12 must offer at least one reordering here"
        before = self.builds()
        for read, target in pairs:
            read_latest(oh, read, target, level)
        assert self.builds() == before + len(pairs), (
            "read_latest must build one matrix per pruning, none per candidate"
        )


class TestHistoryIntegration:
    """The matrix-backed History queries agree with the exclude_read DFS path."""

    def test_causal_past_excludes_self_on_cyclic_history(self):
        """Both causal_past branches agree even when so∪wr is cyclic."""
        from repro.core import History
        from repro.core.events import Event, EventId, EventType

        h = History.initial(["x"])
        h, t1 = h.begin_transaction("s")
        h = h.append_event("s", Event(EventId(t1, 1), EventType.READ, "x", 1))
        h = h.append_event("s", Event(EventId(t1, 2), EventType.COMMIT))
        h, t2 = h.begin_transaction("s")
        h = h.append_event("s", Event(EventId(t2, 1), EventType.WRITE, "x", 1))
        h = h.append_event("s", Event(EventId(t2, 2), EventType.COMMIT))
        h = h.add_wr(t2, EventId(t1, 1))  # wr opposes so: cycle t1 ⇄ t2
        assert not h.is_so_wr_acyclic()
        for tid in (t1, t2):
            fast = h.causal_past(tid)
            assert tid not in fast
            # exclude_read on an eid outside wr keeps the same graph.
            assert fast == h.causal_past(tid, exclude_read=EventId(t2, 1))

    def test_causal_queries_match_dfs_fallback(self):
        rng = random.Random(3)
        for _ in range(25):
            history = random_history(rng)
            adj = history.so_wr_adjacency()
            matrix = history.causal_matrix()
            assert matrix.is_acyclic() == history.is_so_wr_acyclic()
            for a in history.txns:
                assert matrix.descendants(a) == naive_reachable(adj, a)
                assert history.causal_past(a) == {
                    t for t in adj if t != a and a in naive_reachable(adj, t)
                }


class TestCompaction:
    """remove_nodes / retract_edges — the streaming monitor's primitives."""

    def test_remove_nodes_preserves_survivor_reachability(self):
        """Closure answers between survivors must survive compaction,
        including paths that ran *through* dropped nodes."""
        rng = random.Random(11)
        for _ in range(60):
            n, edges, adj = random_graph(rng, cyclic_ok=False)
            matrix = RelationMatrix(range(n), edges)
            drop = {i for i in range(n) if rng.random() < 0.4 and n - 1}
            if len(drop) == n:
                drop.pop()
            compacted = matrix.remove_nodes(drop)
            closure = naive_closure(adj)
            keep = [i for i in range(n) if i not in drop]
            assert set(compacted.nodes) == set(keep)
            for a in keep:
                for b in keep:
                    if a != b:
                        assert compacted.reaches(a, b) == (b in closure[a]), (
                            f"reaches({a},{b}) diverged after dropping {drop}"
                        )
            assert compacted.is_acyclic() == all(
                a not in closure[a] for a in keep
            )

    def test_remove_nodes_rejects_unknown(self):
        matrix = RelationMatrix(range(3), [(0, 1)])
        with pytest.raises(ValueError):
            matrix.remove_nodes({7})

    def test_compress_matches_per_bit_reference(self):
        rng = random.Random(5)
        for _ in range(200):
            width = rng.randrange(1, 200)
            keep = sorted(rng.sample(range(width), rng.randrange(0, width + 1)))
            mask = 0
            for j in keep:
                mask |= 1 << j
            plan = RelationMatrix._compress_plan(mask, width)
            row = rng.getrandbits(width)
            expected = 0
            for new_j, old_j in enumerate(keep):
                if (row >> old_j) & 1:
                    expected |= 1 << new_j
            assert RelationMatrix._compress_row(row, mask, plan) == expected

    def test_retract_edges_equals_never_added(self):
        """add → retract must equal the matrix where the edges never were."""
        rng = random.Random(23)
        for _ in range(60):
            n, edges, adj = random_graph(rng, cyclic_ok=True)
            extra = set()
            for _ in range(rng.randrange(1, 4)):
                extra.add((rng.randrange(n), rng.randrange(n)))
            extra -= set(edges)
            extra -= {(i, i) for i in range(n)}
            matrix = RelationMatrix(range(n), edges)
            for src, dst in extra:
                matrix.add_edge(src, dst)
            matrix.retract_edges(extra)
            reference = RelationMatrix(range(n), edges)
            for a in range(n):
                for b in range(n):
                    assert matrix.reaches(a, b) == reference.reaches(a, b)
            assert matrix.is_acyclic() == reference.is_acyclic()

    def test_retract_after_compaction_keeps_baked_paths(self):
        """Compaction bakes through-paths into succ, so a later retraction
        must not lose them (the monitor's abort-after-eviction scenario).
        Per the GC gate's contract, the retractable edge arrives *after*
        the compaction — everything present at compaction is permanent.
        """
        matrix = RelationMatrix(range(4), [(0, 1), (1, 2)])
        compacted = matrix.remove_nodes({1})  # 0 → 2 survives as baked path
        assert compacted.reaches(0, 2)
        compacted.add_edge(3, 0)  # fired after the compaction
        assert compacted.reaches(3, 2)
        compacted.retract_edges([(3, 0)])
        assert compacted.reaches(0, 2), "baked through-path lost on re-close"
        assert not compacted.reaches(3, 2)
        assert not compacted.reaches(3, 0)

    def test_retract_on_frozen_matrix_raises(self):
        matrix = RelationMatrix(range(2), [(0, 1)]).freeze()
        with pytest.raises(ValueError):
            matrix.retract_edges([(0, 1)])


class TestScratchRecycling:
    """copy_mutable/release: the hot path's container free list."""

    def test_copy_mutable_answers_like_copy(self):
        rng = random.Random(7)
        for _ in range(20):
            n, edges, _adj = random_graph(rng)
            matrix = RelationMatrix(range(n), edges)
            mutable = matrix.copy_mutable()
            for a in range(n):
                for b in range(n):
                    assert mutable.reaches(a, b) == matrix.reaches(a, b)
            assert mutable.is_acyclic() == matrix.is_acyclic()

    def test_copy_mutable_is_immediately_mutable_and_independent(self):
        matrix = RelationMatrix(range(4), [(0, 1)]).freeze()
        mutable = matrix.copy_mutable()
        mutable.add_edge(1, 2)  # must not raise, must not widen-copy again
        assert mutable.reaches(0, 2)
        assert not matrix.reaches(0, 2), "mutation leaked into the source"

    def test_release_feeds_copy_mutable(self):
        matrix = RelationMatrix(range(5), [(0, 1), (1, 2)])
        derived = matrix.copy_mutable()
        derived.add_edge(2, 3)
        rows = derived._succ
        derived.release()
        before = RelationMatrix.buffer_reuses
        recycled = matrix.copy_mutable()
        assert RelationMatrix.buffer_reuses == before + 1
        assert recycled._succ is rows, "expected the released containers back"
        # Refilled contents match the source, not the released garbage.
        assert not recycled.reaches(2, 3)
        assert recycled.reaches(0, 2)

    def test_release_poisons_the_released_matrix(self):
        matrix = RelationMatrix(range(3), [(0, 1)])
        derived = matrix.copy_mutable()
        derived.release()
        with pytest.raises(TypeError):
            derived.reaches(0, 1)
        derived.release()  # idempotent: double release must not corrupt the pool

    def test_release_is_noop_for_packed_rows(self):
        matrix = RelationMatrix(range(3), [(0, 1)])
        copy = matrix.copy()  # packed array rows, never mutated
        copy.release()
        assert copy.reaches(0, 1), "packed copy must survive release unharmed"

    def test_rejected_valid_writes_candidates_recycle(self):
        """The DPOR hot path actually recycles: exploring a program with
        rejected wr candidates must hit the free list."""
        from repro.dpor import SwappingExplorer

        program = fig12_program()
        before = RelationMatrix.buffer_reuses
        SwappingExplorer(program, get_level("CC"), valid_level=get_level("SER")).run()
        assert RelationMatrix.buffer_reuses > before
