"""Unit tests for the relation utilities (repro.core.relations)."""

import pytest

from repro.core.relations import (
    downward_closed,
    is_acyclic,
    make_adjacency,
    reachable_from,
    reaches,
    reaches_reflexive,
    restrict,
    topological_orders,
    transitive_closure,
)


def chain(n):
    return make_adjacency(range(n), [(i, i + 1) for i in range(n - 1)])


class TestAdjacency:
    def test_rejects_dangling_edges(self):
        with pytest.raises(ValueError):
            make_adjacency([1, 2], [(1, 3)])

    def test_restrict(self):
        adj = chain(4)
        sub = restrict(adj, {0, 1, 3})
        assert sub == {0: {1}, 1: set(), 3: set()}


class TestReachability:
    def test_chain(self):
        adj = chain(4)
        assert reachable_from(adj, 0) == {1, 2, 3}
        assert reachable_from(adj, 3) == set()
        assert reaches(adj, 0, 3) and not reaches(adj, 3, 0)

    def test_reflexive_variant(self):
        adj = chain(2)
        assert reaches_reflexive(adj, 0, 0)
        assert not reaches(adj, 0, 0), "strict closure excludes self without a cycle"

    def test_cycle_reaches_itself(self):
        adj = make_adjacency([0, 1], [(0, 1), (1, 0)])
        assert reaches(adj, 0, 0)

    def test_transitive_closure(self):
        closure = transitive_closure(chain(3))
        assert closure == {0: {1, 2}, 1: {2}, 2: set()}


class TestAcyclicity:
    def test_dag(self):
        assert is_acyclic(chain(5))

    def test_self_loop(self):
        assert not is_acyclic(make_adjacency([0], [(0, 0)]))

    def test_long_cycle(self):
        adj = make_adjacency(range(4), [(0, 1), (1, 2), (2, 3), (3, 1)])
        assert not is_acyclic(adj)

    def test_diamond(self):
        adj = make_adjacency(range(4), [(0, 1), (0, 2), (1, 3), (2, 3)])
        assert is_acyclic(adj)


class TestTopologicalOrders:
    def test_chain_has_one_order(self):
        assert list(topological_orders(chain(3))) == [(0, 1, 2)]

    def test_antichain_has_factorial_orders(self):
        adj = make_adjacency(range(3), [])
        assert len(list(topological_orders(adj))) == 6

    def test_orders_respect_edges(self):
        adj = make_adjacency(range(4), [(0, 1), (2, 3)])
        for order in topological_orders(adj):
            assert order.index(0) < order.index(1)
            assert order.index(2) < order.index(3)

    def test_cycle_yields_nothing(self):
        adj = make_adjacency([0, 1], [(0, 1), (1, 0)])
        assert list(topological_orders(adj)) == []


class TestDownwardClosed:
    def test_prefix_of_chain_is_closed(self):
        assert downward_closed({0, 1}, chain(4))

    def test_hole_is_not_closed(self):
        assert not downward_closed({0, 2}, chain(4))

    def test_empty_and_full_are_closed(self):
        adj = chain(3)
        assert downward_closed(set(), adj)
        assert downward_closed({0, 1, 2}, adj)


class TestDanglingSuccessors:
    """Successors absent from the key set: ``transitive_closure`` must keep
    tolerating them (the old DFS did); ``is_acyclic`` now tolerates them
    too (the old three-colour DFS raised ``KeyError``)."""

    def test_transitive_closure_with_dangling_successor(self):
        assert transitive_closure({"a": {"b"}}) == {"a": {"b"}}

    def test_is_acyclic_with_dangling_successor(self):
        assert is_acyclic({"a": {"b"}})
