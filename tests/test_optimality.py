"""Unit tests for the Optimality condition, ``swapped`` and ``readLatest``
(repro.dpor.optimality), driven by the paper's Figs. 12 and 13 scenarios.
"""

from repro.core.events import TxnId
from repro.core.ordered_history import OrderedHistory
from repro.dpor.explore import SwappingExplorer
from repro.dpor.optimality import is_swapped, optimality, read_latest
from repro.dpor.swaps import compute_reorderings, swap
from repro.isolation import get_level

from tests.helpers import fig12_program, fig13_program
from tests.test_swaps import drive_all

CC = get_level("CC")


class TestIsSwapped:
    def test_oracle_order_reads_are_not_swapped(self):
        """Reads produced by plain Next (no swaps) are never 'swapped'."""
        p = fig12_program()
        oh = drive_all(p)
        for read in oh.history.reads():
            assert not is_swapped(p, oh, read.eid)

    def test_swap_marks_the_read(self):
        p = fig12_program()
        oh = drive_all(p)
        pairs = compute_reorderings(oh)
        read, target = pairs[0]
        swapped_oh = swap(oh, read, target)
        assert is_swapped(p, swapped_oh, read)

    def test_reads_from_init_never_swapped(self):
        """init precedes everything in the oracle order, so condition (1)
        (source after the read in oracle order) can never hold."""
        p = fig12_program()
        oh = drive_all(p)  # all reads read from init on the default drive...
        for read in oh.history.reads():
            if oh.history.wr[read.eid].is_init:
                assert not is_swapped(p, oh, read.eid)


class TestReadLatestFig12:
    """Fig. 12: swaps only fire from the branch where deleted reads read
    from the causally-latest valid write."""

    def setup_histories(self):
        p = fig12_program()
        # Branch A: both reads read from init; Branch B: r2 reads from w1.
        branch_a = drive_all(p, picks=[0, 0])
        branch_b = drive_all(p, picks=[0, 1])
        return p, branch_a, branch_b

    def test_only_latest_branch_enables_swap(self):
        """§5.3: "re-ordering is enabled only when the second read(x) reads
        from the initial write" — w1 is not in r2's causal past once r2's
        own wr dependency is excluded, so init is the causally-latest valid
        write for the deleted read."""
        p, branch_a, branch_b = self.setup_histories()
        w2 = TxnId("w2", 0)

        def first_read_pair(oh):
            pairs = compute_reorderings(oh)
            return [pr for pr in pairs if oh.history.event(pr[0]).var == "x"][0]

        # Branch A: r2 reads init (the latest write in its causal past) —
        # swapping the *first* read (which deletes r2's read) is enabled.
        read_a, _ = first_read_pair(branch_a)
        ok_a, _ = optimality(p, branch_a, read_a, w2, CC)
        # Branch B: r2 reads w1, which is *outside* its causal past — the
        # same swap is suppressed there, avoiding the Fig. 12(e) duplicate.
        read_b, _ = first_read_pair(branch_b)
        ok_b, _ = optimality(p, branch_b, read_b, w2, CC)
        assert ok_a and not ok_b

    def test_read_latest_predicate_directly(self):
        p, branch_a, branch_b = self.setup_histories()
        w2 = TxnId("w2", 0)
        r2_a = [r for r in branch_a.history.reads() if r.eid.txn == TxnId("r2", 0)][0]
        r2_b = [r for r in branch_b.history.reads() if r.eid.txn == TxnId("r2", 0)][0]
        assert read_latest(branch_a, r2_a.eid, w2, CC)
        assert not read_latest(branch_b, r2_b.eid, w2, CC)


class TestSwappedBlocksReswap:
    """Fig. 13: a read moved by a swap cannot be deleted by a later swap."""

    def test_swapped_read_disables_second_swap(self):
        p = fig13_program()
        # Drive to the state right after t3 (the y writer) commits.
        from repro.semantics import next_action
        from tests.test_swaps import run_next

        oh = OrderedHistory.initial(p.initial_history())
        while True:
            oh = run_next(p, oh)
            if oh.last_event().type.value == "commit" and oh.last.txn == TxnId("s3", 0):
                break
        pairs = compute_reorderings(oh)
        read_y = [pr for pr in pairs if oh.history.event(pr[0]).var == "y"][0]
        ok, swapped_oh = optimality(p, oh, read_y[0], read_y[1], CC)
        assert ok
        # Extend the swapped branch until t4 commits, then try swapping
        # t1's read of x with t4: the history contains the swapped read of y,
        # which would be deleted — Optimality must refuse.
        oh2 = swapped_oh
        while True:
            action = next_action(p, oh2.history)
            if action is None:
                break
            oh2 = run_next(p, oh2)
        pairs2 = compute_reorderings(oh2)
        x_pairs = [pr for pr in pairs2 if oh2.history.event(pr[0]).var == "x"]
        assert x_pairs, "t4 commits last; t1's read of x is a candidate"
        read_x, t4 = x_pairs[0]
        ok2, _ = optimality(p, oh2, read_x, t4, CC)
        assert not ok2, "re-swapping over an already-swapped read must be blocked"


class TestOptimalityGlobalEffect:
    """End-to-end: the Optimality condition is what removes duplicates."""

    def test_fig12_duplicates_without_restriction(self):
        """The restrict_swaps=False ablation swaps whenever consistent."""
        p = fig12_program()
        crippled = SwappingExplorer(p, CC, restrict_swaps=False, timeout=20).run()
        assert crippled.histories.duplicates > 0, "restriction removed ⇒ duplicates appear"

    def test_ablation_remains_sound_and_complete(self):
        from repro.dpor import explore_ce

        p = fig12_program()
        crippled = SwappingExplorer(p, CC, restrict_swaps=False, timeout=20).run()
        optimal = explore_ce(p, "CC")
        assert set(crippled.histories.keys()) == set(optimal.histories.keys())

    def test_fig12_no_duplicates_with_restriction(self):
        from repro.dpor import explore_ce

        result = explore_ce(fig12_program(), "CC")
        assert result.histories.duplicates == 0
