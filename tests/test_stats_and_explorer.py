"""Tests for exploration statistics and explorer plumbing (repro.dpor)."""

import pytest

from repro.dpor import ExplorationStats, SwappingExplorer, explore_ce
from repro.isolation import get_level

from tests.helpers import fig10_program, fig12_program


class TestStats:
    def test_merge_sums_counters_and_maxes_peaks(self):
        a = ExplorationStats(explore_calls=5, outputs=2, peak_stack=10, seconds=1.0)
        b = ExplorationStats(explore_calls=3, outputs=1, peak_stack=4, seconds=0.5, timed_out=True)
        merged = a.merge(b)
        assert merged.explore_calls == 8
        assert merged.outputs == 3
        assert merged.peak_stack == 10
        assert merged.seconds == 1.5
        assert merged.timed_out

    def test_counters_populated_by_run(self):
        result = explore_ce(fig12_program(), "CC")
        s = result.stats
        assert s.explore_calls > 0
        assert s.outputs == s.end_states == 9
        assert s.swap_candidates >= s.swaps_applied > 0
        assert s.consistency_checks > 0
        assert s.peak_stack > 0
        assert s.peak_live_events > 0
        assert s.seconds >= 0

    def test_swaps_applied_bounded_by_candidates(self):
        result = explore_ce(fig12_program(), "CC")
        assert result.stats.swaps_applied <= result.stats.swap_candidates


class TestExplorerConfig:
    def test_collect_histories_false_counts_only(self):
        result = explore_ce(fig10_program(), "CC", collect_histories=False)
        assert result.histories is None
        assert result.stats.outputs == 2
        with pytest.raises(ValueError):
            result.distinct_histories

    def test_on_output_callback(self):
        seen = []
        explore_ce(fig10_program(), "CC", on_output=seen.append)
        assert len(seen) == 2

    def test_timeout_sets_flag(self):
        from repro.lang import ProgramBuilder

        p = ProgramBuilder("slow")
        for s in range(4):
            session = p.session(f"s{s}")
            for _ in range(2):
                session.transaction().read("a", "x").write("x", s).read("b", "y").write("y", s)
        result = explore_ce(p.build(), "CC", collect_histories=False, timeout=0.02)
        assert result.stats.timed_out

    def test_algorithm_names(self):
        cc = SwappingExplorer(fig10_program(), get_level("CC"))
        star = SwappingExplorer(fig10_program(), get_level("CC"), valid_level=get_level("SER"))
        assert cc.algorithm_name == "explore-ce(CC)"
        assert star.algorithm_name == "explore-ce*(CC, SER)"

    def test_is_optimal_run_property(self):
        result = explore_ce(fig10_program(), "CC")
        assert result.is_optimal_run
