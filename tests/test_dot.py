"""Unit tests for the DOT renderer (repro.core.dot)."""

from repro.core import HistoryBuilder
from repro.core.dot import history_to_dot


def sample_history():
    b = HistoryBuilder(["x"])
    w = b.txn("writer")
    w.write("x", 1)
    w.commit()
    r = b.txn("reader")
    r.read("x", source=w)
    r.commit()
    return b.build()


class TestHistoryToDot:
    def test_is_a_digraph(self):
        text = history_to_dot(sample_history())
        assert text.startswith("digraph history {")
        assert text.rstrip().endswith("}")

    def test_one_cluster_per_transaction(self):
        text = history_to_dot(sample_history())
        assert text.count("subgraph cluster_") == 3  # init + writer + reader

    def test_wr_edge_present_with_variable_label(self):
        text = history_to_dot(sample_history())
        assert 'label="wr[x]"' in text

    def test_so_edges_from_init(self):
        text = history_to_dot(sample_history())
        assert text.count("[label=so") == 2  # init -> writer, init -> reader

    def test_include_init_false_hides_init(self):
        text = history_to_dot(sample_history(), include_init=False)
        assert "init" not in text
        assert text.count("subgraph cluster_") == 2

    def test_title_and_status_rendered(self):
        text = history_to_dot(sample_history(), title="demo")
        assert 'label="demo"' in text
        assert "[committed]" in text

    def test_aborted_status(self):
        b = HistoryBuilder(["x"])
        t = b.txn("s")
        t.write("x", 1)
        t.abort()
        text = history_to_dot(b.build())
        assert "[aborted]" in text

    def test_balanced_braces(self):
        text = history_to_dot(sample_history())
        assert text.count("{") == text.count("}")
