"""Integration tests for the ModelChecker facade (repro.checking)."""

import pytest

from repro import (
    Assertion,
    L,
    ModelChecker,
    ProgramBuilder,
    assertion,
    check_program,
    local_equals,
    local_in,
)
from repro.checking.assertions import serializable_outcome


def lost_update_program():
    p = ProgramBuilder("lost-update")
    for who in ("alice", "bob"):
        t = p.session(who).transaction("incr")
        t.read("a", "counter")
        t.write("counter", L("a") + 1)
    return p.build()


@assertion("someone observed the other's increment")
def no_lost_update(outcome):
    return outcome.value("alice", "a") == 1 or outcome.value("bob", "a") == 1


class TestAlgorithmSelection:
    def test_ce_levels_use_explore_ce(self):
        result = ModelChecker(lost_update_program(), isolation="CC").run()
        assert result.algorithm == "explore-ce(CC)"

    def test_strong_levels_use_star(self):
        result = ModelChecker(lost_update_program(), isolation="SER").run()
        assert result.algorithm == "explore-ce*(CC, SER)"

    def test_custom_base(self):
        result = ModelChecker(lost_update_program(), isolation="SER", base="RA").run()
        assert result.algorithm == "explore-ce*(RA, SER)"

    def test_dfs_method(self):
        result = ModelChecker(lost_update_program(), isolation="CC", method="dfs").run()
        assert result.algorithm == "DFS(CC)"

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            ModelChecker(lost_update_program(), method="bfs")

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            ModelChecker(lost_update_program(), workers=-2)

    def test_parallel_checker_agrees_with_serial(self):
        serial = ModelChecker(lost_update_program(), isolation="SER").run(
            assertions=[no_lost_update]
        )
        parallel = ModelChecker(lost_update_program(), isolation="SER", workers=2).run(
            assertions=[no_lost_update]
        )
        assert parallel.ok == serial.ok
        assert parallel.history_count == serial.history_count
        assert parallel.stats.outputs == serial.stats.outputs


class TestVerdicts:
    def test_lost_update_found_under_cc(self):
        result = ModelChecker(lost_update_program(), isolation="CC").run(
            assertions=[no_lost_update]
        )
        assert not result.ok
        assert result.violations[0].assertion == no_lost_update.name

    def test_lost_update_proven_absent_under_si_and_ser(self):
        for iso in ("SI", "SER"):
            result = ModelChecker(lost_update_program(), isolation=iso).run(
                assertions=[no_lost_update]
            )
            assert result.ok, iso

    def test_history_counts(self):
        cc = ModelChecker(lost_update_program(), isolation="CC").run()
        ser = ModelChecker(lost_update_program(), isolation="SER").run()
        assert cc.history_count == 3  # (0,·),(·,0) sources: 3 CC-consistent
        assert ser.history_count == 2  # the two serial orders

    def test_dfs_agrees_on_distinct_histories(self):
        dpor = ModelChecker(lost_update_program(), isolation="CC").run()
        dfs = ModelChecker(lost_update_program(), isolation="CC", method="dfs").run()
        assert dfs.history_count == dpor.history_count


class TestOutcomes:
    def test_violation_carries_witness(self):
        result = ModelChecker(lost_update_program(), isolation="CC").run(
            assertions=[no_lost_update]
        )
        witness = result.violations[0].outcome
        assert witness.value("alice", "a") == 0
        assert witness.value("bob", "a") == 0
        assert witness.committed("alice")
        assert "read(counter)" in witness.describe()

    def test_keep_outcomes_cap(self):
        result = ModelChecker(lost_update_program(), isolation="CC").run(keep_outcomes=2)
        assert len(result.outcomes) == 2

    def test_keep_all_outcomes(self):
        result = ModelChecker(lost_update_program(), isolation="CC").run(keep_outcomes=True)
        assert len(result.outcomes) == result.history_count

    def test_keep_outcomes_zero_keeps_none_but_collects(self):
        # 0 is a cap, not False: the result carries an (empty) outcome list.
        result = ModelChecker(lost_update_program(), isolation="CC").run(keep_outcomes=0)
        assert result.outcomes == []

    def test_keep_outcomes_false_collects_nothing(self):
        result = ModelChecker(lost_update_program(), isolation="CC").run(keep_outcomes=False)
        assert result.outcomes is None

    def test_negative_keep_outcomes_rejected(self):
        with pytest.raises(ValueError):
            ModelChecker(lost_update_program(), isolation="CC").run(keep_outcomes=-1)

    def test_max_violations_cap(self):
        never = Assertion("never", lambda outcome: False)
        result = ModelChecker(lost_update_program(), isolation="CC").run(
            assertions=[never], max_violations=1
        )
        assert len(result.violations) == 1
        assert not result.ok


class TestAssertionHelpers:
    def test_local_equals(self):
        check = local_equals("alice", "a", 0)
        result = ModelChecker(lost_update_program(), isolation="SER").run(assertions=[check])
        assert not result.ok, "in one serial order alice reads 1"

    def test_local_in(self):
        check = local_in("alice", "a", [0, 1])
        result = ModelChecker(lost_update_program(), isolation="CC").run(assertions=[check])
        assert result.ok

    def test_serializable_outcome_conjunction(self):
        combined = serializable_outcome(
            local_in("alice", "a", [0, 1]), local_in("bob", "a", [0, 1])
        )
        result = ModelChecker(lost_update_program(), isolation="CC").run(assertions=[combined])
        assert result.ok
        assert "and" in combined.name

    def test_summary_mentions_verdict(self):
        result = check_program(lost_update_program(), "CC", assertions=[no_lost_update])
        assert "FAIL" in result.summary()
        clean = check_program(lost_update_program(), "SER", assertions=[no_lost_update])
        assert "PASS" in clean.summary()
