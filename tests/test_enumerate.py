"""Tests for the exhaustive DFS baseline (repro.semantics.enumerate)."""

from repro.isolation import get_level
from repro.lang import ProgramBuilder
from repro.semantics import enumerate_histories

from tests.helpers import fig10_program


class TestFig10Counts:
    """Hand-computed history counts for the Fig. 10 reader/writer program."""

    def test_rc_counts(self):
        result = enumerate_histories(fig10_program(), get_level("RC"))
        # x/y sources: (init,init), (w,w), (init,w) valid; (w,init) violates RC.
        assert len(result.histories) == 3
        assert result.end_states == 4  # serial reader-first leaf is a duplicate

    def test_cc_counts(self):
        result = enumerate_histories(fig10_program(), get_level("CC"))
        assert len(result.histories) == 2
        assert result.end_states == 3

    def test_true_counts(self):
        result = enumerate_histories(fig10_program(), get_level("TRUE"))
        assert len(result.histories) == 4

    def test_ser_counts(self):
        result = enumerate_histories(fig10_program(), get_level("SER"))
        assert len(result.histories) == 2


class TestInvariants:
    def test_never_blocked_under_causally_extensible_levels(self):
        for name in ("RC", "RA", "CC", "TRUE"):
            result = enumerate_histories(fig10_program(), get_level(name))
            assert result.blocked == 0, name

    def test_all_outputs_consistent(self):
        for name in ("RC", "CC", "SER"):
            level = get_level(name)
            result = enumerate_histories(fig10_program(), level)
            for history in result.histories:
                assert level.satisfies(history), name

    def test_all_outputs_are_complete_executions(self):
        result = enumerate_histories(fig10_program(), get_level("CC"))
        for history in result.histories:
            assert not history.pending_transactions()
            assert len(history.txns) == 3  # init + reader + writer

    def test_stronger_level_yields_subset(self):
        weak = enumerate_histories(fig10_program(), get_level("CC")).histories
        strong = enumerate_histories(fig10_program(), get_level("SER")).histories
        only_strong, _ = strong.symmetric_difference(weak)
        assert not only_strong


class TestTimeout:
    def test_timeout_flag(self):
        p = ProgramBuilder("big")
        for s in range(4):
            session = p.session(f"s{s}")
            for _ in range(2):
                t = session.transaction()
                t.read("a", "x").write("x", s).read("b", "y").write("y", s)
        result = enumerate_histories(p.build(), get_level("TRUE"), timeout=0.05)
        assert result.timed_out
        assert result.seconds < 5.0


class TestSingleSession:
    def test_sequential_program_has_single_history(self):
        p = ProgramBuilder("seq")
        s = p.session("only")
        s.transaction().write("x", 1)
        s.transaction().read("a", "x")
        result = enumerate_histories(p.build(), get_level("CC"))
        # The read must see the session's own previous write.
        assert len(result.histories) == 1
        assert result.end_states == 1
