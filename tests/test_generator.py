"""The configurable workload generator (repro.apps.generator).

Determinism (same spec+shape+seed ⇒ byte-identical program), knob
effectiveness (zipf skew measurably concentrates accesses, the abort and
read-ratio knobs move their statistics), spec-string parsing, and the
resolver that lets generated workloads stand in for applications
everywhere (record, bench suite, difftest).
"""

import pytest

from repro.apps.generator import (
    PRESETS,
    WorkloadSpec,
    generate_program,
    key_access_counts,
    make_workload,
    parse_spec,
    spec_for,
)
from repro.apps.workloads import (
    APPLICATIONS,
    application_suite,
    client_program,
    resolve_workload,
    workload_names,
)
from repro.lang.ast import Abort, Read, Write


def flatten_ops(program):
    ops = []
    for txns in program.sessions.values():
        for txn in txns:
            ops.extend(txn.body)
    return ops


class TestDeterminism:
    def test_same_seed_same_program(self):
        spec = WorkloadSpec(hot_key_skew=1.0, abort_rate=0.2)
        a = generate_program(spec, sessions=3, txns_per_session=3, seed=11)
        b = generate_program(spec, sessions=3, txns_per_session=3, seed=11)
        assert repr(a.sessions) == repr(b.sessions)
        assert a.variables == b.variables

    def test_different_seed_different_program(self):
        spec = WorkloadSpec()
        a = generate_program(spec, sessions=3, txns_per_session=3, seed=0)
        b = generate_program(spec, sessions=3, txns_per_session=3, seed=1)
        assert repr(a.sessions) != repr(b.sessions)

    def test_knob_change_rerolls(self):
        a = generate_program(WorkloadSpec(), sessions=3, txns_per_session=3, seed=0)
        b = generate_program(
            WorkloadSpec(read_ratio=0.9), sessions=3, txns_per_session=3, seed=0
        )
        assert repr(a.sessions) != repr(b.sessions)


class TestKnobs:
    def test_zipf_skew_concentrates_accesses(self):
        shape = dict(sessions=6, txns_per_session=6, seed=0)
        flat = key_access_counts(generate_program(WorkloadSpec(), **shape))
        hot = key_access_counts(
            generate_program(WorkloadSpec(name="hot", hot_key_skew=2.5), **shape)
        )
        flat_share = flat.get("k0", 0) / sum(flat.values())
        hot_share = hot.get("k0", 0) / sum(hot.values())
        assert hot_share > flat_share + 0.2, (flat_share, hot_share)

    def test_abort_rate_emits_aborts(self):
        none = generate_program(
            WorkloadSpec(), sessions=4, txns_per_session=4, seed=0
        )
        many = generate_program(
            WorkloadSpec(name="aborty", abort_rate=0.9),
            sessions=4,
            txns_per_session=4,
            seed=0,
        )
        assert not any(isinstance(op, Abort) for op in flatten_ops(none))
        aborts = sum(isinstance(op, Abort) for op in flatten_ops(many))
        assert aborts >= 8, aborts

    def test_read_ratio_extremes(self):
        reads_only = generate_program(
            WorkloadSpec(name="r", read_ratio=1.0), sessions=3, txns_per_session=3, seed=0
        )
        writes_only = generate_program(
            WorkloadSpec(name="w", read_ratio=0.0), sessions=3, txns_per_session=3, seed=0
        )
        assert all(
            isinstance(op, Read) for op in flatten_ops(reads_only)
            if isinstance(op, (Read, Write))
        )
        assert all(
            isinstance(op, Write) for op in flatten_ops(writes_only)
            if isinstance(op, (Read, Write))
        )

    def test_txn_length_bounds(self):
        program = generate_program(
            WorkloadSpec(name="len", txn_len_min=3, txn_len_max=3, abort_rate=0.0),
            sessions=3,
            txns_per_session=3,
            seed=0,
        )
        for txns in program.sessions.values():
            for txn in txns:
                assert len(txn.body) == 3, txn

    def test_write_values_are_distinct(self):
        program = generate_program(
            WorkloadSpec(name="w2", read_ratio=0.0), sessions=3, txns_per_session=3, seed=0
        )
        values = [op.expr for op in flatten_ops(program) if isinstance(op, Write)]
        assert len(set(map(repr, values))) == len(values)

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(keys=0)
        with pytest.raises(ValueError):
            WorkloadSpec(read_ratio=1.5)
        with pytest.raises(ValueError):
            WorkloadSpec(txn_len_min=4, txn_len_max=2)
        with pytest.raises(ValueError):
            WorkloadSpec(hot_key_skew=-1)


class TestSpecStrings:
    def test_full_spec_round_trip(self):
        spec = parse_spec("gen:keys=4,skew=2.0,reads=0.8,len=2-5,aborts=0.1,mix=0.5")
        assert spec.keys == 4
        assert spec.hot_key_skew == 2.0
        assert spec.read_ratio == 0.8
        assert (spec.txn_len_min, spec.txn_len_max) == (2, 5)
        assert spec.abort_rate == 0.1
        assert spec.read_session_ratio == 0.5

    def test_single_length(self):
        spec = parse_spec("gen:len=3")
        assert (spec.txn_len_min, spec.txn_len_max) == (3, 3)

    def test_bare_prefix_is_default(self):
        assert parse_spec("gen:").keys == WorkloadSpec().keys

    def test_unknown_knob_rejected(self):
        with pytest.raises(ValueError, match="unknown workload knob"):
            parse_spec("gen:bogus=1")

    def test_bad_value_rejected(self):
        with pytest.raises(ValueError, match="bad value"):
            parse_spec("gen:keys=lots")


class TestResolver:
    def test_presets_resolve(self):
        for name in PRESETS:
            program = client_program(name, 2, 2, 0)
            assert program.name == f"{name}-1"

    def test_spec_strings_resolve(self):
        program = client_program("gen:keys=3,len=1-2", 2, 2, 0)
        assert set(program.variables) >= {"k0", "k1", "k2"}

    def test_applications_still_resolve(self):
        assert resolve_workload("twitter") is APPLICATIONS["twitter"]

    def test_unknown_name_lists_choices(self):
        with pytest.raises(KeyError, match="gen:"):
            resolve_workload("not-a-workload")

    def test_workload_names_covers_both(self):
        names = workload_names()
        assert set(APPLICATIONS) <= set(names)
        assert set(PRESETS) <= set(names)

    def test_applications_table_unchanged(self):
        """The Fig. 14 default suite (and the CI benchmark baselines) are
        keyed off APPLICATIONS — generated workloads must stay opt-in."""
        assert sorted(APPLICATIONS) == [
            "courseware", "shoppingCart", "tpcc", "twitter", "wikipedia",
        ]

    def test_suite_accepts_generated_workloads(self):
        suite = application_suite(2, 2, programs_per_app=2, apps=("gen-hotspot",))
        assert len(suite) == 2
        assert all(p.name.startswith("gen-hotspot") for p in suite)

    def test_make_workload_signature_matches_applications(self):
        make = make_workload(spec_for("gen-uniform"))
        program = make(sessions=2, txns_per_session=2, seed=1, name="n")
        assert program.name == "n"


class TestGeneratedProgramsCheck:
    def test_model_checks_under_new_levels(self):
        from repro.checking.checker import ModelChecker

        program = client_program("gen:keys=3,len=1-2", 2, 2, 3)
        for level in ("CC", "PSI", "BS-3"):
            result = ModelChecker(program, isolation=level).run()
            assert result.stats.outputs >= 1, level
