"""Serial/parallel equivalence of the exploration, and the wire encoding.

The parallel driver decomposes the explore-ce recursion into disjoint
subtrees, so a parallel run must produce the *identical* set of canonical
output histories and identical additive counter totals as the sequential
driver — for any program, level and worker count.  These property tests
pin that down on the paper's example programs, seeded random programs, and
the application workloads, for both explore-ce and explore-ce*.
"""

import pickle
import random

import pytest

from repro.core.history import History
from repro.core.ordered_history import OrderedHistory
from repro.core.wire import (
    history_from_wire,
    history_to_wire,
    ordered_history_from_wire,
    ordered_history_to_wire,
)
from repro.dpor import ParallelExplorer, StepEngine, SwappingExplorer, resolve_workers
from repro.dpor.stats import ExplorationStats
from repro.isolation import get_level

from tests.helpers import PAPER_PROGRAMS, figd1_program, random_history, random_program

#: The counters that must be bit-identical between serial and parallel runs
#: (everything additive; peaks and seconds are scheduling-dependent).
ADDITIVE_COUNTERS = (
    "explore_calls",
    "end_states",
    "outputs",
    "filtered",
    "blocked",
    "swap_candidates",
    "swaps_applied",
    "consistency_checks",
)


def run_serial(program, level, valid=None):
    return SwappingExplorer(
        program, get_level(level), valid_level=get_level(valid) if valid else None
    ).run()


def run_parallel(program, level, valid=None, workers=2, **kwargs):
    return ParallelExplorer(
        program,
        get_level(level),
        valid_level=get_level(valid) if valid else None,
        workers=workers,
        **kwargs,
    ).run()


def assert_equivalent(serial, parallel, context=""):
    assert sorted(serial.histories.keys()) == sorted(parallel.histories.keys()), context
    assert parallel.histories.duplicates == 0, context
    for counter in ADDITIVE_COUNTERS:
        got = getattr(parallel.stats, counter)
        want = getattr(serial.stats, counter)
        assert got == want, f"{context}: {counter} {got} != {want}"


class TestSerialParallelEquivalence:
    @pytest.mark.parametrize("factory", PAPER_PROGRAMS, ids=lambda f: f.__name__)
    @pytest.mark.parametrize("workers", [2, 4])
    def test_explore_ce_paper_programs(self, factory, workers):
        program = factory()
        serial = run_serial(program, "CC")
        parallel = run_parallel(program, "CC", workers=workers)
        assert_equivalent(serial, parallel, f"{program.name}/CC/w{workers}")

    @pytest.mark.parametrize("factory", PAPER_PROGRAMS, ids=lambda f: f.__name__)
    @pytest.mark.parametrize("valid", ["SI", "SER"])
    def test_explore_ce_star_paper_programs(self, factory, valid):
        program = factory()
        serial = run_serial(program, "CC", valid)
        parallel = run_parallel(program, "CC", valid, workers=2)
        assert_equivalent(serial, parallel, f"{program.name}/CC+{valid}")

    @pytest.mark.parametrize("seed", range(8))
    def test_random_programs(self, seed):
        rng = random.Random(seed)
        program = random_program(rng, name=f"random{seed}")
        serial = run_serial(program, "CC")
        parallel = run_parallel(program, "CC", workers=2)
        assert_equivalent(serial, parallel, f"random{seed}")

    def test_application_program_exercises_pool(self):
        # Large enough that the frontier outgrows the seed phase and real
        # worker processes (distinct pids in worker_stats) take subtrees.
        from repro.apps import client_program

        program = client_program("courseware", 3, 2, 3)
        serial = run_serial(program, "CC", "SER")
        explorer = ParallelExplorer(
            program, get_level("CC"), valid_level=get_level("SER"), workers=2
        )
        parallel = explorer.run()
        assert_equivalent(serial, parallel, "courseware-3")
        worker_pids = [pid for pid in parallel.worker_stats if pid != 0]
        assert worker_pids, "exploration never reached the worker pool"

    def test_worker_stats_sum_to_merged_totals(self):
        from repro.apps import client_program

        program = client_program("courseware", 3, 2, 3)
        result = run_parallel(program, "CC", "SER", workers=2)
        for counter in ADDITIVE_COUNTERS:
            total = sum(getattr(s, counter) for s in result.worker_stats.values())
            assert total == getattr(result.stats, counter), counter

    def test_work_sharing_rebalances_small_stacks(self):
        # Tiny budgets force every mechanism: one-tick tasks, immediate
        # splits, frontier ping-pong — totals must still be exact.
        program = figd1_program()
        serial = run_serial(program, "CC")
        parallel = run_parallel(
            program, "CC", workers=2, seed_factor=1, task_ticks=1, split_threshold=2
        )
        assert_equivalent(serial, parallel, "figD1/tiny-budgets")

    def test_tiny_trees_finish_without_forking(self):
        # The seed-phase probe (min_fork_steps) must notice that a paper
        # program's whole tree dies out in a few dozen steps and skip the
        # pool entirely: only the coordinator (key 0) contributes stats.
        program = PAPER_PROGRAMS[1]()  # fig10, the smallest tree
        serial = run_serial(program, "CC")
        explorer = ParallelExplorer(program, get_level("CC"), workers=2)
        parallel = explorer.run()
        assert_equivalent(serial, parallel, "fig10/probe")
        assert list(parallel.worker_stats) == [0]

    def test_min_fork_steps_zero_restores_eager_fanout(self):
        program = figd1_program()
        serial = run_serial(program, "CC")
        explorer = ParallelExplorer(
            program, get_level("CC"), workers=2, seed_factor=1, min_fork_steps=0
        )
        parallel = explorer.run()
        assert_equivalent(serial, parallel, "figD1/eager")
        assert [pid for pid in parallel.worker_stats if pid != 0]

    def test_workers_zero_means_cpu_count(self):
        import os

        assert resolve_workers(0) == (os.cpu_count() or 1)
        assert resolve_workers(3) == 3
        with pytest.raises(ValueError):
            resolve_workers(-1)


class TestTimeoutPropagation:
    def test_parallel_timeout_sets_flag_and_returns_promptly(self):
        import time

        from repro.apps import client_program

        program = client_program("courseware", 3, 3, 3)
        start = time.monotonic()
        result = run_parallel(program, "CC", "SER", workers=2, timeout=0.2)
        wall = time.monotonic() - start
        assert result.stats.timed_out
        # Workers check the deadline every tick, so the overshoot is one
        # step plus pool teardown, not a 32-tick coordinator poll.
        assert wall < 5.0, wall

    def test_serial_timeout_still_reported(self):
        from repro.apps import client_program

        program = client_program("courseware", 3, 3, 3)
        result = SwappingExplorer(
            program,
            get_level("CC"),
            valid_level=get_level("SER"),
            timeout=0.05,
        ).run()
        assert result.stats.timed_out


class TestWireEncoding:
    @pytest.mark.parametrize("seed", range(25))
    def test_history_round_trip(self, seed):
        rng = random.Random(seed)
        history = random_history(rng, allow_pending=True)
        rebuilt = history_from_wire(history_to_wire(history))
        assert rebuilt.canonical_key() == history.canonical_key()
        # RelationMatrix indexing depends on txn insertion order: preserve it.
        assert tuple(rebuilt.txns) == tuple(history.txns)
        assert rebuilt.sessions == history.sessions
        assert rebuilt.wr == history.wr

    @pytest.mark.parametrize("seed", range(10))
    def test_pickle_uses_wire_and_drops_matrix_cache(self, seed):
        rng = random.Random(seed)
        history = random_history(rng)
        history.causal_matrix()  # populate the cache
        clone = pickle.loads(pickle.dumps(history))
        assert clone.canonical_key() == history.canonical_key()
        assert "causal_matrix" not in clone._cache
        # The closure is rebuilt lazily and answers identically.
        for a in history.txns:
            for b in history.txns:
                assert clone.causally_before(a, b) == history.causally_before(a, b)

    def test_ordered_history_round_trip_through_exploration(self):
        program = figd1_program()
        engine = StepEngine(program, get_level("CC"))
        stats = ExplorationStats()
        stack = [engine.initial_item()]
        seen = 0
        while stack and seen < 200:
            kind, oh = stack.pop()
            rebuilt = ordered_history_from_wire(ordered_history_to_wire(oh))
            assert rebuilt.order == oh.order
            assert rebuilt.history.canonical_key() == oh.history.canonical_key()
            rebuilt.validate()
            pushed, _outputs = engine.step(oh, kind, stats)
            stack.extend(pushed)
            seen += 1
        assert seen > 10

    def test_event_pickle_round_trip(self):
        program = figd1_program()
        for event in program.initial_history().events():
            clone = pickle.loads(pickle.dumps(event))
            assert clone == event


class TestStatsMerging:
    def test_add_operator_matches_merge(self):
        a = ExplorationStats(explore_calls=5, outputs=2, peak_stack=10, seconds=1.0)
        b = ExplorationStats(explore_calls=3, outputs=1, peak_stack=4, seconds=0.5, timed_out=True)
        assert a + b == a.merge(b)
        assert sum([a, b], ExplorationStats()) == a.merge(b)

    def test_add_rejects_other_types(self):
        with pytest.raises(TypeError):
            ExplorationStats() + 1
