"""Serial/parallel equivalence of the exploration, and the wire encoding.

The parallel driver decomposes the explore-ce recursion into disjoint
subtrees, so a parallel run must produce the *identical* set of canonical
output histories and identical additive counter totals as the sequential
driver — for any program, level and worker count.  These property tests
pin that down on the paper's example programs, seeded random programs, and
the application workloads, for both explore-ce and explore-ce*.
"""

import pickle
import random

import pytest

from repro.core.bitrel import RelationMatrix
from repro.core.history import History
from repro.core.ordered_history import OrderedHistory
from repro.core.wire import (
    history_from_wire,
    history_to_wire,
    ordered_history_from_wire,
    ordered_history_to_wire,
)
from repro.dpor import ParallelExplorer, StepEngine, SwappingExplorer, resolve_workers
from repro.dpor.stats import ExplorationStats
from repro.isolation import get_level

from tests.helpers import PAPER_PROGRAMS, figd1_program, random_history, random_program

#: The counters that must be bit-identical between serial and parallel runs
#: (everything additive; peaks and seconds are scheduling-dependent).
ADDITIVE_COUNTERS = (
    "explore_calls",
    "end_states",
    "outputs",
    "filtered",
    "blocked",
    "swap_candidates",
    "swaps_applied",
    "consistency_checks",
)


def run_serial(program, level, valid=None):
    return SwappingExplorer(
        program, get_level(level), valid_level=get_level(valid) if valid else None
    ).run()


def run_parallel(program, level, valid=None, workers=2, **kwargs):
    return ParallelExplorer(
        program,
        get_level(level),
        valid_level=get_level(valid) if valid else None,
        workers=workers,
        **kwargs,
    ).run()


def assert_equivalent(serial, parallel, context=""):
    assert sorted(serial.histories.keys()) == sorted(parallel.histories.keys()), context
    assert parallel.histories.duplicates == 0, context
    for counter in ADDITIVE_COUNTERS:
        got = getattr(parallel.stats, counter)
        want = getattr(serial.stats, counter)
        assert got == want, f"{context}: {counter} {got} != {want}"


class TestSerialParallelEquivalence:
    @pytest.mark.parametrize("factory", PAPER_PROGRAMS, ids=lambda f: f.__name__)
    @pytest.mark.parametrize("workers", [2, 4])
    def test_explore_ce_paper_programs(self, factory, workers):
        program = factory()
        serial = run_serial(program, "CC")
        parallel = run_parallel(program, "CC", workers=workers)
        assert_equivalent(serial, parallel, f"{program.name}/CC/w{workers}")

    @pytest.mark.parametrize("factory", PAPER_PROGRAMS, ids=lambda f: f.__name__)
    @pytest.mark.parametrize("valid", ["SI", "SER"])
    def test_explore_ce_star_paper_programs(self, factory, valid):
        program = factory()
        serial = run_serial(program, "CC", valid)
        parallel = run_parallel(program, "CC", valid, workers=2)
        assert_equivalent(serial, parallel, f"{program.name}/CC+{valid}")

    @pytest.mark.parametrize("seed", range(8))
    def test_random_programs(self, seed):
        rng = random.Random(seed)
        program = random_program(rng, name=f"random{seed}")
        serial = run_serial(program, "CC")
        parallel = run_parallel(program, "CC", workers=2)
        assert_equivalent(serial, parallel, f"random{seed}")

    def test_application_program_exercises_pool(self):
        # Large enough that the frontier outgrows the seed phase and real
        # worker processes (distinct pids in worker_stats) take subtrees.
        from repro.apps import client_program

        program = client_program("courseware", 3, 2, 3)
        serial = run_serial(program, "CC", "SER")
        explorer = ParallelExplorer(
            program, get_level("CC"), valid_level=get_level("SER"), workers=2
        )
        parallel = explorer.run()
        assert_equivalent(serial, parallel, "courseware-3")
        worker_pids = [pid for pid in parallel.worker_stats if pid != 0]
        assert worker_pids, "exploration never reached the worker pool"

    def test_worker_stats_sum_to_merged_totals(self):
        from repro.apps import client_program

        program = client_program("courseware", 3, 2, 3)
        result = run_parallel(program, "CC", "SER", workers=2)
        for counter in ADDITIVE_COUNTERS:
            total = sum(getattr(s, counter) for s in result.worker_stats.values())
            assert total == getattr(result.stats, counter), counter

    def test_work_sharing_rebalances_small_stacks(self):
        # Tiny budgets force every mechanism: one-tick tasks, immediate
        # splits, frontier ping-pong — totals must still be exact.
        program = figd1_program()
        serial = run_serial(program, "CC")
        parallel = run_parallel(
            program, "CC", workers=2, seed_factor=1, task_ticks=1, split_threshold=2
        )
        assert_equivalent(serial, parallel, "figD1/tiny-budgets")

    def test_tiny_trees_finish_without_forking(self):
        # The seed-phase probe (min_fork_steps) must notice that a paper
        # program's whole tree dies out in a few dozen steps and skip the
        # pool entirely: only the coordinator (key 0) contributes stats.
        program = PAPER_PROGRAMS[1]()  # fig10, the smallest tree
        serial = run_serial(program, "CC")
        explorer = ParallelExplorer(program, get_level("CC"), workers=2)
        parallel = explorer.run()
        assert_equivalent(serial, parallel, "fig10/probe")
        assert list(parallel.worker_stats) == [0]

    def test_min_fork_steps_zero_restores_eager_fanout(self):
        program = figd1_program()
        serial = run_serial(program, "CC")
        explorer = ParallelExplorer(
            program, get_level("CC"), workers=2, seed_factor=1, min_fork_steps=0
        )
        parallel = explorer.run()
        assert_equivalent(serial, parallel, "figD1/eager")
        assert [pid for pid in parallel.worker_stats if pid != 0]

    def test_workers_zero_means_cpu_count(self):
        import os

        assert resolve_workers(0) == (os.cpu_count() or 1)
        assert resolve_workers(3) == 3
        with pytest.raises(ValueError):
            resolve_workers(-1)


class TestTimeoutPropagation:
    def test_parallel_timeout_sets_flag_and_returns_promptly(self):
        import time

        from repro.apps import client_program

        program = client_program("courseware", 3, 3, 3)
        start = time.monotonic()
        result = run_parallel(program, "CC", "SER", workers=2, timeout=0.2)
        wall = time.monotonic() - start
        assert result.stats.timed_out
        # Workers check the deadline every tick, so the overshoot is one
        # step plus pool teardown, not a 32-tick coordinator poll.
        assert wall < 5.0, wall

    def test_serial_timeout_still_reported(self):
        from repro.apps import client_program

        program = client_program("courseware", 3, 3, 3)
        result = SwappingExplorer(
            program,
            get_level("CC"),
            valid_level=get_level("SER"),
            timeout=0.05,
        ).run()
        assert result.stats.timed_out


class TestWireEncoding:
    @pytest.mark.parametrize("seed", range(25))
    def test_history_round_trip(self, seed):
        rng = random.Random(seed)
        history = random_history(rng, allow_pending=True)
        rebuilt = history_from_wire(history_to_wire(history))
        assert rebuilt.canonical_key() == history.canonical_key()
        # RelationMatrix indexing depends on txn insertion order: preserve it.
        assert tuple(rebuilt.txns) == tuple(history.txns)
        assert rebuilt.sessions == history.sessions
        assert rebuilt.wr == history.wr

    @pytest.mark.parametrize("seed", range(10))
    def test_pickle_uses_wire_and_ships_matrix_cache(self, seed):
        """A cached causal closure survives the wire bit-for-bit.

        The closure is a fixpoint the receiver would otherwise recompute
        on its first causality query; the wire ships the packed rows so a
        decoded work item is as cheap to step as the original.  Restoring
        must not count as a matrix build (``full_builds``), and the
        restored matrix must answer every causality query identically to
        one rebuilt from scratch.
        """
        rng = random.Random(seed)
        history = random_history(rng)
        history.causal_matrix()  # populate the cache
        clone = pickle.loads(pickle.dumps(history))
        assert clone.canonical_key() == history.canonical_key()
        builds_before = RelationMatrix.full_builds
        restored = clone.cached_causal_matrix()
        assert restored is not None
        assert RelationMatrix.full_builds == builds_before
        assert restored.closure_rows() == history.causal_matrix().closure_rows()
        for a in history.txns:
            for b in history.txns:
                assert clone.causally_before(a, b) == history.causally_before(a, b)
        assert RelationMatrix.full_builds == builds_before

    @pytest.mark.parametrize("seed", range(10))
    def test_wire_without_cached_matrix_rebuilds_lazily(self, seed):
        rng = random.Random(seed)
        history = random_history(rng)
        history._cache.pop("causal_matrix", None)  # force the closure-less path
        clone = pickle.loads(pickle.dumps(history))
        assert clone.cached_causal_matrix() is None
        for a in history.txns:
            for b in history.txns:
                assert clone.causally_before(a, b) == history.causally_before(a, b)

    def test_ordered_history_round_trip_through_exploration(self):
        program = figd1_program()
        engine = StepEngine(program, get_level("CC"))
        stats = ExplorationStats()
        stack = [engine.initial_item()]
        seen = 0
        while stack and seen < 200:
            kind, oh = stack.pop()
            rebuilt = ordered_history_from_wire(ordered_history_to_wire(oh))
            assert rebuilt.order == oh.order
            assert rebuilt.history.canonical_key() == oh.history.canonical_key()
            rebuilt.validate()
            pushed, _outputs = engine.step(oh, kind, stats)
            stack.extend(pushed)
            seen += 1
        assert seen > 10

    def test_event_pickle_round_trip(self):
        program = figd1_program()
        for event in program.initial_history().events():
            clone = pickle.loads(pickle.dumps(event))
            assert clone == event


class TestStatsMerging:
    def test_add_operator_matches_merge(self):
        a = ExplorationStats(explore_calls=5, outputs=2, peak_stack=10, seconds=1.0)
        b = ExplorationStats(explore_calls=3, outputs=1, peak_stack=4, seconds=0.5, timed_out=True)
        assert a + b == a.merge(b)
        assert sum([a, b], ExplorationStats()) == a.merge(b)

    def test_add_rejects_other_types(self):
        with pytest.raises(TypeError):
            ExplorationStats() + 1


class TestResolveWorkers:
    def test_identity_above_zero(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(2) == 2
        assert resolve_workers(64) == 64

    def test_zero_means_cpu_count_even_when_unknown(self, monkeypatch):
        import os as _os

        monkeypatch.setattr(_os, "cpu_count", lambda: None)
        assert resolve_workers(0) == 1

    def test_negative_rejected_with_value(self):
        with pytest.raises(ValueError, match="-7"):
            resolve_workers(-7)


class TestPoolResilience:
    """Crash recovery, the batched protocol, and alternate start methods.

    Every scenario must end in the same place: the identical canonical
    history set and identical additive counters as the serial run.
    """

    def _courseware(self):
        from repro.apps import client_program

        return client_program("courseware", 3, 2, 3)

    def test_worker_killed_mid_task_recovers_exactly(self):
        # Chaos hook: each worker os._exit(17)s after serving two tasks,
        # *before* committing the second one.  The coordinator must re-queue
        # the inflight seeds and discard the staged outputs — the final
        # history set and counters stay bit-identical to serial.
        program = self._courseware()
        serial = run_serial(program, "CC", "SER")
        explorer = ParallelExplorer(
            program,
            get_level("CC"),
            valid_level=get_level("SER"),
            workers=2,
            task_ticks=64,
            task_budget=0.005,
            _chaos_kill_after=2,
        )
        parallel = explorer.run()
        assert_equivalent(serial, parallel, "courseware/chaos-kill-2")
        assert explorer.pool.crashes > 0, "chaos hook never fired"

    def test_whole_pool_loss_finishes_serially_and_exactly(self):
        # A single chaos-armed worker with no respawn budget dies on its
        # first task; the coordinator must notice the empty pool and drain
        # the entire frontier itself, exactly.  (The explorer only ever
        # arms the first worker, so this scenario is pinned at the pool
        # layer directly.)
        from repro.dpor.pool import PersistentPool

        program = figd1_program()
        engine = StepEngine(program, get_level("CC"))
        items = [engine.initial_item()]

        want_stats = ExplorationStats()
        want_outputs = []
        engine.drain(list(items), want_stats, want_outputs.append)

        pool = PersistentPool(
            engine,
            workers=1,
            max_respawns=0,
            chaos_exit_after=1,
            task_ticks=4,
            batch_size=1,
        )
        pool.start()
        got_outputs = []
        worker_stats = {}
        coordinator_stats = ExplorationStats()
        try:
            timed_out = pool.explore(
                list(items), None, True, got_outputs.append, worker_stats, coordinator_stats
            )
        finally:
            pool.shutdown()
        assert not timed_out
        assert pool.crashes == 1 and pool.respawns == 0
        total = sum(worker_stats.values(), coordinator_stats)
        for counter in ADDITIVE_COUNTERS:
            assert getattr(total, counter) == getattr(want_stats, counter), counter
        assert sorted(h.canonical_key() for h in got_outputs) == sorted(
            h.canonical_key() for h in want_outputs
        )
        assert coordinator_stats.explore_calls > 0, "serial drain never ran"

    def test_batched_protocol_equivalence(self):
        # Pin the batch size and shrink the time slice so multi-seed frames,
        # remainder returns, and mid-task rebalancing all actually happen.
        program = self._courseware()
        serial = run_serial(program, "CC", "SER")
        explorer = ParallelExplorer(
            program,
            get_level("CC"),
            valid_level=get_level("SER"),
            workers=2,
            batch_size=4,
            task_budget=0.001,
            task_ticks=32,
        )
        parallel = explorer.run()
        assert_equivalent(serial, parallel, "courseware/batch4")
        assert explorer.pool.controller.batch == 4, "fixed batch size drifted"
        assert explorer.pool.tasks_dispatched > 1, "batched path never exercised"

    def test_spawn_start_method_equivalence(self):
        import multiprocessing

        if "spawn" not in multiprocessing.get_all_start_methods():
            pytest.skip("platform has no spawn start method")
        program = figd1_program()  # module-level transactions: spawn-picklable
        serial = run_serial(program, "CC")
        explorer = ParallelExplorer(
            program,
            get_level("CC"),
            workers=2,
            min_fork_steps=0,
            seed_factor=1,
            start_method="spawn",
        )
        parallel = explorer.run()
        assert_equivalent(serial, parallel, "figD1/spawn")
        assert [pid for pid in parallel.worker_stats if pid != 0]


class TestPoolUnavailable:
    """--workers > 1 where no pool can start must fail loudly and early."""

    def test_unpicklable_engine_on_spawn_raises_at_construction(self):
        # The courseware app builds transactions from Python closures, which
        # spawn cannot ship.  The error must fire when the explorer is
        # *constructed* — not hang or silently fall back to serial.
        from repro.apps import client_program
        from repro.dpor.pool import PoolUnavailableError

        program = client_program("courseware", 3, 2, 3)
        with pytest.raises(PoolUnavailableError, match="workers=1"):
            ParallelExplorer(
                program, get_level("CC"), workers=2, start_method="spawn"
            )

    def test_no_start_method_at_all_raises(self, monkeypatch):
        import multiprocessing

        from repro.dpor.pool import PoolUnavailableError

        monkeypatch.setattr(multiprocessing, "get_all_start_methods", lambda: [])
        with pytest.raises(PoolUnavailableError, match="workers=1"):
            ParallelExplorer(figd1_program(), get_level("CC"), workers=2)

    def test_model_checker_surfaces_pool_error(self, monkeypatch):
        import multiprocessing

        from repro.checking import ModelChecker
        from repro.dpor.pool import PoolUnavailableError

        monkeypatch.setattr(multiprocessing, "get_all_start_methods", lambda: [])
        checker = ModelChecker(figd1_program(), isolation="CC", workers=2)
        with pytest.raises(PoolUnavailableError):
            checker.run()

    def test_cli_check_exits_with_clear_error(self, monkeypatch, tmp_path, capsys):
        import multiprocessing

        from repro.cli import main

        monkeypatch.setattr(multiprocessing, "get_all_start_methods", lambda: [])
        source = tmp_path / "prog.txt"
        source.write_text(
            "session a { transaction { write(x, 1); } }\n"
            "session b { transaction { v := read(x); } }\n"
        )
        with pytest.raises(SystemExit) as exc:
            main(["check", str(source), "--workers", "2"])
        assert "error:" in str(exc.value)
        assert "workers=1" in str(exc.value)
