"""GC-equivalence property tests for the streaming monitor.

The claim the monitor stands on: a :class:`repro.monitor.Monitor` with the
*tightest possible* GC cadence (``window=1, gc_every=1, evict_batch=1``)
produces, on **every prefix** of a stream, exactly the verdict the
unbounded :class:`repro.checking.online.OnlineChecker` produces — and
identifies the same first violating event.  The corpus deliberately mixes
clean fuzzed traces, high-abort traces (exercising fired-edge retraction
after compaction), application workloads, and the per-level gadget
anomalies (exercising the violated-monitor path).

``assume-fresh`` mode has a weaker contract — equivalence *while the
freshness assumption holds*, fail-stop (:class:`MonitorStaleReadError`)
the moment it does not — tested separately on generator streams.
"""

import pytest

from repro.apps.workloads import record_workload_trace
from repro.checking.online import OnlineChecker
from repro.monitor import Monitor, MonitorConfig, MonitorStaleReadError
from repro.trace import Trace, fuzz_history, fuzz_stream, gadget_traces

LEVELS = ("RC", "RA", "CC", "SI", "SER")

#: Tightest cadence: collect after every event, evict every evictable
#: transaction immediately, shield only the single most recent completer.
TIGHT = dict(window=1, gc_every=1, evict_batch=1)


def _corpus():
    for seed in range(8):
        yield f"fuzz{seed}", Trace.from_history(fuzz_history(seed))
    for seed in range(6):
        yield f"aborty{seed}", Trace.from_history(
            fuzz_history(100 + seed, abort_rate=0.5)
        )
    for name, trace in gadget_traces().items():
        yield name, trace


CORPUS = list(_corpus())


def assert_monitor_equals_unbounded(trace, level, mode="keep", window=1):
    """Feed both checkers event by event and compare every prefix."""
    unbounded = OnlineChecker.from_trace(trace, levels=(level,))
    monitor = Monitor(
        trace.header,
        MonitorConfig(
            isolation=level,
            window=window,
            gc_every=1,
            evict_batch=1,
            mode=mode,
        ),
    )
    for i, event in enumerate(trace.events):
        expected = unbounded.feed(event)
        got = monitor.feed(event)
        assert got.verdicts[level] == expected.verdicts[level], (
            f"{trace.header.name}/{level}: prefix {i} verdict diverged "
            f"({got.verdicts} != {expected.verdicts}) on {event}"
        )
        assert got.newly_violated == expected.newly_violated, (
            f"{trace.header.name}/{level}: prefix {i} newly_violated diverged"
        )
    first = unbounded.first_violation(level)
    got_first = monitor.first_violation()
    if first is None:
        assert got_first is None
    else:
        assert got_first is not None
        assert got_first.index == first.index, (
            f"{trace.header.name}/{level}: first violation at "
            f"#{got_first.index}, unbounded says #{first.index}"
        )
        assert got_first.event == first.event
    assert monitor.ok == all(v for v in unbounded.verdicts.values())
    return monitor


class TestKeepModeEquivalence:
    """Exact mode: every prefix, every level, first-violation identity."""

    @pytest.mark.parametrize("level", LEVELS)
    @pytest.mark.parametrize("name", [name for name, _ in CORPUS])
    def test_every_prefix_matches(self, name, level):
        trace = dict(CORPUS)[name]
        assert_monitor_equals_unbounded(trace, level)

    @pytest.mark.parametrize("app", ["twitter", "shoppingCart"])
    @pytest.mark.parametrize("level", ("RC", "CC", "SER"))
    def test_app_workloads(self, app, level):
        trace = record_workload_trace(app, sessions=2, txns_per_session=2, seed=1)
        assert_monitor_equals_unbounded(trace, level)

    def test_gc_actually_evicts(self):
        """The equivalence above is vacuous if nothing is ever evicted."""
        evicted = 0
        for name, trace in CORPUS:
            for level in LEVELS:
                monitor = assert_monitor_equals_unbounded(trace, level)
                evicted += monitor.checker.evicted_count
        assert evicted > 0, "tight-cadence keep mode never evicted anything"


class TestAssumeFreshEquivalence:
    """Bounded mode: equal verdicts while the assumption holds; fail-stop after."""

    def test_clean_streams_match_with_heavy_aborts(self):
        evicted = 0
        for seed in range(4):
            header, events = fuzz_stream(
                seed=seed, events=2000, sessions=6, staleness=3, abort_rate=0.25
            )
            unbounded = OnlineChecker(
                header.variables, initial=header.initial,
                levels=("RC",), record_steps=False,
            )
            monitor = Monitor(
                header, MonitorConfig(isolation="RC", mode="assume-fresh", **TIGHT)
            )
            for event in events:
                expected = unbounded.feed(event)
                got = monitor.feed(event)
                assert got.verdicts["RC"] == expected.verdicts["RC"]
                assert got.newly_violated == expected.newly_violated
            evicted += monitor.checker.evicted_count
        assert evicted > 0, "assume-fresh never evicted on a clean stream"

    def test_live_window_is_bounded(self):
        header, events = fuzz_stream(seed=9, events=5000, sessions=6, staleness=3)
        monitor = Monitor(
            header,
            MonitorConfig(
                isolation="RC", window=8, gc_every=16, evict_batch=8,
                mode="assume-fresh",
            ),
        )
        for event in events:
            monitor.feed(event)
        assert monitor.ok
        # The window must not scale with the stream: thousands of committed
        # transactions went through, only a constant-ish set stays live.
        assert monitor.peak_live < 100

    def test_stale_read_fails_stop(self):
        """A read naming a writer older than the window raises, never lies."""
        with pytest.raises(MonitorStaleReadError):
            for attempt in range(20):
                header, events = fuzz_stream(
                    seed=attempt, events=5000, sessions=6,
                    staleness=40, stale_read_rate=0.3,
                )
                monitor = Monitor(
                    header,
                    MonitorConfig(
                        isolation="RC", window=2, gc_every=4, evict_batch=1,
                        mode="assume-fresh",
                    ),
                )
                for event in events:
                    monitor.feed(event)

    def test_assume_fresh_rejected_for_non_static_levels(self):
        for level in ("RA", "CC", "SI", "SER"):
            with pytest.raises(ValueError):
                MonitorConfig(isolation=level, mode="assume-fresh")


class TestMonitorReport:
    def test_report_on_violating_gadget(self):
        trace = dict(CORPUS)["rc_violation"]
        monitor = Monitor(trace.header, MonitorConfig(isolation="RC", **TIGHT))
        report = monitor.run(trace.events)
        assert not report.ok
        assert report.exit_code == 1
        assert report.first_violation is not None
        assert report.stats.violated

    def test_report_on_clean_stream(self):
        header, events = fuzz_stream(seed=3, events=500, sessions=4)
        monitor = Monitor(
            header, MonitorConfig(isolation="RC", mode="assume-fresh", **TIGHT)
        )
        report = monitor.run(events)
        assert report.ok
        assert report.exit_code == 0
        assert report.first_violation is None
        assert report.stats.events == 500
