"""Unit tests for canonical forms and HistorySet (repro.core.canonical)."""

from repro.core import HistoryBuilder, HistorySet, canonical_key, format_history


def two_writer_history(read_from_first: bool):
    b = HistoryBuilder(["x"])
    w1 = b.txn("a")
    w1.write("x", 1)
    w1.commit()
    w2 = b.txn("b")
    w2.write("x", 2)
    w2.commit()
    r = b.txn("c")
    r.read("x", source=w1 if read_from_first else w2)
    r.commit()
    return b.build()


class TestCanonicalKey:
    def test_equal_histories_have_equal_keys(self):
        assert canonical_key(two_writer_history(True)) == canonical_key(two_writer_history(True))

    def test_different_wr_changes_key(self):
        assert canonical_key(two_writer_history(True)) != canonical_key(two_writer_history(False))

    def test_key_is_hashable(self):
        hash(canonical_key(two_writer_history(True)))


class TestHistorySet:
    def test_dedupes_read_from_equivalent(self):
        s = HistorySet()
        assert s.add(two_writer_history(True)) is True
        assert s.add(two_writer_history(True)) is False
        assert len(s) == 1
        assert s.total_added == 2
        assert s.duplicates == 1

    def test_distinct_classes_kept(self):
        s = HistorySet()
        s.add(two_writer_history(True))
        s.add(two_writer_history(False))
        assert len(s) == 2 and s.duplicates == 0
        assert s.duplicate_classes() == []

    def test_contains(self):
        s = HistorySet()
        s.add(two_writer_history(True))
        assert two_writer_history(True) in s
        assert two_writer_history(False) not in s

    def test_symmetric_difference(self):
        left, right = HistorySet(), HistorySet()
        left.add(two_writer_history(True))
        right.add(two_writer_history(True))
        right.add(two_writer_history(False))
        only_left, only_right = left.symmetric_difference(right)
        assert not only_left and len(only_right) == 1

    def test_duplicate_classes_reported(self):
        s = HistorySet()
        s.add(two_writer_history(True))
        s.add(two_writer_history(True))
        assert len(s.duplicate_classes()) == 1


class TestFormatHistory:
    def test_mentions_sessions_reads_and_writes(self):
        text = format_history(two_writer_history(True))
        assert "session a" in text and "session c" in text
        assert "write(x, 1)" in text
        assert "read(x) = 1" in text
        assert "<- a/0" in text, "reads are annotated with their wr source"
