"""Unit tests for ComputeReorderings and Swap (repro.dpor.swaps)."""

from repro.core import is_prefix
from repro.core.events import EventType, TxnId
from repro.core.ordered_history import OrderedHistory
from repro.dpor.swaps import compute_reorderings, doomed_events, swap
from repro.isolation import get_level
from repro.semantics import apply_action, next_action, valid_writes

from tests.helpers import fig10_program, fig12_program

CC = get_level("CC")


def run_next(program, oh, pick=0):
    """Apply one Next step, taking the pick-th valid write for reads."""
    action = next_action(program, oh.history)
    assert action is not None
    if action.is_external_read:
        writer, _ = valid_writes(oh.history, action, CC)[pick]
        return apply_action(oh, action, writer)
    return apply_action(oh, action)


def drive_all(program, picks=()):
    """Drive Next to completion; ``picks`` supplies read choices in order."""
    oh = OrderedHistory.initial(program.initial_history())
    picks = list(picks)
    while next_action(program, oh.history) is not None:
        action = next_action(program, oh.history)
        pick = picks.pop(0) if (action.is_external_read and picks) else 0
        oh = run_next(program, oh, pick)
    return oh


class TestComputeReorderings:
    def test_empty_unless_last_event_is_commit(self):
        p = fig10_program()
        oh = OrderedHistory.initial(p.initial_history())
        oh = run_next(p, oh)  # begin reader
        assert compute_reorderings(oh) == []
        oh = run_next(p, oh)  # read x (reads from init)
        assert compute_reorderings(oh) == []

    def test_pairs_for_last_committed_writer(self):
        """After the writer commits, both reader reads are swap candidates."""
        p = fig10_program()
        oh = drive_all(p)  # reader first (oracle order), then writer
        assert oh.last_event().type is EventType.COMMIT
        pairs = compute_reorderings(oh)
        writer = TxnId("writer", 0)
        assert {t for _, t in pairs} == {writer}
        read_vars = sorted(oh.history.event(r).var for r, _ in pairs)
        assert read_vars == ["x", "y"]

    def test_causally_related_transactions_not_swapped(self):
        """A read that already reads from the committing txn is not a pair."""
        p = fig12_program()
        # Drive far enough that r1 reads from w1, then w2 commits last.
        oh = drive_all(p, picks=[1, 0])  # r1 reads w1, r2 reads init
        pairs = compute_reorderings(oh)
        for read, target in pairs:
            assert not oh.history.causally_before_eq(read.txn, target)

    def test_aborted_target_has_no_pairs(self):
        from repro.lang import L, ProgramBuilder, abort

        p = ProgramBuilder("abt")
        p.session("r").transaction().read("a", "x")
        t = p.session("w").transaction()
        t.read("b", "x").write("x", 5).abort()
        prog = p.build()
        oh = drive_all(prog)
        # Last completed transaction aborted: no visible writes, no swaps.
        assert oh.history.txns[TxnId("w", 0)].is_aborted
        assert compute_reorderings(oh) == []

    def test_pairs_sorted_by_read_position(self):
        p = fig10_program()
        oh = drive_all(p)
        pairs = compute_reorderings(oh)
        indexes = [oh.index(r) for r, _ in pairs]
        assert indexes == sorted(indexes)


class TestSwap:
    def swap_first_pair(self, program, picks=()):
        oh = drive_all(program, picks)
        pairs = compute_reorderings(oh)
        assert pairs, "expected at least one reordering"
        read, target = pairs[0]
        return oh, read, target, swap(oh, read, target)

    def test_swapped_read_reads_from_target(self):
        p = fig10_program()
        oh, read, target, swapped = self.swap_first_pair(p)
        assert swapped.history.wr[read] == target
        value = swapped.history.event(read).value
        assert value == swapped.history.visible_write_value(target, "x")

    def test_result_without_read_is_prefix_of_original(self):
        """Condition (2) of §4: h' minus the re-ordered read prefixes h."""
        p = fig10_program()
        oh, read, target, swapped = self.swap_first_pair(p)
        pruned = swapped.history.remove_events({read})
        assert is_prefix(pruned, oh.history)

    def test_reader_transaction_moves_to_end(self):
        p = fig10_program()
        oh, read, target, swapped = self.swap_first_pair(p)
        tail = [e.txn for e in swapped.order[-len(swapped.history.txns[read.txn].events):]]
        assert set(tail) == {read.txn}
        assert swapped.order[-1] == read

    def test_single_pending_transaction_after_swap(self):
        p = fig10_program()
        oh, read, target, swapped = self.swap_first_pair(p)
        pending = swapped.history.pending_transactions()
        assert [log.tid for log in pending] == [read.txn]
        swapped.validate()

    def test_target_causal_past_retained(self):
        p = fig12_program()
        oh, read, target, swapped = self.swap_first_pair(p)
        assert target in swapped.history.txns
        for tid in swapped.history.txns:
            log = swapped.history.txns[tid]
            if tid != read.txn:
                assert log.is_complete

    def test_doomed_events_strict_vs_inclusive(self):
        p = fig10_program()
        oh = drive_all(p)
        pairs = compute_reorderings(oh)
        read, target = pairs[0]
        strict = doomed_events(oh, read, target, strict=True)
        inclusive = doomed_events(oh, read, target, strict=False)
        assert read not in strict
        assert read in inclusive
        assert strict | {read} == inclusive

    def test_events_after_read_outside_causal_past_deleted(self):
        p = fig10_program()
        oh, read, target, swapped = self.swap_first_pair(p)
        for eid in oh.order:
            if oh.before(read, eid) and not oh.history.causally_before_eq(eid.txn, target):
                assert not swapped.history.has_event(eid) or eid.txn == read.txn
