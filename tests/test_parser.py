"""Unit tests for the concrete-syntax parser (repro.lang.parser)."""

import pytest

from repro.core.events import TxnId
from repro.lang import Program
from repro.lang.ast import Abort, Assign, If, Read, Write
from repro.lang.parser import ParseError, parse_program, parse_transaction


TRANSFER = """
// two bank sessions
session alice {
  transaction deposit {
    a := read(acct);
    write(acct, a + 100);
  }
}
session bob {
  transaction audit {
    b := read(acct);
    if (b < 0) { abort; } else { ok := 1; }
  }
}
"""


class TestParseProgram:
    def test_structure(self):
        program = parse_program(TRANSFER, name="transfer")
        assert isinstance(program, Program)
        assert list(program.sessions) == ["alice", "bob"]
        assert program.transaction(TxnId("alice", 0)).name == "deposit"
        assert program.variables == ("acct",)

    def test_instruction_kinds(self):
        program = parse_program(TRANSFER)
        deposit = program.transaction(TxnId("alice", 0)).body
        assert isinstance(deposit[0], Read) and deposit[0].target == "a"
        assert isinstance(deposit[1], Write) and deposit[1].var == "acct"
        audit = program.transaction(TxnId("bob", 0)).body
        assert isinstance(audit[1], If)
        assert isinstance(audit[1].then[0], Abort)
        assert isinstance(audit[1].orelse[0], Assign)

    def test_expression_evaluation(self):
        program = parse_program(TRANSFER)
        write = program.transaction(TxnId("alice", 0)).body[1]
        assert write.expr.evaluate({"a": 1}) == 101

    def test_unnamed_transactions_get_defaults(self):
        program = parse_program("session s { transaction { write(x, 1); } }")
        assert program.transaction(TxnId("s", 0)).name == "txn0"

    def test_parsed_program_is_checkable(self):
        from repro.dpor import explore_ce

        text = """
        session w1 { transaction { write(x, 2); } }
        session r1 { transaction { a := read(x); } }
        """
        result = explore_ce(parse_program(text), "CC")
        assert result.stats.outputs == 2  # read from init or from w1

    def test_comments_and_whitespace(self):
        program = parse_program(
            "session s {\n// comment\n transaction {\n  write(x, 1); // trailing\n } }"
        )
        assert program.session_length("s") == 1


class TestExpressions:
    def run_expr(self, source, env):
        txn = parse_transaction(f"t := {source};")
        return txn.body[0].expr.evaluate(env)

    def test_precedence(self):
        assert self.run_expr("1 + 2 * 3", {}) == 7
        assert self.run_expr("(1 + 2) * 3", {}) == 9

    def test_comparisons_and_logic(self):
        assert self.run_expr("a == 1 && b != 2", {"a": 1, "b": 3}) is True
        assert self.run_expr("a < 1 || a >= 5", {"a": 7}) is True
        assert self.run_expr("!(a > 0)", {"a": 1}) is False

    def test_subtraction_chain(self):
        assert self.run_expr("10 - 2 - 3", {}) == 5


class TestErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "",  # no sessions
            "session s { }",  # no transactions
            "session s { transaction { a := read(); } }",  # missing var
            "session s { transaction { write(x 1); } }",  # missing comma
            "session s { transaction { abort } }",  # missing semicolon
            "session s { transaction { a := ; } }",  # missing expression
            "session s { transaction { read := read(x); } }",  # keyword target
        ],
    )
    def test_syntax_errors(self, source):
        with pytest.raises(ParseError):
            parse_program(source)

    def test_duplicate_sessions_rejected(self):
        text = "session s { transaction { write(x,1); } } session s { transaction { write(x,2); } }"
        with pytest.raises(ParseError):
            parse_program(text)

    def test_error_carries_location(self):
        try:
            parse_program("session s {\n transaction { @ } }")
        except ParseError as err:
            assert err.line == 2
        else:
            pytest.fail("expected ParseError")


class TestParseTransaction:
    def test_bare_body(self):
        txn = parse_transaction("a := read(x); write(y, a);", name="copy")
        assert txn.name == "copy"
        assert len(txn.body) == 2

    def test_braced_body(self):
        txn = parse_transaction("{ abort; }")
        assert isinstance(txn.body[0], Abort)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_transaction("{ abort; } extra")
