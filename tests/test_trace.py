"""Tests for the portable JSONL trace format (repro.trace).

The load-bearing property is the round-trip guarantee:
``deserialize(serialize(h)) == h`` up to read-from equivalence, on
executor-generated, fuzzed and application-workload histories — plus the
schema validation that keeps hand-written/foreign traces honest.
"""

import json
import random

import pytest

from helpers import PAPER_PROGRAMS, random_history
from repro.core import HistoryBuilder, from_jsonable, to_jsonable
from repro.core.events import INIT_TXN, TxnId
from repro.dpor import explore_ce
from repro.isolation import get_level
from repro.trace import (
    TRACE_VERSION,
    Trace,
    TraceEvent,
    TraceFormatError,
    TraceHeader,
    adversarial_corpus,
    fuzz_history,
    fuzz_traces,
    gadget_histories,
)

LEVELS = ("RC", "RA", "CC", "SI", "SER")


def assert_round_trip(history, name="t"):
    trace = Trace.from_history(history, name=name)
    text = trace.dumps()
    loaded = Trace.loads(text)
    assert loaded == trace, "loads(dumps(t)) must be the identity on traces"
    replayed = loaded.to_history()
    assert replayed.canonical_key() == history.canonical_key()
    assert replayed.sessions == history.sessions
    assert replayed.wr == history.wr
    return trace


class TestRoundTrip:
    @pytest.mark.parametrize("make_program", PAPER_PROGRAMS, ids=lambda f: f.__name__)
    def test_executor_generated_histories(self, make_program):
        program = make_program()
        result = explore_ce(program, get_level("CC"))
        for history in result.histories:
            assert_round_trip(history, name=program.name)

    def test_ordered_history_uses_execution_order(self):
        program = PAPER_PROGRAMS[1]()  # fig10: reader vs writer
        result = explore_ce(program, get_level("CC"))
        history = next(iter(result.histories))
        from repro.core import OrderedHistory

        order = [e.eid for tid in history.txns for e in history.txns[tid].events]
        ordered = OrderedHistory(history, order)
        trace = Trace.from_history(ordered, name="ordered")
        non_init = [eid for eid in order if eid.txn != INIT_TXN]
        got = [(e.session, e.txn) for e in trace.events]
        assert got == [(eid.txn.session, eid.txn.index) for eid in non_init]
        assert trace.to_history().canonical_key() == history.canonical_key()

    @pytest.mark.parametrize("seed", range(25))
    def test_fuzzed_histories(self, seed):
        assert_round_trip(fuzz_history(seed, abort_rate=0.2), name=f"fuzz{seed}")

    @pytest.mark.parametrize("seed", range(10))
    def test_random_histories_with_pending(self, seed):
        history = random_history(random.Random(seed), allow_pending=True)
        assert_round_trip(history, name=f"rand{seed}")

    def test_container_values_round_trip(self):
        b = HistoryBuilder(["ids", "pair"], initial_value=frozenset())
        t = b.txn("s")
        t.write("ids", frozenset({1, "two", (3, 4)}))
        t.write("pair", (1, ("nested", frozenset({5}))))
        t.commit()
        r = b.txn("s2")
        r.read("ids", source=t)
        r.commit()
        assert_round_trip(b.build(auto_commit=False), name="containers")

    def test_dumps_is_deterministic(self):
        h1 = fuzz_history(3)
        h2 = fuzz_history(3)
        assert Trace.from_history(h1).dumps() == Trace.from_history(h2).dumps()


class TestValueCodec:
    @pytest.mark.parametrize(
        "value",
        [None, True, 0, -7, 3.5, "s", (), (1, 2), frozenset(), frozenset({1, (2, "x")})],
    )
    def test_identity(self, value):
        assert from_jsonable(to_jsonable(value)) == value

    def test_rejects_unencodable(self):
        with pytest.raises(ValueError):
            to_jsonable(object())

    def test_rejects_unknown_markers(self):
        with pytest.raises(ValueError):
            from_jsonable({"$mystery": []})
        with pytest.raises(ValueError):
            from_jsonable([1, 2])


class TestSchemaValidation:
    def test_empty_file_rejected(self):
        with pytest.raises(TraceFormatError, match="no header"):
            Trace.loads("")

    def test_missing_header_rejected(self):
        line = json.dumps({"type": "begin", "session": "s", "txn": 0})
        with pytest.raises(TraceFormatError, match="header"):
            Trace.loads(line)

    def test_newer_version_rejected(self):
        header = TraceHeader(variables=("x",)).to_json_obj()
        header["version"] = TRACE_VERSION + 1
        with pytest.raises(TraceFormatError, match="newer"):
            Trace.loads(json.dumps(header))

    def test_unknown_optional_keys_tolerated(self):
        """Versioning rule: same-version additions must not break readers."""
        trace = Trace.from_history(fuzz_history(0))
        lines = trace.dumps().splitlines()
        header = json.loads(lines[0])
        header["future_key"] = {"anything": 1}
        event = json.loads(lines[1])
        event["annotation"] = "recorder-specific"
        patched = "\n".join([json.dumps(header), json.dumps(event)] + lines[2:])
        reloaded = Trace.loads(patched)
        assert reloaded.events == trace.events

    def test_comment_and_blank_lines_skipped(self):
        trace = Trace.from_history(fuzz_history(1))
        noisy = trace.dumps().replace("\n", "\n# comment\n\n", 1)
        assert Trace.loads(noisy) == trace

    def test_bad_event_type_rejected(self):
        header = json.dumps(TraceHeader(variables=("x",)).to_json_obj())
        bad = json.dumps({"type": "merge", "session": "s", "txn": 0})
        with pytest.raises(TraceFormatError, match="unknown event type"):
            Trace.loads(header + "\n" + bad)

    def test_external_read_requires_source(self):
        with pytest.raises(TraceFormatError, match="from"):
            TraceEvent.from_json_obj({"type": "read", "session": "s", "txn": 0, "var": "x"})

    def test_bad_source_index_rejected(self):
        for bad in ["zero", 1.7, True, None]:
            with pytest.raises(TraceFormatError, match="from"):
                TraceEvent.from_json_obj(
                    {"type": "read", "session": "s", "txn": 0, "var": "x",
                     "from": ["w", bad]}
                )

    def test_bad_value_encoding_reported_with_line(self):
        header = json.dumps(TraceHeader(variables=("x",)).to_json_obj())
        bad = json.dumps(
            {"type": "write", "session": "s", "txn": 0, "var": "x",
             "value": {"$mystery": 1}}
        )
        with pytest.raises(TraceFormatError, match="line 2.*value"):
            Trace.loads(header + "\n" + bad)

    def test_bad_header_initial_encoding_rejected(self):
        header = TraceHeader(variables=("x",)).to_json_obj()
        header["initial"] = {"x": [1, 2]}
        with pytest.raises(TraceFormatError, match="initial"):
            Trace.loads(json.dumps(header))

    def test_non_object_meta_rejected(self):
        header = TraceHeader(variables=("x",)).to_json_obj()
        header["meta"] = ["not", "a", "dict"]
        with pytest.raises(TraceFormatError, match="meta"):
            Trace.loads(json.dumps(header))

    def test_local_read_rejects_source(self):
        with pytest.raises(TraceFormatError, match="local"):
            TraceEvent.from_json_obj(
                {"type": "read", "session": "s", "txn": 0, "var": "x",
                 "local": True, "from": ["s", 0]}
            )


class TestReplayRules:
    def header(self):
        return TraceHeader(variables=("x",))

    def test_begin_out_of_order_rejected(self):
        trace = Trace(self.header(), [TraceEvent("begin", "s", 1)])
        with pytest.raises(TraceFormatError, match="out of order"):
            trace.to_history()

    def test_begin_while_pending_rejected(self):
        trace = Trace(
            self.header(),
            [TraceEvent("begin", "s", 0), TraceEvent("begin", "s", 1)],
        )
        with pytest.raises(TraceFormatError, match="still pending"):
            trace.to_history()

    def test_event_before_begin_rejected(self):
        trace = Trace(self.header(), [TraceEvent("write", "s", 0, var="x", value=1)])
        with pytest.raises(TraceFormatError, match="missing begin"):
            trace.to_history()

    def test_event_after_commit_rejected(self):
        trace = Trace(
            self.header(),
            [
                TraceEvent("begin", "s", 0),
                TraceEvent("commit", "s", 0),
                TraceEvent("write", "s", 0, var="x", value=1),
            ],
        )
        with pytest.raises(TraceFormatError, match="already-complete"):
            trace.to_history()

    def test_read_before_source_wrote_rejected(self):
        trace = Trace(
            self.header(),
            [
                TraceEvent("begin", "w", 0),
                TraceEvent("begin", "r", 0),
                TraceEvent("read", "r", 0, var="x", value=1, source=("w", 0)),
            ],
        )
        with pytest.raises(TraceFormatError, match="not .*written"):
            trace.to_history()

    def test_write_to_undeclared_variable_rejected(self):
        trace = Trace(
            self.header(),
            [TraceEvent("begin", "s", 0), TraceEvent("write", "s", 0, var="zz", value=1)],
        )
        with pytest.raises(TraceFormatError, match="undeclared"):
            trace.to_history()

    def test_reserved_init_session_rejected(self):
        trace = Trace(self.header(), [TraceEvent("begin", INIT_TXN.session, 0)])
        with pytest.raises(TraceFormatError, match="reserved"):
            trace.to_history()

    def test_prefixes_replay_cleanly(self):
        """from_history orders events so every prefix is a valid trace."""
        trace = Trace.from_history(fuzz_history(7))
        for k in range(len(trace) + 1):
            trace.prefix(k).to_history(strict=False)


class TestFromRecords:
    def test_plain_dict_input(self):
        records = [
            {"type": "begin", "session": "alice", "txn": 0},
            {"type": "write", "session": "alice", "txn": 0, "var": "x", "value": 1},
            {"type": "commit", "session": "alice", "txn": 0},
            {"type": "begin", "session": "bob", "txn": 0},
            {"type": "read", "session": "bob", "txn": 0, "var": "x", "value": 1,
             "from": ["alice", 0]},
            {"type": "commit", "session": "bob", "txn": 0},
        ]
        trace = Trace.from_records(records, name="from-logs")
        assert trace.header.variables == ("x",)
        history = trace.to_history()
        assert history.wr and next(iter(history.wr.values())) == TxnId("alice", 0)
        for name in LEVELS:
            assert get_level(name).satisfies(history)

    def test_empty_log_is_a_valid_trace(self):
        """An engine that committed nothing still yields a replayable trace."""
        trace = Trace.from_records([], variables=["x"], initial={"x": 7})
        assert len(trace) == 0
        history = trace.to_history()
        assert set(history.txns) == {INIT_TXN}
        for name in LEVELS:
            assert get_level(name).satisfies(history)
        assert Trace.loads(trace.dumps()) == trace

    def test_commit_only_log_replays_cleanly(self):
        """Begin/commit pairs with no reads or writes are a valid history."""
        records = []
        for session in ("a", "b"):
            records.append({"type": "begin", "session": session, "txn": 0})
            records.append({"type": "commit", "session": session, "txn": 0})
        trace = Trace.from_records(records, variables=["x"])
        history = trace.to_history()
        assert len(history.txns) == 3  # init + two empty transactions
        for name in LEVELS:
            assert get_level(name).satisfies(history)
        assert Trace.loads(trace.dumps()) == trace

    def test_variables_inferred_from_initial_keys(self):
        """Initial values alone must declare their variables, or the header
        would reject its own round-trip."""
        trace = Trace.from_records([], initial={"x": 5})
        assert trace.header.variables == ("x",)
        assert Trace.loads(trace.dumps()).header.initial == {"x": 5}

    def test_meta_passthrough(self):
        trace = Trace.from_records([], variables=["x"], meta={"engine": "mvcc"})
        assert Trace.loads(trace.dumps()).header.meta == {"engine": "mvcc"}


class TestFuzzer:
    def test_gadgets_violate_exactly_their_level_and_up(self):
        expected_first_violation = {
            "rc_violation": "RC",
            "ra_violation": "RA",
            "cc_violation": "CC",
            "si_violation": "SI",
            "ser_violation": "SER",
        }
        histories = gadget_histories()
        for gadget, first in expected_first_violation.items():
            cut = LEVELS.index(first)
            verdicts = {name: get_level(name).satisfies(histories[gadget]) for name in LEVELS}
            assert verdicts == {
                name: LEVELS.index(name) < cut for name in LEVELS
            }, f"{gadget}: {verdicts}"

    def test_lost_update_separates_si_from_cc(self):
        history = gadget_histories()["lost_update"]
        assert get_level("CC").satisfies(history)
        assert not get_level("SI").satisfies(history)

    def test_fuzz_deterministic_in_seed(self):
        assert fuzz_history(11).canonical_key() == fuzz_history(11).canonical_key()
        t1, t2 = fuzz_traces(2, seed=5)
        assert (t1.dumps(), t2.dumps()) == tuple(t.dumps() for t in fuzz_traces(2, seed=5))

    def test_fuzzed_histories_are_well_formed(self):
        for seed in range(30):
            fuzz_history(seed, abort_rate=0.3).validate()

    def test_adversarial_corpus_covers_every_level(self):
        corpus = adversarial_corpus(per_level=2, seed=0)
        assert set(corpus) == set(LEVELS)
        for name, bucket in corpus.items():
            assert len(bucket) == 2
            for history in bucket:
                history.validate()
                assert not get_level(name).satisfies(history)
