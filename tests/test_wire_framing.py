"""The length-prefixed frame protocol of :mod:`repro.core.wire`.

One frame = a fixed header (magic, version, tag, payload length) plus a
single pickle of an already-wire-encoded payload.  The coordinator and the
workers trust each other's frames only after full validation: every
malformation — truncation, wrong magic, unknown version, an oversized
declaration, trailing bytes — must raise :class:`FrameError` *before* the
payload reaches ``pickle``.
"""

import random

import pytest

from repro.core.wire import (
    FRAME_VERSION,
    MAX_FRAME_BYTES,
    FrameError,
    decode_frame,
    decode_seed_batch,
    encode_frame,
    encode_seed_batch,
)
from repro.dpor import StepEngine
from repro.dpor.stats import ExplorationStats
from repro.isolation import get_level

from tests.helpers import figd1_program


def frontier_items(limit=12):
    """A real exploration frontier to round-trip (mixed depths, wr edges)."""
    engine = StepEngine(figd1_program(), get_level("CC"))
    stats = ExplorationStats()
    stack = [engine.initial_item()]
    while stack and len(stack) < limit:
        kind, oh = stack.pop()
        pushed, _outputs = engine.step(oh, kind, stats)
        stack.extend(pushed)
    return stack


class TestFrameRoundTrip:
    @pytest.mark.parametrize("tag", [0, 1, 7, 255])
    def test_tag_and_payload_survive(self, tag):
        payload = ("meta", (1, 2.5, None), ["nested", (3,)])
        got_tag, got_payload = decode_frame(encode_frame(tag, payload))
        assert got_tag == tag
        assert got_payload == payload

    def test_empty_payload(self):
        assert decode_frame(encode_frame(0, ())) == (0, ())

    def test_tag_must_fit_one_byte(self):
        with pytest.raises(FrameError, match="tag"):
            encode_frame(256, ())
        with pytest.raises(FrameError, match="tag"):
            encode_frame(-1, ())

    def test_seed_batch_round_trip(self):
        items = frontier_items()
        extra = (42, None, 0.25, 16384, 128, True)
        tag, got_extra, got_items = decode_seed_batch(
            encode_seed_batch(1, items, extra)
        )
        assert tag == 1
        assert got_extra == extra
        assert len(got_items) == len(items)
        for (kind, oh), (got_kind, got_oh) in zip(items, got_items):
            assert got_kind == kind
            assert got_oh.order == oh.order
            assert got_oh.history.canonical_key() == oh.history.canonical_key()
            got_oh.validate()

    def test_seed_batch_rejects_foreign_payload(self):
        with pytest.raises(FrameError, match="not \\(extra, items\\)"):
            decode_seed_batch(encode_frame(1, "not a batch"))


class TestFrameRejection:
    def test_truncated_header(self):
        frame = encode_frame(1, ("payload",))
        for cut in range(_header_size()):
            with pytest.raises(FrameError, match="truncated"):
                decode_frame(frame[:cut])

    def test_truncated_body(self):
        frame = encode_frame(1, ("payload",))
        with pytest.raises(FrameError, match="truncated"):
            decode_frame(frame[:-1])

    def test_trailing_garbage(self):
        frame = encode_frame(1, ("payload",))
        with pytest.raises(FrameError, match="trailing garbage"):
            decode_frame(frame + b"\x00")

    def test_bad_magic(self):
        frame = bytearray(encode_frame(1, ()))
        frame[0:2] = b"XX"
        with pytest.raises(FrameError, match="magic"):
            decode_frame(bytes(frame))

    def test_unsupported_version(self):
        frame = bytearray(encode_frame(1, ()))
        frame[2] = FRAME_VERSION + 1
        with pytest.raises(FrameError, match="version"):
            decode_frame(bytes(frame))

    def test_oversized_declaration_rejected_before_unpickling(self):
        # A frame whose header *declares* more than the limit is rejected
        # on the declaration alone — the body is never pickled.
        frame = bytearray(encode_frame(1, ()))
        frame[4:8] = (MAX_FRAME_BYTES + 1).to_bytes(4, "big")
        with pytest.raises(FrameError, match="exceeds limit"):
            decode_frame(bytes(frame))

    def test_oversized_payload_rejected_at_encode(self):
        with pytest.raises(FrameError, match="exceeds limit"):
            encode_frame(1, b"x" * 64, max_bytes=32)

    def test_fuzzed_corruption_never_escapes_frame_error(self):
        # Random single-byte corruption of a real seed-batch frame either
        # still decodes (payload bytes the pickle tolerates) or raises
        # FrameError/pickle errors — never returns a half-validated frame.
        rng = random.Random(9)
        frame = encode_seed_batch(1, frontier_items(), (0,))
        for _ in range(64):
            pos = rng.randrange(8)  # header bytes: must always be caught
            mutated = bytearray(frame)
            mutated[pos] ^= 1 << rng.randrange(8)
            if bytes(mutated) == frame:
                continue
            try:
                decode_frame(bytes(mutated))
            except FrameError:
                continue
            except Exception as err:  # pragma: no cover - depends on bit hit
                pytest.fail(f"header corruption leaked a {type(err).__name__}: {err}")


def _header_size():
    from repro.core.wire import _FRAME_HEADER

    return _FRAME_HEADER.size
