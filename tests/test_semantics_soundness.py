"""Cross-cutting soundness checks of the operational semantics.

Every history the algorithms output must be *feasible*: replaying each
transaction's recorded events against its program text must reproduce
exactly those events (read values included), and every wr edge must point
to a committed transaction whose visible write matches the read's value.
"""

import random

import pytest

from repro.core.events import EventType, INIT_TXN
from repro.dpor import explore_ce
from repro.semantics.executor import next_operation

from tests.helpers import PAPER_PROGRAMS, random_program


def assert_history_feasible(program, history):
    for tid, log in history.txns.items():
        if tid == INIT_TXN:
            continue
        # Replaying all but the terminal event must predict the terminal.
        txn = program.transaction(tid)
        terminal = log.last_event
        assert terminal.type in (EventType.COMMIT, EventType.ABORT)
        prefix = log.prefix(len(log.events) - 1)
        op, _env = next_operation(txn, prefix)
        expected = "AbortOp" if terminal.type is EventType.ABORT else "CommitOp"
        assert type(op).__name__ == expected, (tid, op, terminal)
    for read, writer in history.wr.items():
        writer_log = history.txns[writer]
        assert writer_log.is_committed, "reads only read from committed txns"
        event = history.event(read)
        assert history.visible_write_value(writer, event.var) == event.value


@pytest.mark.parametrize("make_program", PAPER_PROGRAMS, ids=lambda f: f.__name__)
def test_paper_program_outputs_are_feasible(make_program):
    program = make_program()
    result = explore_ce(program, "CC")
    for history in result.histories:
        assert_history_feasible(program, history)


def test_random_program_outputs_are_feasible():
    rng = random.Random(2024)
    for trial in range(25):
        program = random_program(rng, name=f"feas{trial}")
        result = explore_ce(program, "TRUE")
        for history in result.histories:
            assert_history_feasible(program, history)


def test_local_reads_match_own_writes():
    """read-local rule: a read after an own write observes that write."""
    from repro.lang import ProgramBuilder, L

    p = ProgramBuilder("local-read")
    t = p.session("s").transaction()
    t.write("x", 7).read("a", "x").write("y", L("a"))
    p.session("w").transaction().write("x", 99)
    program = p.build()
    result = explore_ce(program, "CC")
    for history in result.histories:
        from repro.core.events import TxnId

        log = history.txns[TxnId("s", 0)]
        local_reads = [e for e in log.events if e.type is EventType.READ and e.local]
        assert local_reads and all(e.value == 7 for e in local_reads)
        assert log.writes()["y"].value == 7
