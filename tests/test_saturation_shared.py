"""Property test: sibling-shared saturation ≡ from-scratch checking.

The explorer derives each child node's :class:`IncrementalSaturation`
state from its parent's by diffing (``derive_extension_states``) instead of
rebuilding per node.  These tests sweep every node of the exploration tree
and assert the derived verdict — and, on consistent nodes, the full
``so ∪ wr ∪ forced`` closure — matches what ``satisfies_by_saturation``
computes on a cache-cold copy of the same history, for RC, RA and CC.

The sweep itself lives in ``scripts/check_saturation_shared.py`` so it can
also run standalone on the auxiliary interpreters (3.9/3.12 have no
pytest); this module imports it from there rather than duplicating it.
"""

from __future__ import annotations

import importlib.util
import random
import sys
from pathlib import Path

import pytest

from helpers import PAPER_PROGRAMS, random_program

_SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "check_saturation_shared.py"
_spec = importlib.util.spec_from_file_location("check_saturation_shared", _SCRIPT)
check_saturation_shared = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("check_saturation_shared", check_saturation_shared)
_spec.loader.exec_module(check_saturation_shared)

sweep_program = check_saturation_shared.sweep_program
abort_stream_program = check_saturation_shared.abort_stream_program


class TestSharedSaturationProperty:
    @pytest.mark.parametrize("make", PAPER_PROGRAMS, ids=lambda fn: fn.__name__)
    def test_paper_programs(self, make):
        stats = sweep_program(make(), max_nodes=5000)
        assert stats.mismatches == []
        assert stats.nodes > 1 and not stats.truncated

    @pytest.mark.parametrize("seed", range(8))
    def test_random_programs(self, seed):
        program = random_program(random.Random(seed), f"rand{seed}")
        stats = sweep_program(program, max_nodes=5000)
        assert stats.mismatches == []

    def test_abort_stream_forces_rebuild_path(self):
        """Write-then-abort transactions must hit the from_history escape
        hatch (nodes with no derived state) and still agree everywhere."""
        stats = sweep_program(abort_stream_program(), max_nodes=5000)
        assert stats.mismatches == []
        # > 1: the root always cold-starts; rebuilds beyond it are the
        # abort-of-a-writer children.
        assert stats.rebuilds > 1

    def test_sweep_covers_inconsistent_nodes(self):
        """The walk checks ValidWrites-rejected candidates too, so the
        inconsistent-state sharing path is exercised, not just consistent
        extensions."""
        totals = 0
        for make in PAPER_PROGRAMS:
            totals += sweep_program(make(), max_nodes=5000).inconsistent
        assert totals > 0


def test_script_main_is_green(capsys):
    """The standalone entry point (the py3.9/py3.12 harness) exits 0."""
    rc = check_saturation_shared.main(["--seeds", "2", "--max-nodes", "2000"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "0 mismatch(es)" in out
