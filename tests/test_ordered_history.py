"""Unit tests for ordered histories (repro.core.ordered_history)."""

import pytest

from repro.core import History, OrderedHistory
from repro.core.events import Event, EventId, EventType, INIT_TXN, TxnId
from repro.isolation import get_level
from repro.semantics import apply_action, next_action, valid_writes

from tests.helpers import fig10_program


def build_ordered(program):
    oh = OrderedHistory.initial(program.initial_history())
    level = get_level("CC")
    while True:
        action = next_action(program, oh.history)
        if action is None:
            return oh
        if action.is_external_read:
            writer, _ = valid_writes(oh.history, action, level)[0]
            oh = apply_action(oh, action, writer)
        else:
            oh = apply_action(oh, action)


class TestConstruction:
    def test_initial_order_is_init_block(self):
        h = History.initial(["x"])
        oh = OrderedHistory.initial(h)
        assert [e.txn for e in oh.order] == [INIT_TXN] * 3

    def test_extended_appends(self):
        h = History.initial(["x"])
        oh = OrderedHistory.initial(h)
        h2, tid = h.begin_transaction("s")
        oh2 = oh.extended(h2, EventId(tid, 0))
        assert oh2.last == EventId(tid, 0)
        assert len(oh2.order) == len(oh.order) + 1

    def test_replaced_keeps_order(self):
        oh = build_ordered(fig10_program())
        replacement = oh.replaced(oh.history)
        assert replacement.order == oh.order


class TestQueries:
    def test_index_and_before(self):
        oh = build_ordered(fig10_program())
        first, second = oh.order[0], oh.order[1]
        assert oh.index(first) == 0
        assert oh.before(first, second)
        assert not oh.before(second, first)

    def test_txn_blocks_are_contiguous(self):
        oh = build_ordered(fig10_program())
        oh.validate()
        reader, writer = TxnId("reader", 0), TxnId("writer", 0)
        assert oh.txn_before(INIT_TXN, reader)
        assert oh.txn_before(reader, writer), "oracle order drives the run"

    def test_event_txn_comparisons(self):
        oh = build_ordered(fig10_program())
        reader, writer = TxnId("reader", 0), TxnId("writer", 0)
        first_read = EventId(reader, 1)
        assert oh.event_before_txn(first_read, writer)
        assert oh.txn_before_event(INIT_TXN, first_read)
        assert not oh.txn_before_event(writer, first_read)

    def test_txns_in_order(self):
        oh = build_ordered(fig10_program())
        assert oh.txns_in_order() == [INIT_TXN, TxnId("reader", 0), TxnId("writer", 0)]

    def test_events_from(self):
        oh = build_ordered(fig10_program())
        pivot = oh.order[3]
        strict = list(oh.events_from(pivot))
        inclusive = list(oh.events_from(pivot, strict=False))
        assert inclusive[0] == pivot and strict == inclusive[1:]


class TestValidate:
    def test_detects_missing_event(self):
        oh = build_ordered(fig10_program())
        broken = OrderedHistory(oh.history, oh.order[:-1])
        with pytest.raises(AssertionError):
            broken.validate()

    def test_detects_split_block(self):
        oh = build_ordered(fig10_program())
        order = list(oh.order)
        # Move init's commit to the end: init's block is no longer contiguous.
        order.append(order.pop(2))
        with pytest.raises(AssertionError):
            OrderedHistory(oh.history, order).validate()

    def test_detects_read_before_source(self):
        """footnote 7: reads must follow the transaction they read from.

        The default drive runs the reader before the writer (oracle order),
        so forging a wr edge from the writer — without the Swap that would
        re-order the blocks — must fail validation.
        """
        oh = build_ordered(fig10_program())
        read = oh.history.txns[TxnId("reader", 0)].reads()[0]
        assert oh.history.wr[read.eid] == INIT_TXN
        forged = oh.replaced(oh.history.with_read_source(read.eid, TxnId("writer", 0)))
        with pytest.raises(AssertionError):
            forged.validate()
