"""The isolation-level registry: lattice shape, separations, new checkers.

Three families of guarantees:

1. **Registry invariants** — every level is reachable through
   :func:`level_spec`, carries a valid eviction rule, resolves its
   aliases, and the recorded lattice is a partial order that embeds the
   paper's classical chain.
2. **Separation matrix** — every edge of the lattice is witnessed by a
   committed fuzzer gadget: accepted at the weaker level, rejected at the
   stronger one, with both verdicts cross-validated against the
   brute-force axiomatic reference.  This is what keeps the lattice
   honest: an edge nobody can separate is not an edge.
3. **Pipeline reach** — every registered level works end-to-end through
   the online checker (online ≡ batch on every prefix) and the streaming
   monitor.
"""

import io

import pytest

from repro.checking.online import OnlineChecker
from repro.isolation import (
    get_level,
    lattice_edges,
    level_spec,
    level_specs,
    registered_levels,
    satisfies_reference,
)
from repro.isolation.registry import EVICTION_RULES
from repro.isolation.liveness import eviction_policy
from repro.monitor import MonitorConfig, monitor_stream
from repro.trace import (
    SEPARATIONS,
    Trace,
    fuzz_history,
    gadget_histories,
    gadget_traces,
)

ALL_LEVELS = [level.name for level in registered_levels()]
NEW_LEVELS = ["RYW", "MR", "MW", "WFR", "SESSION", "BS-3", "PSI", "PC"]


class TestRegistry:
    def test_every_level_has_a_spec(self):
        for name in ALL_LEVELS:
            spec = level_spec(name)
            assert spec.name == name
            assert spec.eviction in EVICTION_RULES

    def test_specs_sorted_by_strength(self):
        strengths = [spec.strength for spec in level_specs()]
        assert strengths == sorted(strengths)
        assert len(set(strengths)) == len(strengths), "strength ranks are unique"

    def test_lattice_edges_use_registered_names(self):
        for weaker, stronger in lattice_edges():
            assert get_level(weaker).is_weaker_than(get_level(stronger))
            assert not get_level(stronger).is_weaker_than(get_level(weaker))

    def test_lattice_embeds_the_classical_chain(self):
        chain = ("RC", "RA", "CC", "SI", "SER")
        for weaker, stronger in zip(chain, chain[1:]):
            assert get_level(weaker).is_weaker_than(get_level(stronger))

    def test_incomparable_pairs(self):
        for a, b in (("PSI", "PC"), ("BS-3", "SI"), ("SESSION", "RC")):
            assert not get_level(a).is_weaker_than(get_level(b)), (a, b)
            assert not get_level(b).is_weaker_than(get_level(a)), (a, b)

    def test_new_level_aliases(self):
        assert get_level("prefix consistency") is get_level("PC")
        assert get_level("parallel snapshot isolation") is get_level("PSI")
        assert get_level("bounded staleness") is get_level("BS-3")
        assert get_level("session guarantees") is get_level("SESSION")
        assert get_level("read your writes") is get_level("RYW")

    def test_eviction_policy_resolves_for_every_level(self):
        for name in ALL_LEVELS:
            policy = eviction_policy(name)
            assert hasattr(policy, "supports_fresh_eviction")
            assert policy.supports_fresh_eviction == (name == "RC")

    def test_spec_lookup_is_alias_aware(self):
        assert level_spec("serializable").name == "SER"


class TestSeparationMatrix:
    def test_separations_cover_the_lattice_exactly(self):
        assert set(SEPARATIONS) == set(lattice_edges())

    @pytest.mark.parametrize(
        "weaker,stronger", sorted(SEPARATIONS), ids=lambda p: str(p)
    )
    def test_edge_is_separated_by_its_gadget(self, weaker, stronger):
        history = gadget_histories()[SEPARATIONS[(weaker, stronger)]]
        for name, want in ((weaker, True), (stronger, False)):
            fast = get_level(name).satisfies(history)
            ref = satisfies_reference(history, name)
            assert fast == ref, f"{name}: fast={fast} reference={ref}"
            assert fast == want, f"{name}: got {fast}, want {want}"

    def test_separating_gadgets_are_committed(self):
        for gadget in set(SEPARATIONS.values()):
            history = gadget_histories()[gadget]
            assert all(t.is_committed for t in history.txns.values()), gadget


class TestNewCheckersAgainstReference:
    @pytest.mark.parametrize("level", NEW_LEVELS)
    def test_gadget_corpus(self, level):
        for name, history in gadget_histories().items():
            fast = get_level(level).satisfies(history)
            ref = satisfies_reference(history, level)
            assert fast == ref, f"{name} at {level}: fast={fast} reference={ref}"

    @pytest.mark.parametrize("seed", range(25))
    def test_fuzzed_histories(self, seed):
        history = fuzz_history(seed, sessions=3, txns_per_session=2, abort_rate=0.2)
        for level in NEW_LEVELS:
            fast = get_level(level).satisfies(history)
            ref = satisfies_reference(history, level)
            assert fast == ref, f"seed {seed} at {level}: fast={fast} reference={ref}"


class TestOnlinePipeline:
    @pytest.mark.parametrize("name", sorted(gadget_traces()))
    def test_online_equals_batch_on_all_levels(self, name):
        trace = gadget_traces()[name]
        checker = OnlineChecker.from_trace(trace, levels=ALL_LEVELS)
        for index, event in enumerate(trace.events):
            step = checker.feed(event)
            prefix = trace.prefix(index + 1).to_history(strict=False)
            expected = {
                level: get_level(level).satisfies(prefix) for level in ALL_LEVELS
            }
            assert step.verdicts == expected, f"{name}: prefix {index + 1}"

    def test_violation_localised_to_its_level(self):
        trace = gadget_traces()["psi_violation"]
        checker = OnlineChecker.from_trace(trace, levels=ALL_LEVELS)
        checker.replay(trace)
        assert checker.verdicts["CC"] is True
        assert checker.verdicts["PSI"] is False
        assert checker.verdicts["SI"] is False


class TestMonitorPipeline:
    @pytest.mark.parametrize("level", NEW_LEVELS)
    def test_monitor_detects_each_levels_gadget(self, level):
        from repro.trace.fuzz import gadget_name

        trace = gadget_traces()[gadget_name(level)]
        report = monitor_stream(
            io.StringIO(trace.dumps()), MonitorConfig(isolation=level, gc_every=1)
        )
        assert not report.ok, level
        assert report.first_violation is not None

    @pytest.mark.parametrize("level", NEW_LEVELS)
    def test_monitor_passes_a_serializable_stream(self, level):
        trace = gadget_traces()["ser_violation"]
        if not get_level(level).satisfies(trace.to_history(strict=False)):
            pytest.skip(f"write skew is already a {level} violation")
        report = monitor_stream(
            io.StringIO(trace.dumps()), MonitorConfig(isolation=level, gc_every=1)
        )
        assert report.ok, level
