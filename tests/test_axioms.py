"""Unit tests for the axiom schema machinery (repro.isolation.axioms)."""

from repro.core import HistoryBuilder
from repro.core.events import INIT_TXN
from repro.isolation.axioms import (
    AXIOMS_BY_LEVEL,
    CAUSAL_AXIOM,
    CONFLICT_AXIOM,
    PREFIX_AXIOM,
    READ_ATOMIC_AXIOM,
    READ_COMMITTED_AXIOM,
    SERIALIZABILITY_AXIOM,
    axiom_instances,
    axioms_hold,
)
from repro.isolation.saturation import forced_edges


def catalogue_history():
    """w writes x,y; r reads x from w then y from init."""
    b = HistoryBuilder(["x", "y"])
    w = b.txn("w")
    w.write("x", 1)
    w.write("y", 1)
    w.commit()
    r = b.txn("r")
    r.read("x", source=w)
    r.read("y", source=b.init)
    r.commit()
    return b.build(), w.tid, r.tid


class TestAxiomInstances:
    def test_instances_enumerate_conflicting_writers(self):
        h, w, r = catalogue_history()
        instances = list(axiom_instances(h))
        # read(x) from w: other x-writers = {init}; read(y) from init: {w}.
        pairs = {(t1, t2, event.var) for t1, t2, event in instances}
        assert pairs == {(w, INIT_TXN, "x"), (INIT_TXN, w, "y")}

    def test_aborted_transactions_never_instantiate(self):
        b = HistoryBuilder(["x"])
        a = b.txn("a")
        a.write("x", 5)
        a.abort()
        r = b.txn("r")
        r.read("x", source=b.init)
        r.commit()
        h = b.build()
        for t1, t2, _ in axiom_instances(h):
            assert a.tid not in (t1, t2)


class TestPremises:
    def test_rc_premise_requires_po_earlier_observation(self):
        h, w, r = catalogue_history()
        # read(y) (pos 2) is po-after read(x) which observes w ⇒ premise holds.
        read_y = h.txns[r].events[2]
        assert READ_COMMITTED_AXIOM.premise(h, {}, w, read_y)
        # read(x) (pos 1) has no earlier observation of anything.
        read_x = h.txns[r].events[1]
        assert not READ_COMMITTED_AXIOM.premise(h, {}, INIT_TXN, read_x)

    def test_ra_premise_is_one_step(self):
        h, w, r = catalogue_history()
        read_y = h.txns[r].events[2]
        assert READ_ATOMIC_AXIOM.premise(h, {}, w, read_y)  # wr edge w→r

    def test_causal_premise_is_transitive(self):
        b = HistoryBuilder(["x", "y"])
        t1 = b.txn("a")
        t1.write("x", 1)
        t1.commit()
        t2 = b.txn("b")
        t2.read("x", source=t1)
        t2.write("y", 1)
        t2.commit()
        t3 = b.txn("c")
        t3.read("y", source=t2)
        t3.read("x", source=b.init)
        t3.commit()
        h = b.build()
        read_x = h.txns[t3.tid].events[2]
        assert CAUSAL_AXIOM.premise(h, {}, t1.tid, read_x), "t1 →wr t2 →wr t3"
        assert not READ_ATOMIC_AXIOM.premise(h, {}, t1.tid, read_x), "two steps"

    def test_ser_premise_uses_co(self):
        h, w, r = catalogue_history()
        read_y = h.txns[r].events[2]
        co_w_first = {INIT_TXN: 0, w: 1, r: 2}
        co_w_last = {INIT_TXN: 0, r: 1, w: 2}
        assert SERIALIZABILITY_AXIOM.premise(h, co_w_first, w, read_y)
        assert not SERIALIZABILITY_AXIOM.premise(h, co_w_last, w, read_y)

    def test_co_free_flags(self):
        assert READ_COMMITTED_AXIOM.co_free
        assert READ_ATOMIC_AXIOM.co_free
        assert CAUSAL_AXIOM.co_free
        assert not SERIALIZABILITY_AXIOM.co_free
        assert not PREFIX_AXIOM.co_free
        assert not CONFLICT_AXIOM.co_free


class TestAxiomsHold:
    def test_catalogue_history_fails_under_its_only_legal_order(self):
        """(init, w, r) is the only order extending so ∪ wr; all axiom sets
        reject it, hence the history is inconsistent at every level.

        Orders that do not extend so ∪ wr (like (init, r, w)) are never
        consulted by the reference checker, so ``axioms_hold`` alone makes
        no claim about them.
        """
        h, w, r = catalogue_history()
        for axioms in (AXIOMS_BY_LEVEL["RC"], AXIOMS_BY_LEVEL["CC"], AXIOMS_BY_LEVEL["SER"]):
            assert not axioms_hold(h, (INIT_TXN, w, r), axioms)

    def test_empty_axiom_set_always_holds(self):
        h, w, r = catalogue_history()
        assert axioms_hold(h, (INIT_TXN, w, r), AXIOMS_BY_LEVEL["TRUE"])


class TestForcedEdges:
    def test_forced_edges_of_catalogue(self):
        h, w, r = catalogue_history()
        edges = forced_edges(h, AXIOMS_BY_LEVEL["RA"])
        assert (w, INIT_TXN) in edges, "w must commit before init — the violation"

    def test_forced_edges_reject_co_dependent_axioms(self):
        import pytest

        h, _, _ = catalogue_history()
        with pytest.raises(ValueError):
            forced_edges(h, AXIOMS_BY_LEVEL["SER"])
