"""Tests for the five benchmark applications (repro.apps).

Each application is checked for: well-formed program generation at several
shapes/seeds, deterministic seeding, and at least one domain-specific
end-to-end model-checking scenario with the expected isolation-sensitivity.
"""

import pytest

from repro.apps import (
    APPLICATIONS,
    application_suite,
    client_program,
    courseware,
    session_scaling_suite,
    shopping_cart,
    tpcc,
    transaction_scaling_suite,
    twitter,
    wikipedia,
)
from repro.checking import Assertion, ModelChecker
from repro.dpor import explore_ce
from repro.isolation import get_level
from repro.semantics import enumerate_histories


class TestGenerators:
    @pytest.mark.parametrize("app", sorted(APPLICATIONS))
    def test_programs_have_requested_shape(self, app):
        program = client_program(app, sessions=3, txns_per_session=2, seed=4)
        assert len(program.sessions) == 3
        for txns in program.sessions.values():
            assert len(txns) == 2

    @pytest.mark.parametrize("app", sorted(APPLICATIONS))
    def test_seeding_is_deterministic(self, app):
        a = client_program(app, 2, 2, seed=7)
        b = client_program(app, 2, 2, seed=7)
        assert [t.name for ts in a.sessions.values() for t in ts] == [
            t.name for ts in b.sessions.values() for t in ts
        ]

    @pytest.mark.parametrize("app", sorted(APPLICATIONS))
    def test_different_seeds_differ_somewhere(self, app):
        names = set()
        for seed in range(6):
            program = client_program(app, 2, 3, seed)
            names.add(tuple(t.name for ts in program.sessions.values() for t in ts))
        assert len(names) > 1

    @pytest.mark.parametrize("app", sorted(APPLICATIONS))
    def test_explorable_and_optimal(self, app):
        """Every generated program runs through explore-ce(CC) cleanly."""
        program = client_program(app, 2, 2, seed=3)
        result = explore_ce(program, "CC", check_invariants=True)
        assert result.stats.blocked == 0
        assert result.histories.duplicates == 0
        assert result.stats.outputs >= 1

    @pytest.mark.parametrize("app", sorted(APPLICATIONS))
    def test_matches_dfs_reference(self, app):
        program = client_program(app, 2, 2, seed=2)
        reference = enumerate_histories(program, get_level("CC")).histories
        result = explore_ce(program, "CC")
        assert set(reference.keys()) == set(result.histories.keys())

    def test_application_suite_shape(self):
        suite = application_suite(2, 2, programs_per_app=3)
        assert len(suite) == 3 * len(APPLICATIONS)
        assert len({p.name for p in suite}) == len(suite)

    def test_scaling_suites(self):
        sess = session_scaling_suite(3, txns_per_session=1, programs_per_app=1)
        assert sorted(sess) == [1, 2, 3]
        assert all(len(p.sessions) == n for n, ps in sess.items() for p in ps)
        txns = transaction_scaling_suite(3, sessions=1, programs_per_app=1)
        assert all(
            len(next(iter(p.sessions.values()))) == n for n, ps in txns.items() for p in ps
        )


class TestCoursewareScenario:
    def test_capacity_violated_under_cc_only(self):
        program = courseware.capacity_violation_program(capacity=1)
        check = courseware.capacity_assertion("auditor", capacity=1)
        cc = ModelChecker(program, isolation="CC").run(assertions=[check])
        assert not cc.ok, "two concurrent enrollments can overfill under CC"
        ser = ModelChecker(program, isolation="SER").run(assertions=[check])
        assert ser.ok, "serializability restores the capacity invariant"

    def test_si_allows_the_write_skew(self):
        """The two enrollments write *different* flags, so SI's
        first-committer-wins does not fire: the overfill is a write skew
        that survives Snapshot Isolation."""
        program = courseware.capacity_violation_program(capacity=1)
        check = courseware.capacity_assertion("auditor", capacity=1)
        si = ModelChecker(program, isolation="SI").run(assertions=[check])
        assert not si.ok

    def test_delete_requires_empty(self):
        from repro.lang import Program

        program = Program(
            {
                "admin": [courseware.open_course("c0")],
                "alice": [courseware.enroll("s0", "c0", capacity=2)],
                "cleaner": [courseware.delete_course("c0")],
                "auditor": [courseware.audit("c0")],
            },
            name="courseware-delete",
            extra_variables=courseware.variables(("s0",), ("c0",)),
            initial_values=courseware.initial_values(("s0",), ("c0",)),
        )
        check = courseware.deleted_course_empty_assertion("auditor")
        cc = ModelChecker(program, isolation="CC").run(assertions=[check])
        assert not cc.ok, "delete can race with enroll under CC"
        ser = ModelChecker(program, isolation="SER").run(assertions=[check])
        assert ser.ok


class TestShoppingCartScenario:
    def test_concurrent_add_remove_keeps_cart_a_set(self):
        from repro.lang import Program

        program = Program(
            {
                "a": [shopping_cart.add_item("u0", 1)],
                "b": [shopping_cart.add_item("u0", 2)],
                "reader": [shopping_cart.get_cart("u0")],
            },
            name="cart-merge",
            extra_variables=shopping_cart.variables(),
            initial_values=shopping_cart.initial_values(),
        )

        def cart_subset(outcome):
            cart = outcome.value("reader", "cart")
            return cart is not None and cart <= frozenset({1, 2})

        result = ModelChecker(program, isolation="CC").run(
            assertions=[Assertion("cart ⊆ added items", cart_subset)]
        )
        assert result.ok

    def test_concurrent_adds_can_lose_one_under_cc(self):
        """Both sessions read the empty cart and write singleton sets —
        the classic lost update on a set variable."""
        from repro.lang import Program

        program = Program(
            {
                "a": [shopping_cart.add_item("u0", 1)],
                "b": [shopping_cart.add_item("u0", 2)],
                "reader": [shopping_cart.get_cart("u0")],
            },
            name="cart-lost",
            extra_variables=shopping_cart.variables(),
            initial_values=shopping_cart.initial_values(),
        )

        def cart_complete(outcome):
            return outcome.value("reader", "cart") != frozenset({1})

        cc = ModelChecker(program, isolation="CC").run(
            assertions=[Assertion("no dropped add", cart_complete)]
        )
        assert not cc.ok


class TestTwitterScenario:
    def test_timeline_reads_followed_users_only(self):
        from repro.lang import Program

        program = Program(
            {
                "u0": [twitter.follow("u0", "u1")],
                "u1": [twitter.publish_tweet("u1", content=9)],
                "reader": [twitter.get_timeline("u0")],
            },
            name="twitter-timeline",
            extra_variables=twitter.variables(),
            initial_values=twitter.initial_values(),
        )

        def timeline_sound(outcome):
            fg = outcome.value("reader", "fg")
            t = outcome.value("reader", "t_u1")
            return t is None or ("u1" in fg and t == 9)

        result = ModelChecker(program, isolation="CC").run(
            assertions=[Assertion("timeline only shows followed tweets", timeline_sound)]
        )
        assert result.ok


class TestTpccScenario:
    def test_stock_never_oversold_under_ser(self):
        from repro.lang import Program

        program = Program(
            {
                "c0": [tpcc.new_order("c0", "o0", 1)],
                "c1": [tpcc.new_order("c1", "o1", 1)],
                "audit": [tpcc.stock_level(1)],
            },
            name="tpcc-stock",
            extra_variables=tpcc.variables(),
            initial_values=tpcc.initial_values(stock=1),
        )

        def stock_nonnegative(outcome):
            return outcome.value("audit", "s") >= 0

        # With stock=1 both orders may pass the check under CC (lost update
        # on the counter) but the audit still only ever reads 0 or 1 —
        # detect the anomaly through double-commit instead.
        def at_most_one_order_commits(outcome):
            return not (outcome.committed("c0") and outcome.committed("c1"))

        ser = ModelChecker(program, isolation="SER").run(
            assertions=[
                Assertion("stock ≥ 0", stock_nonnegative),
                Assertion("≤1 order with stock 1", at_most_one_order_commits),
            ]
        )
        assert ser.ok
        cc = ModelChecker(program, isolation="CC").run(
            assertions=[Assertion("≤1 order with stock 1", at_most_one_order_commits)]
        )
        assert not cc.ok, "both new_orders can commit under CC"

    def test_delivery_consumes_neworder_queue(self):
        from repro.lang import Program

        program = Program(
            {
                "c0": [tpcc.new_order("c0", "o0", 1)],
                "courier": [tpcc.delivery("o0")],
            },
            name="tpcc-delivery",
            extra_variables=tpcc.variables(),
            initial_values=tpcc.initial_values(),
        )
        result = ModelChecker(program, isolation="SER").run(keep_outcomes=True)
        delivered = [o for o in result.outcomes if o.committed("courier")]
        aborted = [o for o in result.outcomes if not o.committed("courier")]
        assert delivered and aborted, "delivery succeeds iff the order landed first"


class TestWikipediaScenario:
    def test_watchlist_revision_monotonicity_violation_under_rc(self):
        """Under RC a reader can see a page revision 'go backwards' between
        two of its reads; CC forbids it within one transaction."""
        from repro.lang import Program, Transaction
        from repro.lang.ast import read

        double_read = Transaction(
            "double_read",
            (read("r1", wikipedia.rev_var("p0")), read("r2", wikipedia.rev_var("p0"))),
        )
        program = Program(
            {
                "editor": [wikipedia.update_page("u0", "p0", content=5)],
                "reader": [double_read],
            },
            name="wiki-monotonic",
            extra_variables=wikipedia.variables(),
            initial_values=wikipedia.initial_values(),
        )

        def monotone(outcome):
            return outcome.value("reader", "r2") >= outcome.value("reader", "r1")

        rc = ModelChecker(program, isolation="RC").run(assertions=[Assertion("monotone", monotone)])
        assert rc.ok, "single editor: even RC cannot reorder one writer's commits here"

    def test_update_bumps_revision_exactly_once_per_editor(self):
        from repro.lang import Program

        program = Program(
            {
                "e0": [wikipedia.update_page("u0", "p0", content=1)],
                "e1": [wikipedia.update_page("u1", "p0", content=2)],
                "reader": [wikipedia.get_page_anonymous("p0")],
            },
            name="wiki-rev",
            extra_variables=wikipedia.variables(),
            initial_values=wikipedia.initial_values(),
        )

        def rev_bounded(outcome):
            return 0 <= outcome.value("reader", "rev") <= 2

        result = ModelChecker(program, isolation="CC").run(
            assertions=[Assertion("rev ∈ [0,2]", rev_bounded)]
        )
        assert result.ok

        def rev_two_when_serial(outcome):
            return outcome.value("reader", "rev") <= 2

        ser = ModelChecker(program, isolation="SER").run(keep_outcomes=True)
        revisions = {o.value("reader", "rev") for o in ser.outcomes}
        assert revisions <= {0, 1, 2}
        assert 2 in revisions, "the reader can run last and see both edits"
