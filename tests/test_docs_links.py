"""Documentation regressions: README/docs exist and their links resolve."""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "scripts"))

from check_links import broken_links, github_slug, heading_slugs, markdown_files  # noqa: E402


def test_readme_and_docs_pages_exist():
    assert (ROOT / "README.md").exists()
    assert (ROOT / "docs" / "architecture.md").exists()
    assert (ROOT / "docs" / "trace_format.md").exists()
    assert (ROOT / "docs" / "api.md").exists()
    assert (ROOT / "docs" / "engine.md").exists()
    assert (ROOT / "docs" / "isolation_levels.md").exists()


def test_no_broken_relative_links():
    assert broken_links(ROOT) == []


def test_markdown_files_include_docs_tree():
    files = {p.relative_to(ROOT).as_posix() for p in markdown_files(ROOT)}
    assert "README.md" in files
    assert "docs/architecture.md" in files
    assert "docs/trace_format.md" in files
    assert "docs/api.md" in files
    assert "docs/engine.md" in files


def test_new_docs_pages_are_linked_from_readme_and_architecture():
    readme = (ROOT / "README.md").read_text(encoding="utf-8")
    architecture = (ROOT / "docs" / "architecture.md").read_text(encoding="utf-8")
    assert "docs/trace_format.md" in readme
    assert "docs/api.md" in readme
    assert "docs/engine.md" in readme
    assert "docs/isolation_levels.md" in readme
    assert "trace_format.md" in architecture
    assert "api.md" in architecture
    assert "engine.md" in architecture
    assert "isolation_levels.md" in architecture


def test_github_slugification():
    assert github_slug("The bitset relation engine") == "the-bitset-relation-engine"
    assert github_slug("Module ↔ paper mapping") == "module--paper-mapping"
    assert github_slug("Traces (`repro.trace`)") == "traces-reprotrace"


def test_anchor_validation_catches_bad_fragments(tmp_path):
    docs = tmp_path / "docs"
    docs.mkdir()
    (tmp_path / "README.md").write_text(
        "# Title\n\n[ok](docs/page.md#real-section)\n[bad](docs/page.md#no-such)\n"
    )
    (docs / "page.md").write_text("# Page\n\n## Real section\n")
    assert [target for _, target in broken_links(tmp_path)] == ["docs/page.md#no-such"]


def test_heading_slugs_deduplicate_like_github(tmp_path):
    md = tmp_path / "dup.md"
    md.write_text("## Same\n\n## Same\n")
    assert heading_slugs(md) == {"same", "same-1"}


def test_api_reference_covers_the_public_surface():
    """docs/api.md must mention every name exported by repro, repro.trace,
    repro.engine and repro.monitor."""
    import repro
    import repro.engine
    import repro.monitor
    import repro.trace

    api = (ROOT / "docs" / "api.md").read_text(encoding="utf-8")
    missing = [
        name
        for name in set(repro.__all__)
        | set(repro.trace.__all__)
        | set(repro.engine.__all__)
        | set(repro.monitor.__all__)
        if not re.search(rf"\b{re.escape(name)}\b", api)
    ]
    assert not missing, f"docs/api.md does not mention: {sorted(missing)}"


def test_isolation_levels_doc_covers_every_registered_level():
    """docs/isolation_levels.md must name every registered level (as
    `NAME`) — registering a level without documenting it fails CI."""
    from repro.isolation import registered_levels

    doc = (ROOT / "docs" / "isolation_levels.md").read_text(encoding="utf-8")
    missing = [
        level.name
        for level in registered_levels()
        if f"`{level.name}`" not in doc
    ]
    assert not missing, f"docs/isolation_levels.md does not cover: {missing}"


def test_isolation_levels_doc_renders_the_real_gadgets():
    """Every separating history shown in the doc is re-rendered from the
    fuzzer gadget that the separation-matrix test verifies — so the doc's
    witnesses cannot rot away from the code."""
    from repro.trace.fuzz import SEPARATIONS, gadget_histories, render_history

    doc = (ROOT / "docs" / "isolation_levels.md").read_text(encoding="utf-8")
    histories = gadget_histories()
    for (weaker, stronger), gadget in sorted(SEPARATIONS.items()):
        rendered = render_history(histories[gadget])
        assert rendered in doc, (
            f"docs/isolation_levels.md is missing the rendered {gadget} "
            f"history separating {weaker} < {stronger}:\n{rendered}"
        )
        assert f"`{weaker} < {stronger}`" in doc, (
            f"docs/isolation_levels.md does not mention the edge "
            f"{weaker} < {stronger}"
        )


def test_readme_mapping_table_covers_every_package():
    """The module ↔ paper table must name every src/repro package."""
    readme = (ROOT / "README.md").read_text(encoding="utf-8")
    packages = {
        child.name
        for child in (ROOT / "src" / "repro").iterdir()
        if child.is_dir() and (child / "__init__.py").exists()
    }
    assert packages, "src/repro packages should exist"
    for package in packages:
        assert re.search(rf"`repro\.{package}`", readme), (
            f"README mapping table is missing the repro.{package} package"
        )
