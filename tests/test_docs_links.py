"""Documentation regressions: README/docs exist and their links resolve."""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "scripts"))

from check_links import broken_links, markdown_files  # noqa: E402


def test_readme_and_architecture_exist():
    assert (ROOT / "README.md").exists()
    assert (ROOT / "docs" / "architecture.md").exists()


def test_no_broken_relative_links():
    assert broken_links(ROOT) == []


def test_markdown_files_include_docs_tree():
    files = {p.relative_to(ROOT).as_posix() for p in markdown_files(ROOT)}
    assert "README.md" in files
    assert "docs/architecture.md" in files


def test_readme_mapping_table_covers_every_package():
    """The module ↔ paper table must name every src/repro package."""
    readme = (ROOT / "README.md").read_text(encoding="utf-8")
    packages = {
        child.name
        for child in (ROOT / "src" / "repro").iterdir()
        if child.is_dir() and (child / "__init__.py").exists()
    }
    assert packages, "src/repro packages should exist"
    for package in packages:
        assert re.search(rf"`repro\.{package}`", readme), (
            f"README mapping table is missing the repro.{package} package"
        )
