"""DPOR corner cases: aborts, local reads, multiple reads of one variable,
and dynamically computed variable names interacting with swaps.
"""

import pytest

from repro.dpor import explore_ce, explore_ce_star
from repro.isolation import get_level
from repro.lang import L, ProgramBuilder, abort
from repro.lang.expr import concat
from repro.semantics import enumerate_histories

from tests.helpers import assert_explore_matches_reference

LEVELS = ("RC", "RA", "CC", "TRUE")


def check_all_levels(program):
    for level in LEVELS:
        result = explore_ce(program, level, check_invariants=True)
        assert_explore_matches_reference(program, level, result)
        assert result.stats.blocked == 0
    for strong in ("SI", "SER"):
        result = explore_ce_star(program, "CC", strong, check_invariants=True)
        reference = enumerate_histories(program, get_level(strong)).histories
        assert set(result.histories.keys()) == set(reference.keys())
        assert result.histories.duplicates == 0


class TestAborts:
    def test_value_dependent_abort_with_competing_writers(self):
        """The aborting branch flips as swaps change the read value."""
        p = ProgramBuilder("abort-flip")
        t = p.session("s1").transaction()
        t.read("a", "x").if_(L("a") == 0, then=[abort()]).write("y", 1)
        p.session("s2").transaction().write("x", 1)
        p.session("s3").transaction().write("x", 0)
        check_all_levels(p.build())

    def test_abort_before_any_write(self):
        p = ProgramBuilder("early-abort")
        t = p.session("s1").transaction()
        t.abort()
        p.session("s2").transaction().write("x", 1)
        p.session("s3").transaction().read("a", "x")
        program = p.build()
        check_all_levels(program)
        result = explore_ce(program, "CC")
        # The aborted txn offers nothing to read: only init and s2's write.
        assert result.distinct_histories == 2

    def test_all_sessions_abort(self):
        p = ProgramBuilder("all-abort")
        for s in range(2):
            t = p.session(f"s{s}").transaction()
            t.write("x", s).abort()
        program = p.build()
        result = explore_ce(program, "CC", check_invariants=True)
        assert result.distinct_histories == 1, "aborted writes are invisible"


class TestLocalReads:
    def test_local_read_does_not_branch(self):
        p = ProgramBuilder("local")
        t = p.session("s1").transaction()
        t.write("x", 5).read("a", "x").write("y", L("a"))
        p.session("s2").transaction().write("x", 9)
        program = p.build()
        check_all_levels(program)
        result = explore_ce(program, "CC")
        # Only ordering freedom: none observable — single history... unless
        # the other writer is read by nobody: indeed 1 history.
        assert result.distinct_histories == 1

    def test_read_write_read_same_variable(self):
        """First read external (branches), second read local (pinned)."""
        p = ProgramBuilder("rwr")
        t = p.session("s1").transaction()
        t.read("a", "x").write("x", L("a") + 1).read("b", "x").write("y", L("b"))
        p.session("s2").transaction().write("x", 10)
        check_all_levels(p.build())


class TestMultipleReadsSameVariable:
    def test_two_external_reads_can_diverge_below_ra(self):
        p = ProgramBuilder("double-read")
        t = p.session("s1").transaction()
        t.read("a", "x").read("b", "x")
        p.session("s2").transaction().write("x", 7)
        program = p.build()
        check_all_levels(program)
        rc = explore_ce(program, "RC").distinct_histories
        ra = explore_ce(program, "RA").distinct_histories
        # RC admits (init, init), (init, w), (7 via w, w); RA forbids the mix.
        assert rc == 3 and ra == 2


class TestDynamicVariableNames:
    def test_row_pointer_chasing_through_swaps(self):
        """A read determines *which variable* the next access touches; swaps
        must re-route the suffix consistently (handled by replay)."""
        p = ProgramBuilder("pointer", extra_variables=["row_0", "row_1"])
        chaser = p.session("chaser").transaction()
        chaser.read("k", "ptr")
        chaser.read("v", concat("row_", L("k")))
        chaser.write("out", L("v"))
        p.session("mover").transaction().write("ptr", 1)
        p.session("filler").transaction().write("row_1", 42)
        program = p.build()
        check_all_levels(program)

    def test_dynamic_write_target(self):
        p = ProgramBuilder("dyn-write", extra_variables=["row_0", "row_1"])
        t = p.session("s1").transaction()
        t.read("k", "ptr").write(concat("row_", L("k")), 5)
        p.session("s2").transaction().write("ptr", 1)
        p.session("s3").transaction().read("r", "row_1")
        check_all_levels(p.build())


class TestWiderPrograms:
    @pytest.mark.parametrize("writers,readers", [(3, 1), (1, 3), (2, 2)])
    def test_reader_writer_grids(self, writers, readers):
        p = ProgramBuilder(f"grid{writers}x{readers}")
        for w in range(writers):
            p.session(f"w{w}").transaction().write("x", w + 1)
        for r in range(readers):
            p.session(f"r{r}").transaction().read("a", "x")
        program = p.build()
        result = explore_ce(program, "CC", check_invariants=True)
        assert_explore_matches_reference(program, "CC", result)
        # Under CC each reader independently picks any writer or init.
        assert result.distinct_histories == (writers + 1) ** readers
