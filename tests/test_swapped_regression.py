"""Regression: reads po-after a swapped read must not be classified swapped.

Minimal witness (shrunk by hypothesis from a random program):

    s0: [a := read(y); b := read(x)]     s1: [write(x, 1)]
    s2: [write(x, 1)];  [write(y, 2)]

The history where s0 reads y from s2/1 *and* x from s1/0 is reachable only
by (i) swapping read(y) with s2/1 — which deletes s1/0 and moves s0 behind
s2's transactions — then (ii) re-running read(x), choosing s2/0 through
ValidWrites, and finally (iii) swapping read(x) with the re-executed s1/0.
Step (iii) requires read(x) to count as *not swapped* although it reads
from an oracle-later transaction: it was re-executed after the block move,
not swapped.  The paper states this intent under condition (3) of §5.3
("later read events from the same transaction as r can[not] be considered
as swapped"); the generalisation to different-source reads lives in
``repro.dpor.optimality.is_swapped``.
"""

from repro.dpor import explore_ce, explore_ce_star
from repro.isolation import get_level
from repro.lang import Program, Transaction, read, write
from repro.semantics import enumerate_histories


def witness_program() -> Program:
    return Program(
        {
            "s0": [Transaction("reader", (read("a", "y"), read("b", "x")))],
            "s1": [Transaction("w1", (write("x", 1),))],
            "s2": [
                Transaction("w2", (write("x", 1),)),
                Transaction("w3", (write("y", 2),)),
            ],
        },
        name="swapped-regression",
    )


def test_seed500_shape_is_complete_and_optimal():
    program = witness_program()
    for level in ("RC", "RA", "CC", "TRUE"):
        reference = enumerate_histories(program, get_level(level)).histories
        result = explore_ce(program, level, check_invariants=True)
        only_ref, only_got = reference.symmetric_difference(result.histories)
        assert not only_ref, f"{level}: missing {len(only_ref)} histories"
        assert not only_got, f"{level}: extra {len(only_got)} histories"
        assert result.histories.duplicates == 0
        assert result.stats.blocked == 0


def test_the_specific_missing_history_is_found():
    """read(y)←s2/1 together with read(x)←s1/0 must be enumerated."""
    from repro.core.events import TxnId

    program = witness_program()
    result = explore_ce(program, "TRUE")
    reader = TxnId("s0", 0)
    combos = set()
    for history in result.histories:
        reads = history.txns[reader].reads()
        combos.add((history.wr[reads[0].eid], history.wr[reads[1].eid]))
    assert (TxnId("s2", 1), TxnId("s1", 0)) in combos


def test_star_variant_also_complete_here():
    program = witness_program()
    for strong in ("SI", "SER"):
        reference = enumerate_histories(program, get_level(strong)).histories
        result = explore_ce_star(program, "CC", strong, check_invariants=True)
        only_ref, only_got = reference.symmetric_difference(result.histories)
        assert not only_ref and not only_got
        assert result.histories.duplicates == 0
