"""Corollary 6.2 end-to-end: explore-ce*(I0, I) is I-sound, I-complete and
optimal for SI and SER (and any stronger level over a weaker CE base).
"""

import random

import pytest

from repro.dpor import explore_ce_star
from repro.isolation import get_level
from repro.semantics import enumerate_histories

from tests.helpers import PAPER_PROGRAMS, figd1_program, random_program

STRONG = ("SI", "SER")


def assert_star_matches(program, base, strong, **kwargs):
    result = explore_ce_star(program, base, strong, **kwargs)
    reference = enumerate_histories(program, get_level(strong)).histories
    only_ref, only_got = reference.symmetric_difference(result.histories)
    assert not only_ref, f"incomplete for {strong}: {len(only_ref)} missing"
    assert not only_got, f"unsound for {strong}: {len(only_got)} extra"
    assert result.histories.duplicates == 0, "optimality"
    return result


@pytest.mark.parametrize("make_program", PAPER_PROGRAMS, ids=lambda f: f.__name__)
@pytest.mark.parametrize("strong", STRONG)
def test_paper_programs(make_program, strong):
    assert_star_matches(make_program(), "CC", strong, check_invariants=True)


class TestBases:
    """Any prefix-closed + CE base below the target level works."""

    @pytest.mark.parametrize("base", ("RC", "RA", "CC", "TRUE"))
    def test_all_bases_agree_for_ser(self, base):
        program = figd1_program()
        result = assert_star_matches(program, base, "SER")
        assert result.stats.filtered == result.stats.end_states - result.stats.outputs

    def test_weaker_bases_explore_more(self):
        program = figd1_program()
        cc_run = explore_ce_star(program, "CC", "SER")
        true_run = explore_ce_star(program, "TRUE", "SER")
        assert true_run.stats.end_states >= cc_run.stats.end_states
        assert set(true_run.histories.keys()) == set(cc_run.histories.keys())

    def test_base_must_be_weaker_than_target(self):
        with pytest.raises(ValueError):
            explore_ce_star(figd1_program(), "CC", "RC")


class TestFilterSemantics:
    def test_outputs_are_exactly_valid_end_states(self):
        program = figd1_program()
        result = explore_ce_star(program, "CC", "SER")
        assert result.stats.outputs + result.stats.filtered == result.stats.end_states
        ser = get_level("SER")
        for history in result.histories:
            assert ser.satisfies(history)

    def test_cc_levels_filter_nothing_when_target_is_cc(self):
        program = figd1_program()
        result = explore_ce_star(program, "CC", "CC")
        assert result.stats.filtered == 0


class TestTheorem61Program:
    """The Fig. D.1 program behind the impossibility proof.

    No swapping-based algorithm is strongly optimal for SI/SER — but
    explore-ce*(CC, ·) must still be sound, complete and plain-optimal on
    this very program, merely filtering some end states.
    """

    def test_filtering_actually_happens(self):
        program = figd1_program()
        result = explore_ce_star(program, "CC", "SER")
        assert result.stats.filtered > 0, (
            "the h-history of Fig. D.1(b) is CC-consistent but not SER: "
            "a strongly-optimal run would be impossible"
        )

    def test_si_and_ser_differ_on_fig_d1(self):
        program = figd1_program()
        si = explore_ce_star(program, "CC", "SI").distinct_histories
        ser = explore_ce_star(program, "CC", "SER").distinct_histories
        assert si >= ser


class TestRandomSweep:
    @pytest.mark.parametrize("seed", range(0, 25))
    def test_random_programs(self, seed):
        rng = random.Random(seed * 104729 + 1)
        program = random_program(rng, name=f"rnd*{seed}")
        for strong in STRONG:
            assert_star_matches(program, "CC", strong, check_invariants=True)
