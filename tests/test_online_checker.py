"""Online incremental checker vs. batch checkers (repro.checking.online).

The contract under test is **batch equivalence**: after every fed event,
``OnlineChecker``'s verdict for each level equals the batch checker run
from scratch on that prefix (replayed independently through
``Trace.prefix(k).to_history()`` so the comparison shares no incremental
state), across paper histories, fuzzed traces and application workloads —
the acceptance property of the trace subsystem.
"""

import random

import pytest

from helpers import PAPER_PROGRAMS
from repro.apps.workloads import record_workload_trace
from repro.checking.online import DEFAULT_LEVELS, OnlineChecker, OnlineStep, check_trace
from repro.core import HistoryBuilder, RelationMatrix
from repro.dpor import explore_ce
from repro.isolation import get_level
from repro.trace import Trace, TraceEvent, TraceFormatError, fuzz_history, gadget_traces

LEVELS = DEFAULT_LEVELS


def batch_verdicts(trace, length):
    """Ground truth: fresh batch check of the first ``length`` events."""
    history = trace.prefix(length).to_history(strict=False)
    return {name: get_level(name).satisfies(history) for name in LEVELS}


def assert_online_equals_batch(trace):
    checker = OnlineChecker.from_trace(trace)
    for index, event in enumerate(trace.events):
        step = checker.feed(event)
        assert step.index == index
        expected = batch_verdicts(trace, index + 1)
        assert step.verdicts == expected, (
            f"{trace.header.name}: prefix {index + 1} ({event}): "
            f"online {step.verdicts} != batch {expected}"
        )
    return checker


class TestBatchEquivalence:
    @pytest.mark.parametrize("make_program", PAPER_PROGRAMS, ids=lambda f: f.__name__)
    def test_paper_program_histories(self, make_program):
        program = make_program()
        result = explore_ce(program, get_level("CC"))
        for history in result.histories:
            assert_online_equals_batch(Trace.from_history(history, name=program.name))

    @pytest.mark.parametrize("name", sorted(gadget_traces()))
    def test_gadget_traces(self, name):
        assert_online_equals_batch(gadget_traces()[name])

    @pytest.mark.parametrize("seed", range(30))
    def test_fuzzed_traces(self, seed):
        history = fuzz_history(seed, abort_rate=0.25)
        assert_online_equals_batch(Trace.from_history(history, name=f"fuzz{seed}"))

    @pytest.mark.parametrize("app", ["twitter", "shoppingCart"])
    def test_application_workload_traces(self, app):
        trace = record_workload_trace(app, sessions=2, txns_per_session=2, seed=0,
                                      isolation="CC")
        checker = assert_online_equals_batch(trace)
        assert checker.verdicts["CC"], "a CC-explored history satisfies CC"

    def test_final_verdict_equals_batch_on_completed_history(self):
        for seed in range(15):
            history = fuzz_history(seed)
            checker = OnlineChecker.from_trace(Trace.from_history(history))
            checker.replay(Trace.from_history(history))
            assert checker.verdicts == {
                name: get_level(name).satisfies(history) for name in LEVELS
            }

    def test_check_trace_online_matches_batch(self):
        for name, trace in gadget_traces().items():
            assert check_trace(trace) == check_trace(trace, online=True), name


class TestAborts:
    def test_abort_retracts_forced_edges(self):
        """A pending writer can force a violation that its abort dissolves —
        the rebuild path must flip the verdict back to consistent."""
        header_vars = ["x", "y"]
        b = HistoryBuilder(header_vars)
        t1 = b.txn("w").write("x", 1).write("y", 1).commit()
        doomed = b.txn("d").write("y", 2).write("x", 2)  # will abort
        b.txn("r1").read("x", source=t1).read("y", source=t1).commit()
        doomed.abort()
        history = b.build(auto_commit=False)
        # Reorder so the doomed writer's abort arrives *after* the reads.
        trace = Trace.from_history(history, name="abort-retract")
        events = sorted(trace.events, key=lambda e: (e.op == "abort"))
        checker = OnlineChecker.from_trace(trace)
        verdict_history = [checker.feed(e).verdicts["RA"] for e in events]
        # Mid-stream the pending writer makes the fractured read RA-suspect
        # under some interleavings; the final verdict must match batch.
        assert checker.verdicts == {
            name: get_level(name).satisfies(history) for name in LEVELS
        }
        assert verdict_history[-1] is checker.verdicts["RA"]

    def test_abort_of_writer_mid_stream_equivalence(self):
        """Hand-built stream where the verdict flips False then True again."""
        trace = Trace.from_records(
            [
                {"type": "begin", "session": "w", "txn": 0},
                {"type": "write", "session": "w", "txn": 0, "var": "x", "value": 1},
                {"type": "write", "session": "w", "txn": 0, "var": "y", "value": 1},
                {"type": "commit", "session": "w", "txn": 0},
                {"type": "begin", "session": "d", "txn": 0},
                {"type": "write", "session": "d", "txn": 0, "var": "x", "value": 9},
                # Fractured read from w while d's write to x is pending:
                {"type": "begin", "session": "r", "txn": 0},
                {"type": "read", "session": "r", "txn": 0, "var": "y", "value": 0,
                 "from": ["__init__", 0]},
                {"type": "read", "session": "r", "txn": 0, "var": "x", "value": 1,
                 "from": ["w", 0]},
                {"type": "commit", "session": "r", "txn": 0},
                {"type": "abort", "session": "d", "txn": 0},
            ],
            variables=["x", "y"],
            name="abort-stream",
        )
        checker = OnlineChecker.from_trace(trace)
        for index, event in enumerate(trace.events):
            step = checker.feed(event)
            assert step.verdicts == batch_verdicts(trace, index + 1), (index, event)
        # The fractured read violates RA regardless of d's fate…
        assert checker.verdicts["RA"] is False
        # …and RC stays consistent throughout (reads are ordered old→new).
        assert checker.verdicts["RC"] is True

    @pytest.mark.parametrize("seed", range(12))
    def test_fuzzed_streams_with_heavy_aborts(self, seed):
        history = fuzz_history(100 + seed, sessions=3, txns_per_session=2, abort_rate=0.5)
        assert_online_equals_batch(Trace.from_history(history, name=f"aborty{seed}"))


class TestApiSurface:
    def trace(self):
        return gadget_traces()["cc_violation"]

    def test_first_violation_and_newly_violated(self):
        trace = self.trace()
        checker = OnlineChecker.from_trace(trace)
        steps = checker.replay(trace)
        cc = checker.first_violation("CC")
        assert isinstance(cc, OnlineStep)
        # The violation surfaces at the read of y — the event that puts the
        # newer write of x into the stale reader's causal past.
        assert cc.event.op == "read" and cc.event.var == "y"
        assert "CC" in cc.newly_violated
        assert checker.first_violation("RC") is None
        assert steps[-1].verdicts == checker.verdicts
        assert not steps[-1].ok and steps[0].ok

    def test_level_subset(self):
        trace = self.trace()
        checker = OnlineChecker.from_trace(trace, levels=["ser", "RC"])
        checker.replay(trace)
        assert checker.levels == ("RC", "SER")
        assert checker.verdicts == {"RC": True, "SER": False}
        with pytest.raises(KeyError):
            checker.first_violation("CC")

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            OnlineChecker(["x"], levels=["BOGUS"])

    def test_every_registered_level_accepted(self):
        from repro.isolation import registered_levels

        names = [level.name for level in registered_levels()]
        checker = OnlineChecker(["x"], levels=names)
        assert checker.levels == tuple(names)

    def test_malformed_stream_rejected(self):
        checker = OnlineChecker(["x"])
        with pytest.raises(TraceFormatError):
            checker.feed(TraceEvent("write", "s", 0, var="x", value=1))

    def test_history_adopts_maintained_matrix(self):
        """The per-step history must reuse the incrementally-grown closure
        instead of triggering a from-scratch RelationMatrix build."""
        trace = self.trace()
        checker = OnlineChecker.from_trace(trace, levels=["CC"])
        for event in trace.events:
            checker.feed(event)
        before = RelationMatrix.full_builds
        history = checker.history()
        matrix = history.causal_matrix()
        assert RelationMatrix.full_builds == before, "causal_matrix() must be adopted"
        assert matrix.nodes == tuple(history.txns)

    def test_verdicts_before_any_event(self):
        checker = OnlineChecker(["x"])
        assert checker.verdicts == {name: True for name in LEVELS}
        assert checker.steps == ()
