"""Unit tests for transaction logs and histories (repro.core.history)."""

import pytest

from repro.core import (
    INIT_TXN,
    Event,
    EventId,
    EventType,
    History,
    HistoryBuilder,
    TransactionLog,
    TxnId,
    is_prefix,
)


def simple_history():
    """t1 writes x and commits; t2 reads x from t1 (still pending)."""
    h = History.initial(["x", "y"])
    h, t1 = h.begin_transaction("s1")
    h = h.append_event("s1", Event(EventId(t1, 1), EventType.WRITE, "x", 5))
    h = h.append_event("s1", Event(EventId(t1, 2), EventType.COMMIT))
    h, t2 = h.begin_transaction("s2")
    eid = EventId(t2, 1)
    h = h.append_event("s2", Event(eid, EventType.READ, "x", 5))
    h = h.add_wr(t1, eid)
    return h, t1, t2, eid


class TestTransactionLog:
    def test_begin_creates_pending_log(self):
        log = TransactionLog.begin(TxnId("s", 0))
        assert log.is_pending and not log.is_complete
        assert log.events[0].type is EventType.BEGIN

    def test_status_transitions(self):
        tid = TxnId("s", 0)
        log = TransactionLog.begin(tid)
        committed = log.appended(Event(EventId(tid, 1), EventType.COMMIT))
        assert committed.is_committed and committed.is_complete
        aborted = log.appended(Event(EventId(tid, 1), EventType.ABORT))
        assert aborted.is_aborted and not aborted.is_committed

    def test_cannot_extend_complete_log(self):
        tid = TxnId("s", 0)
        log = TransactionLog.begin(tid).appended(Event(EventId(tid, 1), EventType.COMMIT))
        with pytest.raises(ValueError):
            log.appended(Event(EventId(tid, 2), EventType.WRITE, "x", 1))

    def test_event_id_must_extend_po(self):
        tid = TxnId("s", 0)
        log = TransactionLog.begin(tid)
        with pytest.raises(ValueError):
            log.appended(Event(EventId(tid, 5), EventType.WRITE, "x", 1))

    def test_writes_keeps_last_write_per_var(self):
        tid = TxnId("s", 0)
        log = TransactionLog.begin(tid)
        log = log.appended(Event(EventId(tid, 1), EventType.WRITE, "x", 1))
        log = log.appended(Event(EventId(tid, 2), EventType.WRITE, "x", 2))
        log = log.appended(Event(EventId(tid, 3), EventType.COMMIT))
        assert log.writes()["x"].value == 2

    def test_aborted_log_has_no_visible_writes(self):
        tid = TxnId("s", 0)
        log = TransactionLog.begin(tid)
        log = log.appended(Event(EventId(tid, 1), EventType.WRITE, "x", 1))
        log = log.appended(Event(EventId(tid, 2), EventType.ABORT))
        assert log.writes() == {}
        assert not log.writes_var("x")

    def test_reads_excludes_local_reads(self):
        tid = TxnId("s", 0)
        log = TransactionLog.begin(tid)
        log = log.appended(Event(EventId(tid, 1), EventType.READ, "x", 0))
        log = log.appended(Event(EventId(tid, 2), EventType.WRITE, "y", 1))
        log = log.appended(Event(EventId(tid, 3), EventType.READ, "y", 1, local=True))
        assert [e.eid.pos for e in log.reads()] == [1]

    def test_prefix(self):
        tid = TxnId("s", 0)
        log = TransactionLog.begin(tid)
        log = log.appended(Event(EventId(tid, 1), EventType.WRITE, "x", 1))
        log = log.appended(Event(EventId(tid, 2), EventType.COMMIT))
        assert len(log.prefix(2)) == 2
        with pytest.raises(ValueError):
            log.prefix(0)
        with pytest.raises(ValueError):
            log.prefix(4)

    def test_last_write_before(self):
        tid = TxnId("s", 0)
        log = TransactionLog.begin(tid)
        log = log.appended(Event(EventId(tid, 1), EventType.WRITE, "x", 1))
        log = log.appended(Event(EventId(tid, 2), EventType.WRITE, "x", 2))
        assert log.last_write_before("x", 2).value == 1
        assert log.last_write_before("x", 3).value == 2
        assert log.last_write_before("y", 3) is None


class TestHistoryConstruction:
    def test_initial_history_writes_all_variables(self):
        h = History.initial(["x", "y"], initial_value=0, overrides={"y": frozenset()})
        init = h.txns[INIT_TXN]
        assert init.is_committed
        writes = init.writes()
        assert writes["x"].value == 0 and writes["y"].value == frozenset()

    def test_begin_assigns_sequential_ids(self):
        h = History.initial(["x"])
        h, t1 = h.begin_transaction("s1")
        h = h.append_event("s1", Event(EventId(t1, 1), EventType.COMMIT))
        h, t2 = h.begin_transaction("s1")
        assert (t1.index, t2.index) == (0, 1)
        assert h.sessions["s1"] == (t1, t2)

    def test_histories_are_persistent(self):
        h1 = History.initial(["x"])
        h2, _ = h1.begin_transaction("s1")
        assert "s1" not in h1.sessions and "s1" in h2.sessions

    def test_append_requires_existing_session(self):
        h = History.initial(["x"])
        with pytest.raises(ValueError):
            h.append_event("ghost", Event(EventId(TxnId("ghost", 0), 1), EventType.COMMIT))

    def test_validate_accepts_simple_history(self):
        h, *_ = simple_history()
        h.validate()


class TestHistoryQueries:
    def test_wr_and_relations(self):
        h, t1, t2, eid = simple_history()
        assert h.wr[eid] == t1
        assert h.causally_before(t1, t2)
        assert not h.causally_before(t2, t1)
        assert h.causally_before(INIT_TXN, t2)

    def test_so_before_is_transitive_within_session(self):
        b = HistoryBuilder(["x"])
        a = b.txn("s")
        a.write("x", 1)
        a.commit()
        c = b.txn("s")
        c.write("x", 2)
        c.commit()
        d = b.txn("s")
        d.write("x", 3)
        d.commit()
        h = b.build()
        assert h.so_before(a.tid, d.tid), "so must relate non-consecutive txns"
        assert not h.so_before(d.tid, a.tid)
        assert h.so_before(INIT_TXN, d.tid)

    def test_writers_of_excludes_aborted(self):
        b = HistoryBuilder(["x"])
        t = b.txn("s")
        t.write("x", 1)
        t.abort()
        h = b.build()
        assert h.writers_of("x") == [INIT_TXN]

    def test_maximal_in_causal_order(self):
        h, t1, t2, _ = simple_history()
        assert h.maximal_in_causal_order(t2)
        assert not h.maximal_in_causal_order(t1)

    def test_exclude_read_drops_one_wr_edge(self):
        h, t1, t2, eid = simple_history()
        assert not h.causally_before(t1, t2, exclude_read=eid)

    def test_visible_write_value(self):
        h, t1, *_ = simple_history()
        assert h.visible_write_value(t1, "x") == 5
        with pytest.raises(KeyError):
            h.visible_write_value(t1, "y")


class TestWithReadSource:
    def test_updates_value_and_wr(self):
        h, t1, t2, eid = simple_history()
        h2 = h.with_read_source(eid, INIT_TXN)
        assert h2.wr[eid] == INIT_TXN
        assert h2.event(eid).value == 0
        assert h.wr[eid] == t1, "original history untouched"

    def test_rejects_non_reads(self):
        h, t1, *_ = simple_history()
        with pytest.raises(ValueError):
            h.with_read_source(EventId(t1, 1), INIT_TXN)


class TestRemoveEvents:
    def test_removes_suffix_and_empty_txns(self):
        h, t1, t2, eid = simple_history()
        pruned = h.remove_events({EventId(t2, 0), eid})
        assert t2 not in pruned.txns
        assert "s2" not in pruned.sessions
        assert eid not in pruned.wr

    def test_partial_suffix_keeps_prefix(self):
        h, t1, t2, eid = simple_history()
        pruned = h.remove_events({eid})
        assert len(pruned.txns[t2].events) == 1
        assert pruned.txns[t2].is_pending

    def test_non_suffix_deletion_asserts(self):
        h, t1, *_ = simple_history()
        with pytest.raises(AssertionError):
            h.remove_events({EventId(t1, 1)})  # middle of t1


class TestIsPrefix:
    def test_fig4_prefix(self):
        """Fig. 4(b) is a prefix of Fig. 4(a)."""
        full, t1, t2, eid = simple_history()
        cut = full.remove_events({eid})
        assert is_prefix(cut, full)
        assert is_prefix(full, full)

    def test_fig4_non_prefix_missing_wr_predecessor(self):
        """Fig. 4(c): dropping a wr predecessor is not a prefix."""
        full, t1, t2, eid = simple_history()
        # Removing t1 while keeping the read that reads from it cannot even
        # be represented by remove_events (wr is dropped with the writer);
        # build the non-prefix directly instead.
        sessions = {"s2": full.sessions["s2"]}
        txns = {INIT_TXN: full.txns[INIT_TXN], t2: full.txns[t2]}
        candidate = History(sessions, txns, {eid: t1})
        assert not is_prefix(candidate, full)

    def test_different_wr_is_not_prefix(self):
        full, t1, t2, eid = simple_history()
        rebound = full.with_read_source(eid, INIT_TXN)
        assert not is_prefix(rebound, full)

    def test_event_sets_must_be_po_prefixes(self):
        full, t1, t2, eid = simple_history()
        # A "prefix" missing t1's write but keeping its commit is malformed.
        txns = dict(full.txns)
        log = txns[t1]
        txns[t1] = TransactionLog(t1, (log.events[0], log.events[2]))
        candidate = History(full.sessions, txns, full.wr)
        assert not is_prefix(candidate, full)
