"""Integration tests: the classical anomaly catalogue against every level.

Each anomaly history is checked against all five isolation levels, with the
expected verdicts from the literature, and every verdict is cross-validated
against the brute-force axiomatic reference checker — so these tests pin
down the semantics of the efficient checkers.
"""

import pytest

from repro.core import HistoryBuilder
from repro.isolation import get_level, registered_levels, satisfies_reference

LEVELS = ("RC", "RA", "CC", "SI", "SER")


def verdicts(history, expected):
    """Assert fast checker == reference == expected for each level."""
    for level, want in zip(LEVELS, expected):
        fast = get_level(level).satisfies(history)
        ref = satisfies_reference(history, level)
        assert fast == ref, f"{level}: fast={fast} reference={ref}"
        assert fast == want, f"{level}: got {fast}, expected {want}"


class TestAnomalyCatalogue:
    def test_serial_history_satisfies_everything(self):
        b = HistoryBuilder(["x"])
        t1 = b.txn("a")
        t1.write("x", 1)
        t1.commit()
        t2 = b.txn("b")
        t2.read("x", source=t1)
        t2.commit()
        verdicts(b.build(), expected=(True, True, True, True, True))

    def test_fractured_read_new_then_old_breaks_even_rc(self):
        """Reader sees w's x, then misses w's y.

        Once an earlier read in the same transaction observed ``w``, the RC
        axiom (premise ``wr ∘ po``) forces ``w`` before the second read's
        source ``init`` in commit order — a cycle with ``so(init, w)``.
        """
        b = HistoryBuilder(["x", "y"])
        w = b.txn("w")
        w.write("x", 1)
        w.write("y", 1)
        w.commit()
        r = b.txn("r")
        r.read("x", source=w)
        r.read("y", source=b.init)
        r.commit()
        verdicts(b.build(), expected=(False, False, False, False, False))

    def test_fractured_read_old_then_new_is_rc_only(self):
        """Reader misses w's x, then sees w's y.

        RC allows it (no po-earlier read observed ``w`` when ``x`` was
        read); RA and above reject it (``w`` is a wr predecessor of the
        reader, so all of ``w``'s writes must be visible atomically).
        """
        b = HistoryBuilder(["x", "y"])
        w = b.txn("w")
        w.write("x", 1)
        w.write("y", 1)
        w.commit()
        r = b.txn("r")
        r.read("x", source=b.init)
        r.read("y", source=w)
        r.commit()
        verdicts(b.build(), expected=(True, False, False, False, False))

    def test_read_committed_violation_observes_then_forgets(self):
        """Reading y from w and then x from init (x written by w) breaks RC."""
        b = HistoryBuilder(["x", "y"])
        w = b.txn("w")
        w.write("y", 1)
        w.write("x", 1)
        w.commit()
        r = b.txn("r")
        r.read("y", source=w)
        r.read("x", source=b.init)
        r.commit()
        verdicts(b.build(), expected=(False, False, False, False, False))

    def test_causality_violation_fig3(self):
        """Fig. 3 of the paper: RA-consistent but not CC."""
        b = HistoryBuilder(["x", "y"])
        t1 = b.txn("s1")
        t1.write("x", 1)
        t1.commit()
        t2 = b.txn("s2")
        t2.read("x", source=t1)
        t2.write("x", 2)
        t2.commit()
        t4 = b.txn("s4")
        t4.read("x", source=t2)
        t4.write("y", 1)
        t4.commit()
        t3 = b.txn("s3")
        t3.read("x", source=t1)
        t3.read("y", source=t4)
        t3.commit()
        verdicts(b.build(), expected=(True, True, False, False, False))

    def test_lost_update_allowed_below_si(self):
        b = HistoryBuilder(["x"])
        u1 = b.txn("a")
        u1.read("x", source=b.init)
        u1.write("x", 1)
        u1.commit()
        u2 = b.txn("b")
        u2.read("x", source=b.init)
        u2.write("x", 2)
        u2.commit()
        verdicts(b.build(), expected=(True, True, True, False, False))

    def test_write_skew_allowed_by_si_not_ser(self):
        b = HistoryBuilder(["x", "y"])
        t1 = b.txn("a")
        t1.read("x", source=b.init)
        t1.write("y", 1)
        t1.commit()
        t2 = b.txn("b")
        t2.read("y", source=b.init)
        t2.write("x", 1)
        t2.commit()
        verdicts(b.build(), expected=(True, True, True, True, False))

    def test_long_fork_allowed_by_cc_not_si(self):
        """Two observers disagree on the order of two independent writes."""
        b = HistoryBuilder(["x", "y"])
        wx = b.txn("wx")
        wx.write("x", 1)
        wx.commit()
        wy = b.txn("wy")
        wy.write("y", 1)
        wy.commit()
        o1 = b.txn("o1")
        o1.read("x", source=wx)
        o1.read("y", source=b.init)
        o1.commit()
        o2 = b.txn("o2")
        o2.read("y", source=wy)
        o2.read("x", source=b.init)
        o2.commit()
        verdicts(b.build(), expected=(True, True, True, False, False))

    def test_stale_session_read_allowed_only_by_rc(self):
        """Reading the session's older write after a newer one exists.

        ``so`` puts w1 < w2 < r; RA and above force w2 before w1 (the read's
        source), a cycle.  RC's premise is only ``wr ∘ po``, which does not
        fire here, so RC tolerates the stale read.
        """
        b = HistoryBuilder(["x"])
        w1 = b.txn("s")
        w1.write("x", 1)
        w1.commit()
        w2 = b.txn("s")
        w2.write("x", 2)
        w2.commit()
        r = b.txn("s")
        r.read("x", source=w1)
        r.commit()
        verdicts(b.build(), expected=(True, False, False, False, False))

    def test_aborted_writes_invisible_but_reads_constrained(self):
        """An aborted transaction's reads still participate in the axioms."""
        b = HistoryBuilder(["x", "y"])
        w = b.txn("w")
        w.write("x", 1)
        w.write("y", 1)
        w.commit()
        a = b.txn("a")
        a.read("y", source=b.init)
        a.read("x", source=w)
        a.abort()
        verdicts(b.build(), expected=(True, False, False, False, False))


class TestLevelMetadata:
    def test_strength_chain(self):
        names = [l.name for l in registered_levels()]
        assert names == [
            "TRUE", "RYW", "MR", "MW", "WFR", "SESSION",
            "RC", "BS-3", "RA", "CC", "PSI", "PC", "SI", "SER",
        ]
        # The paper's original chain keeps its relative order.
        chain = [n for n in names if n in ("RC", "RA", "CC", "SI", "SER")]
        assert chain == ["RC", "RA", "CC", "SI", "SER"]

    def test_weaker_than(self):
        assert get_level("RC").is_weaker_than(get_level("SER"))
        assert not get_level("SER").is_weaker_than(get_level("CC"))
        # The extended lattice is a partial order, not a chain.
        assert get_level("BS-3").is_weaker_than(get_level("SER"))
        assert not get_level("BS-3").is_weaker_than(get_level("SI"))
        assert not get_level("PSI").is_weaker_than(get_level("PC"))
        assert not get_level("PC").is_weaker_than(get_level("PSI"))
        assert get_level("SESSION").is_weaker_than(get_level("CC"))
        assert get_level("RYW").is_weaker_than(get_level("RA"))

    def test_causal_extensibility_flags_match_theorems(self):
        # Theorem 3.4 and the Fig. 6 counterexample.
        for name in ("TRUE", "RC", "RA", "CC"):
            assert get_level(name).causally_extensible, name
        for name in ("SI", "SER"):
            assert not get_level(name).causally_extensible, name

    def test_all_prefix_closed(self):
        # Theorem 3.2.
        for level in registered_levels():
            assert level.prefix_closed, level.name

    def test_aliases(self):
        assert get_level("serializable") is get_level("SER")
        assert get_level("read committed") is get_level("RC")
        assert get_level("causal") is get_level("CC")

    def test_unknown_level(self):
        with pytest.raises(KeyError):
            get_level("eventual")


class TestStrengthSemantics:
    def test_consistency_is_monotone_in_strength(self):
        """Any SER-consistent history is consistent with all weaker levels."""
        b = HistoryBuilder(["x"])
        t1 = b.txn("a")
        t1.write("x", 1)
        t1.commit()
        t2 = b.txn("b")
        t2.read("x", source=t1)
        t2.write("x", 2)
        t2.commit()
        h = b.build()
        results = [get_level(n).satisfies(h) for n in LEVELS]
        # once False, all stronger must be False (downward closure of chain)
        for weaker, stronger in zip(results, results[1:]):
            assert weaker or not stronger
