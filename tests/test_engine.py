"""Unit tests for the threaded MVCC engine (repro.engine).

These pin the engine's mechanics — locks, deadlock detection, snapshot
visibility, the deterministic lockstep scheduler, and the commit-log →
trace adapter — independently of what the isolation checker later says
about the traces (that's ``tests/test_engine_difftest.py``).
"""

import pytest

from repro.core.events import INIT_SESSION
from repro.engine import (
    EXCLUSIVE,
    SHARED,
    EngineError,
    LockManager,
    MVCCEngine,
    SEEDED_BUGS,
    TransactionAborted,
    WouldBlock,
    engine_configs,
    get_engine_config,
    hotkey_program,
    run_program,
)
from repro.engine.harness import BUG_DEMOS, detected_level, workload_program


class TestLockManager:
    def test_shared_locks_coexist_exclusive_blocks(self):
        lm = LockManager()
        lm.acquire(("a", 0), "x", SHARED)
        lm.acquire(("b", 0), "x", SHARED)
        with pytest.raises(WouldBlock) as exc:
            lm.acquire(("c", 0), "x", EXCLUSIVE)
        assert exc.value.key == "x"
        assert exc.value.holders == {("a", 0), ("b", 0)}

    def test_reentrant_and_lone_upgrade(self):
        lm = LockManager()
        lm.acquire(("a", 0), "x", SHARED)
        lm.acquire(("a", 0), "x", SHARED)  # re-entrant
        lm.acquire(("a", 0), "x", EXCLUSIVE)  # lone holder upgrades
        assert lm.holders("x") == {("a", 0): EXCLUSIVE}
        lm.acquire(("a", 0), "x", SHARED)  # X covers S

    def test_release_all_unblocks(self):
        lm = LockManager()
        lm.acquire(("a", 0), "x", EXCLUSIVE)
        with pytest.raises(WouldBlock):
            lm.acquire(("b", 0), "x", SHARED)
        assert lm.release_all(("a", 0)) == ["x"]
        lm.acquire(("b", 0), "x", SHARED)

    def test_upgrade_deadlock_aborts_the_requester(self):
        """Two S holders racing to upgrade is the classic 2PL deadlock."""
        lm = LockManager()
        lm.acquire(("a", 0), "x", SHARED)
        lm.acquire(("b", 0), "x", SHARED)
        with pytest.raises(WouldBlock):
            lm.acquire(("a", 0), "x", EXCLUSIVE)
        with pytest.raises(TransactionAborted) as exc:
            lm.acquire(("b", 0), "x", EXCLUSIVE)
        assert exc.value.txn == ("b", 0)
        # The victim releases; the survivor's retry now succeeds.
        lm.release_all(("b", 0))
        lm.acquire(("a", 0), "x", EXCLUSIVE)

    def test_two_key_cycle_detected(self):
        lm = LockManager()
        lm.acquire(("a", 0), "x", EXCLUSIVE)
        lm.acquire(("b", 0), "y", EXCLUSIVE)
        with pytest.raises(WouldBlock):
            lm.acquire(("a", 0), "y", EXCLUSIVE)
        with pytest.raises(TransactionAborted):
            lm.acquire(("b", 0), "x", EXCLUSIVE)


class TestEngineBasics:
    def engine(self, name="serializable", variables=("x", "y")):
        return MVCCEngine(get_engine_config(name), variables)

    def test_read_your_own_writes_and_commit(self):
        eng = self.engine()
        t = eng.begin("s")
        assert eng.read(t, "x") == 0
        eng.write(t, "x", 5)
        assert eng.read(t, "x") == 5  # buffered, logged as a local read
        eng.commit(t)
        t2 = eng.begin("s")
        assert eng.read(t2, "x") == 5
        types = [r["type"] for r in eng.log]
        assert types == ["begin", "read", "write", "read", "commit", "begin", "read"]
        assert eng.log[3]["local"] is True
        assert eng.log[6]["from"] == ["s", 0]

    def test_uncommitted_writes_invisible(self):
        eng = self.engine(name="read-committed")
        t1 = eng.begin("a")
        eng.write(t1, "x", 1)
        t2 = eng.begin("b")
        assert eng.read(t2, "x") == 0
        assert eng.log[-1]["from"] == [INIT_SESSION, 0]

    def test_abort_discards_writes_and_releases_locks(self):
        eng = self.engine(name="read-committed")
        t1 = eng.begin("a")
        eng.write(t1, "x", 9)
        eng.abort(t1)
        t2 = eng.begin("b")
        assert eng.read(t2, "x") == 0
        eng.write(t2, "x", 2)  # lock is free again
        assert eng.stats.user_aborts == 1

    def test_snapshot_reads_ignore_later_commits(self):
        eng = self.engine(name="snapshot-isolation")
        t1 = eng.begin("a")
        t2 = eng.begin("b")
        eng.write(t2, "x", 1)
        eng.commit(t2)
        assert eng.read(t1, "x") == 0  # t1's snapshot predates t2's commit

    def test_first_committer_wins_aborts_the_second(self):
        eng = self.engine(name="snapshot-isolation")
        t1 = eng.begin("a")
        t2 = eng.begin("b")
        eng.write(t1, "x", 1)
        eng.commit(t1)
        eng.write(t2, "x", 2)
        with pytest.raises(TransactionAborted, match="first-committer-wins"):
            eng.commit(t2)
        assert eng.stats.fcw_aborts == 1
        assert eng.log[-1]["type"] == "abort"

    def test_engine_misuse_is_an_error(self):
        eng = self.engine()
        t = eng.begin("s")
        eng.commit(t)
        with pytest.raises(EngineError):
            eng.read(t, "x")
        t2 = eng.begin("s")
        with pytest.raises(EngineError):
            eng.read(t2, "zz")
        with pytest.raises(EngineError):
            eng.begin(INIT_SESSION)

    def test_session_indices_are_sequential(self):
        eng = self.engine()
        for expect in range(3):
            t = eng.begin("s")
            assert (t.session, t.index) == ("s", expect)
            eng.commit(t)


class TestConfigs:
    def test_every_bug_rides_on_a_real_base(self):
        configs = engine_configs()
        for bug in SEEDED_BUGS.values():
            cfg = bug.config()
            assert cfg.name in configs
            assert cfg.claimed == configs[bug.base].claimed
            assert cfg.bug == bug.name
            assert bug.name in BUG_DEMOS

    def test_get_engine_config_accepts_bare_bug_names(self):
        assert get_engine_config("no_read_locks").name == "serializable+no_read_locks"
        assert get_engine_config("serializable").bug is None
        with pytest.raises(EngineError, match="unknown engine config"):
            get_engine_config("write-behind-cache")

    def test_describe_mentions_the_bug(self):
        assert "BUG:stale_snapshot" in get_engine_config("stale_snapshot").describe()


class TestScheduledRuns:
    def test_same_seed_gives_identical_traces(self):
        program = hotkey_program(3, 3, seed=5)
        config = get_engine_config("serializable")
        first = run_program(program, config, seed=11).trace.dumps()
        second = run_program(program, config, seed=11).trace.dumps()
        assert first == second

    def test_different_seeds_explore_different_interleavings(self):
        program = hotkey_program(3, 3, seed=5)
        config = get_engine_config("serializable")
        traces = {run_program(program, config, seed=s).trace.dumps() for s in range(6)}
        assert len(traces) > 1

    def test_free_running_threads_produce_a_valid_trace(self):
        """Without a seed the threads race for real; the commit log must
        still replay as a well-formed trace."""
        program = hotkey_program(3, 3, seed=5)
        run = run_program(program, get_engine_config("serializable"))
        run.trace.to_history(strict=True)
        assert run.check().verdicts["SER"] is True

    def test_engine_aborts_are_retried_as_new_indices(self):
        """Deadlock victims reappear as fresh transactions of the session."""
        program = workload_program("increments", sessions=3, txns_per_session=3)
        found = None
        for seed in range(40):
            run = run_program(program, get_engine_config("serializable"), seed=seed)
            if run.stats.deadlock_aborts > 0:
                found = run
                break
        assert found is not None, "no seed produced an upgrade deadlock"
        assert not found.gave_up
        assert found.stats.commits == 9
        aborts = [e for e in found.trace.events if e.op == "abort"]
        assert len(aborts) == found.stats.deadlock_aborts
        found.trace.to_history(strict=True)

    def test_run_records_spans_for_race_forensics(self):
        program = workload_program("increments", sessions=2, txns_per_session=1)
        run = run_program(program, get_engine_config("read-committed"), seed=0)
        keys = [k for k in run.spans if k[0] != INIT_SESSION]
        assert len(keys) >= 2

    def test_trace_header_carries_engine_metadata(self):
        program = workload_program("increments", sessions=2, txns_per_session=1)
        run = run_program(program, get_engine_config("stale_snapshot"), seed=1)
        meta = run.trace.header.meta
        assert meta["engine"] == "snapshot-isolation+stale_snapshot"
        assert meta["claimed"] == "SI"
        assert meta["bug"] == "stale_snapshot"
        assert meta["seed"] == 1


class TestDetectedLevel:
    def test_ladder_floor(self):
        assert detected_level({"RC": True, "RA": True, "CC": True, "SI": True, "SER": True}) == "SER"
        assert detected_level({"RC": True, "RA": True, "CC": True, "SI": True, "SER": False}) == "SI"
        assert detected_level({"RC": True, "RA": False, "CC": False, "SI": False, "SER": False}) == "RC"
        assert detected_level({"RC": False, "RA": False, "CC": False, "SI": False, "SER": False}) is None

    def test_partial_verdicts(self):
        assert detected_level({"RC": True, "SER": False}) == "RC"
