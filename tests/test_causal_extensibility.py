"""Tests for causal extensibility (paper §3.2, Theorem 3.4, Fig. 6).

Causal extensibility — every (so ∪ wr)+-maximal pending transaction can be
extended with any event while preserving consistency — is what lets
``explore-ce`` avoid fruitless explorations.  We verify it empirically for
RC/RA/CC on random histories and reproduce the paper's Fig. 5/Fig. 6
counterexamples showing SI and SER are *not* causally extensible.
"""

import random

from repro.core import HistoryBuilder
from repro.core.events import Event, EventId, EventType
from repro.isolation import get_level


def _extend_with_write(history, tid, var, value):
    log = history.txns[tid]
    eid = EventId(tid, len(log.events))
    return history.append_event(tid.session, Event(eid, EventType.WRITE, var, value))


def _causal_read_extensions(history, tid, var):
    """All causal extensions of pending ``tid`` with a read of ``var``."""
    log = history.txns[tid]
    eid = EventId(tid, len(log.events))
    out = []
    for writer in history.txns.values():
        if not writer.is_committed or not writer.writes_var(var):
            continue
        if not history.causally_before_eq(writer.tid, tid):
            continue
        extended = history.append_event(
            tid.session, Event(eid, EventType.READ, var, writer.writes()[var].value)
        )
        out.append(extended.add_wr(writer.tid, eid))
    return out


class TestFig5:
    """The RA examples of Fig. 5 (extensible vs. non-extensible)."""

    def build(self, with_second_writes: bool):
        b = HistoryBuilder(["x", "y"])
        w = b.txn("right")
        w.write("x", 2)
        if with_second_writes:
            w.write("y", 2)
        w.commit()
        r = b.txn("bottom")
        r.read("x", source=w)
        return b, r, w

    def test_maximal_pending_transaction_extends(self):
        """Fig. 5(a): the pending reader (causally maximal) can read y."""
        b, r, _ = self.build(with_second_writes=False)
        h = b.build(auto_commit=False)
        ra = get_level("RA")
        assert ra.satisfies(h)
        extensions = _causal_read_extensions(h, r.tid, "y")
        assert any(ra.satisfies(x) for x in extensions)

    def test_non_maximal_pending_cannot_always_extend(self):
        """Fig. 5(b): extending the *non-maximal* writer breaks RA.

        The writer (read by the bottom transaction) is pending and not
        (so ∪ wr)+-maximal; adding write(y, 2) to it makes the bottom
        transaction's read of y from init fractured.
        """
        b = HistoryBuilder(["x", "y"])
        w = b.txn("right")
        w.write("x", 2)
        r = b.txn("bottom")
        r.read("x", source=w)
        r.read("y", source=b.init)
        r.commit()
        h = b.build(auto_commit=False)  # w stays pending
        ra = get_level("RA")
        assert ra.satisfies(h)
        extended = _extend_with_write(h, w.tid, "y", 2)
        assert not ra.satisfies(extended)


class TestFig6:
    """SI and SER are not causally extensible (Fig. 6)."""

    def build(self):
        b = HistoryBuilder(["x", "y", "z"])
        left = b.txn("left")
        left.write("z", 1)
        left.read("x", source=b.init)
        left.write("y", 1)
        left.commit()
        right = b.txn("right")
        right.write("z", 2)
        right.read("y", source=b.init)
        return b, right

    def test_counterexample(self):
        b, right = self.build()
        h = b.build(auto_commit=False)  # right pending, causally maximal
        for name in ("SI", "SER"):
            level = get_level(name)
            assert level.satisfies(h), f"base history should satisfy {name}"
            extended = _extend_with_write(h, right.tid, "x", 2)
            assert not level.satisfies(extended), f"{name} should reject the extension"

    def test_cc_tolerates_the_same_extension(self):
        """The same extension stays CC-consistent (the paper's remark)."""
        b, right = self.build()
        h = b.build(auto_commit=False)
        extended = _extend_with_write(h, right.tid, "x", 2)
        assert get_level("CC").satisfies(extended)


class TestRandomizedCausalExtensibility:
    """Theorem 3.4 on random consistent histories."""

    def test_read_extensions_of_maximal_pending(self):
        from tests.helpers import random_history

        rng = random.Random(99)
        tested = 0
        for _ in range(200):
            h = random_history(rng, allow_pending=True)
            pending = [t for t in h.pending_transactions() if h.maximal_in_causal_order(t.tid)]
            if not pending:
                continue
            tid = pending[0].tid
            for name in ("RC", "RA", "CC"):
                level = get_level(name)
                if not level.satisfies(h):
                    continue
                for var in ("x", "y"):
                    if h.txns[tid].writes_var(var):
                        continue  # would be a local read
                    extensions = _causal_read_extensions(h, tid, var)
                    if not extensions:
                        continue
                    tested += 1
                    assert any(level.satisfies(x) for x in extensions), (name, var)
        assert tested > 20, "the sweep should exercise a fair number of cases"
