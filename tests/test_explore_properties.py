"""Hypothesis property tests for the DPOR algorithms.

These complement the seeded sweeps in test_explore_ce*.py with
shrinking-capable random program generation: any failure minimises to a
small witness program.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.dpor import explore_ce, explore_ce_star
from repro.isolation import get_level
from repro.semantics import enumerate_histories

from tests.helpers import random_program


@st.composite
def programs(draw):
    seed = draw(st.integers(min_value=0, max_value=10**9))
    return random_program(random.Random(seed), name=f"hyp{seed}")


@given(programs(), st.sampled_from(["RC", "RA", "CC", "TRUE"]))
@settings(max_examples=60, deadline=None)
def test_explore_ce_is_sound_complete_optimal(program, level_name):
    reference = enumerate_histories(program, get_level(level_name)).histories
    result = explore_ce(program, level_name, check_invariants=True)
    assert set(result.histories.keys()) == set(reference.keys())
    assert result.histories.duplicates == 0
    assert result.stats.blocked == 0


@given(programs(), st.sampled_from(["SI", "SER"]))
@settings(max_examples=40, deadline=None)
def test_explore_ce_star_is_sound_complete_optimal(program, strong):
    reference = enumerate_histories(program, get_level(strong)).histories
    result = explore_ce_star(program, "CC", strong, check_invariants=True)
    assert set(result.histories.keys()) == set(reference.keys())
    assert result.histories.duplicates == 0


@given(programs())
@settings(max_examples=40, deadline=None)
def test_every_output_history_is_a_complete_execution(program):
    result = explore_ce(program, "CC")
    expected_txns = program.transaction_count() + 1  # + init
    for history in result.histories:
        assert not history.pending_transactions()
        assert len(history.txns) == expected_txns
        history.validate()


@given(programs())
@settings(max_examples=30, deadline=None)
def test_exploration_is_deterministic(program):
    first = explore_ce(program, "CC")
    second = explore_ce(program, "CC")
    assert set(first.histories.keys()) == set(second.histories.keys())
    assert first.stats.explore_calls == second.stats.explore_calls


@given(programs())
@settings(max_examples=30, deadline=None)
def test_level_hierarchy_on_outputs(program):
    """hist_SER(P) ⊆ hist_SI(P) ⊆ hist_CC(P) ⊆ hist_RA(P) ⊆ hist_RC(P)."""
    sets = {}
    for level in ("RC", "RA", "CC"):
        sets[level] = set(explore_ce(program, level).histories.keys())
    for level in ("SI", "SER"):
        sets[level] = set(explore_ce_star(program, "CC", level).histories.keys())
    assert sets["SER"] <= sets["SI"] <= sets["CC"] <= sets["RA"] <= sets["RC"]
