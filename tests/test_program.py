"""Unit tests for programs, the DSL and the oracle order (repro.lang)."""

import pytest

from repro.core.events import INIT_TXN, TxnId
from repro.lang import (
    L,
    Program,
    ProgramBuilder,
    Transaction,
    abort,
    assign,
    if_,
    read,
    write,
)
from repro.lang.ast import resolve_var
from repro.lang.expr import concat
from repro.lang.program import has_dynamic_variables, static_variables


class TestAstConstructors:
    def test_read_write_assign(self):
        r = read("a", "x")
        w = write("x", L("a") + 1)
        s = assign("b", 3)
        assert r.target == "a" and r.var == "x"
        assert w.var == "x"
        assert s.target == "b" and s.expr.evaluate({}) == 3

    def test_if_builds_tuples(self):
        instr = if_(L("a") == 0, then=[abort()], orelse=[assign("b", 1)])
        assert isinstance(instr.then, tuple) and isinstance(instr.orelse, tuple)

    def test_resolve_var(self):
        assert resolve_var("x", {}) == "x"
        assert resolve_var(concat("row_", L("k")), {"k": 2}) == "row_2"
        with pytest.raises(TypeError):
            resolve_var(L("k"), {"k": 7})  # non-string name


class TestVariableInference:
    def test_static_variables_sees_through_ifs(self):
        body = (read("a", "x"), if_(L("a") == 0, then=[write("y", 1)], orelse=[write("z", 2)]))
        assert static_variables(body) == {"x", "y", "z"}

    def test_dynamic_variable_detection(self):
        body = (read("a", concat("row_", L("k"))),)
        assert has_dynamic_variables(body)
        assert static_variables(body) == set()

    def test_program_collects_variables(self):
        p = Program(
            {"s": [Transaction("t", (read("a", "x"), write("y", 1)))]},
            extra_variables=["row_1"],
        )
        assert set(p.variables) == {"x", "y", "row_1"}


class TestOracleOrder:
    def build(self):
        p = ProgramBuilder("oracle")
        p.session("s0").transaction("a").write("x", 1)
        s1 = p.session("s1")
        s1.transaction("b").write("x", 2)
        s1.transaction("c").write("x", 3)
        return p.build()

    def test_sessions_then_indexes(self):
        p = self.build()
        a, b, c = TxnId("s0", 0), TxnId("s1", 0), TxnId("s1", 1)
        assert p.oracle_before(a, b) and p.oracle_before(b, c)
        assert not p.oracle_before(c, b)

    def test_init_precedes_everything(self):
        p = self.build()
        assert p.oracle_before(INIT_TXN, TxnId("s0", 0))

    def test_transaction_lookup(self):
        p = self.build()
        assert p.transaction(TxnId("s1", 1)).name == "c"
        assert p.transaction_count() == 3
        assert list(p.all_transaction_ids()) == [
            TxnId("s0", 0),
            TxnId("s1", 0),
            TxnId("s1", 1),
        ]


class TestProgramBuilder:
    def test_fluent_chaining(self):
        p = ProgramBuilder("chain")
        p.session("s").transaction("t").read("a", "x").assign("b", L("a") + 1).write("x", L("b"))
        prog = p.build()
        assert prog.transaction(TxnId("s", 0)).body[0].target == "a"
        assert len(prog.transaction(TxnId("s", 0)).body) == 3

    def test_session_reuse_by_name(self):
        p = ProgramBuilder("reuse")
        p.session("s").transaction("t0")
        p.session("s").transaction("t1")
        prog = p.build()
        assert prog.session_length("s") == 2

    def test_initial_values_forwarded(self):
        p = ProgramBuilder("init", extra_variables=["cart"], initial_values={"cart": frozenset()})
        p.session("s").transaction("t").read("a", "cart")
        prog = p.build()
        h = prog.initial_history()
        assert h.visible_write_value(INIT_TXN, "cart") == frozenset()

    def test_initial_history_covers_all_variables(self):
        p = ProgramBuilder("vars")
        p.session("s").transaction("t").read("a", "x").write("y", 1)
        h = p.build().initial_history()
        assert set(h.txns[INIT_TXN].writes()) == {"x", "y"}
