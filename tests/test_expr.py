"""Unit tests for the expression language (repro.lang.expr)."""

import pytest

from repro.lang import L, concat, contains, fn, set_add, set_remove, to_expr
from repro.lang.expr import BinOp, Const, Local


class TestBasics:
    def test_const(self):
        assert Const(5).evaluate({}) == 5

    def test_local_lookup(self):
        assert L("a").evaluate({"a": 3}) == 3

    def test_unassigned_local_raises_name_error(self):
        with pytest.raises(NameError):
            L("missing").evaluate({})

    def test_to_expr_lifts_values(self):
        assert isinstance(to_expr(3), Const)
        expr = L("a")
        assert to_expr(expr) is expr


class TestOperators:
    def test_arithmetic(self):
        env = {"a": 10, "b": 4}
        assert (L("a") + L("b")).evaluate(env) == 14
        assert (L("a") - 1).evaluate(env) == 9
        assert (2 + L("b")).evaluate(env) == 6
        assert (20 - L("b")).evaluate(env) == 16
        assert (L("a") * 3).evaluate(env) == 30

    def test_comparisons_build_exprs_not_bools(self):
        cmp = L("a") == 3
        assert isinstance(cmp, BinOp)
        assert cmp.evaluate({"a": 3}) is True
        assert cmp.evaluate({"a": 4}) is False

    def test_ordering_comparisons(self):
        env = {"a": 5}
        assert (L("a") < 6).evaluate(env)
        assert (L("a") <= 5).evaluate(env)
        assert (L("a") > 4).evaluate(env)
        assert (L("a") >= 6).evaluate(env) is False
        assert (L("a") != 4).evaluate(env)

    def test_boolean_connectives(self):
        env = {"a": 1, "b": 0}
        assert ((L("a") == 1) & (L("b") == 0)).evaluate(env)
        assert ((L("a") == 2) | (L("b") == 0)).evaluate(env)
        assert (~(L("a") == 2)).evaluate(env)

    def test_repr_is_readable(self):
        assert repr(L("a") + 1) == "(a + 1)"


class TestHelpers:
    def test_fn(self):
        double = fn("double", lambda v: v * 2, L("a"))
        assert double.evaluate({"a": 21}) == 42
        assert "double" in repr(double)

    def test_contains_and_set_ops(self):
        env = {"s": frozenset({1, 2})}
        assert contains(L("s"), 1).evaluate(env)
        assert not contains(L("s"), 5).evaluate(env)
        assert set_add(L("s"), 5).evaluate(env) == frozenset({1, 2, 5})
        assert set_remove(L("s"), 1).evaluate(env) == frozenset({2})

    def test_set_ops_return_frozensets(self):
        grown = set_add(Const(frozenset()), 1).evaluate({})
        assert isinstance(grown, frozenset), "values must stay hashable"

    def test_concat_builds_dynamic_names(self):
        assert concat("row_", L("k")).evaluate({"k": 7}) == "row_7"
