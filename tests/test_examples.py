"""Every example script must run clean — docs-adjacent code cannot rot.

The examples double as executable documentation (the README and the docs
link them), so each one is executed in a fresh interpreter exactly the way
a reader would run it (``PYTHONPATH=src python examples/<name>.py``) and
must exit 0 with output and no stderr noise.  New examples are picked up
automatically by the glob.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((ROOT / "examples").glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLES) >= 6, "the examples directory should not shrink silently"


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, str(script)],
        cwd=str(ROOT),
        env=env,
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, (
        f"{script.name} exited {result.returncode}\n"
        f"stdout:\n{result.stdout}\nstderr:\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{script.name} produced no output"
    assert not result.stderr.strip(), f"{script.name} wrote to stderr:\n{result.stderr}"
