"""The public API surface: everything advertised in README/__all__ works."""

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_readme_quickstart_runs(self):
        p = repro.ProgramBuilder("lost-update")
        for who in ("alice", "bob"):
            t = p.session(who).transaction("increment")
            t.read("a", "counter")
            t.write("counter", repro.L("a") + 1)
        program = p.build()

        @repro.assertion("someone observed the other's increment")
        def no_lost_update(outcome):
            return outcome.value("alice", "a") == 1 or outcome.value("bob", "a") == 1

        verdicts = {}
        for isolation in ("CC", "SI", "SER"):
            result = repro.ModelChecker(program, isolation=isolation).run(
                assertions=[no_lost_update]
            )
            verdicts[isolation] = result.ok
        assert verdicts == {"CC": False, "SI": True, "SER": True}

    def test_readme_history_checking_runs(self):
        b = repro.HistoryBuilder(["x"])
        t = b.txn("s")
        t.write("x", 1)
        t.commit()
        assert repro.get_level("SER").satisfies(b.build())

    def test_registered_levels_exposed(self):
        names = [level.name for level in repro.registered_levels()]
        assert names == [
            "TRUE", "RYW", "MR", "MW", "WFR", "SESSION",
            "RC", "BS-3", "RA", "CC", "PSI", "PC", "SI", "SER",
        ]

    def test_algorithm_helpers_exposed(self):
        p = repro.ProgramBuilder("tiny")
        p.session("s").transaction().write("x", 1)
        program = p.build()
        assert repro.explore_ce(program, "CC").stats.outputs == 1
        assert repro.explore_ce_star(program, "CC", "SER").stats.outputs == 1
        assert len(repro.dfs_baseline(program, "CC").histories) == 1
        assert len(repro.enumerate_histories(program, repro.get_level("CC")).histories) == 1
