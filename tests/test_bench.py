"""Tests for the benchmark harness (repro.bench) at toy sizes.

The shape assertions here mirror the claims the paper makes about Fig. 14
and Fig. 15; the full-size runs live under ``benchmarks/``.
"""

import pytest

from repro.bench import (
    ALGORITHMS,
    FIG14_ALGORITHMS,
    fig14,
    fig15_sessions,
    fig15_transactions,
    format_table,
    render_cactus,
    render_fig14,
    render_records_table,
    render_scaling,
    run_suite,
)
from repro.apps import application_suite


@pytest.fixture(scope="module")
def tiny_fig14():
    return fig14(sessions=2, txns_per_session=1, programs_per_app=2, timeout=30)


class TestHarness:
    def test_algorithm_registry_matches_paper(self):
        assert list(ALGORITHMS) == list(FIG14_ALGORITHMS)

    def test_run_suite_produces_record_per_pair(self):
        suite = application_suite(2, 1, programs_per_app=1)
        records = run_suite(suite, ["CC", "DFS(CC)"], timeout=30)
        assert set(records) == {"CC", "DFS(CC)"}
        for per_program in records.values():
            assert len(per_program) == len(suite)

    def test_records_have_memory_measurements(self):
        suite = application_suite(2, 1, programs_per_app=1)
        records = run_suite(suite, ["CC"], timeout=30)
        for record in records["CC"].values():
            assert record.peak_heap_bytes > 0
            assert record.seconds >= 0
            assert record.row()["program"] == record.program


class TestFig14Shape(object):
    def test_optimal_algorithms_agree_on_history_counts(self, tiny_fig14):
        """CC, CC+SI filtered counts ≤ CC; RA+CC etc. output the same CC set."""
        records = tiny_fig14.records
        for program in records["CC"]:
            cc = records["CC"][program]
            for other in ("RA+CC", "RC+CC", "true+CC"):
                assert records[other][program].histories == cc.histories, (program, other)
            assert records["CC+SI"][program].histories <= cc.histories
            assert records["CC+SER"][program].histories <= cc.histories

    def test_end_states_grow_as_base_weakens(self, tiny_fig14):
        records = tiny_fig14.records
        for program in records["CC"]:
            cc = records["CC"][program].end_states
            ra = records["RA+CC"][program].end_states
            rc = records["RC+CC"][program].end_states
            true_ = records["true+CC"][program].end_states
            assert cc <= ra <= rc <= true_, program

    def test_dfs_visits_at_least_as_many_end_states(self, tiny_fig14):
        records = tiny_fig14.records
        for program in records["CC"]:
            assert records["DFS(CC)"][program].end_states >= records["CC"][program].end_states

    def test_dfs_and_cc_agree_on_distinct_histories(self, tiny_fig14):
        records = tiny_fig14.records
        for program in records["CC"]:
            assert records["DFS(CC)"][program].histories == records["CC"][program].histories

    def test_cactus_series_sorted(self, tiny_fig14):
        for series in tiny_fig14.time.series.values():
            assert series == sorted(series)

    def test_strong_optimality_never_blocked(self, tiny_fig14):
        for algorithm in ("CC", "CC+SI", "CC+SER", "RA+CC", "RC+CC", "true+CC"):
            for record in tiny_fig14.records[algorithm].values():
                assert record.blocked == 0, (algorithm, record.program)


class TestFig15Shape:
    def test_sessions_scale_work_not_memory(self):
        points = fig15_sessions(max_sessions=3, txns_per_session=1, programs_per_app=1, timeout=30)
        assert [p.size for p in points] == [1, 2, 3]
        assert points[-1].avg_histories >= points[0].avg_histories

    def test_transactions_scaling(self):
        points = fig15_transactions(max_txns=3, sessions=2, programs_per_app=1, timeout=30)
        assert [p.size for p in points] == [1, 2, 3]
        assert points[-1].avg_seconds >= 0


class TestReporting:
    def test_format_table_aligns(self):
        text = format_table(["name", "n"], [["alpha", 1], ["b", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(map(len, lines))) == 1, "all rows padded to equal width"

    def test_render_cactus_mentions_algorithms(self, tiny_fig14):
        text = render_cactus(tiny_fig14.time)
        for algorithm in FIG14_ALGORITHMS:
            assert algorithm in text

    def test_render_fig14_contains_three_plots(self, tiny_fig14):
        text = render_fig14(tiny_fig14)
        assert text.count("cactus[") == 3

    def test_render_records_table(self, tiny_fig14):
        text = render_records_table(tiny_fig14.records)
        assert "histories" in text and "end states" in text

    def test_render_scaling(self):
        points = fig15_sessions(max_sessions=2, txns_per_session=1, programs_per_app=1, timeout=30)
        text = render_scaling(points, axis="sessions")
        assert "sessions" in text and "avg time (s)" in text
