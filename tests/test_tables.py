"""Unit tests for the SQL-table modelling (repro.apps.tables)."""

import pytest

from repro.apps.tables import Table
from repro.checking import ModelChecker
from repro.lang import L, Program, Transaction
from repro.lang.expr import contains


@pytest.fixture
def accounts():
    return Table("accounts", columns=("owner", "balance"), key_space=(1, 2))


class TestNaming:
    def test_variables(self, accounts):
        assert accounts.ids_var == "accounts__ids"
        assert accounts.row_var(1) == "accounts__row_1"
        assert set(accounts.variables()) == {
            "accounts__ids",
            "accounts__row_1",
            "accounts__row_2",
        }

    def test_requires_columns(self):
        with pytest.raises(ValueError):
            Table("empty", columns=(), key_space=(1,))


class TestRowHelpers:
    def test_row_tuple(self, accounts):
        assert accounts.row(owner="ann", balance=10) == ("ann", 10)
        assert accounts.row(owner="ann") == ("ann", 0), "missing columns default to 0"

    def test_row_rejects_unknown_columns(self, accounts):
        with pytest.raises(ValueError):
            accounts.row(color="red")

    def test_col_extraction(self, accounts):
        expr = accounts.col(L("r"), "balance")
        assert expr.evaluate({"r": ("ann", 42)}) == 42

    def test_updated(self, accounts):
        expr = accounts.updated(L("r"), balance=L("b") + 5)
        assert expr.evaluate({"r": ("ann", 10), "b": 10}) == ("ann", 15)

    def test_row_expr(self, accounts):
        expr = accounts.row_expr(owner="ann", balance=L("b"))
        assert expr.evaluate({"b": 3}) == ("ann", 3)


class TestStatementCompilation:
    def test_insert_reads_then_writes_set_and_row(self, accounts):
        instrs = accounts.insert(1, accounts.row(owner="ann", balance=5))
        kinds = [type(i).__name__ for i in instrs]
        assert kinds == ["Read", "Write", "Write"]
        assert instrs[0].var == accounts.ids_var
        assert instrs[2].var == accounts.row_var(1)

    def test_delete_touches_only_set(self, accounts):
        instrs = accounts.delete(1)
        assert [type(i).__name__ for i in instrs] == ["Read", "Write"]

    def test_select_where_guards_each_key(self, accounts):
        instrs = accounts.select_where("ids", "r")
        assert type(instrs[0]).__name__ == "Read"
        assert len(instrs) == 1 + len(accounts.key_space)

    def test_update_by_key(self, accounts):
        instrs = accounts.update_by_key(2, "r", balance=L("r") and 0 or 0)
        assert [type(i).__name__ for i in instrs] == ["Read", "Write"]


class TestEndToEnd:
    def test_insert_then_scan_under_ser(self, accounts):
        """One session inserts; a scanner sees either none or the full row."""
        insert = Transaction("ins", tuple(accounts.insert(1, accounts.row(owner="a", balance=7))))
        scan = Transaction("scan", tuple(accounts.select_where("ids", "r")))
        program = Program(
            {"writer": [insert], "scanner": [scan]},
            name="table-demo",
            extra_variables=accounts.variables(),
            initial_values={accounts.ids_var: frozenset()},
        )

        from repro.checking.assertions import Assertion

        def sees_consistent_row(outcome):
            ids = outcome.value("scanner", "ids")
            if 1 in ids:
                return outcome.value("scanner", "r_1") == ("a", 7)
            return True

        result = ModelChecker(program, isolation="SER").run(
            assertions=[Assertion("scan sees whole row", sees_consistent_row)]
        )
        assert result.ok
        assert result.history_count == 2, "insert before or after the scan"
