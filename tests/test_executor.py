"""Unit tests for transaction execution and replay (repro.semantics.executor)."""

import pytest

from repro.core.events import Event, EventId, EventType, TxnId
from repro.core.history import TransactionLog
from repro.lang import L, Transaction, abort, assign, if_, read, write
from repro.lang.expr import concat
from repro.semantics.executor import (
    AbortOp,
    CommitOp,
    ReadOp,
    ReplayMismatch,
    WriteOp,
    final_env,
    next_operation,
)

TID = TxnId("s", 0)


def log_with(*events):
    log = TransactionLog.begin(TID)
    for i, (kind, var, value, *rest) in enumerate(events, start=1):
        local = rest[0] if rest else False
        log = log.appended(Event(EventId(TID, i), kind, var, value, local=local))
    return log


class TestNextOperation:
    def test_fresh_transaction_yields_first_db_op(self):
        txn = Transaction("t", (assign("a", 1), write("x", L("a") + 1)))
        op, env = next_operation(txn, TransactionLog.begin(TID))
        assert op == WriteOp("x", 2)
        assert env["a"] == 1

    def test_read_then_dependent_write(self):
        txn = Transaction("t", (read("a", "x"), write("y", L("a") * 10)))
        log = log_with((EventType.READ, "x", 4))
        op, env = next_operation(txn, log)
        assert op == WriteOp("y", 40)
        assert env["a"] == 4

    def test_exhausted_body_commits(self):
        txn = Transaction("t", (write("x", 1),))
        log = log_with((EventType.WRITE, "x", 1))
        op, _ = next_operation(txn, log)
        assert op == CommitOp()

    def test_empty_body_commits_immediately(self):
        op, _ = next_operation(Transaction("t", ()), TransactionLog.begin(TID))
        assert op == CommitOp()

    def test_abort_instruction(self):
        txn = Transaction("t", (read("a", "x"), if_(L("a") == 0, then=[abort()]), write("y", 1)))
        taken = log_with((EventType.READ, "x", 0))
        op, _ = next_operation(txn, taken)
        assert op == AbortOp()
        not_taken = log_with((EventType.READ, "x", 5))
        op, _ = next_operation(txn, not_taken)
        assert op == WriteOp("y", 1)

    def test_if_else_branches(self):
        txn = Transaction(
            "t",
            (read("a", "x"), if_(L("a") == 0, then=[write("y", 1)], orelse=[write("z", 2)])),
        )
        op, _ = next_operation(txn, log_with((EventType.READ, "x", 0)))
        assert op == WriteOp("y", 1)
        op, _ = next_operation(txn, log_with((EventType.READ, "x", 9)))
        assert op == WriteOp("z", 2)

    def test_dynamic_variable_names(self):
        txn = Transaction("t", (read("k", "key"), write(concat("row_", L("k")), 1)))
        op, _ = next_operation(txn, log_with((EventType.READ, "key", 7)))
        assert op == WriteOp("row_7", 1)

    def test_replay_is_value_sensitive(self):
        """Replaying a different recorded value changes the continuation."""
        txn = Transaction("t", (read("a", "x"), if_(L("a") == 1, then=[write("y", 1)])))
        op1, _ = next_operation(txn, log_with((EventType.READ, "x", 1)))
        op2, _ = next_operation(txn, log_with((EventType.READ, "x", 2)))
        assert op1 == WriteOp("y", 1)
        assert op2 == CommitOp()

    def test_complete_log_rejected(self):
        log = log_with((EventType.COMMIT, None, None))
        with pytest.raises(ValueError):
            next_operation(Transaction("t", ()), log)

    def test_mismatched_recorded_event_raises(self):
        txn = Transaction("t", (write("x", 1),))
        log = log_with((EventType.WRITE, "y", 1))
        with pytest.raises(ReplayMismatch):
            next_operation(txn, log)

    def test_too_many_recorded_events_raise(self):
        txn = Transaction("t", (write("x", 1),))
        log = log_with((EventType.WRITE, "x", 1), (EventType.WRITE, "x", 2))
        with pytest.raises(ReplayMismatch):
            next_operation(txn, log)


class TestFinalEnv:
    def test_locals_after_commit(self):
        txn = Transaction("t", (read("a", "x"), assign("b", L("a") + 1)))
        log = log_with((EventType.READ, "x", 2), (EventType.COMMIT, None, None))
        env = final_env(txn, log)
        assert env == {"a": 2, "b": 3}

    def test_locals_of_aborted_txn(self):
        txn = Transaction("t", (read("a", "x"), if_(L("a") == 0, then=[abort()]), assign("b", 1)))
        log = log_with((EventType.READ, "x", 0), (EventType.ABORT, None, None))
        env = final_env(txn, log)
        assert env == {"a": 0}, "instructions after abort never ran"

    def test_local_reads_replay_too(self):
        txn = Transaction("t", (write("x", 5), read("a", "x")))
        log = log_with(
            (EventType.WRITE, "x", 5),
            (EventType.READ, "x", 5, True),
            (EventType.COMMIT, None, None),
        )
        assert final_env(txn, log)["a"] == 5
