"""Unit tests for the declarative HistoryBuilder (repro.core.hbuilder)."""

import pytest

from repro.core import HistoryBuilder, INIT_TXN
from repro.core.events import EventType


class TestBuilding:
    def test_reads_resolve_values_from_sources(self):
        b = HistoryBuilder(["x"])
        t1 = b.txn("a")
        t1.write("x", 7)
        t1.commit()
        t2 = b.txn("b")
        t2.read("x", source=t1)
        t2.commit()
        h = b.build()
        read = h.txns[t2.tid].reads()[0]
        assert read.value == 7
        assert h.wr[read.eid] == t1.tid

    def test_read_from_init_gets_initial_value(self):
        b = HistoryBuilder(["x"], initial_value=42)
        t = b.txn("a")
        t.read("x", source=b.init)
        h = b.build()
        assert h.txns[t.tid].reads()[0].value == 42

    def test_local_read_needs_no_source(self):
        b = HistoryBuilder(["x"])
        t = b.txn("a")
        t.write("x", 3)
        t.read("x")
        h = b.build()
        read = [e for e in h.txns[t.tid].events if e.type is EventType.READ][0]
        assert read.local and read.value == 3
        assert read.eid not in h.wr

    def test_forward_declared_source(self):
        """Sources may be declared in any order as long as build-time resolves."""
        b = HistoryBuilder(["x"])
        t2 = b.txn("b")
        w = b.txn("a")
        w.write("x", 1)
        w.commit()
        t2.read("x", source=w)
        t2.commit()
        h = b.build()
        assert h.wr[h.txns[t2.tid].reads()[0].eid] == w.tid

    def test_auto_commit_default(self):
        b = HistoryBuilder(["x"])
        t = b.txn("a")
        t.write("x", 1)
        h = b.build()
        assert h.txns[t.tid].is_committed

    def test_pending_without_auto_commit(self):
        b = HistoryBuilder(["x"])
        t = b.txn("a")
        t.write("x", 1)
        h = b.build(auto_commit=False)
        assert h.txns[t.tid].is_pending

    def test_session_order(self):
        b = HistoryBuilder(["x"])
        first = b.txn("s")
        first.commit()
        second = b.txn("s")
        second.commit()
        h = b.build()
        assert h.sessions["s"] == (first.tid, second.tid)
        assert h.so_before(first.tid, second.tid)


class TestBuilderErrors:
    def test_external_read_requires_source(self):
        b = HistoryBuilder(["x"])
        t = b.txn("a")
        with pytest.raises(ValueError):
            t.read("x")

    def test_local_read_rejects_source(self):
        b = HistoryBuilder(["x"])
        t = b.txn("a")
        t.write("x", 1)
        with pytest.raises(ValueError):
            t.read("x", source=b.init)

    def test_cannot_extend_completed_txn(self):
        b = HistoryBuilder(["x"])
        t = b.txn("a")
        t.commit()
        with pytest.raises(ValueError):
            t.write("x", 1)

    def test_source_must_write_variable(self):
        b = HistoryBuilder(["x", "y"])
        w = b.txn("a")
        w.write("x", 1)
        w.commit()
        r = b.txn("b")
        r.read("y", source=w)
        with pytest.raises(KeyError):
            b.build()

    def test_reading_from_aborted_txn_fails_validation(self):
        b = HistoryBuilder(["x"])
        w = b.txn("a")
        w.write("x", 1)
        w.abort()
        r = b.txn("b")
        r.read("x", source=w)
        with pytest.raises((KeyError, AssertionError)):
            b.build()
