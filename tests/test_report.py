"""Tests for the cross-level comparison report (repro.checking.report)."""

import pytest

from repro import L, ProgramBuilder, assertion
from repro.checking.report import compare_levels

from tests.test_checker import lost_update_program, no_lost_update


class TestCompareLevels:
    def test_weakest_correct_level_for_lost_update(self):
        comparison = compare_levels(lost_update_program(), [no_lost_update])
        assert comparison.weakest_correct_level() == "SI"
        assert not comparison.results["CC"].ok
        assert comparison.results["SER"].ok

    def test_write_skew_needs_ser(self):
        from repro.apps import courseware

        program = courseware.capacity_violation_program(capacity=1)
        check = courseware.capacity_assertion("auditor", capacity=1)
        comparison = compare_levels(program, [check])
        assert comparison.weakest_correct_level() == "SER"

    def test_always_true_assertion_holds_at_rc(self):
        @assertion("trivially true")
        def trivial(outcome):
            return True

        comparison = compare_levels(lost_update_program(), [trivial])
        assert comparison.weakest_correct_level() == "RC"

    def test_never_correct_returns_none(self):
        @assertion("never")
        def never(outcome):
            return False

        comparison = compare_levels(lost_update_program(), [never])
        assert comparison.weakest_correct_level() is None

    def test_render_contains_everything(self):
        comparison = compare_levels(lost_update_program(), [no_lost_update])
        text = comparison.render()
        assert "weakest correct level: SI" in text
        for level in ("RC", "RA", "CC", "SI", "SER"):
            assert level in text

    def test_unordered_ladder_rejected(self):
        with pytest.raises(ValueError):
            compare_levels(lost_update_program(), [no_lost_update], levels=("SER", "RC"))

    def test_history_counts_shrink_up_the_ladder(self):
        comparison = compare_levels(lost_update_program(), [no_lost_update])
        counts = [comparison.results[l].history_count for l in ("RC", "RA", "CC", "SI", "SER")]
        assert all(a >= b for a, b in zip(counts, counts[1:])), counts
