"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main

PROGRAM = """
session w { transaction { write(x, 2); write(y, 2); } }
session r { transaction { a := read(x); b := read(y); } }
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "demo.txn"
    path.write_text(PROGRAM)
    return str(path)


class TestCheck:
    def test_counts_and_stats(self, program_file, capsys):
        code = main(["check", program_file, "--isolation", "RC"])
        out = capsys.readouterr().out
        assert code == 0
        assert "3 histories" in out
        assert "explore calls" in out

    def test_show_histories(self, program_file, capsys):
        main(["check", program_file, "--isolation", "CC", "--show-histories"])
        out = capsys.readouterr().out
        assert out.count("history #") == 2
        assert "read(x)" in out

    def test_dfs_method(self, program_file, capsys):
        main(["check", program_file, "--isolation", "CC", "--method", "dfs"])
        assert "DFS(CC)" in capsys.readouterr().out

    def test_dot_export(self, program_file, tmp_path, capsys):
        prefix = str(tmp_path / "h")
        main(["check", program_file, "--isolation", "SER", "--dot", prefix])
        assert (tmp_path / "h-0.dot").exists()
        assert (tmp_path / "h-1.dot").exists()
        assert "digraph history" in (tmp_path / "h-0.dot").read_text()

    def test_missing_file(self, capsys):
        with pytest.raises(SystemExit):
            main(["check", "/does/not/exist.txn"])

    def test_parse_error_reported(self, tmp_path):
        bad = tmp_path / "bad.txn"
        bad.write_text("session { }")
        with pytest.raises(SystemExit):
            main(["check", str(bad)])


class TestCompare:
    def test_ladder_output(self, program_file, capsys):
        code = main(["compare", program_file])
        out = capsys.readouterr().out
        assert code == 0
        for level in ("RC", "RA", "CC", "SI", "SER"):
            assert level in out
        assert "anomalies" in out


class TestBench:
    def test_tiny_bench_run(self, capsys):
        code = main(["bench", "--sessions", "2", "--txns", "1", "--programs", "1", "--timeout", "20"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("cactus[") == 3
        assert "DFS(CC)" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
