"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main

PROGRAM = """
session w { transaction { write(x, 2); write(y, 2); } }
session r { transaction { a := read(x); b := read(y); } }
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "demo.txn"
    path.write_text(PROGRAM)
    return str(path)


class TestCheck:
    def test_counts_and_stats(self, program_file, capsys):
        code = main(["check", program_file, "--isolation", "RC"])
        out = capsys.readouterr().out
        assert code == 0
        assert "3 histories" in out
        assert "explore calls" in out

    def test_show_histories(self, program_file, capsys):
        main(["check", program_file, "--isolation", "CC", "--show-histories"])
        out = capsys.readouterr().out
        assert out.count("history #") == 2
        assert "read(x)" in out

    def test_dfs_method(self, program_file, capsys):
        main(["check", program_file, "--isolation", "CC", "--method", "dfs"])
        assert "DFS(CC)" in capsys.readouterr().out

    def test_dot_export(self, program_file, tmp_path, capsys):
        prefix = str(tmp_path / "h")
        main(["check", program_file, "--isolation", "SER", "--dot", prefix])
        assert (tmp_path / "h-0.dot").exists()
        assert (tmp_path / "h-1.dot").exists()
        assert "digraph history" in (tmp_path / "h-0.dot").read_text()

    def test_missing_file(self, capsys):
        with pytest.raises(SystemExit):
            main(["check", "/does/not/exist.txn"])

    def test_parse_error_reported(self, tmp_path):
        bad = tmp_path / "bad.txn"
        bad.write_text("session { }")
        with pytest.raises(SystemExit):
            main(["check", str(bad)])


class TestCompare:
    def test_ladder_output(self, program_file, capsys):
        code = main(["compare", program_file])
        out = capsys.readouterr().out
        assert code == 0
        for level in ("RC", "RA", "CC", "SI", "SER"):
            assert level in out
        assert "anomalies" in out


class TestBench:
    def test_tiny_bench_run(self, capsys):
        code = main(["bench", "--sessions", "2", "--txns", "1", "--programs", "1", "--timeout", "20"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("cactus[") == 3
        assert "DFS(CC)" in out


class TestBenchDiff:
    @staticmethod
    def _write(path, cases):
        import json

        path.write_text(json.dumps({"schema": "repro-bench-v1", "cases": cases}))

    def test_file_pair_speedups_and_exit_zero(self, tmp_path, capsys):
        base, curr = tmp_path / "BENCH_a.json", tmp_path / "BENCH_b.json"
        self._write(base, [{"name": "c1", "seconds": 2.0}, {"name": "c2", "seconds": 1.0}])
        self._write(curr, [{"name": "c1", "seconds": 1.0}, {"name": "c2", "seconds": 1.0}])
        code = main(["bench", "diff", str(base), str(curr)])
        out = capsys.readouterr().out
        assert code == 0
        assert "2.00x" in out and "geomean speedup 1.41x" in out

    def test_regression_exits_nonzero(self, tmp_path, capsys):
        base, curr = tmp_path / "BENCH_a.json", tmp_path / "BENCH_b.json"
        self._write(base, [{"name": "c1", "seconds": 1.0}])
        self._write(curr, [{"name": "c1", "seconds": 2.0}])
        code = main(["bench", "diff", str(base), str(curr)])
        out = capsys.readouterr().out
        assert code == 1
        assert "REGRESSION" in out and "1 case(s) regressed" in out

    def test_threshold_overrides_regression(self, tmp_path, capsys):
        base, curr = tmp_path / "BENCH_a.json", tmp_path / "BENCH_b.json"
        self._write(base, [{"name": "c1", "seconds": 1.0}])
        self._write(curr, [{"name": "c1", "seconds": 2.0}])
        assert main(["bench", "diff", str(base), str(curr), "--threshold", "0.4"]) == 0
        capsys.readouterr()

    def test_directory_pair_matches_by_name(self, tmp_path, capsys):
        b_dir, c_dir = tmp_path / "base", tmp_path / "curr"
        b_dir.mkdir(), c_dir.mkdir()
        self._write(b_dir / "BENCH_x.json", [{"name": "c", "seconds": 3.0}])
        self._write(c_dir / "BENCH_x.json", [{"name": "c", "seconds": 1.0}])
        self._write(b_dir / "BENCH_only_base.json", [{"name": "c", "seconds": 1.0}])
        code = main(["bench", "diff", str(b_dir), str(c_dir)])
        out = capsys.readouterr().out
        assert code == 0
        assert "BENCH_x" in out and "3.00x" in out
        assert "only_base" not in out

    def test_timeouts_are_skipped(self, tmp_path, capsys):
        base, curr = tmp_path / "BENCH_a.json", tmp_path / "BENCH_b.json"
        self._write(base, [{"name": "c1", "seconds": 30.0, "timed_out": True}])
        self._write(curr, [{"name": "c1", "seconds": 0.1}])
        code = main(["bench", "diff", str(base), str(curr)])
        out = capsys.readouterr().out
        assert code == 0
        assert "skipped (timeout" in out

    def test_bad_file_is_an_error(self, tmp_path):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("{}")
        good = tmp_path / "BENCH_good.json"
        self._write(good, [])
        with pytest.raises(SystemExit):
            main(["bench", "diff", str(bad), str(good)])


class TestRecordReplay:
    def test_record_then_replay_round_trips(self, program_file, tmp_path, capsys):
        """Acceptance: `repro replay` round-trips a trace from `repro record`."""
        path = str(tmp_path / "run.trace.jsonl")
        assert main(["record", program_file, "--isolation", "CC", "--out", path]) == 0
        assert "wrote" in capsys.readouterr().out

        from repro.trace import Trace

        trace = Trace.load(path)
        assert trace.header.meta["isolation"] == "CC"
        assert len(trace) > 0

        assert main(["replay", path]) == 0
        out = capsys.readouterr().out
        for level in ("RC", "RA", "CC", "SI", "SER"):
            assert level in out
        assert "VIOLATION" not in out

    def test_record_to_stdout(self, program_file, capsys):
        assert main(["record", program_file, "--out", "-"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith('{"format": "repro-trace"')

    def test_record_index_selects_distinct_histories(self, program_file, tmp_path, capsys):
        first = str(tmp_path / "h0.jsonl")
        second = str(tmp_path / "h1.jsonl")
        main(["record", program_file, "--isolation", "RC", "--index", "0", "--out", first])
        main(["record", program_file, "--isolation", "RC", "--index", "1", "--out", second])
        capsys.readouterr()
        from repro.trace import Trace

        k0 = Trace.load(first).to_history().canonical_key()
        k1 = Trace.load(second).to_history().canonical_key()
        assert k0 != k1

    def test_record_index_out_of_range(self, program_file, capsys):
        with pytest.raises(SystemExit):
            main(["record", program_file, "--isolation", "SER", "--index", "99", "--out", "-"])

    def test_record_requires_exactly_one_source(self, program_file):
        with pytest.raises(SystemExit):
            main(["record", "--out", "-"])
        with pytest.raises(SystemExit):
            main(["record", program_file, "--app", "twitter", "--out", "-"])

    def test_record_app_workload(self, tmp_path, capsys):
        path = str(tmp_path / "app.trace.jsonl")
        code = main(["record", "--app", "shoppingCart", "--sessions", "2", "--txns", "1",
                     "--isolation", "CC", "--out", path])
        assert code == 0
        capsys.readouterr()
        assert main(["replay", path, "--isolation", "CC"]) == 0
        assert "consistent" in capsys.readouterr().out

    def test_replay_online_reports_first_violation(self, tmp_path, capsys):
        from repro.trace import gadget_traces

        path = str(tmp_path / "cc.trace.jsonl")
        gadget_traces()["cc_violation"].dump(path)
        code = main(["replay", path, "--online"])
        out = capsys.readouterr().out
        assert code == 1, "a violated level must set the exit code"
        assert "first observed at event #" in out
        assert "RC  : consistent" in out

    def test_replay_single_level_exit_codes(self, tmp_path, capsys):
        from repro.trace import gadget_traces

        path = str(tmp_path / "skew.trace.jsonl")
        gadget_traces()["ser_violation"].dump(path)
        assert main(["replay", path, "--isolation", "SI"]) == 0
        assert main(["replay", path, "--isolation", "SER"]) == 1
        assert main(["replay", path, "--isolation", "serializable"]) == 1
        capsys.readouterr()

    def test_replay_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        with pytest.raises(SystemExit):
            main(["replay", str(bad)])
        with pytest.raises(SystemExit):
            main(["replay", str(tmp_path / "missing.jsonl")])

    def test_replay_rejects_bad_event_order_cleanly(self, tmp_path):
        """Valid JSON whose events violate the order rules must exit via a
        clean error on both the batch and online paths, not a traceback."""
        import json

        bad = tmp_path / "order.jsonl"
        bad.write_text(
            json.dumps({"type": "header", "format": "repro-trace", "version": 1,
                        "variables": ["x"]})
            + "\n"
            + json.dumps({"type": "write", "session": "s", "txn": 0,
                          "var": "x", "value": 1})
            + "\n"
        )
        with pytest.raises(SystemExit, match="missing begin"):
            main(["replay", str(bad)])
        with pytest.raises(SystemExit, match="missing begin"):
            main(["replay", str(bad), "--online"])

    def test_replay_online_supports_every_registered_level(self, tmp_path):
        """The registry made every level online-checkable — TRUE included."""
        from repro.trace import gadget_traces

        path = str(tmp_path / "t.jsonl")
        gadget_traces()["lost_update"].dump(path)
        assert main(["replay", path, "--isolation", "TRUE"]) == 0  # batch ok
        assert main(["replay", path, "--isolation", "TRUE", "--online"]) == 0
        # lost_update violates PSI (and SI): detection is exit code 1.
        assert main(["replay", path, "--isolation", "PSI", "--online"]) == 1
        # write skew satisfies everything below SER, online included.
        skew = str(tmp_path / "skew.jsonl")
        gadget_traces()["ser_violation"].dump(skew)
        for level in ("SESSION", "PSI", "PC", "BS-3"):
            assert main(["replay", skew, "--isolation", level, "--online"]) == 0

    def test_replay_unknown_level(self, tmp_path, capsys):
        from repro.trace import gadget_traces

        path = str(tmp_path / "t.jsonl")
        gadget_traces()["lost_update"].dump(path)
        with pytest.raises(SystemExit):
            main(["replay", path, "--isolation", "BOGUS"])


class TestDifftest:
    def test_honest_config_passes_and_traces_replay_clean(self, tmp_path, capsys):
        """Round trip: difftest run → trace files → replay --online exits 0."""
        out = str(tmp_path / "traces")
        code = main(["difftest", "--config", "serializable", "--app", "hotkeys",
                     "--seeds", "3", "--threads", "2", "--txns", "2", "--out", out])
        stdout = capsys.readouterr().out
        assert code == 0
        assert "upheld their claimed isolation levels" in stdout
        assert "LYING" not in stdout
        traces = sorted((tmp_path / "traces").glob("*.trace.jsonl"))
        assert len(traces) == 3
        for path in traces:
            assert main(["replay", str(path), "--online"]) == 0
        capsys.readouterr()

    def test_seeded_bug_config_fails_and_a_trace_replays_dirty(self, tmp_path, capsys):
        """A bugged config must exit 1, and at least one recorded trace must
        independently fail `repro replay --online` at the claimed level."""
        out = str(tmp_path / "traces")
        code = main(["difftest", "--config", "first_committer_loses",
                     "--app", "demo:first_committer_loses",
                     "--seeds", "6", "--threads", "2", "--txns", "1", "--out", out])
        stdout = capsys.readouterr().out
        assert code == 1
        assert "LYING" in stdout
        assert "first SI violation" in stdout
        replay_codes = set()
        for path in sorted((tmp_path / "traces").glob("*.trace.jsonl")):
            replay_codes.add(main(["replay", str(path), "--isolation", "SI", "--online"]))
        capsys.readouterr()
        assert 1 in replay_codes, "no recorded trace reproduces the violation"

    def test_single_seed_is_deterministic(self, tmp_path, capsys):
        paths = []
        for attempt in ("a", "b"):
            out = str(tmp_path / attempt)
            assert main(["difftest", "--config", "serializable", "--app", "increments",
                         "--seed", "7", "--out", out]) == 0
            paths.append(next((tmp_path / attempt).glob("*.trace.jsonl")))
        capsys.readouterr()
        assert paths[0].read_text() == paths[1].read_text()

    def test_unknown_config_and_workload_rejected(self, capsys):
        with pytest.raises(SystemExit, match="unknown engine config"):
            main(["difftest", "--config", "eventually-consistent"])
        with pytest.raises(SystemExit, match="unknown workload"):
            main(["difftest", "--config", "serializable", "--app", "nosuch"])


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestMonitor:
    """`repro record | repro monitor --stdin` round trips, end to end."""

    def _pipe(self, monkeypatch, text, argv):
        """Feed ``text`` as the monitor's stdin and run the CLI."""
        import io
        import sys as _sys

        monkeypatch.setattr(_sys, "stdin", io.StringIO(text))
        return main(argv)

    def test_honest_workload_is_consistent(self, monkeypatch, capsys):
        """Acceptance: an honest recorded app workload monitors clean."""
        assert main(["record", "--app", "twitter", "--sessions", "2",
                     "--txns", "2", "--seed", "1", "--out", "-"]) == 0
        trace_text = capsys.readouterr().out
        code = self._pipe(
            monkeypatch, trace_text,
            ["monitor", "--stdin", "--isolation", "RC",
             "--window", "1", "--gc-every", "1", "--evict-batch", "1"],
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "RC: consistent" in out

    def test_bugged_engine_trace_is_caught(self, monkeypatch, capsys):
        """A dirty-read trace from the seeded-bug engine exits 1 with the
        violating event named.  Seed 3 deterministically exhibits
        early_release's dirty read on this demo workload."""
        from repro.engine import SEEDED_BUGS, run_program
        from repro.engine.harness import BUG_DEMOS

        run = run_program(
            BUG_DEMOS["early_release"](),
            SEEDED_BUGS["early_release"].config(),
            seed=3,
            name="demo:early_release#s3",
        )
        code = self._pipe(
            monkeypatch, run.trace.dumps(),
            ["monitor", "--stdin", "--isolation", "RC"],
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "VIOLATION" in out
        assert "first violated at event #" in out

    def test_gadget_over_socket_port(self, capsys):
        """--port serves one connection's stream and propagates the verdict."""
        import socket
        import threading

        from repro.trace import gadget_traces

        payload = gadget_traces()["ser_violation"].dumps()
        box = {}

        # Bind-then-connect without a race: grab a free port first.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()

        def _run_fixed():
            box["code"] = main(["monitor", "--port", str(port), "--isolation", "SER"])

        server = threading.Thread(target=_run_fixed, daemon=True)
        server.start()
        for _ in range(100):
            try:
                conn = socket.create_connection(("127.0.0.1", port), timeout=5)
                break
            except OSError:
                import time

                time.sleep(0.05)
        else:
            pytest.fail("monitor --port never started listening")
        with conn:
            conn.sendall(payload.encode("utf-8"))
        server.join(timeout=10)
        assert not server.is_alive()
        out = capsys.readouterr().out
        assert box["code"] == 1
        assert "VIOLATION" in out

    def test_requires_exactly_one_input(self):
        with pytest.raises(SystemExit):
            main(["monitor", "--isolation", "RC"])
        with pytest.raises(SystemExit):
            main(["monitor", "--stdin", "--port", "9", "--isolation", "RC"])

    def test_unknown_level_rejected(self, monkeypatch):
        with pytest.raises(SystemExit):
            self._pipe(monkeypatch, "", ["monitor", "--stdin", "--isolation", "XX"])

    def test_assume_fresh_rejected_off_rc(self, monkeypatch):
        with pytest.raises(SystemExit):
            self._pipe(
                monkeypatch, "",
                ["monitor", "--stdin", "--isolation", "SER", "--stale", "assume-fresh"],
            )

    def test_garbage_stream_rejected(self, monkeypatch):
        with pytest.raises(SystemExit):
            self._pipe(monkeypatch, "not json\n", ["monitor", "--stdin"])

    def test_stats_lines_on_stderr(self, monkeypatch, capsys):
        from repro.trace import gadget_traces

        trace_text = gadget_traces()["rc_violation"].dumps()
        code = self._pipe(
            monkeypatch, trace_text,
            ["monitor", "--stdin", "--isolation", "RC", "--stats-every", "2"],
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "[monitor] events=" in captured.err
