"""Unit tests for the event/identifier layer (repro.core.events)."""

from repro.core.events import (
    INIT_SESSION,
    INIT_TXN,
    Event,
    EventId,
    EventType,
    TxnId,
)


class TestTxnId:
    def test_ordering_is_lexicographic(self):
        assert TxnId("a", 0) < TxnId("a", 1) < TxnId("b", 0)

    def test_init_detection(self):
        assert INIT_TXN.is_init
        assert INIT_TXN.session == INIT_SESSION
        assert not TxnId("s1", 0).is_init

    def test_hashable_and_equal_by_value(self):
        assert TxnId("s", 3) == TxnId("s", 3)
        assert len({TxnId("s", 3), TxnId("s", 3)}) == 1


class TestEventId:
    def test_ordering_follows_po_within_txn(self):
        t = TxnId("s", 0)
        assert EventId(t, 0) < EventId(t, 1)

    def test_carries_owner(self):
        eid = EventId(TxnId("s", 2), 5)
        assert eid.txn.index == 2 and eid.pos == 5


class TestEvent:
    def test_external_read_flag(self):
        eid = EventId(TxnId("s", 0), 1)
        external = Event(eid, EventType.READ, "x", 7)
        local = Event(eid, EventType.READ, "x", 7, local=True)
        write = Event(eid, EventType.WRITE, "x", 7)
        assert external.is_external_read
        assert not local.is_external_read
        assert not write.is_external_read

    def test_with_value_preserves_identity(self):
        eid = EventId(TxnId("s", 0), 1)
        event = Event(eid, EventType.READ, "x", 1)
        other = event.with_value(9)
        assert other.value == 9
        assert other.eid == eid and other.type is EventType.READ and other.var == "x"
        assert event.value == 1, "events are immutable"

    def test_begin_commit_have_no_var(self):
        eid = EventId(TxnId("s", 0), 0)
        for kind in (EventType.BEGIN, EventType.COMMIT, EventType.ABORT):
            event = Event(eid, kind)
            assert event.var is None and event.value is None
