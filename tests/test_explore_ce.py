"""Theorem 5.1 end-to-end: explore-ce is sound, complete, strongly optimal
and polynomial-space, for every prefix-closed causally-extensible level.

Ground truth is the exhaustive DFS enumeration of the operational semantics
(deduplicated up to read-from equivalence).
"""

import random

import pytest

from repro.dpor import explore_ce
from repro.isolation import get_level

from tests.helpers import (
    PAPER_PROGRAMS,
    assert_explore_matches_reference,
    fig10_program,
    fig11_program,
    fig12_program,
    random_program,
)

CE_LEVELS = ("RC", "RA", "CC", "TRUE")


@pytest.mark.parametrize("make_program", PAPER_PROGRAMS, ids=lambda f: f.__name__)
@pytest.mark.parametrize("level", CE_LEVELS)
def test_paper_programs_match_reference(make_program, level):
    program = make_program()
    result = explore_ce(program, level, check_invariants=True)
    assert_explore_matches_reference(program, level, result)
    assert result.stats.blocked == 0, "strong optimality: never blocked"


class TestStrongOptimality:
    def test_every_explore_call_sees_consistent_history(self):
        """check_invariants asserts consistency inside every call."""
        for level in CE_LEVELS:
            explore_ce(fig12_program(), level, check_invariants=True)

    def test_outputs_equal_end_states(self):
        """explore-ce has Valid ≡ true: nothing is filtered."""
        result = explore_ce(fig12_program(), "CC")
        assert result.stats.outputs == result.stats.end_states
        assert result.stats.filtered == 0

    def test_no_duplicate_outputs(self):
        for make in PAPER_PROGRAMS:
            result = explore_ce(make(), "CC")
            assert result.histories.duplicates == 0, make.__name__

    def test_rejects_non_causally_extensible_levels(self):
        with pytest.raises(ValueError):
            explore_ce(fig10_program(), "SER")
        with pytest.raises(ValueError):
            explore_ce(fig10_program(), "SI")


class TestDeterminism:
    def test_two_runs_agree_exactly(self):
        p = fig11_program()
        r1 = explore_ce(p, "CC")
        r2 = explore_ce(p, "CC")
        assert set(r1.histories.keys()) == set(r2.histories.keys())
        assert r1.stats.explore_calls == r2.stats.explore_calls
        assert r1.stats.swaps_applied == r2.stats.swaps_applied


class TestLevelMonotonicity:
    def test_stronger_levels_explore_fewer_histories(self):
        p = fig12_program()
        counts = {level: explore_ce(p, level).distinct_histories for level in CE_LEVELS}
        assert counts["CC"] <= counts["RA"] <= counts["RC"] <= counts["TRUE"]

    def test_cc_histories_subset_of_rc(self):
        p = fig12_program()
        cc = explore_ce(p, "CC").histories
        rc = explore_ce(p, "RC").histories
        only_cc, _ = cc.symmetric_difference(rc)
        assert not only_cc


class TestAbortHandling:
    def test_fig11_aborted_branch_revived_by_swap(self):
        """In Fig. 11 the left transaction aborts when x = 0 but commits
        after the swap makes it read x = 4 — both behaviours must appear."""
        result = explore_ce(fig11_program(), "CC", check_invariants=True)
        from repro.core.events import TxnId

        t1 = TxnId("s1", 0)
        statuses = {result_history.txns[t1].is_aborted for result_history in result.histories}
        assert statuses == {True, False}


class TestPolynomialSpace:
    def test_live_events_grow_polynomially(self):
        """Peak live events on the work stack stays far below total work.

        The end-state count grows combinatorially with sessions while the
        work-stack footprint stays near-linear — the observable consequence
        of the polynomial-space claim.
        """
        from repro.lang import ProgramBuilder

        def reader_writer_program(n):
            p = ProgramBuilder(f"rw{n}")
            for i in range(n):
                p.session(f"w{i}").transaction().write("x", i + 1)
                p.session(f"r{i}").transaction().read("a", "x")
            return p.build()

        small = explore_ce(reader_writer_program(2), "CC", collect_histories=False)
        large = explore_ce(reader_writer_program(3), "CC", collect_histories=False)
        work_growth = large.stats.explore_calls / small.stats.explore_calls
        space_growth = large.stats.peak_live_events / small.stats.peak_live_events
        assert space_growth < work_growth, (space_growth, work_growth)


class TestRandomSweep:
    @pytest.mark.parametrize("seed", range(0, 40))
    def test_random_programs_all_levels(self, seed):
        rng = random.Random(seed * 7919)
        program = random_program(rng, name=f"rnd{seed}")
        for level in CE_LEVELS:
            result = explore_ce(program, level, check_invariants=True)
            assert_explore_matches_reference(program, level, result)
            assert result.stats.blocked == 0
