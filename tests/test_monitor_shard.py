"""Sharded-monitor tests: routing, merging, fork/inline agreement.

The sharding contract (see :mod:`repro.monitor.shard`): ``shards=1`` is
exact and equals a plain :class:`Monitor`; with more shards every verdict
of *violation* is real (soundness), single-variable anomalies are always
found (all ops on one variable land on one shard), and the forked
process mode must agree bit-for-bit with the inline mode because each
shard worker sees the identical event subsequence either way.
"""

import threading

import pytest

from repro.dpor.parallel import _forkable
from repro.monitor import Monitor, MonitorConfig, ShardedMonitor, serve
from repro.monitor.shard import shard_of
from repro.trace import Trace, fuzz_history, fuzz_stream, gadget_traces

TIGHT = dict(window=1, gc_every=1, evict_batch=1)


def _stream(seed, events=400, sessions=4):
    return fuzz_stream(seed=seed, events=events, sessions=sessions, staleness=3)


class TestShardOf:
    def test_deterministic_and_in_range(self):
        for shards in (1, 2, 3, 8):
            for var in ("x", "y", "key-123", ""):
                owner = shard_of(var, shards)
                assert 0 <= owner < shards
                assert owner == shard_of(var, shards)

    def test_one_shard_owns_everything(self):
        assert all(shard_of(v, 1) == 0 for v in ("x", "y", "z"))


class TestSingleShardIsExact:
    """shards=1 must reproduce the plain Monitor verbatim."""

    @pytest.mark.parametrize("name", sorted(gadget_traces()))
    def test_matches_monitor_on_gadgets(self, name):
        trace = gadget_traces()[name]
        config = MonitorConfig(isolation="SER", **TIGHT)
        plain = Monitor(trace.header, config).run(trace.events)
        sharded = ShardedMonitor(
            trace.header, config, shards=1, processes=False
        ).run(trace.events)
        assert sharded.ok == plain.ok
        assert sharded.exit_code == plain.exit_code
        assert sharded.stats.events == plain.stats.events
        assert sharded.stats.violated == plain.stats.violated
        if plain.first_violation is None:
            assert sharded.first_violation is None
        else:
            assert sharded.first_violation is not None
            assert sharded.first_violation.index == plain.first_violation.index
            assert sharded.first_violation.event == plain.first_violation.event


class TestShardedRouting:
    def test_single_variable_violation_survives_sharding(self):
        """lost_update lives entirely on ``x``: every shard count finds it
        at the same global event index as the unsharded monitor."""
        trace = gadget_traces()["lost_update"]
        config = MonitorConfig(isolation="SER", **TIGHT)
        plain = Monitor(trace.header, config).run(trace.events)
        assert not plain.ok
        for shards in (2, 3, 5):
            report = ShardedMonitor(
                trace.header, config, shards=shards, processes=False
            ).run(trace.events)
            assert not report.ok
            assert report.exit_code == 1
            assert report.first_violation is not None
            assert report.first_violation.index == plain.first_violation.index
            assert report.first_violation.event == plain.first_violation.event

    def test_sharded_verdicts_are_sound(self):
        """A sharded violation is always a real one: on fuzzed streams the
        set of violating seeds under sharding is a subset of the exact
        monitor's (projection only ever *removes* axiom instances)."""
        config = MonitorConfig(isolation="RC", mode="assume-fresh", **TIGHT)
        for seed in range(6):
            header, events = _stream(seed)
            events = list(events)
            exact = Monitor(header, config).run(events)
            sharded = ShardedMonitor(
                header, config, shards=2, processes=False
            ).run(events)
            if not sharded.ok:
                assert not exact.ok

    def test_stats_merge_counts_every_event_once(self):
        header, events = _stream(seed=11, events=300)
        monitor = ShardedMonitor(
            header,
            MonitorConfig(isolation="RC", mode="assume-fresh", window=4, gc_every=8),
            shards=3,
            processes=False,
        )
        report = monitor.run(events)
        # The coordinator counts global events; shard-local live/evicted add up.
        assert report.stats.events == 300
        assert report.stats.live >= 0
        assert report.stats.evicted > 0
        assert monitor.events == 300

    def test_feed_after_close_raises(self):
        header, events = _stream(seed=1, events=10)
        events = list(events)
        monitor = ShardedMonitor(
            header, MonitorConfig(isolation="RC"), shards=2, processes=False
        )
        monitor.run(events)
        with pytest.raises(RuntimeError):
            monitor.feed(events[0])


@pytest.mark.skipif(not _forkable(), reason="fork start method unavailable")
class TestForkedWorkers:
    """Process mode must agree with inline mode on the same stream."""

    def test_forked_matches_inline(self):
        header, events = _stream(seed=5, events=600, sessions=5)
        events = list(events)
        config = MonitorConfig(
            isolation="RC", mode="assume-fresh", window=4, gc_every=16, evict_batch=8
        )
        inline = ShardedMonitor(header, config, shards=2, processes=False).run(events)
        forked = ShardedMonitor(header, config, shards=2, processes=True).run(events)
        assert forked.ok == inline.ok
        assert forked.stats.events == inline.stats.events
        assert forked.stats.live == inline.stats.live
        assert forked.stats.evicted == inline.stats.evicted
        assert forked.stats.collections == inline.stats.collections
        assert forked.peak_live == inline.peak_live

    def test_forked_finds_violation(self):
        trace = gadget_traces()["lost_update"]
        config = MonitorConfig(isolation="SER", **TIGHT)
        plain = Monitor(trace.header, config).run(trace.events)
        forked = ShardedMonitor(
            trace.header, config, shards=2, processes=True
        ).run(trace.events)
        assert not forked.ok
        assert forked.first_violation.index == plain.first_violation.index

    def test_mid_stream_stats_are_synchronous(self):
        header, events = _stream(seed=7, events=200)
        monitor = ShardedMonitor(
            header,
            MonitorConfig(isolation="RC", mode="assume-fresh", window=4, gc_every=8),
            shards=2,
            processes=True,
        )
        fed = 0
        for event in events:
            monitor.feed(event)
            fed += 1
            if fed == 100:
                stats = monitor.stats()
                assert stats.events == 100
        report = monitor.report()
        assert report.stats.events == 200


class TestServe:
    def test_socket_round_trip(self):
        """serve() binds, reads one connection's JSONL stream, verdicts."""
        import socket

        trace = gadget_traces()["rc_violation"]
        payload = trace.dumps()
        box = {}
        ready = threading.Event()

        def _capture(port):
            box["port"] = port
            ready.set()

        def _run():
            box["report"] = serve(
                0,
                MonitorConfig(isolation="RC", **TIGHT),
                ready=_capture,
            )

        server = threading.Thread(target=_run, daemon=True)
        server.start()
        assert ready.wait(timeout=10)
        with socket.create_connection(("127.0.0.1", box["port"]), timeout=10) as conn:
            conn.sendall(payload.encode("utf-8"))
        server.join(timeout=10)
        assert not server.is_alive()
        report = box["report"]
        assert not report.ok
        assert report.exit_code == 1
        assert report.first_violation is not None
