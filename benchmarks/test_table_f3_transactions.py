"""Table F.3 — per-program transaction-scalability rows (explore-ce(CC)).

Paper Appendix F.3: TPC-C and Wikipedia client programs at 1..5
transactions per session, fixed sessions.
"""

import pytest

from conftest import MAX_TXNS, SCALING_PROGRAMS, SESSIONS, TIMEOUT, save_result
from repro.bench import render_records_table, table_f3


@pytest.fixture(scope="module")
def records_by_size():
    return table_f3(
        max_txns=MAX_TXNS,
        sessions=min(SESSIONS, 3),
        programs_per_app=SCALING_PROGRAMS,
        timeout=TIMEOUT,
    )


def test_table_f3(benchmark, records_by_size, results_dir):
    from repro.apps import client_program
    from repro.dpor import explore_ce

    program = client_program("wikipedia", min(SESSIONS, 3), MAX_TXNS, 1)
    benchmark.pedantic(
        lambda: explore_ce(program, "CC", collect_histories=False, timeout=TIMEOUT),
        rounds=1,
        iterations=1,
    )
    sections = []
    for size, records in records_by_size.items():
        sections.append(f"== {size} transaction(s) per session")
        sections.append(render_records_table({"CC": records}))
    text = "\n".join(sections)
    save_result(results_dir, "table_f3_transactions", text)
    print(text)


def test_rows_exist_for_each_size(records_by_size):
    assert sorted(records_by_size) == list(range(1, MAX_TXNS + 1))


def test_total_work_grows_with_transactions(records_by_size):
    """Endpoint growth: the seeded mix is re-rolled per size, so only the
    largest size is required to dominate."""
    totals = [
        sum(r.histories for r in records.values())
        for _, records in sorted(records_by_size.items())
    ]
    assert totals[-1] == max(totals), totals
    assert totals[-1] >= totals[0]


def test_no_timeouts_at_small_sizes(records_by_size):
    for record in records_by_size[1].values():
        assert not record.timed_out
