"""Shared configuration for the benchmark targets.

Every figure/table of the paper's evaluation has one file here.  Sizes are
environment-configurable so the paper's exact shape (3 sessions × 3
transactions, 5 programs per application, 30-minute timeout) can be dialed
in when time allows:

    REPRO_BENCH_SESSIONS=3 REPRO_BENCH_TXNS=3 REPRO_BENCH_PROGRAMS=5 \
    REPRO_BENCH_TIMEOUT=1800 pytest benchmarks/ --benchmark-only

The defaults below are scaled for the pure-Python substrate (the paper's
implementation is JPF/Java on an M1); the *shape* assertions are identical
at either size.  Rendered result tables are written to
``benchmarks/results/`` for inclusion in EXPERIMENTS.md.
"""

import json
import os
import platform
import subprocess
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


def env_float(name: str, default: float) -> float:
    return float(os.environ.get(name, default))


#: Suite shape (paper: sessions=3, txns=3, programs=5, timeout=1800).
SESSIONS = env_int("REPRO_BENCH_SESSIONS", 3)
TXNS = env_int("REPRO_BENCH_TXNS", 2)
PROGRAMS_PER_APP = env_int("REPRO_BENCH_PROGRAMS", 5)
TIMEOUT = env_float("REPRO_BENCH_TIMEOUT", 30.0)

#: Scalability sweeps (paper: up to 5 sessions / 5 txns per session).
MAX_SESSIONS = env_int("REPRO_BENCH_MAX_SESSIONS", 4)
MAX_TXNS = env_int("REPRO_BENCH_MAX_TXNS", 4)
SCALING_PROGRAMS = env_int("REPRO_BENCH_SCALING_PROGRAMS", 2)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_result(results_dir: Path, name: str, text: str) -> None:
    (results_dir / f"{name}.txt").write_text(text + "\n")


def _commit_hash() -> str:
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).parent.parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
        if proc.returncode == 0:
            return proc.stdout.strip()
    except OSError:
        pass
    return "unknown"


def save_bench_json(results_dir: Path, name: str, cases, extra=None) -> Path:
    """Write ``BENCH_<name>.json`` in the machine-readable record format.

    ``cases`` is a sequence of dicts, each with at least ``name`` and
    ``seconds`` — the shape ``repro bench diff`` consumes.  Every record is
    stamped with the commit hash and python version so two records can be
    attributed when diffed.
    """
    payload = {
        "schema": "repro-bench-v1",
        "benchmark": name,
        "commit": _commit_hash(),
        "python": platform.python_version(),
        "cases": [dict(case) for case in cases],
    }
    if extra:
        payload.update(extra)
    path = results_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
