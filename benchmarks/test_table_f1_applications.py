"""Table F.1 — per-program application rows for every algorithm.

Paper Appendix F.1: for each of the 25 client programs and each algorithm
configuration, the number of histories, end states, running time and
memory.  We regenerate the table (at the configured scale) and assert the
per-row relations the paper's numbers exhibit, e.g. courseware-1 having 216
end states under CC but only 81 output histories under CC+SI.
"""

import pytest

from conftest import PROGRAMS_PER_APP, SESSIONS, TIMEOUT, TXNS, save_result
from repro.bench import render_records_table, table_f1


@pytest.fixture(scope="module")
def records():
    return table_f1(
        sessions=SESSIONS,
        txns_per_session=TXNS,
        programs_per_app=PROGRAMS_PER_APP,
        timeout=TIMEOUT,
    )


def test_table_f1(benchmark, records, results_dir):
    from repro.apps import client_program
    from repro.dpor import explore_ce_star

    program = client_program("courseware", SESSIONS, TXNS, 0)
    benchmark.pedantic(
        lambda: explore_ce_star(
            program, "CC", "SER", collect_histories=False, timeout=TIMEOUT
        ),
        rounds=1,
        iterations=1,
    )
    text = render_records_table(records)
    save_result(results_dir, "table_f1_applications", text)
    print(text)


def test_every_application_contributes_rows(records):
    programs = set(records["CC"])
    for app in ("courseware", "shoppingCart", "tpcc", "twitter", "wikipedia"):
        assert sum(1 for p in programs if p.startswith(app)) == PROGRAMS_PER_APP


def test_histories_vs_end_states_per_row(records):
    """For the filtering algorithms, histories ≤ end states with equality
    exactly when nothing is filtered; for CC they are equal by definition."""
    for program, record in records["CC"].items():
        if not record.timed_out:
            assert record.histories == record.end_states
    for algorithm in ("CC+SI", "CC+SER", "RA+CC", "RC+CC", "true+CC"):
        for record in records[algorithm].values():
            if not record.timed_out:
                assert record.histories <= record.end_states


def test_si_filter_weaker_than_ser_filter(records):
    """Per row: CC+SER outputs ⊆ CC+SI outputs (SER is stronger than SI)."""
    for program in records["CC+SI"]:
        si = records["CC+SI"][program]
        ser = records["CC+SER"][program]
        if not (si.timed_out or ser.timed_out):
            assert ser.histories <= si.histories, program
