"""Streaming-monitor soak: bounded memory and sustained throughput.

Feeds a seeded million-event fuzzed stream (default scaled down for the
ordinary test run; CI's soak step dials ``REPRO_BENCH_MONITOR_EVENTS`` up
to the full million) through a GC'ing :class:`repro.monitor.Monitor` in
``assume-fresh`` mode and records:

* **throughput** — events/second over the full stream, two-pass
  (untimed warm-up pass on a short prefix, then the timed pass), and
* **memory** — the live transaction window sampled at checkpoints, the
  monitor's ``peak_live`` high-water mark, and the ``tracemalloc`` peak.

The *memory* claim gates: the live window and peak must stay flat (far
below the number of transactions that streamed through), which is the
monitor's whole point.  The *throughput* floor is environment-tunable
(``REPRO_BENCH_MONITOR_MIN_EVS``, default 5000 — a deliberately low bar
so hardware noise cannot fail the suite; the single-core reference box
sustains ~28k ev/s, multi-core machines considerably more).

A short unbounded :class:`OnlineChecker` pass over the same prefix
records the memory the monitor *avoids*: its live count grows linearly
with the stream while the monitor's stays flat.  The record lands in
``benchmarks/results/BENCH_monitor.json`` (baseline committed under
``benchmarks/baseline/``) for ``repro bench diff``.
"""

import time
import tracemalloc

from conftest import env_float, env_int, save_bench_json
from repro.checking.online import OnlineChecker
from repro.monitor import Monitor, MonitorConfig
from repro.trace import fuzz_stream

#: Full-stream length for the timed soak (CI soak step: 1_000_000).
EVENTS = env_int("REPRO_BENCH_MONITOR_EVENTS", 80_000)
#: Prefix length for the unbounded-checker comparison (quadratic-ish).
UNBOUNDED_EVENTS = env_int("REPRO_BENCH_MONITOR_UNBOUNDED_EVENTS", 4_000)
#: Gating throughput floor, events/second.
MIN_EVS = env_float("REPRO_BENCH_MONITOR_MIN_EVS", 5_000.0)
#: Live-window ceiling: peak live transactions, independent of EVENTS.
MAX_PEAK_LIVE = env_int("REPRO_BENCH_MONITOR_MAX_PEAK_LIVE", 200)

SEED = 2026
STREAM_SHAPE = dict(sessions=6, staleness=3, abort_rate=0.1)
#: The sweep-tuned cadence (see docs/architecture.md).
CONFIG = dict(isolation="RC", window=4, gc_every=16, evict_batch=8,
              mode="assume-fresh")


def _stream(events):
    header, it = fuzz_stream(seed=SEED, events=events, **STREAM_SHAPE)
    return header, it


def _run_monitor(events, checkpoints=8):
    """One monitored pass; returns (seconds, report, live_samples)."""
    header, it = _stream(events)
    monitor = Monitor(header, MonitorConfig(**CONFIG))
    every = max(1, events // checkpoints)
    samples = []
    count = 0
    start = time.perf_counter()
    for event in it:
        monitor.feed(event)
        count += 1
        if count % every == 0:
            samples.append(monitor.stats().live)
    seconds = time.perf_counter() - start
    return seconds, monitor.report(), samples


def test_monitor_soak(results_dir):
    # Pass 1 (untimed): warm caches, and take the tracemalloc allocation
    # peak here — tracing slows the interpreter several-fold, so it must
    # never overlap the timed pass.
    tracemalloc.start()
    _run_monitor(min(EVENTS, 10_000))
    _, traced_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    # Pass 2 (timed), untraced.
    seconds, report, live_samples = _run_monitor(EVENTS)

    assert report.ok, "the seeded soak stream must be RC-consistent"
    assert report.stats.events == EVENTS
    evs = EVENTS / seconds

    # Unbounded comparison on a short prefix: the checker that never
    # evicts holds every transaction live, linear in the stream.
    header, it = _stream(UNBOUNDED_EVENTS)
    unbounded = OnlineChecker(
        header.variables, initial=header.initial,
        levels=("RC",), record_steps=False,
    )
    for event in it:
        unbounded.feed(event)
    unbounded_live = unbounded.live_transaction_count

    cases = [
        {"name": f"monitor-soak-{EVENTS}", "seconds": round(seconds, 4),
         "events": EVENTS, "events_per_second": round(evs, 1)},
    ]
    save_bench_json(
        results_dir, "monitor", cases,
        extra={
            "config": dict(CONFIG),
            "peak_live": report.peak_live,
            "live_samples": live_samples,
            "evicted": report.stats.evicted,
            "collections": report.stats.collections,
            "tracemalloc_peak_bytes": traced_peak,
            "unbounded_events": UNBOUNDED_EVENTS,
            "unbounded_live": unbounded_live,
        },
    )

    # -- memory gates (the monitor's raison d'être) -------------------------
    # The live window never scales with the stream ...
    assert report.peak_live <= MAX_PEAK_LIVE, (
        f"peak live window {report.peak_live} > {MAX_PEAK_LIVE}: GC is not "
        f"keeping up"
    )
    assert max(live_samples) <= MAX_PEAK_LIVE
    # ... and nearly everything that completed was collected.
    assert report.stats.evicted > 0.9 * (EVENTS / 10), (
        "almost no transactions were evicted — the soak is not exercising GC"
    )
    # The unbounded checker on a 20x shorter prefix already holds more
    # transactions live than the monitor's peak over the whole stream.
    assert unbounded_live > report.peak_live, (
        f"unbounded checker live={unbounded_live} vs monitor peak="
        f"{report.peak_live}: the comparison stream is too small to witness "
        f"the bounded-memory claim"
    )

    # -- throughput floor (deliberately low; see module docstring) ----------
    assert evs >= MIN_EVS, (
        f"{evs:.0f} ev/s under the {MIN_EVS:.0f} ev/s floor "
        f"(REPRO_BENCH_MONITOR_MIN_EVS to tune)"
    )
