"""Figure 15(b) — scalability of explore-ce(CC) in transactions per session.

Paper: TPC-C and Wikipedia client programs with 3 sessions and i ∈ [1, 5]
transactions per session; same story as Fig. 15(a) — running time and
history counts climb fast, memory stays flat.
"""

import pytest

from conftest import MAX_TXNS, SCALING_PROGRAMS, SESSIONS, TIMEOUT, save_result
from repro.bench import fig15_transactions, render_scaling


@pytest.fixture(scope="module")
def points():
    return fig15_transactions(
        max_txns=MAX_TXNS,
        sessions=min(SESSIONS, 3),
        programs_per_app=SCALING_PROGRAMS,
        timeout=TIMEOUT,
    )


def test_fig15b(benchmark, points, results_dir):
    from repro.apps import client_program
    from repro.dpor import explore_ce

    program = client_program("wikipedia", min(SESSIONS, 3), MAX_TXNS, 0)
    benchmark.pedantic(
        lambda: explore_ce(program, "CC", collect_histories=False, timeout=TIMEOUT),
        rounds=1,
        iterations=1,
    )
    text = render_scaling(points, axis="txns/session")
    save_result(results_dir, "fig15b_transactions", text)
    print(text)


def test_work_grows_with_transactions(points):
    """Endpoint growth only: unlike the session sweep, adding a transaction
    re-rolls the seeded mix, so intermediate sizes may dip."""
    histories = [p.avg_histories for p in points]
    assert histories[-1] == max(histories), histories
    assert histories[-1] >= 2 * histories[0]


def test_memory_stays_flat_relative_to_work(points):
    first, last = points[0], points[-1]
    work_growth = max(last.avg_histories, 1) / max(first.avg_histories, 1)
    memory_growth = last.avg_peak_heap_kb / max(first.avg_peak_heap_kb, 1e-9)
    assert memory_growth <= work_growth or memory_growth < 8, (
        memory_growth,
        work_growth,
    )
