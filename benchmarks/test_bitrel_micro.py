"""Micro-benchmark: bitset relation engine vs. the naive dict-of-set closure.

The fig. 14 / table F1 suites demonstrate the end-to-end win; this file
isolates the relation engine itself on histories with ≥ 50 transactions —
the regime the ROADMAP's "fast as the hardware allows" axis targets:

* **closure**: full transitive closure, DFS-per-node vs. one word-parallel
  :class:`~repro.core.bitrel.RelationMatrix` build;
* **queries**: a saturation-style workload of many reachability queries,
  DFS per query vs. shift-and-mask on the maintained closure;
* **incremental**: growing the relation edge by edge, full recompute after
  every edge vs. ``add_edge``'s O(affected rows) closure maintenance.

A timing table is written to ``benchmarks/results/bitrel_micro.txt``.
"""

import random
import time

import pytest

from conftest import save_bench_json, save_result
from repro.core import HistoryBuilder, RelationMatrix
from repro.core.relations import reachable_from
from repro.bench.reporting import format_table


def build_history(sessions: int, txns_per_session: int, seed: int = 2023):
    """A random committed history with sessions × txns_per_session + 1 txns."""
    rng = random.Random(seed)
    variables = ["x", "y", "z", "u", "v"]
    b = HistoryBuilder(variables)
    writers = {var: [b.init] for var in variables}
    for s in range(sessions):
        for _ in range(txns_per_session):
            t = b.txn(f"s{s}")
            wrote = set()
            for _ in range(rng.randint(1, 3)):
                var = rng.choice(variables)
                if rng.random() < 0.5 and var not in wrote:
                    t.read(var, source=rng.choice(writers[var]))
                else:
                    t.write(var, rng.randint(1, 9))
                    wrote.add(var)
            t.commit()
            for var in wrote:
                writers[var].append(t)
    return b.build(auto_commit=False)


def best_of(repeats, fn):
    """Minimum wall time over ``repeats`` runs — robust to scheduler noise."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def bitrel_cases(results_dir):
    """Accumulates timing cases across the tests of this module, then writes
    the machine-readable ``BENCH_bitrel.json`` record at module teardown."""
    cases = []
    yield cases
    save_bench_json(results_dir, "bitrel", cases)


@pytest.fixture(scope="module")
def large_history():
    history = build_history(sessions=10, txns_per_session=6)  # 61 transactions
    assert len(history.txns) >= 50
    return history


def relation_edges(history):
    """The production so∪wr edge set, derived from History's own adjacency
    (so the benchmark cannot drift from what causal_matrix builds)."""
    adj = history.so_wr_adjacency()
    return [(src, dst) for src, succs in adj.items() for dst in succs]


def test_closure_bitset_beats_naive(large_history, results_dir, bitrel_cases):
    adj = large_history.so_wr_adjacency()
    edges = relation_edges(large_history)
    nodes = list(large_history.txns)

    naive_s = best_of(5, lambda: {n: reachable_from(adj, n) for n in adj})
    bitset_s = best_of(5, lambda: RelationMatrix(nodes, edges))

    matrix = RelationMatrix(nodes, edges)
    assert matrix.transitive_closure() == {n: reachable_from(adj, n) for n in adj}
    assert matrix.transitive_closure() == large_history.causal_matrix().transitive_closure()

    rng = random.Random(99)
    pairs = [(rng.choice(nodes), rng.choice(nodes)) for _ in range(2000)]
    naive_q = best_of(3, lambda: [b in reachable_from(adj, a) for a, b in pairs])
    bitset_q = best_of(3, lambda: [matrix.reaches(a, b) for a, b in pairs])

    incr_edges = [(a, b) for a, b in pairs[:60] if a != b]

    def full_recompute():
        grown = list(edges)
        for edge in incr_edges:
            grown.append(edge)
            RelationMatrix(nodes, grown)

    def incremental():
        m = RelationMatrix(nodes, edges)
        for edge in incr_edges:
            m.add_edge(*edge)

    recompute_s = best_of(3, full_recompute)
    incremental_s = best_of(3, incremental)

    rows = [
        ("full closure (61 txns)", f"{naive_s * 1e3:.2f}", f"{bitset_s * 1e3:.2f}", f"{naive_s / bitset_s:.1f}x"),
        ("2000 reachability queries", f"{naive_q * 1e3:.2f}", f"{bitset_q * 1e3:.2f}", f"{naive_q / bitset_q:.1f}x"),
        (f"add {len(incr_edges)} edges + closure", f"{recompute_s * 1e3:.2f}", f"{incremental_s * 1e3:.2f}", f"{recompute_s / incremental_s:.1f}x"),
    ]
    text = format_table(["workload", "dict-of-set (ms)", "bitset (ms)", "speedup"], rows)
    save_result(results_dir, "bitrel_micro", text)
    bitrel_cases.extend(
        [
            {"name": "closure/61", "seconds": bitset_s},
            {"name": "queries/2000", "seconds": bitset_q},
            {"name": f"incremental/{len(incr_edges)}", "seconds": incremental_s},
        ]
    )
    print("\n" + text)

    assert bitset_s < naive_s, "bitset closure must beat DFS-per-node on ≥50 txns"
    assert bitset_q < naive_q, "maintained closure must beat per-query DFS"
    assert incremental_s < recompute_s, "add_edge must beat recompute-per-edge"


def test_incremental_scales_with_affected_rows(results_dir, bitrel_cases):
    """Closure maintenance stays cheap as the history grows: the per-edge
    cost of ``add_edge`` must grow far slower than a full rebuild."""
    rows = []
    for sessions, txns in ((5, 10), (10, 10), (20, 10)):
        history = build_history(sessions, txns)
        nodes = list(history.txns)
        edges = relation_edges(history)
        base = RelationMatrix(nodes, edges)
        rng = random.Random(7)
        extra = [(rng.choice(nodes), rng.choice(nodes)) for _ in range(100)]

        def add_all():
            m = base.copy()
            for edge in extra:
                m.add_edge(*edge)

        rebuild_s = best_of(3, lambda: RelationMatrix(nodes, edges))
        incr_s = best_of(3, add_all)
        rows.append((f"{len(nodes)} txns", f"{rebuild_s * 1e3:.3f}", f"{incr_s / 100 * 1e3:.4f}"))
        bitrel_cases.append({"name": f"build/{len(nodes)}", "seconds": rebuild_s})
        bitrel_cases.append({"name": f"add_edge_100/{len(nodes)}", "seconds": incr_s})
        assert incr_s / 100 < rebuild_s, "one add_edge must be far cheaper than one rebuild"
    text = format_table(["history size", "full build (ms)", "per add_edge (ms)"], rows)
    save_result(results_dir, "bitrel_incremental", text)
    print("\n" + text)
