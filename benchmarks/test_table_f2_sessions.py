"""Table F.2 — per-program session-scalability rows (explore-ce(CC)).

Paper Appendix F.2: TPC-C and Wikipedia client programs at 1..5 sessions,
reporting histories, time and memory per program.
"""

import pytest

from conftest import MAX_SESSIONS, SCALING_PROGRAMS, TIMEOUT, TXNS, save_result
from repro.bench import render_records_table, table_f2


@pytest.fixture(scope="module")
def records_by_size():
    return table_f2(
        max_sessions=MAX_SESSIONS,
        txns_per_session=TXNS,
        programs_per_app=SCALING_PROGRAMS,
        timeout=TIMEOUT,
    )


def test_table_f2(benchmark, records_by_size, results_dir):
    from repro.apps import client_program
    from repro.dpor import explore_ce

    program = client_program("tpcc", MAX_SESSIONS, TXNS, 1)
    benchmark.pedantic(
        lambda: explore_ce(program, "CC", collect_histories=False, timeout=TIMEOUT),
        rounds=1,
        iterations=1,
    )
    sections = []
    for size, records in records_by_size.items():
        sections.append(f"== {size} session(s)")
        sections.append(render_records_table({"CC": records}))
    text = "\n".join(sections)
    save_result(results_dir, "table_f2_sessions", text)
    print(text)


def test_rows_exist_for_each_size(records_by_size):
    assert sorted(records_by_size) == list(range(1, MAX_SESSIONS + 1))
    for records in records_by_size.values():
        assert len(records) == 2 * SCALING_PROGRAMS  # tpcc + wikipedia


def test_single_session_programs_have_one_history(records_by_size):
    """With one session there is no concurrency: exactly one history."""
    for record in records_by_size[1].values():
        assert record.histories == 1, record.program


def test_total_work_monotone_in_sessions(records_by_size):
    totals = [
        sum(r.histories for r in records.values())
        for _, records in sorted(records_by_size.items())
    ]
    assert all(a <= b for a, b in zip(totals, totals[1:])), totals
