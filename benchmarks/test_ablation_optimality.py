"""Ablation — what the Optimality restriction (§5.3) buys.

DESIGN.md calls out the swap restriction (``swapped`` + ``readLatest``) as
the design choice making explore-ce strongly optimal.  This bench disables
it (``restrict_swaps=False``: swap whenever the result is consistent) and
measures the redundancy that comes back: duplicate history outputs and
extra explore calls — the Figs. 12/13 phenomenon at benchmark scale.
"""

import pytest

from conftest import TIMEOUT, save_result
from repro.apps import client_program
from repro.bench import format_table
from repro.dpor import SwappingExplorer
from repro.isolation import get_level

PROGRAMS = [
    ("courseware", 3, 2, 0),
    ("twitter", 3, 2, 1),
    ("wikipedia", 3, 2, 1),
    ("tpcc", 3, 2, 1),
]


@pytest.fixture(scope="module")
def ablation_rows():
    rows = []
    cc = get_level("CC")
    for app, sessions, txns, seed in PROGRAMS:
        program = client_program(app, sessions, txns, seed)
        optimal = SwappingExplorer(program, cc, timeout=TIMEOUT).run()
        unrestricted = SwappingExplorer(
            program, cc, restrict_swaps=False, timeout=TIMEOUT
        ).run()
        rows.append((program.name, optimal, unrestricted))
    return rows


def test_ablation(benchmark, ablation_rows, results_dir):
    from repro.apps import client_program

    program = client_program("courseware", 3, 2, 0)
    benchmark.pedantic(
        lambda: SwappingExplorer(
            program, get_level("CC"), restrict_swaps=False, timeout=TIMEOUT
        ).run(),
        rounds=1,
        iterations=1,
    )
    table = format_table(
        ["program", "variant", "outputs", "duplicates", "explore calls", "time (s)", "timeout"],
        [
            row
            for name, optimal, unrestricted in ablation_rows
            for row in (
                [name, "optimality ON", optimal.stats.outputs, optimal.histories.duplicates,
                 optimal.stats.explore_calls, round(optimal.stats.seconds, 3),
                 "TL" if optimal.stats.timed_out else ""],
                [name, "optimality OFF", unrestricted.stats.outputs,
                 unrestricted.histories.duplicates, unrestricted.stats.explore_calls,
                 round(unrestricted.stats.seconds, 3),
                 "TL" if unrestricted.stats.timed_out else ""],
            )
        ],
    )
    save_result(results_dir, "ablation_optimality", table)
    print(table)


def test_restricted_variant_is_duplicate_free(ablation_rows):
    for name, optimal, _ in ablation_rows:
        assert optimal.histories.duplicates == 0, name


def test_unrestricted_variant_pays_for_it(ablation_rows):
    """Across the suite, disabling the restriction re-explores histories."""
    total_duplicates = sum(u.histories.duplicates for _, _, u in ablation_rows)
    total_extra_calls = sum(
        u.stats.explore_calls - o.stats.explore_calls for _, o, u in ablation_rows
    )
    assert total_duplicates > 0
    assert total_extra_calls >= 0


def test_both_variants_find_the_same_histories(ablation_rows):
    for name, optimal, unrestricted in ablation_rows:
        if optimal.stats.timed_out or unrestricted.stats.timed_out:
            continue
        assert set(optimal.histories.keys()) == set(unrestricted.histories.keys()), name
