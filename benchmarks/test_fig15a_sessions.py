"""Figure 15(a) — scalability of explore-ce(CC) in the number of sessions.

Paper: TPC-C and Wikipedia client programs with i ∈ [1, 5] sessions of 3
transactions each; running time grows steeply with the number of sessions
(the history count explodes) while memory consumption stays nearly flat
(the polynomial-space bound of Theorem 5.1).
"""

import pytest

from conftest import MAX_SESSIONS, SCALING_PROGRAMS, TIMEOUT, TXNS, save_result
from repro.bench import fig15_sessions, render_scaling


@pytest.fixture(scope="module")
def points():
    return fig15_sessions(
        max_sessions=MAX_SESSIONS,
        txns_per_session=TXNS,
        programs_per_app=SCALING_PROGRAMS,
        timeout=TIMEOUT,
    )


def test_fig15a(benchmark, points, results_dir):
    from repro.apps import client_program
    from repro.dpor import explore_ce

    program = client_program("tpcc", MAX_SESSIONS, TXNS, 0)
    benchmark.pedantic(
        lambda: explore_ce(program, "CC", collect_histories=False, timeout=TIMEOUT),
        rounds=1,
        iterations=1,
    )
    text = render_scaling(points, axis="sessions")
    save_result(results_dir, "fig15a_sessions", text)
    print(text)


def test_work_grows_with_sessions(points):
    """The history count is monotone in the session count (more
    interleavings to cover) and grows super-linearly by the top end."""
    histories = [p.avg_histories for p in points]
    assert all(a <= b for a, b in zip(histories, histories[1:])), histories
    assert histories[-1] >= 2 * histories[0]


def test_time_grows_with_sessions(points):
    seconds = [p.avg_seconds for p in points]
    assert seconds[-1] >= seconds[0]


def test_memory_grows_slower_than_work(points):
    """Fig. 15(a)'s second axis: memory does not follow the running-time
    trend — the growth factor of the heap peak must stay well below the
    growth factor of the explored end states."""
    first, last = points[0], points[-1]
    work_growth = max(last.avg_histories, 1) / max(first.avg_histories, 1)
    memory_growth = last.avg_peak_heap_kb / max(first.avg_peak_heap_kb, 1e-9)
    assert memory_growth <= work_growth or memory_growth < 8, (
        memory_growth,
        work_growth,
    )
