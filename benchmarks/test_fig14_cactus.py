"""Figure 14 — cactus plots comparing the seven algorithm configurations.

Paper: 25 client programs (5 per application, 3 sessions × 3 transactions),
algorithms CC, CC+SI, CC+SER, RA+CC, RC+CC, true+CC and DFS(CC), reporting
(a) running time, (b) memory consumption and (c) number of end states.

Shape claims asserted here (the paper's findings, §7.3):

* CC / CC+SI / CC+SER are nearly identical — the SI/SER filter overhead is
  negligible and their end-state counts coincide exactly;
* explore-ce(CC) beats every plain-optimal explore-ce*(I0, CC): end states
  grow monotonically as I0 weakens (CC ≤ RA ≤ RC ≤ true);
* DFS(CC) is dominated: it visits at least as many end states as any DPOR
  configuration and times out first as programs grow;
* memory stays flat across all DPOR configurations (polynomial space).
"""

import statistics

import pytest

from conftest import PROGRAMS_PER_APP, SESSIONS, TIMEOUT, TXNS, save_bench_json, save_result
from repro.bench import fig14, render_fig14, render_records_table


@pytest.fixture(scope="module")
def fig14_result():
    return fig14(
        sessions=SESSIONS,
        txns_per_session=TXNS,
        programs_per_app=PROGRAMS_PER_APP,
        timeout=TIMEOUT,
    )


def test_fig14(benchmark, fig14_result, results_dir):
    """Artifact dump + a representative timed run (explore-ce(CC) on the
    first suite program); the full grid is computed once in the fixture."""
    from repro.apps import application_suite
    from repro.dpor import explore_ce

    program = application_suite(SESSIONS, TXNS, 1)[0]
    benchmark.pedantic(
        lambda: explore_ce(program, "CC", collect_histories=False, timeout=TIMEOUT),
        rounds=1,
        iterations=1,
    )
    text = render_fig14(fig14_result) + "\n\n" + render_records_table(fig14_result.records)
    save_result(results_dir, "fig14", text)
    cases = [
        {
            "name": f"{algorithm}/{program_name}",
            "seconds": record.seconds,
            "end_states": record.end_states,
            "histories": record.histories,
            "timed_out": record.timed_out,
        }
        for algorithm, per_program in fig14_result.records.items()
        for program_name, record in per_program.items()
    ]
    save_bench_json(
        results_dir,
        "fig14",
        cases,
        extra={"sessions": SESSIONS, "txns": TXNS, "programs_per_app": PROGRAMS_PER_APP},
    )
    print(text)


def test_fig14a_time_ordering(fig14_result):
    """Fig. 14(a): total solved time ordering CC ≤ … ≤ DFS (up to noise).

    Cactus plots compare curves; we assert on the robust summary — total
    time over commonly-solved instances plus timeout counts.
    """
    records = fig14_result.records
    solved_everywhere = [
        p
        for p in records["CC"]
        if all(not records[a][p].timed_out for a in records)
    ]
    assert solved_everywhere, "some instances must be solved by all algorithms"

    def total(algorithm):
        return sum(records[algorithm][p].seconds for p in solved_everywhere)

    assert total("CC") <= total("true+CC") * 1.5, "strong optimality helps"
    assert total("CC") <= total("DFS(CC)"), "DPOR beats no-reduction DFS"
    timeouts = fig14_result.time.timeouts
    assert timeouts["CC"] <= timeouts["true+CC"] <= timeouts["DFS(CC)"] + 1


def test_fig14b_memory_flat(fig14_result):
    """Fig. 14(b): all configurations sit in the same memory regime.

    The paper reports ~500MB across all algorithms (JPF baseline dominates);
    for us the Python-heap peaks of the DPOR variants must stay within a
    small constant factor of each other.
    """
    medians = {
        algorithm: statistics.median(series)
        for algorithm, series in fig14_result.memory.series.items()
        if series
    }
    dpor = [v for a, v in medians.items() if a != "DFS(CC)"]
    assert max(dpor) <= 10 * min(dpor), medians


def test_fig14c_end_states(fig14_result):
    """Fig. 14(c): end-state counts order as CC = CC+SI = CC+SER ≤ RA+CC ≤
    RC+CC ≤ true+CC ≤ DFS(CC), per program."""
    records = fig14_result.records
    for program in records["CC"]:
        rows = {a: records[a][program] for a in records}
        if any(r.timed_out for r in rows.values()):
            continue
        cc = rows["CC"].end_states
        assert rows["CC+SI"].end_states == cc
        assert rows["CC+SER"].end_states == cc
        assert cc <= rows["RA+CC"].end_states <= rows["RC+CC"].end_states
        assert rows["RC+CC"].end_states <= rows["true+CC"].end_states
        assert rows["true+CC"].end_states <= rows["DFS(CC)"].end_states


def test_fig14_optimality_cross_checks(fig14_result):
    """All DPOR variants output the same number of distinct CC histories,
    and none of them ever blocks (strong optimality of the CE base)."""
    records = fig14_result.records
    for program in records["CC"]:
        rows = {a: records[a][program] for a in records}
        if any(r.timed_out for r in rows.values()):
            continue
        cc_histories = rows["CC"].histories
        for algorithm in ("RA+CC", "RC+CC", "true+CC"):
            assert rows[algorithm].histories == cc_histories, (program, algorithm)
        assert rows["DFS(CC)"].histories == cc_histories, program
        for algorithm in records:
            if algorithm != "DFS(CC)":
                assert rows[algorithm].blocked == 0
