"""Online-vs-batch trace replay throughput (non-gating record).

Replays fuzzed traces of growing size through two pipelines that produce
identical per-prefix verdicts for the saturation levels (RC/RA/CC):

* **online** — one ``OnlineChecker`` fed event by event: the ``so ∪ wr``
  closure and the forced-edge saturation state grow incrementally
  (``add_node``/``add_edge`` + unfired-instance re-evaluation only);
* **batch-per-prefix** — what a consumer without the online checker must
  do to get the same verdict stream: after every event, replay the prefix
  into a fresh history and run ``satisfies_by_saturation`` from scratch
  (full matrix build + full quantifier expansion each time).

No timing assertion gates the suite (hardware noise); the record lands in
``benchmarks/results/BENCH_online.json`` + ``online_replay.txt`` and the
verdict streams are asserted equal — the benchmark doubles as an
equivalence check at sizes the unit tests do not reach.
"""

import json
import time

from conftest import save_result
from repro.bench.reporting import format_table
from repro.checking.online import OnlineChecker
from repro.isolation import AXIOMS_BY_LEVEL, get_level
from repro.isolation.saturation import satisfies_by_saturation
from repro.trace import Trace, fuzz_history

LEVELS = ("RC", "RA", "CC")


def make_trace(sessions, txns_per_session, seed=2026):
    history = fuzz_history(
        seed,
        sessions=sessions,
        txns_per_session=txns_per_session,
        max_ops=4,
        variables=("x", "y", "z"),
        abort_rate=0.05,
    )
    return Trace.from_history(history, name=f"bench-{sessions}x{txns_per_session}")


def replay_online(trace):
    checker = OnlineChecker.from_trace(trace, levels=LEVELS)
    verdicts = []
    start = time.perf_counter()
    for event in trace.events:
        step = checker.feed(event)
        verdicts.append(tuple(step.verdicts[name] for name in LEVELS))
    return time.perf_counter() - start, verdicts


def replay_batch_per_prefix(trace):
    verdicts = []
    start = time.perf_counter()
    for length in range(1, len(trace) + 1):
        history = trace.prefix(length).to_history(strict=False)
        verdicts.append(
            tuple(
                satisfies_by_saturation(history, AXIOMS_BY_LEVEL[name])
                for name in LEVELS
            )
        )
    return time.perf_counter() - start, verdicts


def test_online_replay_throughput(results_dir):
    rows = []
    record = {"levels": list(LEVELS), "runs": []}
    for sessions, txns in ((4, 3), (8, 4), (12, 5)):
        trace = make_trace(sessions, txns)
        online_s, online_verdicts = replay_online(trace)
        batch_s, batch_verdicts = replay_batch_per_prefix(trace)
        assert online_verdicts == batch_verdicts, (
            "online and batch-per-prefix verdict streams must be identical"
        )
        events = len(trace)
        txn_count = sessions * txns
        rows.append(
            (
                f"{txn_count} txns / {events} events",
                f"{events / online_s:,.0f}",
                f"{events / batch_s:,.0f}",
                f"{batch_s / online_s:.1f}x",
            )
        )
        record["runs"].append(
            {
                "transactions": txn_count,
                "events": events,
                "online_seconds": round(online_s, 6),
                "batch_per_prefix_seconds": round(batch_s, 6),
                "online_events_per_second": round(events / online_s, 1),
                "batch_events_per_second": round(events / batch_s, 1),
                "speedup": round(batch_s / online_s, 2),
            }
        )
    text = format_table(
        ["trace", "online (events/s)", "batch-per-prefix (events/s)", "speedup"], rows
    )
    save_result(results_dir, "online_replay", text)
    (results_dir / "BENCH_online.json").write_text(json.dumps(record, indent=2) + "\n")
    print("\n" + text)


def test_final_verdict_consistency_at_size(results_dir):
    """At benchmark sizes, the online final verdict still equals the plain
    batch checker on the completed history — for all five levels on a
    moderate trace (SI/SER searches are exponential-ish, so moderate)."""
    trace = make_trace(3, 2, seed=7)
    checker = OnlineChecker.from_trace(trace)
    checker.replay(trace)
    history = trace.to_history(strict=False)
    assert checker.verdicts == {
        name: get_level(name).satisfies(history)
        for name in ("RC", "RA", "CC", "SI", "SER")
    }
