"""Serial vs. parallel exploration wall time on the application benchmarks.

Runs the table-F.1 application programs (at a scale where one exploration
takes a measurable fraction of a second) through the sequential
:class:`~repro.dpor.explore.SwappingExplorer` and the multiprocess
:class:`~repro.dpor.parallel.ParallelExplorer` at several worker counts,
then

* asserts the parallel runs produce the **identical** canonical history
  set and identical outputs/filtered totals (always, on any machine), and
* records wall-clock times and speedups in machine-readable
  ``benchmarks/results/BENCH_parallel.json`` (plus a rendered table in
  ``benchmarks/results/parallel_scaling.txt``).

The ≥ 2x-speedup assertion is only meaningful with real parallelism, so it
gates on ``os.cpu_count() >= 4``; on smaller machines the numbers are
recorded but the assertion is skipped (pool overhead on a 1-core container
makes parallel *slower*, which is expected and worth recording too).

Worker counts default to ``2,4`` and can be overridden::

    REPRO_BENCH_PARALLEL_WORKERS=2,4,8 pytest benchmarks/test_parallel_scaling.py
"""

import json
import os
import platform

import pytest

from conftest import TIMEOUT, save_result
from repro.apps import client_program
from repro.bench.reporting import format_table
from repro.dpor import ParallelExplorer, SwappingExplorer
from repro.isolation import get_level

WORKER_COUNTS = tuple(
    int(w) for w in os.environ.get("REPRO_BENCH_PARALLEL_WORKERS", "2,4").split(",")
)

#: (application, sessions, txns/session, program index, base, valid) —
#: table-F.1 rows heavy enough that one exploration dominates pool startup.
CONFIGS = (
    ("courseware", 3, 3, 3, "CC", "SER"),
    ("courseware", 3, 3, 3, "CC", None),
    ("shoppingCart", 3, 3, 1, "CC", "SER"),
)


def _explore(program, base, valid, workers, collect):
    kwargs = dict(
        valid_level=get_level(valid) if valid else None,
        collect_histories=collect,
        timeout=TIMEOUT,
    )
    if workers == 1:
        return SwappingExplorer(program, get_level(base), **kwargs).run()
    return ParallelExplorer(program, get_level(base), workers=workers, **kwargs).run()


@pytest.fixture(scope="module")
def measurements():
    runs = []
    for app, sessions, txns, index, base, valid in CONFIGS:
        program = client_program(app, sessions, txns, index)
        label = f"{base}+{valid}" if valid else base
        serial = _explore(program, base, valid, 1, collect=True)
        serial_keys = sorted(serial.histories.keys())
        serial_timed = _explore(program, base, valid, 1, collect=False)
        runs.append(
            {
                "program": program.name,
                "algorithm": label,
                "workers": 1,
                "seconds": serial_timed.stats.seconds,
                "outputs": serial_timed.stats.outputs,
                "filtered": serial_timed.stats.filtered,
                "end_states": serial_timed.stats.end_states,
                "timed_out": serial_timed.stats.timed_out,
                "speedup_vs_serial": 1.0,
                "identical_histories": True,
            }
        )
        for workers in WORKER_COUNTS:
            collected = _explore(program, base, valid, workers, collect=True)
            timed = _explore(program, base, valid, workers, collect=False)
            runs.append(
                {
                    "program": program.name,
                    "algorithm": label,
                    "workers": workers,
                    "seconds": timed.stats.seconds,
                    "outputs": timed.stats.outputs,
                    "filtered": timed.stats.filtered,
                    "end_states": timed.stats.end_states,
                    "timed_out": timed.stats.timed_out,
                    "speedup_vs_serial": (
                        serial_timed.stats.seconds / timed.stats.seconds
                        if timed.stats.seconds
                        else 0.0
                    ),
                    "identical_histories": sorted(collected.histories.keys()) == serial_keys,
                    "worker_processes": len([p for p in collected.worker_stats if p != 0]),
                }
            )
    return runs


def test_parallel_matches_serial_exactly(measurements):
    """Identity of output sets and counter totals — on any machine."""
    by_config = {}
    for run in measurements:
        by_config.setdefault((run["program"], run["algorithm"]), []).append(run)
    for (program, algorithm), runs in by_config.items():
        serial = next(r for r in runs if r["workers"] == 1)
        for run in runs:
            assert run["identical_histories"], (program, algorithm, run["workers"])
            for counter in ("outputs", "filtered", "end_states"):
                assert run[counter] == serial[counter], (program, algorithm, counter)


def test_record_bench_parallel_json(measurements, results_dir):
    parallel_runs = [r for r in measurements if r["workers"] > 1]
    best = max(parallel_runs, key=lambda r: r["speedup_vs_serial"])
    payload = {
        "machine": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "workers_tested": [1, *WORKER_COUNTS],
        "runs": measurements,
        "best_speedup": {
            "program": best["program"],
            "algorithm": best["algorithm"],
            "workers": best["workers"],
            "speedup_vs_serial": best["speedup_vs_serial"],
        },
        "speedup_target": 2.0,
        "speedup_target_met": best["speedup_vs_serial"] >= 2.0,
    }
    (results_dir / "BENCH_parallel.json").write_text(json.dumps(payload, indent=2) + "\n")

    rows = [
        (
            r["program"],
            r["algorithm"],
            r["workers"],
            f"{r['seconds']:.3f}",
            f"{r['speedup_vs_serial']:.2f}x",
            r["outputs"],
        )
        for r in measurements
    ]
    text = format_table(
        ["program", "algorithm", "workers", "time (s)", "speedup", "histories"], rows
    )
    save_result(results_dir, "parallel_scaling", text)
    print("\n" + text)


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="the >=2x speedup target needs at least 4 cores",
)
def test_speedup_target_on_multicore(measurements):
    """On a >= 4-core machine at least one config must reach 2x (ISSUE 2)."""
    best = max(r["speedup_vs_serial"] for r in measurements if r["workers"] > 1)
    assert best >= 2.0, f"best parallel speedup only {best:.2f}x"
