"""Serial vs. parallel exploration wall time on the application benchmarks.

Runs the table-F.1 application programs (at a scale where one exploration
takes a measurable fraction of a second) through the sequential
:class:`~repro.dpor.explore.SwappingExplorer` and the persistent-pool
:class:`~repro.dpor.parallel.ParallelExplorer` at several worker counts,
then

* asserts the parallel runs produce the **identical** canonical history
  set and identical outputs/filtered totals (always, on any machine),
* records wall-clock times, speedups, and pool telemetry (start method,
  tasks dispatched, final batch size, crash/respawn counts) in
  machine-readable ``benchmarks/results/BENCH_parallel.json`` (plus a
  rendered table in ``benchmarks/results/parallel_scaling.txt``), and
* gates the two ISSUE targets: **>= 1.8x** best speedup at 4 workers on a
  multi-core machine (skipped below 4 cores), and **no regression** at
  2 workers wherever the suite runs — on a 1-core container the floor is
  relaxed to ``REPRO_BENCH_TWO_WORKER_FLOOR`` (default 0.75; the pool
  cannot beat serial without a second core, but it must stay close).

Worker counts default to ``2,4`` and can be overridden::

    REPRO_BENCH_PARALLEL_WORKERS=2,4,8 pytest benchmarks/test_parallel_scaling.py

The speedup targets are env-overridable too (``REPRO_BENCH_SPEEDUP_TARGET``,
``REPRO_BENCH_TWO_WORKER_FLOOR``) so a known-slow runner can be tuned
without editing the suite.
"""

import json
import os
import platform

import pytest

from conftest import TIMEOUT, save_result
from repro.apps import client_program
from repro.bench.reporting import format_table
from repro.dpor import ParallelExplorer, SwappingExplorer
from repro.isolation import get_level

WORKER_COUNTS = tuple(
    int(w) for w in os.environ.get("REPRO_BENCH_PARALLEL_WORKERS", "2,4").split(",")
)

#: Best-speedup floor on a >= 4-core machine (ISSUE 9: pool must pay).
SPEEDUP_TARGET = float(os.environ.get("REPRO_BENCH_SPEEDUP_TARGET", "1.8"))

#: workers=2 floor on a single-core machine.  The pool cannot *win*
#: without a second core; this guards against the pre-pool pathology
#: (fork-per-fan-out was 0.5-0.7x serial) while absorbing timer noise.
ONE_CORE_TWO_WORKER_FLOOR = float(os.environ.get("REPRO_BENCH_TWO_WORKER_FLOOR", "0.75"))

#: (application, sessions, txns/session, program index, base, valid) —
#: table-F.1 rows heavy enough that one exploration dominates pool startup.
CONFIGS = (
    ("courseware", 3, 3, 3, "CC", "SER"),
    ("courseware", 3, 3, 3, "CC", None),
    ("shoppingCart", 3, 3, 1, "CC", "SER"),
)


def _explore(program, base, valid, workers, collect):
    """Run one exploration; returns (result, explorer)."""
    kwargs = dict(
        valid_level=get_level(valid) if valid else None,
        collect_histories=collect,
        timeout=TIMEOUT,
    )
    if workers == 1:
        explorer = SwappingExplorer(program, get_level(base), **kwargs)
    else:
        explorer = ParallelExplorer(program, get_level(base), workers=workers, **kwargs)
    return explorer.run(), explorer


def _pool_telemetry(explorer):
    """Persistent-pool counters from the last run (all zero/None when the
    seed phase finished the tree serially and the pool never started)."""
    pool = getattr(explorer, "pool", None)
    if pool is None:
        return {}
    return {
        "start_method": pool.start_method,
        "tasks_dispatched": pool.tasks_dispatched,
        "final_batch": pool.controller.batch,
        "crashes": pool.crashes,
        "respawns": pool.respawns,
    }


@pytest.fixture(scope="module")
def measurements():
    runs = []
    for app, sessions, txns, index, base, valid in CONFIGS:
        program = client_program(app, sessions, txns, index)
        label = f"{base}+{valid}" if valid else base
        serial, _ = _explore(program, base, valid, 1, collect=True)
        serial_keys = sorted(serial.histories.keys())
        serial_timed, _ = _explore(program, base, valid, 1, collect=False)
        runs.append(
            {
                "program": program.name,
                "algorithm": label,
                "workers": 1,
                "seconds": serial_timed.stats.seconds,
                "outputs": serial_timed.stats.outputs,
                "filtered": serial_timed.stats.filtered,
                "end_states": serial_timed.stats.end_states,
                "timed_out": serial_timed.stats.timed_out,
                "speedup_vs_serial": 1.0,
                "identical_histories": True,
            }
        )
        for workers in WORKER_COUNTS:
            collected, _ = _explore(program, base, valid, workers, collect=True)
            timed, explorer = _explore(program, base, valid, workers, collect=False)
            runs.append(
                {
                    "program": program.name,
                    "algorithm": label,
                    "workers": workers,
                    "seconds": timed.stats.seconds,
                    "outputs": timed.stats.outputs,
                    "filtered": timed.stats.filtered,
                    "end_states": timed.stats.end_states,
                    "timed_out": timed.stats.timed_out,
                    "speedup_vs_serial": (
                        serial_timed.stats.seconds / timed.stats.seconds
                        if timed.stats.seconds
                        else 0.0
                    ),
                    "identical_histories": sorted(collected.histories.keys()) == serial_keys,
                    "worker_processes": len([p for p in collected.worker_stats if p != 0]),
                    "pool": _pool_telemetry(explorer),
                }
            )
    return runs


def test_parallel_matches_serial_exactly(measurements):
    """Identity of output sets and counter totals — on any machine."""
    by_config = {}
    for run in measurements:
        by_config.setdefault((run["program"], run["algorithm"]), []).append(run)
    for (program, algorithm), runs in by_config.items():
        serial = next(r for r in runs if r["workers"] == 1)
        for run in runs:
            assert run["identical_histories"], (program, algorithm, run["workers"])
            for counter in ("outputs", "filtered", "end_states"):
                assert run[counter] == serial[counter], (program, algorithm, counter)


def _best_speedup(measurements, workers=None):
    eligible = [
        r
        for r in measurements
        if r["workers"] > 1 and (workers is None or r["workers"] == workers)
    ]
    if not eligible:
        return None
    return max(eligible, key=lambda r: r["speedup_vs_serial"])


def test_record_bench_parallel_json(measurements, results_dir):
    cpu_count = os.cpu_count()
    best = _best_speedup(measurements)
    best_two = _best_speedup(measurements, workers=2)
    payload = {
        "machine": {
            "cpu_count": cpu_count,
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "workers_tested": [1, *WORKER_COUNTS],
        "runs": measurements,
        "best_speedup": {
            "program": best["program"],
            "algorithm": best["algorithm"],
            "workers": best["workers"],
            "speedup_vs_serial": best["speedup_vs_serial"],
        },
        "speedup_target": SPEEDUP_TARGET,
        "speedup_target_met": best["speedup_vs_serial"] >= SPEEDUP_TARGET,
    }
    if best_two is not None:
        two = best_two["speedup_vs_serial"]
        payload["two_workers"] = {
            "best_speedup": two,
            "target": 1.0,
            "target_met": two >= 1.0,
        }
        if (cpu_count or 1) == 1:
            # The ISSUE's "no regression on 1 core" claim, with the measured
            # ratio recorded so a CI artifact from a 1-core container shows
            # exactly how close the pool came.
            payload["one_core_ratio"] = two
            payload["one_core_target"] = 1.0
            payload["one_core_target_met"] = two >= 1.0
    (results_dir / "BENCH_parallel.json").write_text(json.dumps(payload, indent=2) + "\n")

    rows = [
        (
            r["program"],
            r["algorithm"],
            r["workers"],
            f"{r['seconds']:.3f}",
            f"{r['speedup_vs_serial']:.2f}x",
            r["outputs"],
            r.get("pool", {}).get("tasks_dispatched", "-"),
            r.get("pool", {}).get("final_batch", "-"),
        )
        for r in measurements
    ]
    text = format_table(
        ["program", "algorithm", "workers", "time (s)", "speedup", "histories", "tasks", "batch"],
        rows,
    )
    save_result(results_dir, "parallel_scaling", text)
    print("\n" + text)


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason=f"the >={SPEEDUP_TARGET}x speedup target needs at least 4 cores",
)
def test_speedup_target_on_multicore(measurements):
    """On a >= 4-core machine at least one config must reach the target."""
    best = _best_speedup(measurements)
    assert best["speedup_vs_serial"] >= SPEEDUP_TARGET, (
        f"best parallel speedup only {best['speedup_vs_serial']:.2f}x "
        f"(target {SPEEDUP_TARGET}x, cpu_count={os.cpu_count()})"
    )


@pytest.mark.skipif(2 not in WORKER_COUNTS, reason="workers=2 not in the tested set")
def test_two_workers_never_regress(measurements):
    """workers=2 must not lose to serial — the pool's overhead story.

    With >= 2 real cores the floor is 1.0 (parallelism must pay for its
    own freight).  On a 1-core machine parallel cannot win, so the floor
    relaxes to :data:`ONE_CORE_TWO_WORKER_FLOOR`: still tight enough to
    catch a return of the fork-per-fan-out overhead pathology.
    """
    best_two = _best_speedup(measurements, workers=2)["speedup_vs_serial"]
    floor = 1.0 if (os.cpu_count() or 1) >= 2 else ONE_CORE_TWO_WORKER_FLOOR
    assert best_two >= floor, (
        f"workers=2 best speedup {best_two:.2f}x below floor {floor} "
        f"(cpu_count={os.cpu_count()})"
    )
