#!/usr/bin/env python
"""Generated workloads × the extended isolation lattice, end to end.

The registry's new levels (session guarantees, PSI, PC, BS-3) and the
workload generator meet in this sweep: every generator preset plus a
handful of inline specs is model-checked under a sample of the registered
levels, and every enumerated history is then replayed through the online
checker at **all** registered levels with the final verdicts compared to
the batch checkers and spot-checked against the brute-force axiomatic
reference.  This is the pipeline a user exercises with

    python -m repro record --app gen-hotspot --isolation PSI \
        | python -m repro replay - --online

so a regression anywhere along generator → exploration → trace →
online checking fails this script.

Standalone on purpose (stdlib + src only): CI runs it as its own gating
step on interpreters that may not have pytest, with a deliberately small
budget —

    PYTHONPATH=src python scripts/check_generator_fuzz.py

Exit code 0 iff every check agreed.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.apps.generator import PRESETS, parse_spec, spec_for  # noqa: E402
from repro.apps.workloads import client_program  # noqa: E402
from repro.checking.checker import ModelChecker  # noqa: E402
from repro.checking.online import OnlineChecker  # noqa: E402
from repro.isolation import get_level, registered_levels, satisfies_reference  # noqa: E402
from repro.trace import Trace  # noqa: E402

#: Exploration levels sampled per workload (keep the budget small; the
#: online replay below still checks all registered levels per history).
EXPLORE_LEVELS = ("CC", "SESSION", "PSI", "PC", "BS-3")

#: Inline specs covering the knobs the presets do not: tiny hot key space,
#: abort-heavy, read-session mix.
INLINE_SPECS = (
    "gen:keys=2,skew=3.0,len=1-2",
    "gen:keys=3,aborts=0.5,len=1-2",
    "gen:keys=3,reads=0.8,mix=0.5,len=1-2",
)

#: Histories small enough for the brute-force reference cross-check.
REFERENCE_TXN_LIMIT = 6


def check_workload(workload: str, seed: int) -> tuple[int, int]:
    """Explore one workload; return (histories checked, reference checks)."""
    all_levels = [level.name for level in registered_levels()]
    histories = 0
    referenced = 0
    program = client_program(workload, sessions=2, txns_per_session=2, seed=seed)
    for level_name in EXPLORE_LEVELS:
        result = ModelChecker(program, isolation=level_name).run(keep_outcomes=3)
        for outcome in result.outcomes or []:
            history = outcome.history
            level = get_level(level_name)
            if not level.satisfies(history):
                raise SystemExit(
                    f"FAIL: {workload} seed={seed}: exploration under "
                    f"{level_name} produced a history violating {level_name}"
                )
            trace = Trace.from_history(history, name=f"{workload}-{seed}-{level_name}")
            checker = OnlineChecker.from_trace(trace, levels=all_levels)
            checker.replay(trace)
            batch = {name: get_level(name).satisfies(history) for name in all_levels}
            if checker.verdicts != batch:
                diff = {
                    name: (checker.verdicts[name], batch[name])
                    for name in all_levels
                    if checker.verdicts[name] != batch[name]
                }
                raise SystemExit(
                    f"FAIL: {workload} seed={seed} under {level_name}: "
                    f"online != batch on {diff}"
                )
            if len(history.txns) <= REFERENCE_TXN_LIMIT:
                for name in all_levels:
                    if batch[name] != satisfies_reference(history, name):
                        raise SystemExit(
                            f"FAIL: {workload} seed={seed} under {level_name}: "
                            f"batch != reference at {name}"
                        )
                    referenced += 1
            histories += 1
    return histories, referenced


def main() -> int:
    # Validate every preset parses/resolves before spending exploration time.
    for name in PRESETS:
        spec_for(name)
    for spec in INLINE_SPECS:
        parse_spec(spec)

    started = time.time()
    histories = 0
    referenced = 0
    workloads = sorted(PRESETS) + list(INLINE_SPECS)
    for workload in workloads:
        for seed in (0, 1):
            h, r = check_workload(workload, seed)
            histories += h
            referenced += r
    elapsed = time.time() - started
    print(
        f"OK: {len(workloads)} workloads x 2 seeds x {len(EXPLORE_LEVELS)} levels: "
        f"{histories} histories online==batch across "
        f"{len(registered_levels())} registered levels, "
        f"{referenced} reference cross-checks, {elapsed:.1f}s"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
