#!/usr/bin/env python
"""Per-node cost profile of the exploration hot path.

Runs ``explore-ce``/``explore-ce*`` over the Fig. 14 application suite and
breaks the per-node (= per ``explore`` call) cost into the three quantities
the PR's stacked optimisations target, sampled by the
:class:`~repro.dpor.stats.ExplorationStats` counters:

* **saturation ticks / node** — axiom premise evaluations
  (:attr:`IncrementalSaturation.premise_evals` delta): how much forced-edge
  work the sibling-shared derivation actually leaves per node;
* **closure word-ops / node** — :attr:`RelationMatrix.word_ops` delta:
  row-word updates the word-packed relation engine performs;
* **executor instructions / node** — compiled-program instructions the
  dispatch loop retires re-running transaction bodies.

plus wall-clock µs/node.  Compare runs before/after a change to see where
per-node cost moved; ``--json`` emits the table machine-readably.

Usage::

    PYTHONPATH=src python scripts/profile_explore.py
    PYTHONPATH=src python scripts/profile_explore.py \
        --algorithms CC CC+SER --sessions 3 --txns 2 --per-app 2 --json out.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.apps.workloads import application_suite  # noqa: E402
from repro.dpor.algorithms import explore_ce, explore_ce_star  # noqa: E402

#: Algorithm label → (explore level, Valid level or None), Fig. 14 naming.
PROFILES: Dict[str, tuple] = {
    "CC": ("CC", None),
    "RC+CC": ("RC", "CC"),
    "RA+CC": ("RA", "CC"),
    "CC+SI": ("CC", "SI"),
    "CC+SER": ("CC", "SER"),
}


def profile_algorithm(
    label: str, programs: Sequence, timeout: Optional[float]
) -> Dict[str, object]:
    """Aggregate stats of one algorithm over ``programs``, per-node rates."""
    level, valid = PROFILES[label]
    nodes = ticks = word_ops = instructions = checks = 0
    seconds = 0.0
    timed_out = 0
    for program in programs:
        start = time.perf_counter()
        if valid is None:
            result = explore_ce(program, level, collect_histories=False, timeout=timeout)
        else:
            result = explore_ce_star(
                program, level, valid, collect_histories=False, timeout=timeout
            )
        seconds += time.perf_counter() - start
        stats = result.stats
        nodes += stats.explore_calls
        ticks += stats.saturation_ticks
        word_ops += stats.closure_word_ops
        instructions += stats.executor_instructions
        checks += stats.consistency_checks
        timed_out += stats.timed_out
    per = nodes or 1
    return {
        "algorithm": label,
        "programs": len(programs),
        "nodes": nodes,
        "seconds": round(seconds, 4),
        "us_per_node": round(1e6 * seconds / per, 2),
        "saturation_ticks_per_node": round(ticks / per, 2),
        "closure_word_ops_per_node": round(word_ops / per, 2),
        "executor_instructions_per_node": round(instructions / per, 2),
        "consistency_checks_per_node": round(checks / per, 2),
        "timed_out": timed_out,
    }


def render(rows: List[Dict[str, object]]) -> str:
    columns = list(rows[0].keys())
    widths = [
        max(len(str(col)), max(len(str(row[col])) for row in rows)) for col in columns
    ]
    lines = [
        "  ".join(str(col).rjust(w) for col, w in zip(columns, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(str(row[col]).rjust(w) for col, w in zip(columns, widths)))
    return "\n".join(lines)


def main(argv: Sequence[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--algorithms",
        nargs="+",
        default=["CC", "CC+SER"],
        choices=sorted(PROFILES),
        help="Fig. 14 algorithm configurations to profile",
    )
    parser.add_argument("--sessions", type=int, default=3)
    parser.add_argument("--txns", type=int, default=2)
    parser.add_argument("--per-app", type=int, default=2, dest="per_app")
    parser.add_argument("--timeout", type=float, default=60.0, help="per-program timeout")
    parser.add_argument("--json", type=Path, default=None, help="also write rows as JSON")
    args = parser.parse_args(argv)

    programs = application_suite(args.sessions, args.txns, args.per_app)
    rows = [profile_algorithm(label, programs, args.timeout) for label in args.algorithms]
    print(render(rows))
    if args.json is not None:
        args.json.write_text(json.dumps(rows, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
