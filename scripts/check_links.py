#!/usr/bin/env python3
"""Fail on broken relative links in the repository's Markdown docs.

Scans ``README.md`` and every ``*.md`` under ``docs/`` for inline Markdown
links/images, resolves relative targets against the containing file, and
reports targets that do not exist.  External (``http(s)://``, ``mailto:``)
and same-file anchor links are ignored; ``path#fragment`` is checked for
the path only.

Used by CI and by ``tests/test_docs_links.py``; run manually with::

    python scripts/check_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Tuple

#: Inline links and images: [text](target) / ![alt](target).
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_EXTERNAL = ("http://", "https://", "mailto:")


def markdown_files(root: Path) -> List[Path]:
    files = []
    readme = root / "README.md"
    if readme.exists():
        files.append(readme)
    files.extend(sorted((root / "docs").rglob("*.md")))
    return files


def broken_links(root: Path) -> List[Tuple[Path, str]]:
    """``(file, target)`` pairs whose relative target does not exist."""
    broken: List[Tuple[Path, str]] = []
    for md in markdown_files(root):
        text = md.read_text(encoding="utf-8")
        # Strip fenced code blocks — link syntax inside them is not a link.
        text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
        for match in _LINK.finditer(text):
            target = match.group(1)
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (md.parent / path).resolve()
            if not resolved.exists():
                broken.append((md, target))
    return broken


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    bad = broken_links(root)
    for md, target in bad:
        print(f"{md.relative_to(root)}: broken relative link -> {target}")
    if bad:
        return 1
    files = markdown_files(root)
    print(f"checked {len(files)} markdown file(s), all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
