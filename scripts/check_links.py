#!/usr/bin/env python3
"""Fail on broken relative links or anchors in the repository's Markdown docs.

Scans ``README.md`` and every ``*.md`` under ``docs/`` for inline Markdown
links/images, resolves relative targets against the containing file, and
reports targets that do not exist.  Fragments are validated too: for
``path#fragment`` links whose path is a Markdown file (and for same-file
``#fragment`` links), the fragment must match a heading of the target
file under GitHub's slugification.  External (``http(s)://``,
``mailto:``) links are ignored.

Used by CI and by ``tests/test_docs_links.py``; run manually with::

    python scripts/check_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Dict, List, Set, Tuple

#: Inline links and images: [text](target) / ![alt](target).
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$", re.MULTILINE)
_EXTERNAL = ("http://", "https://", "mailto:")


def markdown_files(root: Path) -> List[Path]:
    files = []
    readme = root / "README.md"
    if readme.exists():
        files.append(readme)
    files.extend(sorted((root / "docs").rglob("*.md")))
    return files


def _strip_code_blocks(text: str) -> str:
    """Drop fenced code blocks — link/heading syntax inside them is inert."""
    return re.sub(r"```.*?```", "", text, flags=re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's heading → anchor slugification (ASCII-ish approximation).

    Lowercase; drop everything that is not alphanumeric, space or hyphen
    (backticks, punctuation, arrows, …); spaces become hyphens.  Matches
    GitHub for every heading style used in this repository.
    """
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # linked headings
    text = "".join(ch for ch in text if ch.isalnum() or ch in " -")
    return text.replace(" ", "-")


def heading_slugs(md: Path) -> Set[str]:
    """All anchor slugs of one Markdown file (with GitHub's -1, -2 dedup)."""
    text = _strip_code_blocks(md.read_text(encoding="utf-8"))
    slugs: Set[str] = set()
    seen: Dict[str, int] = {}
    for match in _HEADING.finditer(text):
        slug = github_slug(match.group(1))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        slugs.add(slug if count == 0 else f"{slug}-{count}")
    return slugs


def broken_links(root: Path) -> List[Tuple[Path, str]]:
    """``(file, target)`` pairs whose relative target or anchor is broken."""
    broken: List[Tuple[Path, str]] = []
    slug_cache: Dict[Path, Set[str]] = {}

    def slugs_of(md: Path) -> Set[str]:
        if md not in slug_cache:
            slug_cache[md] = heading_slugs(md)
        return slug_cache[md]

    for md in markdown_files(root):
        text = _strip_code_blocks(md.read_text(encoding="utf-8"))
        for match in _LINK.finditer(text):
            target = match.group(1)
            if target.startswith(_EXTERNAL):
                continue
            path, _, fragment = target.partition("#")
            if path:
                resolved = (md.parent / path).resolve()
                if not resolved.exists():
                    broken.append((md, target))
                    continue
            else:
                resolved = md
            if fragment and resolved.suffix == ".md":
                if fragment not in slugs_of(resolved):
                    broken.append((md, target))
    return broken


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    bad = broken_links(root)
    for md, target in bad:
        print(f"{md.relative_to(root)}: broken relative link -> {target}")
    if bad:
        return 1
    files = markdown_files(root)
    print(f"checked {len(files)} markdown file(s), all relative links and anchors resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
