#!/usr/bin/env python
"""Cross-validate sibling-shared saturation against from-scratch checks.

The DPOR hot path derives each child node's :class:`IncrementalSaturation`
state from its parent's by diffing
(:func:`repro.isolation.saturation.derive_extension_states`) instead of
rebuilding the forced-edge closure per node.  This script checks the
property that makes that sound: on **every node** of the exploration tree,
the derived verdict equals the one a from-scratch
``satisfies_by_saturation`` computes on a cache-cold copy of the same
history — for each of the saturation levels RC, RA and CC, including the
candidate extensions ``ValidWrites`` rejects and the abort-of-a-writer
nodes that take the rebuild escape hatch.

On nodes where both sides are consistent it additionally compares the full
``so ∪ wr ∪ forced`` closures edge-by-edge: the derived matrix must contain
exactly the edges the batch rebuild derives, not merely agree on
acyclicity.

Standalone on purpose: the property must hold on every supported
interpreter, and the auxiliary pythons (3.9/3.12) have no pytest, so

    PYTHONPATH=src python scripts/check_saturation_shared.py

is the whole harness.  ``tests/test_saturation_shared.py`` wraps the same
sweep for the main suite.  Exit code 0 iff no mismatch was found.
"""

from __future__ import annotations

import argparse
import random
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Sequence, Tuple

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core.events import EventType, TxnId  # noqa: E402
from repro.core.history import History  # noqa: E402
from repro.isolation.axioms import AXIOMS_BY_LEVEL  # noqa: E402
from repro.isolation.base import get_level  # noqa: E402
from repro.isolation.saturation import satisfies_by_saturation  # noqa: E402
from repro.lang import L, Program, ProgramBuilder, abort  # noqa: E402
from repro.semantics.scheduler import (  # noqa: E402
    NextAction,
    extend_history,
    next_action,
    pending_transaction,
    unstarted_transactions,
)

#: The saturation (co-free) levels whose verdicts are compared per node.
SATURATION_LEVELS: Tuple[str, ...] = ("RC", "RA", "CC")


@dataclass
class SweepStats:
    """Outcome of sweeping one program's exploration tree."""

    program: str
    nodes: int = 0
    checks: int = 0
    #: Nodes reached with no derived state cached (the exploration root and
    #: every abort-of-a-writer child, i.e. the from-scratch rebuild path).
    rebuilds: int = 0
    #: Verdict-False nodes seen (inconsistent-state sharing exercised).
    inconsistent: int = 0
    truncated: bool = False
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches


def _closure_edges(matrix):
    """The relation as a set of (src, dst) pairs, order-independent."""
    nodes = matrix.nodes
    return {(a, b) for a in nodes for b in nodes if a != b and matrix.reaches(a, b)}


def check_node(history: History, stats: SweepStats) -> None:
    """Compare derived vs from-scratch verdicts (and closures) on one node."""
    states = history.saturation_states()
    if AXIOMS_BY_LEVEL["CC"] not in states:
        stats.rebuilds += 1
    for name in SATURATION_LEVELS:
        axioms = AXIOMS_BY_LEVEL[name]
        derived_state = states.get(axioms)
        derived = satisfies_by_saturation(history, axioms)
        cold = History(history.sessions, history.txns, history.wr)
        scratch = satisfies_by_saturation(cold, axioms)
        stats.checks += 1
        if not derived:
            stats.inconsistent += 1
        if derived != scratch:
            stats.mismatches.append(
                f"{stats.program}/{name}: derived verdict {derived} != "
                f"from-scratch {scratch} on {history!r}"
            )
            continue
        if derived and derived_state is not None:
            # Both consistent: the maintained closure must match the batch
            # rebuild edge-for-edge, not just on acyclicity.
            rebuilt = cold.saturation_states()[axioms]
            got = _closure_edges(derived_state.matrix)
            want = _closure_edges(rebuilt.matrix)
            if got != want:
                stats.mismatches.append(
                    f"{stats.program}/{name}: derived closure differs from "
                    f"rebuilt: extra={sorted(got - want)} "
                    f"missing={sorted(want - got)} on {history!r}"
                )


def sweep_program(
    program: Program,
    walk_level: str = "RC",
    max_nodes: int = 20000,
) -> SweepStats:
    """Walk every interleaving of ``program`` checking the property per node.

    The walk mirrors ``DFS(walk_level)`` (weakest level by default, for the
    widest tree) but, at external reads, *checks* every committed-writer
    candidate — including the ones ``ValidWrites`` rejects — and only
    recurses into the valid ones.  ``max_nodes`` truncates pathological
    trees; the stats record whether truncation happened.
    """
    level = get_level(walk_level)
    stats = SweepStats(program=program.name)
    root = program.initial_history()
    root.causal_matrix()
    check_node(root, stats)

    def rec(history: History) -> None:
        if stats.nodes >= max_nodes:
            stats.truncated = True
            return
        stats.nodes += 1

        pending = pending_transaction(history)
        if pending is None:
            starts = unstarted_transactions(program, history)
            startable = [
                tid for tid in starts if tid.index == len(history.sessions.get(tid.session, ()))
            ]
            for tid in startable:
                child = extend_history(history, NextAction(EventType.BEGIN, tid))
                check_node(child, stats)
                rec(child)
            return

        action = next_action(program, history)
        assert action is not None and action.txn == pending
        if action.is_external_read:
            history.causal_matrix()
            for log in history.committed_transactions():
                if not log.writes_var(action.var):
                    continue
                child = extend_history(history, action, log.tid)
                check_node(child, stats)
                if level.satisfies(child):
                    rec(child)
            return
        child = extend_history(history, action)
        check_node(child, stats)
        rec(child)

    rec(root)
    return stats


def abort_stream_program() -> Program:
    """Write-then-abort transactions in both sessions.

    Whether each guarded transaction aborts depends on the interleaving, so
    the sweep hits many abort-of-a-writer nodes — the one step
    ``derive_extension_states`` cannot express, forcing the
    ``from_history`` rebuild path on every such child (and derivation from
    the rebuilt state below it).
    """
    p = ProgramBuilder("abort-stream")
    s1 = p.session("s1")
    t1 = s1.transaction("t1")
    t1.write("x", 1).read("a", "y").if_(L("a") == 0, then=[abort()])
    s1.transaction("t2").read("b", "x")
    s2 = p.session("s2")
    t3 = s2.transaction("t3")
    t3.write("y", 1).read("c", "x").if_(L("c") == 0, then=[abort()])
    s2.transaction("t4").write("x", 2).write("y", 2)
    return p.build()


def _paper_programs() -> List[Program]:
    # Local copies of the tests/helpers.py paper programs: the script must
    # run standalone on interpreters that have only the repo and stdlib.
    programs: List[Program] = []

    p = ProgramBuilder("fig8")
    s1 = p.session("s1")
    s1.transaction("t1").read("a", "x").if_(L("a") == 3, then=[]).write("y", 1)
    s1.transaction("t2").read("b", "x").read("c", "y")
    p.session("s2").transaction("t3").read("d", "x").write("x", 3)
    programs.append(p.build())

    p = ProgramBuilder("fig10")
    p.session("reader").transaction("r").read("a", "x").read("b", "y")
    p.session("writer").transaction("w").write("x", 2).write("y", 2)
    programs.append(p.build())

    p = ProgramBuilder("fig11")
    s1 = p.session("s1")
    s1.transaction("t1").read("a", "x").if_(L("a") == 0, then=[abort()]).write("y", 1)
    s1.transaction("t2").read("b", "x")
    s2 = p.session("s2")
    s2.transaction("t3").write("y", 3)
    s2.transaction("t4").write("x", 4)
    programs.append(p.build())

    p = ProgramBuilder("fig13")
    p.session("s1").transaction("t1").read("a", "x")
    p.session("s2").transaction("t2").read("b", "y")
    p.session("s3").transaction("t3").write("y", 3)
    p.session("s4").transaction("t4").write("x", 4)
    programs.append(p.build())

    return programs


def random_program(rng: random.Random, name: str) -> Program:
    """Mirror of the tests/helpers.py generator (≤3 sessions × ≤2 txns)."""
    variables = ["x", "y", "z"][: rng.randint(1, 3)]
    p = ProgramBuilder(name)
    for s in range(rng.randint(1, 3)):
        session = p.session(f"s{s}")
        for _ in range(rng.randint(1, 2)):
            txn = session.transaction()
            for i in range(rng.randint(1, 3)):
                var = rng.choice(variables)
                roll = rng.random()
                if roll < 0.40:
                    txn.read(f"a{i}", var)
                elif roll < 0.85:
                    txn.write(var, rng.randint(1, 3))
                else:
                    txn.read(f"a{i}", var)
                    txn.if_(L(f"a{i}") == 0, then=[abort()])
    return p.build()


def run_sweeps(
    seeds: int = 5,
    max_nodes: int = 20000,
    report: Callable[[str], None] = print,
) -> List[SweepStats]:
    """Sweep the paper programs, the abort stream and ``seeds`` random
    programs; report one summary line each and return all stats."""
    programs = _paper_programs()
    programs.append(abort_stream_program())
    rng = random.Random(20230708)
    programs.extend(random_program(rng, f"rand{i}") for i in range(seeds))

    all_stats: List[SweepStats] = []
    for program in programs:
        stats = sweep_program(program, max_nodes=max_nodes)
        all_stats.append(stats)
        flags = " TRUNCATED" if stats.truncated else ""
        verdict = "ok" if stats.ok else f"{len(stats.mismatches)} MISMATCH(ES)"
        report(
            f"{stats.program:>14}: {stats.nodes:6d} nodes, {stats.checks:6d} checks, "
            f"{stats.rebuilds:4d} rebuilds, {stats.inconsistent:5d} inconsistent — "
            f"{verdict}{flags}"
        )
        for line in stats.mismatches:
            report(f"    {line}")
    return all_stats


def main(argv: Sequence[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, default=5, help="number of random programs")
    parser.add_argument(
        "--max-nodes", type=int, default=20000, help="per-program node cap for the sweep"
    )
    args = parser.parse_args(argv)
    all_stats = run_sweeps(seeds=args.seeds, max_nodes=args.max_nodes)
    bad = sum(len(s.mismatches) for s in all_stats)
    rebuilds = sum(s.rebuilds for s in all_stats)
    print(
        f"{sum(s.checks for s in all_stats)} checks over "
        f"{sum(s.nodes for s in all_stats)} nodes ({rebuilds} rebuild-path), "
        f"{bad} mismatch(es)"
    )
    if rebuilds <= len(all_stats):
        # Only the per-sweep root cold-starts — the abort-stream program
        # failed to exercise the rebuild escape hatch; treat as a harness
        # bug rather than a pass.
        print("error: sweep never took the abort-rebuild path", file=sys.stderr)
        return 1
    return 0 if bad == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
