"""Setup shim for environments without the ``wheel`` package.

All metadata lives in pyproject.toml; this file only enables
``pip install -e . --no-build-isolation`` (legacy editable installs).
"""

from setuptools import setup

setup()
