"""Multiprocess work-sharing driver for the swapping-based exploration.

The ``explore``/``exploreSwaps`` recursion decomposes perfectly: every
continuation pushed by a step roots a *disjoint* subtree of the history
space, and subtrees communicate nothing — only output histories and
statistics flow back.  :class:`ParallelExplorer` exploits this to spread
one exploration over the **persistent worker pool** of
:mod:`repro.dpor.pool` while producing exactly the same set of canonical
output histories and the same counter totals as the sequential
:class:`~repro.dpor.explore.SwappingExplorer`:

1. **Seeding.**  The coordinator expands the tree breadth-first (using the
   same :class:`~repro.dpor.explore.StepEngine` as the serial driver) until
   the frontier holds a few work items per worker — shallow nodes rooting
   the largest subtrees.  Seeding doubles as the tiny-tree probe
   (``min_fork_steps``): explorations that die out inside the probe finish
   serially and never pay pool startup.

2. **Fan-out over the persistent pool.**  Workers are spawned once per
   ``run()`` and fed batches of seeds in the length-prefixed frames of
   :mod:`repro.core.wire` — many seeds per message, one serialisation call
   per frame, results streamed back incrementally.  A worker explores
   depth-first under a ``task_budget`` time slice; shed stack halves
   (work sharing) and unfinished remainders come back with its ``DONE``
   frame and rebalance across the pool.  A
   :class:`~repro.dpor.pool.GranularityController` coarsens the
   seeds-per-frame batch until measured explore time dominates measured
   transfer time.  Workers that crash mid-task are recovered: their seeds
   are re-queued and their uncommitted partial results discarded, so the
   equivalence guarantees survive ``kill -9``.

3. **Deterministic merging.**  Outputs are deduplicated into one
   :class:`~repro.core.canonical.HistorySet` keyed by canonical history
   keys (subtrees are disjoint, so an optimal exploration stays optimal —
   no class is ever shipped twice), and per-worker
   :class:`~repro.dpor.stats.ExplorationStats` are committed atomically at
   each task's ``DONE`` and summed with
   :meth:`~repro.dpor.stats.ExplorationStats.merge`.  Because every node of
   the recursion tree is stepped exactly once by *somebody*, all additive
   counters (``outputs``, ``filtered``, ``blocked``, ``explore_calls``, …)
   equal the serial run's; only scheduling-dependent gauges
   (``peak_stack``, ``peak_live_events``, ``seconds``) differ.  The
   arrival *order* of outputs is nondeterministic — consumers needing a
   canonical order should sort by
   :meth:`~repro.core.history.History.canonical_key`.

Timeouts are propagated: each task receives the time remaining at dispatch
and its worker checks the deadline on **every** tick (the serial driver
polls every 32), so a parallel run overshoots ``timeout`` by at most one
step per worker; the merged stats report ``timed_out`` if any participant
expired.

The pool prefers the ``fork`` start method (workers inherit the program
and engine by memory — programs may close over lambdas, which do not
pickle) but is spawn-safe: on fork-less platforms the engine is pickled
once at pool start.  Where neither works, requesting ``workers > 1``
raises :class:`~repro.dpor.pool.PoolUnavailableError` **at construction**
— a parallel request never hangs and never silently serialises; the
documented fallback is ``workers=1``.
"""

from __future__ import annotations

import os
import time
from collections import deque
from typing import Callable, Deque, Dict, Optional

from ..core.canonical import HistorySet
from ..core.history import History
from ..isolation.base import IsolationLevel
from ..lang.program import Program
from .explore import (
    ExplorationResult,
    StepEngine,
    WorkItem,
    algorithm_name,
    validate_levels,
)
from .pool import PersistentPool, PoolUnavailableError, available_start_method
from .stats import ExplorationStats

__all__ = [
    "ParallelExplorer",
    "PoolUnavailableError",
    "resolve_workers",
]


def _forkable() -> bool:
    """Whether the ``fork`` start method exists on this platform.

    Used by consumers that are strictly fork-only (e.g. the sharded
    monitor, whose shard state cannot be pickled); the exploration pool
    itself is spawn-safe and probes via
    :func:`~repro.dpor.pool.available_start_method` instead.
    """
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


def resolve_workers(workers: int) -> int:
    """Normalize a ``workers`` request: ``0`` means one per CPU."""
    if workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers


class ParallelExplorer:
    """One configured multiprocess run of the swapping-based exploration.

    Accepts the same configuration as
    :class:`~repro.dpor.explore.SwappingExplorer` plus:

    Parameters
    ----------
    workers:
        Worker process count; ``0`` means ``os.cpu_count()``.  With ``1``
        no pool is created and the coordinator explores everything itself
        — same results, one process.  With ``N > 1`` on a platform where
        no pool can start, construction raises
        :class:`~repro.dpor.pool.PoolUnavailableError` (fail fast — never
        hang, never silently serialise).
    seed_factor:
        Seed the frontier with about ``seed_factor`` work items per worker
        before fanning out.
    task_ticks:
        Hard cap on steps per task (rebalancing granularity backstop; the
        ``task_budget`` time slice usually triggers first).
    split_threshold:
        Local stack size beyond which a worker sheds its shallowest half
        back to the coordinator.
    min_fork_steps:
        Steps the coordinator explores itself before committing to the
        pool (default: ``split_threshold``).  Small programs' whole trees
        die out within the probe, so they finish serially instead of
        paying pool startup plus a wire-encoded ``History`` per near-leaf
        seed.  ``0`` restores eager fan-out.
    batch_size:
        Seeds per task frame.  ``0`` (default) lets the
        :class:`~repro.dpor.pool.GranularityController` adapt the batch
        from measured explore/transfer times; a positive value pins it.
    task_budget:
        Target seconds of exploration per task (the worker's time slice,
        default 0.05).  Larger values amortise more transfer per frame;
        smaller values rebalance skewed subtrees faster.
    start_method:
        Multiprocessing start method override (``"fork"``/``"spawn"``/
        ``"forkserver"``); ``None`` picks the best available.
    """

    def __init__(
        self,
        program: Program,
        level: IsolationLevel,
        valid_level: Optional[IsolationLevel] = None,
        on_output: Optional[Callable[[History], None]] = None,
        collect_histories: bool = True,
        check_invariants: bool = False,
        timeout: Optional[float] = None,
        allow_any_level: bool = False,
        restrict_swaps: bool = True,
        workers: int = 0,
        seed_factor: int = 4,
        task_ticks: int = 16384,
        split_threshold: int = 128,
        min_fork_steps: Optional[int] = None,
        batch_size: int = 0,
        task_budget: float = 0.05,
        start_method: Optional[str] = None,
        _chaos_kill_after: Optional[int] = None,
    ):
        validate_levels(level, valid_level, allow_any_level)
        self.program = program
        self.level = level
        self.valid_level = valid_level
        self.on_output = on_output
        self.collect_histories = collect_histories
        self.check_invariants = check_invariants
        self.timeout = timeout
        self.restrict_swaps = restrict_swaps
        self.workers = resolve_workers(workers)
        self.seed_factor = seed_factor
        self.task_ticks = task_ticks
        self.split_threshold = split_threshold
        self.min_fork_steps = split_threshold if min_fork_steps is None else min_fork_steps
        self.batch_size = batch_size
        self.task_budget = task_budget
        self._chaos_kill_after = _chaos_kill_after
        self.engine = StepEngine(
            program,
            level,
            valid_level=valid_level,
            check_invariants=check_invariants,
            restrict_swaps=restrict_swaps,
        )
        # Fail fast: a multi-worker request on a platform with no usable
        # pool is a configuration error the caller must hear about now,
        # not a hang (or a silent serial run) at fan-out time.
        self.start_method = (
            available_start_method(self.engine, start_method)
            if self.workers > 1
            else None
        )
        self.stats = ExplorationStats()
        self.histories: Optional[HistorySet] = HistorySet() if collect_histories else None
        #: Per-participant stats: key 0 is the coordinator's seed phase,
        #: other keys are worker process ids.
        self.worker_stats: Dict[int, ExplorationStats] = {}
        #: The pool of the most recent :meth:`run` (telemetry: crashes,
        #: respawns, frames sent, final batch size); ``None`` before the
        #: first run or with ``workers=1``.  When the seed-phase probe
        #: finishes the tree serially the pool exists but never started
        #: (``tasks_dispatched == 0``).
        self.pool: Optional[PersistentPool] = None

    @property
    def algorithm_name(self) -> str:
        return algorithm_name(self.level, self.valid_level)

    # -- driver -------------------------------------------------------------

    def run(self) -> ExplorationResult:
        """Execute the exploration to completion (or timeout)."""
        start = time.monotonic()
        deadline = start + self.timeout if self.timeout else None
        seed_stats = ExplorationStats()
        self.worker_stats = {0: seed_stats}
        pool = self._make_pool() if self.workers > 1 else None
        try:
            frontier = self._seed(seed_stats, deadline, pool)
            if frontier and not seed_stats.timed_out:
                if pool is not None:
                    self._fan_out(pool, frontier, deadline, seed_stats)
                else:
                    self._drain_serially(frontier, seed_stats, deadline)
        finally:
            if pool is not None:
                pool.shutdown()
        merged = ExplorationStats()
        for stats in self.worker_stats.values():
            merged = merged.merge(stats)
        merged.seconds = time.monotonic() - start
        self.stats = merged
        return ExplorationResult(
            self.program.name,
            self.algorithm_name,
            merged,
            self.histories,
            worker_stats=dict(self.worker_stats),
        )

    # -- phases -------------------------------------------------------------

    def _seed(
        self,
        stats: ExplorationStats,
        deadline: Optional[float],
        pool: Optional[PersistentPool] = None,
    ) -> Deque[WorkItem]:
        """Breadth-first prefix expansion until the frontier can feed the pool.

        Doubles as the tiny-tree probe: with a pool configured, expansion
        continues for at least :attr:`min_fork_steps` steps even once the
        frontier is wide enough.  An exploration whose tree dies out inside
        the probe was measurably too small to amortise pool startup and
        per-seed ``History`` re-encoding; it completes right here and the
        pool never starts.  Trees that outlive half the probe have all but
        proven they will fan out, so the pool is started *there* — worker
        processes boot while the coordinator is still seeding, hiding pool
        startup behind exploration the coordinator must do anyway.
        """
        target = max(self.workers * self.seed_factor, 1)
        probe = self.min_fork_steps if self.workers > 1 else 0
        start_at = max(probe // 2, 1) if pool is not None else None
        steps = 0
        frontier: Deque[WorkItem] = deque([self.engine.initial_item()])
        live_events = frontier[0][1].history.event_count()
        while frontier and (len(frontier) < target or steps < probe):
            if deadline is not None and time.monotonic() > deadline:
                stats.timed_out = True
                frontier.clear()
                break
            steps += 1
            if steps == start_at:
                pool.start()
            kind, oh = frontier.popleft()
            live_events -= oh.history.event_count()
            pushed, outputs = self.engine.step(oh, kind, stats)
            frontier.extend(pushed)
            live_events += sum(item[1].history.event_count() for item in pushed)
            if len(frontier) > stats.peak_stack:
                stats.peak_stack = len(frontier)
            if live_events > stats.peak_live_events:
                stats.peak_live_events = live_events
            for history in outputs:
                self._emit(history)
        return frontier

    def _make_pool(self) -> PersistentPool:
        pool = PersistentPool(
            self.engine,
            self.workers,
            start_method=self.start_method,
            task_budget=self.task_budget,
            task_ticks=self.task_ticks,
            split_threshold=self.split_threshold,
            batch_size=self.batch_size,
            chaos_exit_after=self._chaos_kill_after,
        )
        self.pool = pool
        return pool

    def _fan_out(
        self,
        pool: PersistentPool,
        frontier: Deque[WorkItem],
        deadline: Optional[float],
        seed_stats: ExplorationStats,
    ) -> None:
        """Distribute frontier subtrees over the persistent worker pool."""
        ship_outputs = self.collect_histories or self.on_output is not None
        timed_out = pool.explore(
            list(frontier),
            deadline,
            ship_outputs,
            self._emit,
            self.worker_stats,
            seed_stats,
        )
        if timed_out:
            seed_stats.timed_out = True

    def _drain_serially(
        self,
        frontier: Deque[WorkItem],
        stats: ExplorationStats,
        deadline: Optional[float],
    ) -> None:
        """``workers=1``: finish the exploration on the coordinator."""
        self.engine.drain(
            list(frontier), stats, self._emit, deadline=deadline, poll_every=1
        )

    def _emit(self, history: History) -> None:
        if self.histories is not None:
            self.histories.add(history)
        if self.on_output is not None:
            self.on_output(history)
