"""Multiprocess work-sharing driver for the swapping-based exploration.

The ``explore``/``exploreSwaps`` recursion decomposes perfectly: every
continuation pushed by a step roots a *disjoint* subtree of the history
space, and subtrees communicate nothing — only output histories and
statistics flow back.  :class:`ParallelExplorer` exploits this to spread
one exploration over a pool of worker processes while producing **exactly
the same set of canonical output histories and the same counter totals**
as the sequential :class:`~repro.dpor.explore.SwappingExplorer`:

1. **Seeding.**  The coordinator expands the tree breadth-first (using the
   same :class:`~repro.dpor.explore.StepEngine` as the serial driver) until
   the frontier holds a few work items per worker — shallow nodes rooting
   the largest subtrees.

2. **Fan-out with work sharing.**  Frontier items are encoded with the
   compact wire format of :mod:`repro.core.wire` and handed to the pool one
   seed per task.  A worker explores its subtree depth-first with a local
   LIFO stack; when the stack exceeds ``split_threshold`` it strips the
   *bottom* (shallowest) half into an overflow list, and when its tick
   budget expires it stops — both the overflow and any unfinished stack
   come back to the coordinator as new frontier items, so skewed subtrees
   rebalance across the pool instead of serialising on one process.

3. **Deterministic merging.**  Outputs are deduplicated into one
   :class:`~repro.core.canonical.HistorySet` keyed by canonical history
   keys (subtrees are disjoint, so an optimal exploration stays optimal —
   no class is ever shipped twice), and per-worker
   :class:`~repro.dpor.stats.ExplorationStats` are summed with
   :meth:`~repro.dpor.stats.ExplorationStats.merge`.  Because every node of
   the recursion tree is stepped exactly once by *somebody*, all additive
   counters (``outputs``, ``filtered``, ``blocked``, ``explore_calls``, …)
   equal the serial run's; only scheduling-dependent gauges
   (``peak_stack``, ``peak_live_events``, ``seconds``) differ.  The arrival *order* of outputs is nondeterministic
   — consumers needing a canonical order should sort by
   :meth:`~repro.core.history.History.canonical_key`.

Timeouts are propagated: each task receives the time remaining at submit
and its worker checks the deadline on **every** tick (the serial driver
polls every 32), so a parallel run overshoots ``timeout`` by at most one
step per worker; the merged stats report ``timed_out`` if any participant
expired.

The pool uses the ``fork`` start method so workers inherit the program and
engine by memory sharing — programs may close over lambdas (the application
workloads do), which do not pickle.  Where ``fork`` is unavailable
(Windows), the coordinator degrades to exploring the frontier itself; the
result is still exact, just sequential.
"""

from __future__ import annotations

import os
import time
from collections import deque
from itertools import count
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..core.canonical import HistorySet
from ..core.history import History
from ..core.wire import decode_items, encode_items
from ..isolation.base import IsolationLevel
from ..lang.program import Program
from .explore import (
    ExplorationResult,
    StepEngine,
    WorkItem,
    algorithm_name,
    validate_levels,
)
from .stats import ExplorationStats

#: Engines shared with forked workers, keyed by a per-run token.  Workers
#: inherit the registry at fork time and look their engine up by the token
#: in each task payload, so concurrent ParallelExplorer runs in one process
#: (e.g. from a threaded harness) cannot cross-wire configurations.
_ENGINES: Dict[int, StepEngine] = {}
_ENGINE_TOKENS = count()


def _forkable() -> bool:
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


def resolve_workers(workers: int) -> int:
    """Normalize a ``workers`` request: ``0`` means one per CPU."""
    if workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers


def _subtree_task(payload: Tuple) -> Tuple:
    """Explore (part of) a subtree inside a worker process.

    Returns ``(pid, stats, outputs, returned_frontier, timed_out)`` where
    ``returned_frontier`` holds wire-encoded work items the worker gave
    back for rebalancing (stack overflow and/or tick-budget remainder).
    """
    token, items_wire, task_ticks, split_threshold, time_left, ship_outputs = payload
    engine = _ENGINES.get(token)
    assert engine is not None, "worker started without an engine (fork-only pool)"
    deadline = time.monotonic() + time_left if time_left is not None else None
    stats = ExplorationStats()
    stack: List[WorkItem] = decode_items(items_wire)
    live_events = sum(item[1].history.event_count() for item in stack)
    overflow: List[WorkItem] = []
    outputs: List[History] = []
    ticks = 0
    timed_out = False
    while stack:
        # Deadline first, every tick: a parallel run must honor the overall
        # timeout within one step granularity (the coordinator cannot
        # interrupt a busy worker).
        if deadline is not None and time.monotonic() > deadline:
            timed_out = True
            stack.clear()
            break
        ticks += 1
        if ticks > task_ticks:
            break  # return the remainder for rebalancing
        kind, oh = stack.pop()
        live_events -= oh.history.event_count()
        pushed, outs = engine.step(oh, kind, stats)
        if ship_outputs:
            outputs.extend(outs)
        stack.extend(reversed(pushed))
        live_events += sum(item[1].history.event_count() for item in pushed)
        if len(stack) > stats.peak_stack:
            stats.peak_stack = len(stack)
        if live_events > stats.peak_live_events:
            stats.peak_live_events = live_events
        if len(stack) > split_threshold:
            # Work sharing: hand the *shallowest* half back — bottom-of-stack
            # entries root the largest remaining subtrees, exactly what idle
            # workers want.
            cut = len(stack) // 2
            overflow.extend(stack[:cut])
            del stack[:cut]
            live_events = sum(item[1].history.event_count() for item in stack)
    returned = encode_items(overflow + stack) if (overflow or stack) and not timed_out else []
    return (os.getpid(), stats, outputs if ship_outputs else [], returned, timed_out)


class ParallelExplorer:
    """One configured multiprocess run of the swapping-based exploration.

    Accepts the same configuration as
    :class:`~repro.dpor.explore.SwappingExplorer` plus:

    Parameters
    ----------
    workers:
        Worker process count; ``0`` means ``os.cpu_count()``.  With ``1``
        (or where ``fork`` is unavailable) no pool is created and the
        coordinator explores everything itself — same results, one
        process.
    seed_factor:
        Seed the frontier with about ``seed_factor`` work items per worker
        before fanning out.
    task_ticks:
        Steps a worker performs per task before returning its remaining
        stack for rebalancing.
    split_threshold:
        Local stack size beyond which a worker sheds its shallowest half
        back to the coordinator.
    min_fork_steps:
        Steps the coordinator explores itself before committing to the
        pool (default: ``split_threshold``).  Small programs' whole trees
        die out within the probe, so they finish serially instead of
        paying pool setup plus a wire-encoded ``History`` per near-leaf
        seed — the measured fix for tiny-seed fan-out overhead.  ``0``
        restores eager fan-out.
    """

    def __init__(
        self,
        program: Program,
        level: IsolationLevel,
        valid_level: Optional[IsolationLevel] = None,
        on_output: Optional[Callable[[History], None]] = None,
        collect_histories: bool = True,
        check_invariants: bool = False,
        timeout: Optional[float] = None,
        allow_any_level: bool = False,
        restrict_swaps: bool = True,
        workers: int = 0,
        seed_factor: int = 4,
        task_ticks: int = 2048,
        split_threshold: int = 128,
        min_fork_steps: Optional[int] = None,
    ):
        validate_levels(level, valid_level, allow_any_level)
        self.program = program
        self.level = level
        self.valid_level = valid_level
        self.on_output = on_output
        self.collect_histories = collect_histories
        self.check_invariants = check_invariants
        self.timeout = timeout
        self.restrict_swaps = restrict_swaps
        self.workers = resolve_workers(workers)
        self.seed_factor = seed_factor
        self.task_ticks = task_ticks
        self.split_threshold = split_threshold
        self.min_fork_steps = split_threshold if min_fork_steps is None else min_fork_steps
        self.engine = StepEngine(
            program,
            level,
            valid_level=valid_level,
            check_invariants=check_invariants,
            restrict_swaps=restrict_swaps,
        )
        self.stats = ExplorationStats()
        self.histories: Optional[HistorySet] = HistorySet() if collect_histories else None
        #: Per-participant stats: key 0 is the coordinator's seed phase,
        #: other keys are worker process ids.
        self.worker_stats: Dict[int, ExplorationStats] = {}

    @property
    def algorithm_name(self) -> str:
        return algorithm_name(self.level, self.valid_level)

    # -- driver -------------------------------------------------------------

    def run(self) -> ExplorationResult:
        """Execute the exploration to completion (or timeout)."""
        start = time.monotonic()
        deadline = start + self.timeout if self.timeout else None
        seed_stats = ExplorationStats()
        self.worker_stats = {0: seed_stats}
        frontier = self._seed(seed_stats, deadline)
        if frontier and not seed_stats.timed_out:
            if _forkable() and self.workers > 1:
                self._fan_out(frontier, deadline)
            else:
                self._drain_serially(frontier, seed_stats, deadline)
        merged = ExplorationStats()
        for stats in self.worker_stats.values():
            merged = merged.merge(stats)
        merged.seconds = time.monotonic() - start
        self.stats = merged
        return ExplorationResult(
            self.program.name,
            self.algorithm_name,
            merged,
            self.histories,
            worker_stats=dict(self.worker_stats),
        )

    # -- phases -------------------------------------------------------------

    def _seed(
        self, stats: ExplorationStats, deadline: Optional[float]
    ) -> Deque[WorkItem]:
        """Breadth-first prefix expansion until the frontier can feed the pool.

        Doubles as the tiny-tree probe: with a pool configured, expansion
        continues for at least :attr:`min_fork_steps` steps even once the
        frontier is wide enough.  An exploration whose tree dies out inside
        the probe was measurably too small to amortise pool setup and
        per-seed ``History`` re-encoding; it completes right here and
        :meth:`run` never fans out.  Trees that outlive the probe have
        proven at least ``min_fork_steps`` of work and get the pool.
        """
        target = max(self.workers * self.seed_factor, 1)
        probe = self.min_fork_steps if self.workers > 1 and _forkable() else 0
        steps = 0
        frontier: Deque[WorkItem] = deque([self.engine.initial_item()])
        live_events = frontier[0][1].history.event_count()
        while frontier and (len(frontier) < target or steps < probe):
            if deadline is not None and time.monotonic() > deadline:
                stats.timed_out = True
                frontier.clear()
                break
            steps += 1
            kind, oh = frontier.popleft()
            live_events -= oh.history.event_count()
            pushed, outputs = self.engine.step(oh, kind, stats)
            frontier.extend(pushed)
            live_events += sum(item[1].history.event_count() for item in pushed)
            if len(frontier) > stats.peak_stack:
                stats.peak_stack = len(frontier)
            if live_events > stats.peak_live_events:
                stats.peak_live_events = live_events
            for history in outputs:
                self._emit(history)
        return frontier

    def _fan_out(self, frontier: Deque[WorkItem], deadline: Optional[float]) -> None:
        """Distribute frontier subtrees over a fork pool with work sharing."""
        import multiprocessing
        from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait

        ship_outputs = self.collect_histories or self.on_output is not None
        pending: Deque[Tuple] = deque(
            (kind, wire) for kind, wire in encode_items(list(frontier))
        )
        token = next(_ENGINE_TOKENS)
        _ENGINES[token] = self.engine
        executor = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=multiprocessing.get_context("fork"),
        )
        try:
            timed_out = False
            in_flight = set()
            while pending or in_flight:
                now = time.monotonic()
                if deadline is not None and now > deadline:
                    timed_out = True
                if timed_out:
                    pending.clear()  # stop feeding; running tasks self-expire
                while pending and len(in_flight) < self.workers:
                    item = pending.popleft()
                    time_left = None if deadline is None else max(deadline - now, 0.0)
                    in_flight.add(
                        executor.submit(
                            _subtree_task,
                            (
                                token,
                                [item],
                                self.task_ticks,
                                self.split_threshold,
                                time_left,
                                ship_outputs,
                            ),
                        )
                    )
                if not in_flight:
                    break
                done, in_flight = wait(in_flight, return_when=FIRST_COMPLETED)
                for future in done:
                    pid, stats, outputs, returned, worker_timed_out = future.result()
                    bucket = self.worker_stats.get(pid)
                    self.worker_stats[pid] = stats if bucket is None else bucket.merge(stats)
                    timed_out = timed_out or worker_timed_out
                    pending.extend(returned)
                    for history in outputs:
                        self._emit(history)
            if timed_out:
                self.worker_stats[0].timed_out = True
        finally:
            _ENGINES.pop(token, None)
            executor.shutdown(wait=True)

    def _drain_serially(
        self,
        frontier: Deque[WorkItem],
        stats: ExplorationStats,
        deadline: Optional[float],
    ) -> None:
        """No-fork fallback: finish the exploration on the coordinator."""
        self.engine.drain(
            list(frontier), stats, self._emit, deadline=deadline, poll_every=1
        )

    def _emit(self, history: History) -> None:
        if self.histories is not None:
            self.histories.add(history)
        if self.on_output is not None:
            self.on_output(history)
