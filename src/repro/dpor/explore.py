"""The swapping-based SMC algorithms (paper Algorithms 1 and 2, §4–§6).

:class:`SwappingExplorer` implements the generic ``explore`` /
``exploreSwaps`` recursion, instantiated with

* the deterministic oracle-order ``Next`` and ``ValidWrites`` of §5.1,
* the ``ComputeReorderings``/``Swap`` of §5.2, and
* the ``Optimality`` restriction (``swapped`` + ``readLatest``) of §5.3,

which together are the algorithm the paper calls **explore-ce** — sound,
complete, strongly optimal and polynomial-space for any prefix-closed and
causally-extensible isolation level (Theorem 5.1).

Setting ``valid_level`` turns it into **explore-ce\\*(I0, I)** (§6): the
exploration runs under the weaker level ``I0`` and the ``Valid`` filter
keeps only ``I``-consistent histories at output time — the construction used
for Snapshot Isolation and Serializability, which admit no strongly optimal
swapping-based algorithm (Theorem 6.1).

The recursion is realised with an explicit LIFO work stack (the paper's
implementation is iterative too, §7.1); the peak stack size is the paper's
polynomial-memory bound and is reported in the statistics.

The per-node body of the recursion lives in :class:`StepEngine`: one
``explore``/``exploreSwaps`` call mapped to the continuations it pushes and
the histories it outputs.  The engine holds only the run *configuration*
(program, levels, ablation switches) and no exploration state, so the same
instance serves the sequential driver here and the multiprocess driver in
:mod:`repro.dpor.parallel` — the subtree rooted at any stack entry can be
explored by whoever holds the entry.

All causality queries issued on behalf of the exploration — swap-candidate
filtering, doomed-event pruning, and the consistency checks behind
``ValidWrites`` — run against the per-history cached
:class:`~repro.core.bitrel.RelationMatrix` (``so ∪ wr`` with its closure
maintained incrementally), so the relation is constructed at most once per
explored history rather than once per query.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..core.bitrel import RelationMatrix
from ..core.canonical import HistorySet
from ..core.events import EventId
from ..core.history import History
from ..core.ordered_history import OrderedHistory
from ..isolation.base import IsolationLevel
from ..isolation.saturation import IncrementalSaturation
from ..lang.program import Program
from ..semantics import executor
from ..semantics.scheduler import apply_action, next_action, valid_writes
from .optimality import optimality
from .stats import ExplorationStats
from .swaps import compute_reorderings, swap


@dataclass
class ExplorationResult:
    """Outcome of one SMC run."""

    program_name: str
    algorithm: str
    stats: ExplorationStats
    histories: Optional[HistorySet]
    #: For parallel runs: per-worker-process statistics keyed by pid (the
    #: coordinator's seed-phase stats under key 0); ``None`` for serial runs.
    worker_stats: Optional[Dict[int, ExplorationStats]] = None

    @property
    def distinct_histories(self) -> int:
        if self.histories is None:
            raise ValueError("run was configured with collect_histories=False")
        return len(self.histories)

    @property
    def is_optimal_run(self) -> bool:
        """No history class was output twice (the optimality property)."""
        return self.histories is not None and self.histories.duplicates == 0


_EXPLORE = 0
_SWAPS = 1

#: A work-stack entry: which of the two mutually recursive procedures to run
#: on the ordered history.
WorkItem = Tuple[int, OrderedHistory]


class StepEngine:
    """The per-node step of ``explore-ce``/``explore-ce*``, continuation style.

    ``step`` performs exactly one ``explore`` or ``exploreSwaps`` call and
    returns the continuations to push plus the histories output by that call
    (already past the ``Valid`` filter; rejected end states are counted in
    ``stats.filtered``).  Counters are accumulated into the caller-provided
    :class:`ExplorationStats`, which is the engine's only side channel — the
    engine itself is stateless w.r.t. the exploration, so disjoint subtrees
    can be stepped by different drivers (or different processes) and their
    results merged.
    """

    __slots__ = ("program", "level", "valid_level", "check_invariants", "restrict_swaps")

    def __init__(
        self,
        program: Program,
        level: IsolationLevel,
        valid_level: Optional[IsolationLevel] = None,
        check_invariants: bool = False,
        restrict_swaps: bool = True,
    ):
        self.program = program
        self.level = level
        self.valid_level = valid_level
        self.check_invariants = check_invariants
        #: Ablation switch: with False, the Optimality condition of §5.3 is
        #: replaced by a bare consistency check on the swapped history —
        #: still sound and complete, but histories are explored redundantly.
        self.restrict_swaps = restrict_swaps

    def initial_item(self) -> WorkItem:
        """The root of the exploration tree.

        The root history's hot-path caches are warmed here — its ``so ∪ wr``
        closure and the saturation state of each configured level — so that
        every node of the tree *derives* its caches from its parent's
        (sibling-shared saturation) instead of the first consistency check
        per node rebuilding them from scratch.
        """
        root = self.program.initial_history()
        root.causal_matrix()
        self.level.satisfies(root)
        if self.valid_level is not None:
            self.valid_level.satisfies(root)
        return (_EXPLORE, OrderedHistory.initial(root))

    def step(
        self, oh: OrderedHistory, kind: int, stats: ExplorationStats
    ) -> Tuple[List[WorkItem], List[History]]:
        """One ``explore``/``exploreSwaps`` call → (continuations, outputs).

        The per-node cost counters (saturation premise evaluations, closure
        word operations, executor instructions) are accumulated as deltas
        of the process-wide counters around the step body.
        """
        ticks0 = IncrementalSaturation.premise_evals
        words0 = RelationMatrix.word_ops
        instrs0 = executor.INSTRUCTIONS_EXECUTED
        if kind == _EXPLORE:
            result = self._explore(oh, stats)
        else:
            result = self._explore_swaps(oh, stats), []
        stats.saturation_ticks += IncrementalSaturation.premise_evals - ticks0
        stats.closure_word_ops += RelationMatrix.word_ops - words0
        stats.executor_instructions += executor.INSTRUCTIONS_EXECUTED - instrs0
        return result

    def drain(
        self,
        stack: List[WorkItem],
        stats: ExplorationStats,
        emit: Callable[[History], None],
        deadline: Optional[float] = None,
        poll_every: int = 32,
    ) -> None:
        """Run a LIFO work stack to exhaustion (or deadline) in-process.

        The shared serial drive loop: pops depth-first, steps, maintains the
        ``peak_stack``/``peak_live_events`` gauges, and hands every output
        history to ``emit``.  ``poll_every`` sets the deadline-check
        granularity (the sequential driver polls every 32 ticks; the
        parallel coordinator's no-fork fallback polls every tick).  On
        expiry ``stats.timed_out`` is set and the rest of the stack is
        abandoned.  The worker-side loop in :mod:`repro.dpor.parallel` is
        separate because it additionally budgets ticks, sheds stack, and
        ships outputs instead of emitting them.
        """
        live_events = sum(item[1].history.event_count() for item in stack)
        ticks = 0
        while stack:
            ticks += 1
            if deadline is not None and ticks % poll_every == 0 and time.monotonic() > deadline:
                stats.timed_out = True
                return
            kind, oh = stack.pop()
            live_events -= oh.history.event_count()
            pushed, outputs = self.step(oh, kind, stats)
            stack.extend(reversed(pushed))
            live_events += sum(item[1].history.event_count() for item in pushed)
            if len(stack) > stats.peak_stack:
                stats.peak_stack = len(stack)
            if live_events > stats.peak_live_events:
                stats.peak_live_events = live_events
            for history in outputs:
                emit(history)

    # -- the two mutually recursive steps, in continuation form ----------------------

    def _explore(
        self, oh: OrderedHistory, stats: ExplorationStats
    ) -> Tuple[List[WorkItem], List[History]]:
        """One ``explore`` call; returns continuations and output histories."""
        stats.explore_calls += 1
        if self.check_invariants:
            oh.validate()
            if not self.level.satisfies(oh.history):
                raise AssertionError(
                    f"strong optimality violated: explore reached a non-{self.level.name} history"
                )
        action = next_action(self.program, oh.history)
        if action is None:
            output = self._output(oh.history, stats)
            return [], ([output] if output is not None else [])
        if action.is_external_read:
            choices = valid_writes(oh.history, action, self.level)
            stats.consistency_checks += max(len(choices), 1)
            if not choices:
                stats.blocked += 1
                return [], []
            eid = EventId(action.txn, len(oh.history.txns[action.txn].events))
            pushed: List[WorkItem] = []
            # Deterministic branch order: writers by position in <.
            choices.sort(key=lambda pair: oh.txn_position(pair[0]))
            for _writer, extended in choices:
                branch = oh.extended(extended, eid)
                pushed.append((_EXPLORE, branch))
                pushed.append((_SWAPS, branch))
            return pushed, []
        extended = apply_action(oh, action)
        return [(_EXPLORE, extended), (_SWAPS, extended)], []

    def _explore_swaps(self, oh: OrderedHistory, stats: ExplorationStats) -> List[WorkItem]:
        """One ``exploreSwaps`` call; returns the continuations to push."""
        pairs = compute_reorderings(oh)
        stats.swap_candidates += len(pairs)
        pushed: List[WorkItem] = []
        for read, target in pairs:
            if self.restrict_swaps:
                enabled, swapped_oh = optimality(self.program, oh, read, target, self.level)
            else:
                swapped_oh = swap(oh, read, target)
                enabled = self.level.satisfies(swapped_oh.history)
            stats.consistency_checks += 1
            if enabled:
                assert swapped_oh is not None
                stats.swaps_applied += 1
                pushed.append((_EXPLORE, swapped_oh))
        return pushed

    def _output(self, history: History, stats: ExplorationStats) -> Optional[History]:
        """Apply the ``Valid`` filter; return the history iff it is output."""
        stats.end_states += 1
        if self.valid_level is not None:
            stats.consistency_checks += 1
            if not self.valid_level.satisfies(history):
                stats.filtered += 1
                return None
        stats.outputs += 1
        return history


def validate_levels(
    level: IsolationLevel,
    valid_level: Optional[IsolationLevel],
    allow_any_level: bool,
) -> None:
    """The level preconditions of Theorems 5.1/6.1, shared by both drivers."""
    if not allow_any_level and not (level.prefix_closed and level.causally_extensible):
        raise ValueError(
            f"exploration level {level.name} must be prefix-closed and causally "
            f"extensible; use it as valid_level on top of a weaker level instead"
        )
    if valid_level is not None and not level.is_weaker_than(valid_level):
        raise ValueError(f"{level.name} must be weaker than {valid_level.name}")


def algorithm_name(level: IsolationLevel, valid_level: Optional[IsolationLevel]) -> str:
    if valid_level is None:
        return f"explore-ce({level.name})"
    return f"explore-ce*({level.name}, {valid_level.name})"


class SwappingExplorer:
    """One configured sequential run of the swapping-based exploration.

    Parameters
    ----------
    program:
        The bounded transactional program to check.
    level:
        The exploration isolation level ``I0``; must be prefix-closed and
        causally extensible for the correctness guarantees to hold (this is
        enforced unless ``allow_any_level``).
    valid_level:
        Optional stronger level ``I`` applied as the output filter
        (``explore-ce*``); ``None`` means ``Valid ≡ true`` (plain
        ``explore-ce``).
    on_output:
        Callback invoked with every output history.
    collect_histories:
        Keep an in-memory :class:`HistorySet` of outputs (needed by the
        correctness tests; benchmark runs may disable it to count only).
    check_invariants:
        Re-validate the ordered-history invariants and the
        strong-optimality property at every call (slow; used in tests).
    """

    def __init__(
        self,
        program: Program,
        level: IsolationLevel,
        valid_level: Optional[IsolationLevel] = None,
        on_output: Optional[Callable[[History], None]] = None,
        collect_histories: bool = True,
        check_invariants: bool = False,
        timeout: Optional[float] = None,
        allow_any_level: bool = False,
        restrict_swaps: bool = True,
    ):
        validate_levels(level, valid_level, allow_any_level)
        self.program = program
        self.level = level
        self.valid_level = valid_level
        self.on_output = on_output
        self.collect_histories = collect_histories
        self.check_invariants = check_invariants
        self.timeout = timeout
        self.restrict_swaps = restrict_swaps
        self.engine = StepEngine(
            program,
            level,
            valid_level=valid_level,
            check_invariants=check_invariants,
            restrict_swaps=restrict_swaps,
        )
        self.stats = ExplorationStats()
        self.histories: Optional[HistorySet] = HistorySet() if collect_histories else None

    @property
    def algorithm_name(self) -> str:
        return algorithm_name(self.level, self.valid_level)

    # -- driver -------------------------------------------------------------

    def run(self) -> ExplorationResult:
        """Execute the exploration to completion (or timeout)."""
        start = time.monotonic()
        deadline = start + self.timeout if self.timeout else None
        self.engine.drain(
            [self.engine.initial_item()], self.stats, self._emit, deadline=deadline
        )
        self.stats.seconds = time.monotonic() - start
        return ExplorationResult(self.program.name, self.algorithm_name, self.stats, self.histories)

    def _emit(self, history: History) -> None:
        if self.histories is not None:
            self.histories.add(history)
        if self.on_output is not None:
            self.on_output(history)
