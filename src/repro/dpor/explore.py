"""The swapping-based SMC algorithms (paper Algorithms 1 and 2, §4–§6).

:class:`SwappingExplorer` implements the generic ``explore`` /
``exploreSwaps`` recursion, instantiated with

* the deterministic oracle-order ``Next`` and ``ValidWrites`` of §5.1,
* the ``ComputeReorderings``/``Swap`` of §5.2, and
* the ``Optimality`` restriction (``swapped`` + ``readLatest``) of §5.3,

which together are the algorithm the paper calls **explore-ce** — sound,
complete, strongly optimal and polynomial-space for any prefix-closed and
causally-extensible isolation level (Theorem 5.1).

Setting ``valid_level`` turns it into **explore-ce\\*(I0, I)** (§6): the
exploration runs under the weaker level ``I0`` and the ``Valid`` filter
keeps only ``I``-consistent histories at output time — the construction used
for Snapshot Isolation and Serializability, which admit no strongly optimal
swapping-based algorithm (Theorem 6.1).

The recursion is realised with an explicit LIFO work stack (the paper's
implementation is iterative too, §7.1); the peak stack size is the paper's
polynomial-memory bound and is reported in the statistics.

All causality queries issued on behalf of the exploration — swap-candidate
filtering, doomed-event pruning, and the consistency checks behind
``ValidWrites`` — run against the per-history cached
:class:`~repro.core.bitrel.RelationMatrix` (``so ∪ wr`` with its closure
maintained incrementally), so the relation is constructed at most once per
explored history rather than once per query.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..core.canonical import HistorySet
from ..core.events import EventId
from ..core.history import History
from ..core.ordered_history import OrderedHistory
from ..isolation.base import IsolationLevel
from ..lang.program import Program
from ..semantics.enumerate import ExplorationTimeout
from ..semantics.scheduler import apply_action, next_action, valid_writes
from .optimality import optimality
from .stats import ExplorationStats
from .swaps import compute_reorderings, swap


@dataclass
class ExplorationResult:
    """Outcome of one SMC run."""

    program_name: str
    algorithm: str
    stats: ExplorationStats
    histories: Optional[HistorySet]

    @property
    def distinct_histories(self) -> int:
        if self.histories is None:
            raise ValueError("run was configured with collect_histories=False")
        return len(self.histories)

    @property
    def is_optimal_run(self) -> bool:
        """No history class was output twice (the optimality property)."""
        return self.histories is not None and self.histories.duplicates == 0


_EXPLORE = 0
_SWAPS = 1


class SwappingExplorer:
    """One configured run of the swapping-based exploration.

    Parameters
    ----------
    program:
        The bounded transactional program to check.
    level:
        The exploration isolation level ``I0``; must be prefix-closed and
        causally extensible for the correctness guarantees to hold (this is
        enforced unless ``allow_any_level``).
    valid_level:
        Optional stronger level ``I`` applied as the output filter
        (``explore-ce*``); ``None`` means ``Valid ≡ true`` (plain
        ``explore-ce``).
    on_output:
        Callback invoked with every output history.
    collect_histories:
        Keep an in-memory :class:`HistorySet` of outputs (needed by the
        correctness tests; benchmark runs may disable it to count only).
    check_invariants:
        Re-validate the ordered-history invariants and the
        strong-optimality property at every call (slow; used in tests).
    """

    def __init__(
        self,
        program: Program,
        level: IsolationLevel,
        valid_level: Optional[IsolationLevel] = None,
        on_output: Optional[Callable[[History], None]] = None,
        collect_histories: bool = True,
        check_invariants: bool = False,
        timeout: Optional[float] = None,
        allow_any_level: bool = False,
        restrict_swaps: bool = True,
    ):
        if not allow_any_level and not (level.prefix_closed and level.causally_extensible):
            raise ValueError(
                f"exploration level {level.name} must be prefix-closed and causally "
                f"extensible; use it as valid_level on top of a weaker level instead"
            )
        if valid_level is not None and not level.is_weaker_than(valid_level):
            raise ValueError(f"{level.name} must be weaker than {valid_level.name}")
        self.program = program
        self.level = level
        self.valid_level = valid_level
        self.on_output = on_output
        self.collect_histories = collect_histories
        self.check_invariants = check_invariants
        self.timeout = timeout
        #: Ablation switch: with False, the Optimality condition of §5.3 is
        #: replaced by a bare consistency check on the swapped history —
        #: still sound and complete, but histories are explored redundantly.
        self.restrict_swaps = restrict_swaps
        self.stats = ExplorationStats()
        self.histories: Optional[HistorySet] = HistorySet() if collect_histories else None

    @property
    def algorithm_name(self) -> str:
        if self.valid_level is None:
            return f"explore-ce({self.level.name})"
        return f"explore-ce*({self.level.name}, {self.valid_level.name})"

    # -- driver -------------------------------------------------------------

    def run(self) -> ExplorationResult:
        """Execute the exploration to completion (or timeout)."""
        start = time.monotonic()
        deadline = start + self.timeout if self.timeout else None
        initial = OrderedHistory.initial(
            self.program.initial_history()
        )
        stack: List[Tuple[int, OrderedHistory]] = [(_EXPLORE, initial)]
        live_events = initial.history.event_count()
        ticks = 0
        try:
            while stack:
                ticks += 1
                if deadline is not None and ticks % 32 == 0 and time.monotonic() > deadline:
                    raise ExplorationTimeout
                kind, oh = stack.pop()
                live_events -= oh.history.event_count()
                pushed = self._explore(oh) if kind == _EXPLORE else self._explore_swaps(oh)
                stack.extend(reversed(pushed))
                live_events += sum(item[1].history.event_count() for item in pushed)
                if len(stack) > self.stats.peak_stack:
                    self.stats.peak_stack = len(stack)
                if live_events > self.stats.peak_live_events:
                    self.stats.peak_live_events = live_events
        except ExplorationTimeout:
            self.stats.timed_out = True
        self.stats.seconds = time.monotonic() - start
        return ExplorationResult(self.program.name, self.algorithm_name, self.stats, self.histories)

    # -- the two mutually recursive steps, in continuation form ----------------------

    def _explore(self, oh: OrderedHistory) -> List[Tuple[int, OrderedHistory]]:
        """One ``explore`` call; returns the continuations to push."""
        self.stats.explore_calls += 1
        if self.check_invariants:
            oh.validate()
            if not self.level.satisfies(oh.history):
                raise AssertionError(
                    f"strong optimality violated: explore reached a non-{self.level.name} history"
                )
        action = next_action(self.program, oh.history)
        if action is None:
            self._output(oh.history)
            return []
        if action.is_external_read:
            choices = valid_writes(oh.history, action, self.level)
            self.stats.consistency_checks += max(len(choices), 1)
            if not choices:
                self.stats.blocked += 1
                return []
            eid = EventId(action.txn, len(oh.history.txns[action.txn].events))
            pushed: List[Tuple[int, OrderedHistory]] = []
            # Deterministic branch order: writers by position in <.
            choices.sort(key=lambda pair: oh.txn_position(pair[0]))
            for _writer, extended in choices:
                branch = oh.extended(extended, eid)
                pushed.append((_EXPLORE, branch))
                pushed.append((_SWAPS, branch))
            return pushed
        extended = apply_action(oh, action)
        return [(_EXPLORE, extended), (_SWAPS, extended)]

    def _explore_swaps(self, oh: OrderedHistory) -> List[Tuple[int, OrderedHistory]]:
        """One ``exploreSwaps`` call; returns the continuations to push."""
        pairs = compute_reorderings(oh)
        self.stats.swap_candidates += len(pairs)
        pushed: List[Tuple[int, OrderedHistory]] = []
        for read, target in pairs:
            if self.restrict_swaps:
                enabled, swapped_oh = optimality(self.program, oh, read, target, self.level)
            else:
                swapped_oh = swap(oh, read, target)
                enabled = self.level.satisfies(swapped_oh.history)
            self.stats.consistency_checks += 1
            if enabled:
                assert swapped_oh is not None
                self.stats.swaps_applied += 1
                pushed.append((_EXPLORE, swapped_oh))
        return pushed

    def _output(self, history: History) -> None:
        self.stats.end_states += 1
        if self.valid_level is not None:
            self.stats.consistency_checks += 1
            if not self.valid_level.satisfies(history):
                self.stats.filtered += 1
                return
        self.stats.outputs += 1
        if self.histories is not None:
            self.histories.add(history)
        if self.on_output is not None:
            self.on_output(history)
