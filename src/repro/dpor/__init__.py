"""Swapping-based DPOR model checking (paper §4-§6)."""

from .algorithms import dfs_baseline, explore_ce, explore_ce_star
from .explore import ExplorationResult, StepEngine, SwappingExplorer
from .optimality import is_swapped, optimality, read_latest
from .parallel import ParallelExplorer, resolve_workers
from .pool import GranularityController, PersistentPool, PoolUnavailableError
from .stats import ExplorationStats
from .swaps import compute_reorderings, swap

__all__ = [
    "dfs_baseline",
    "explore_ce",
    "explore_ce_star",
    "ExplorationResult",
    "GranularityController",
    "ParallelExplorer",
    "PersistentPool",
    "PoolUnavailableError",
    "resolve_workers",
    "StepEngine",
    "SwappingExplorer",
    "is_swapped",
    "optimality",
    "read_latest",
    "ExplorationStats",
    "compute_reorderings",
    "swap",
]
