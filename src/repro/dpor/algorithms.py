"""Named entry points for the paper's algorithms.

* :func:`explore_ce` — the strongly optimal algorithm of §5 for
  prefix-closed, causally-extensible levels (RC, RA, CC, and ``true``).
* :func:`explore_ce_star` — the filtering variant of §6 for stronger levels
  (typically SI and SER explored under CC).
* :func:`dfs_baseline` — the no-POR baseline ``DFS(I)`` of §7.3.
"""

from __future__ import annotations

from typing import Optional, Union

from ..isolation.base import IsolationLevel, get_level
from ..lang.program import Program
from ..semantics.enumerate import EnumerationResult, enumerate_histories
from .explore import ExplorationResult, SwappingExplorer
from .parallel import ParallelExplorer

LevelLike = Union[str, IsolationLevel]


def _resolve(level: LevelLike) -> IsolationLevel:
    return get_level(level) if isinstance(level, str) else level


def _make_explorer(program, level, workers: int = 1, **kwargs):
    if workers == 1:
        return SwappingExplorer(program, level, **kwargs)
    return ParallelExplorer(program, level, workers=workers, **kwargs)


def explore_ce(
    program: Program, level: LevelLike = "CC", workers: int = 1, **kwargs
) -> ExplorationResult:
    """Run ``explore-ce(level)`` on ``program`` (Theorem 5.1).

    ``level`` must be prefix-closed and causally extensible (RC/RA/CC/true).
    ``workers`` > 1 (or 0 for one per CPU) spreads the exploration over a
    process pool (:class:`ParallelExplorer`) with identical outputs.
    Keyword arguments are forwarded to the explorer.
    """
    return _make_explorer(program, _resolve(level), workers=workers, **kwargs).run()


def explore_ce_star(
    program: Program,
    explore_level: LevelLike = "CC",
    valid_level: LevelLike = "SER",
    workers: int = 1,
    **kwargs,
) -> ExplorationResult:
    """Run ``explore-ce*(explore_level, valid_level)`` (Corollary 6.2).

    Explores under the weaker ``explore_level`` and filters outputs with
    ``valid_level`` — sound, complete and (plain) optimal for the stronger
    level, e.g. ``explore_ce_star(p, "CC", "SI")``.  ``workers`` as in
    :func:`explore_ce`.
    """
    return _make_explorer(
        program,
        _resolve(explore_level),
        valid_level=_resolve(valid_level),
        workers=workers,
        **kwargs,
    ).run()


def dfs_baseline(
    program: Program, level: LevelLike = "CC", timeout: Optional[float] = None
) -> EnumerationResult:
    """Run the partial-order-reduction-free baseline ``DFS(level)``."""
    return enumerate_histories(program, _resolve(level), timeout=timeout)
