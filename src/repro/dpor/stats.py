"""Exploration statistics collected by the SMC algorithms.

The paper's evaluation reports running time, memory consumption and number
of end states per algorithm; the stats object additionally tracks the
counters the correctness properties are stated over (explore calls, blocked
branches, swap candidates/applications, filtered outputs).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ExplorationStats:
    """Counters for one run of a swapping-based SMC algorithm."""

    #: Recursive invocations of ``explore`` (≈ events added + swaps taken).
    explore_calls: int = 0
    #: Histories passed to the output step (before the Valid filter).
    end_states: int = 0
    #: Histories actually output (after the Valid filter of explore-ce*).
    outputs: int = 0
    #: End states rejected by the Valid filter.
    filtered: int = 0
    #: Branches where an external read had no valid write — strong
    #: optimality requires this to stay 0 for causally-extensible levels.
    blocked: int = 0
    #: (r, t) pairs returned by ComputeReorderings.
    swap_candidates: int = 0
    #: Pairs that passed the Optimality condition and were swapped.
    swaps_applied: int = 0
    #: Calls to the isolation-level consistency check.
    consistency_checks: int = 0
    #: Peak size of the exploration work stack (memory-consumption proxy;
    #: the polynomial-space claim of Theorem 5.1 bounds this).
    peak_stack: int = 0
    #: Peak number of events across all histories live on the stack.
    peak_live_events: int = 0
    #: Axiom premise evaluations performed by the saturation checkers
    #: (:class:`~repro.isolation.saturation.IncrementalSaturation` delta).
    saturation_ticks: int = 0
    #: Closure row-word updates in the relation engine
    #: (:attr:`~repro.core.bitrel.RelationMatrix.word_ops` delta).
    closure_word_ops: int = 0
    #: Compiled-program instructions dispatched by the executor
    #: (:data:`repro.semantics.executor.INSTRUCTIONS_EXECUTED` delta).
    executor_instructions: int = 0
    #: Wall-clock seconds for the whole run.
    seconds: float = 0.0
    #: Whether the time budget expired before completion.
    timed_out: bool = False

    def merge(self, other: "ExplorationStats") -> "ExplorationStats":
        """Pointwise sum/max with another stats object.

        Additive counters (calls, outputs, checks, seconds) are summed;
        gauges (``peak_stack``, ``peak_live_events``) take the max and
        ``timed_out`` the disjunction.  Used both for suite aggregation and
        for combining per-worker stats of a parallel exploration — the
        parallel driver decomposes a run into disjoint subtrees, so the
        merged additive counters equal a sequential run's exactly.
        """
        return ExplorationStats(
            explore_calls=self.explore_calls + other.explore_calls,
            end_states=self.end_states + other.end_states,
            outputs=self.outputs + other.outputs,
            filtered=self.filtered + other.filtered,
            blocked=self.blocked + other.blocked,
            swap_candidates=self.swap_candidates + other.swap_candidates,
            swaps_applied=self.swaps_applied + other.swaps_applied,
            consistency_checks=self.consistency_checks + other.consistency_checks,
            peak_stack=max(self.peak_stack, other.peak_stack),
            peak_live_events=max(self.peak_live_events, other.peak_live_events),
            saturation_ticks=self.saturation_ticks + other.saturation_ticks,
            closure_word_ops=self.closure_word_ops + other.closure_word_ops,
            executor_instructions=self.executor_instructions + other.executor_instructions,
            seconds=self.seconds + other.seconds,
            timed_out=self.timed_out or other.timed_out,
        )

    def __add__(self, other: "ExplorationStats") -> "ExplorationStats":
        if not isinstance(other, ExplorationStats):
            return NotImplemented
        return self.merge(other)
