"""Persistent worker runtime for the parallel exploration.

The first-generation parallel driver paid its overhead per *task*: every
frontier seed was pickled on its own, handed to a fork-pool future, and the
pool itself was rebuilt around every fan-out.  On the benchmark box that
overhead ate the entire parallel win (0.87–0.94x at 2–4 workers).  This
module replaces it with a runtime whose costs are paid once per **run**:

* **Long-lived workers.**  :class:`PersistentPool` spawns ``workers``
  processes once and feeds them over duplex pipes until the exploration is
  drained.  Workers are *spawn-safe*: where ``fork`` is available the
  engine is inherited by memory (programs may close over lambdas — the
  application workloads do), otherwise the engine is pickled once at pool
  start and shipped to each worker.  Where neither works the pool refuses
  to start with :class:`PoolUnavailableError` instead of hanging or
  silently serialising.

* **Batched frames.**  Seeds travel many-per-message in the
  length-prefixed frames of :mod:`repro.core.wire` — one serialisation
  call per batch of plain wire tuples, no per-``History`` pickle.  Results
  stream back incrementally: long tasks flush output histories in
  intermediate ``OUTPUT`` frames, and every task ends with one ``DONE``
  frame carrying statistics and the unfinished remainder of the worker's
  stack (work sharing).

* **Adaptive granularity.**  A :class:`GranularityController` extends the
  seed phase's ``min_fork_steps`` probe into a running feedback loop: it
  tracks measured per-task explore time against measured frame transfer
  time and coarsens the seeds-per-frame batch until explore time dominates
  (or thins it when one task overshoots its ``task_budget`` time slice).

* **Crash recovery.**  The coordinator remembers exactly which seeds each
  worker holds.  Outputs and statistics are *committed only at* ``DONE``;
  if a worker dies mid-task (its pipe drops or its sentinel fires), the
  staged partial results are discarded and the seeds are re-queued for the
  surviving workers — nothing is lost and nothing is double-counted, so
  the serial ≡ parallel equivalence holds even under ``kill -9``.  Dead
  workers are respawned up to a budget; if the whole pool is lost the
  coordinator drains the remaining frontier itself (exact, just slower).
"""

from __future__ import annotations

import os
import pickle
import time
from collections import deque
from itertools import count
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..core.history import History
from ..core.wire import (
    decode_frame,
    decode_items,
    encode_frame,
    encode_items,
    history_from_wire,
    history_to_wire,
)
from .explore import StepEngine, WorkItem
from .stats import ExplorationStats

#: Engines shared with forked workers, keyed by a per-pool token.  Workers
#: inherit the registry at fork time and look their engine up by token, so
#: concurrent pools in one process cannot cross-wire configurations.
_ENGINES: Dict[int, StepEngine] = {}
_ENGINE_TOKENS = count()

# Frame tags of the pool protocol (one byte each; see repro.core.wire).
TAG_TASK = 1  #: coordinator → worker: (meta, seed batch)
TAG_OUTPUT = 2  #: worker → coordinator: partial outputs of the running task
TAG_DONE = 3  #: worker → coordinator: task finished (stats, remainder, ...)
TAG_SHUTDOWN = 4  #: coordinator → worker: exit the serve loop

#: Flush streamed outputs to the coordinator every this many histories, so
#: a long task's results arrive incrementally instead of in one giant DONE.
OUTPUT_FLUSH = 256

#: Ceiling for the adaptive seeds-per-frame batch.
MAX_BATCH = 1024

#: Slice stretch while the coordinator's queue is deep.  A worker's
#: remainder exists for *rebalancing*; when the pending queue can feed
#: every idle worker anyway, forcing a slice end just pays the remainder
#: round trip for nothing.  Deep queue → slices of ``task_budget`` times
#: this factor; the moment a dispatch drains the queue, slices drop back
#: to ``task_budget`` so the endgame rebalances at fine grain.
LONG_SLICE_FACTOR = 8.0


class PoolUnavailableError(RuntimeError):
    """``workers > 1`` was requested but no worker pool can start here.

    Raised *eagerly* (at explorer construction) so a parallel request
    never hangs or silently degrades to serial: the platform offers no
    ``fork``, and the exploration engine cannot be pickled for a
    ``spawn``/``forkserver`` pool.  Re-run with ``workers=1`` (the
    documented fallback) or make the program picklable.
    """


def available_start_method(engine: StepEngine, preferred: Optional[str] = None) -> str:
    """The multiprocessing start method the pool will use, or raise.

    Preference order: ``fork`` (engine inherited by memory — works for
    programs closing over lambdas), then ``spawn``/``forkserver`` — which
    require the engine to survive one pickle round trip, probed *here* so
    the failure is an immediate, explainable error rather than a crash
    inside a half-started pool.
    """
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    candidates = [preferred] if preferred else ["fork", "spawn", "forkserver"]
    for method in candidates:
        if method not in methods:
            continue
        if method == "fork":
            return method
        try:
            pickle.dumps(engine)
            return method
        except Exception as err:
            raise PoolUnavailableError(
                f"worker pool cannot start with the {method!r} start method: the "
                f"exploration engine does not pickle ({err}); programs built from "
                f"Python closures need a platform with fork, or workers=1"
            ) from None
    raise PoolUnavailableError(
        f"worker pool cannot start: no usable multiprocessing start method "
        f"(wanted {candidates}, platform offers {methods}); run with workers=1"
    )


class GranularityController:
    """Running seeds-per-frame controller (the ``min_fork_steps`` probe, live).

    Tracks exponentially-weighted averages of per-task explore seconds and
    per-frame transfer seconds (encode + decode, both sides measured) and
    steers the batch size toward *explore time ≫ transfer time* under the
    ``task_budget`` time slice:

    * grow (×2, up to :data:`MAX_BATCH`) while tasks finish in under half
      the budget or transfer overhead is within 4x of explore time —
      seeds are too fine to amortise a frame;
    * shrink (÷2, down to 1) when tasks overshoot twice the budget —
      coarse batches hurt rebalancing and timeout granularity.

    With ``fixed`` set the controller is pinned (the knob the property
    tests use to force the batched protocol into specific shapes).
    """

    #: EWMA smoothing factor for the two running measurements.
    ALPHA = 0.3
    #: Transfer-dominance ratio: coarsen until explore > 4x transfer.
    TRANSFER_FACTOR = 4.0

    def __init__(self, task_budget: float, fixed: int = 0):
        self.task_budget = task_budget
        self.fixed = fixed
        self.batch = fixed if fixed > 0 else 1
        self.explore_avg: Optional[float] = None
        self.transfer_avg: Optional[float] = None

    def record(
        self, explore_s: float, transfer_s: float, slice_budget: Optional[float] = None
    ) -> None:
        """Fold one completed task's measurements into the averages.

        ``slice_budget`` is the time slice the task actually ran under
        (the coordinator stretches slices while its queue is deep); the
        grow/shrink decisions compare against it, not the base budget, so
        a long slice is not misread as an oversized batch.
        """
        if slice_budget is None:
            slice_budget = self.task_budget
        if self.explore_avg is None:
            self.explore_avg = explore_s
            self.transfer_avg = transfer_s
        else:
            self.explore_avg += self.ALPHA * (explore_s - self.explore_avg)
            self.transfer_avg += self.ALPHA * (transfer_s - self.transfer_avg)
        if self.fixed > 0:
            return
        if explore_s > 2.0 * slice_budget and self.batch > 1:
            self.batch = max(1, self.batch // 2)
        elif (
            explore_s < 0.5 * slice_budget
            or self.transfer_avg * self.TRANSFER_FACTOR > self.explore_avg
        ):
            self.batch = min(MAX_BATCH, self.batch * 2)

    def next_batch(self, pending: int, idle_workers: int) -> int:
        """Seeds for the next frame: the controller's batch, capped so the
        currently idle workers all get something to chew on."""
        share = max(1, -(-pending // max(idle_workers, 1)))  # ceil div
        return max(1, min(self.batch, share))


def _resolve_engine(token: int, engine_bytes: Optional[bytes]) -> StepEngine:
    if engine_bytes is not None:
        return pickle.loads(engine_bytes)
    engine = _ENGINES.get(token)
    assert engine is not None, "forked worker started without a registered engine"
    return engine


def _worker_main(
    conn,
    token: int,
    engine_bytes: Optional[bytes],
    chaos_exit_after: Optional[int],
) -> None:
    """Serve loop of one persistent worker: TASK in, OUTPUT*/DONE out.

    ``chaos_exit_after`` is the crash-recovery test hook: after fully
    exploring that many tasks the worker dies with ``os._exit`` *instead
    of sending DONE* — the maximally adversarial crash (all work done,
    none of it committed), which the coordinator must absorb by
    re-queueing the task without double-counting anything.
    """
    engine = _resolve_engine(token, engine_bytes)
    tasks_served = 0
    while True:
        try:
            frame = conn.recv_bytes()
        except (EOFError, OSError):
            return  # coordinator went away; nothing to clean up
        tag, payload = decode_frame(frame)
        if tag == TAG_SHUTDOWN:
            return
        assert tag == TAG_TASK, f"worker received unexpected frame tag {tag}"
        meta, items_wire = payload
        task_id, time_left, task_budget, task_ticks, split_threshold, ship_outputs = meta
        t0 = time.perf_counter()
        stack: List[WorkItem] = decode_items(items_wire)
        decode_s = time.perf_counter() - t0
        deadline = time.monotonic() + time_left if time_left is not None else None
        budget_end = time.perf_counter() + task_budget if task_budget else None
        stats = ExplorationStats()
        overflow: List[WorkItem] = []
        outputs: List[History] = []
        live_events = sum(item[1].history.event_count() for item in stack)
        ticks = 0
        timed_out = False
        explore_t0 = time.perf_counter()
        while stack:
            # Global deadline first, every tick: the coordinator cannot
            # interrupt a busy worker, so overshoot must stay one step.
            if deadline is not None and time.monotonic() > deadline:
                timed_out = True
                stack.clear()
                break
            ticks += 1
            if ticks > task_ticks or (
                budget_end is not None and time.perf_counter() > budget_end
            ):
                break  # time slice over: return the remainder for rebalancing
            kind, oh = stack.pop()
            live_events -= oh.history.event_count()
            pushed, outs = engine.step(oh, kind, stats)
            if ship_outputs:
                outputs.extend(outs)
                if len(outputs) >= OUTPUT_FLUSH:
                    conn.send_bytes(
                        encode_frame(
                            TAG_OUTPUT,
                            (task_id, [history_to_wire(h) for h in outputs]),
                        )
                    )
                    outputs = []
            stack.extend(reversed(pushed))
            live_events += sum(item[1].history.event_count() for item in pushed)
            if len(stack) > stats.peak_stack:
                stats.peak_stack = len(stack)
            if live_events > stats.peak_live_events:
                stats.peak_live_events = live_events
            if len(stack) > split_threshold:
                # Work sharing: shed the *shallowest* half — bottom-of-stack
                # entries root the largest remaining subtrees, exactly what
                # idle workers want.
                cut = len(stack) // 2
                overflow.extend(stack[:cut])
                del stack[:cut]
                live_events = sum(item[1].history.event_count() for item in stack)
        explore_s = time.perf_counter() - explore_t0
        tasks_served += 1
        if chaos_exit_after is not None and tasks_served >= chaos_exit_after:
            os._exit(17)  # crash-recovery hook: die before committing
        t1 = time.perf_counter()
        returned = (
            encode_items(overflow + stack) if (overflow or stack) and not timed_out else []
        )
        outputs_wire = [history_to_wire(h) for h in outputs] if ship_outputs else []
        done = encode_frame(
            TAG_DONE,
            (
                task_id,
                os.getpid(),
                stats,
                outputs_wire,
                returned,
                timed_out,
                explore_s,
                decode_s + (time.perf_counter() - t1),
            ),
        )
        try:
            conn.send_bytes(done)
        except (BrokenPipeError, OSError):
            return


class _Worker:
    """Coordinator-side handle: process, pipe, and the in-flight task."""

    __slots__ = (
        "process",
        "conn",
        "task_id",
        "inflight",
        "staged",
        "sent_at",
        "slice_budget",
    )

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        self.task_id: Optional[int] = None
        #: Wire items of the in-flight task — the re-queue unit on crash.
        self.inflight: List[Tuple] = []
        #: OUTPUT-frame histories staged until the task's DONE commits them.
        self.staged: List[History] = []
        self.sent_at: float = 0.0
        #: The time slice the in-flight task was granted (for the
        #: granularity controller's utilisation normalisation).
        self.slice_budget: float = 0.0

    @property
    def idle(self) -> bool:
        return self.task_id is None


class PersistentPool:
    """Long-lived worker processes serving one exploration run.

    Created (and torn down) once per :meth:`ParallelExplorer.run` fan-out;
    every task reuses the same processes and pipes.  See the module
    docstring for the protocol.
    """

    def __init__(
        self,
        engine: StepEngine,
        workers: int,
        start_method: Optional[str] = None,
        task_budget: float = 0.05,
        task_ticks: int = 16384,
        split_threshold: int = 128,
        batch_size: int = 0,
        max_respawns: Optional[int] = None,
        chaos_exit_after: Optional[int] = None,
    ):
        self.engine = engine
        self.workers = workers
        self.start_method = available_start_method(engine, start_method)
        self.task_budget = task_budget
        self.task_ticks = task_ticks
        self.split_threshold = split_threshold
        self.controller = GranularityController(task_budget, fixed=batch_size)
        self.max_respawns = workers if max_respawns is None else max_respawns
        self.respawns = 0
        self.crashes = 0
        self.tasks_dispatched = 0
        self.frames_sent = 0
        self._chaos_exit_after = chaos_exit_after
        self._token = next(_ENGINE_TOKENS)
        self._engine_bytes: Optional[bytes] = None
        self._ctx = None
        self._alive: List[_Worker] = []
        self._task_ids = count()

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        import multiprocessing

        self._ctx = multiprocessing.get_context(self.start_method)
        if self.start_method != "fork":
            self._engine_bytes = pickle.dumps(self.engine)
        else:
            _ENGINES[self._token] = self.engine
        chaos = self._chaos_exit_after
        for _ in range(self.workers):
            self._alive.append(self._spawn(chaos))
            chaos = None  # the chaos hook only ever arms the first worker

    def _spawn(self, chaos_exit_after: Optional[int]) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self._token, self._engine_bytes, chaos_exit_after),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _Worker(process, parent_conn)

    def shutdown(self) -> None:
        for worker in self._alive:
            try:
                worker.conn.send_bytes(encode_frame(TAG_SHUTDOWN, None))
            except (BrokenPipeError, OSError):
                pass
        for worker in self._alive:
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.terminate()
                worker.process.join(timeout=5.0)
            worker.conn.close()
        self._alive = []
        _ENGINES.pop(self._token, None)

    # -- the drive loop -----------------------------------------------------

    def explore(
        self,
        items: List[WorkItem],
        deadline: Optional[float],
        ship_outputs: bool,
        emit: Callable[[History], None],
        worker_stats: Dict[int, ExplorationStats],
        coordinator_stats: ExplorationStats,
    ) -> bool:
        """Drain the frontier through the pool; returns ``timed_out``.

        ``worker_stats`` collects per-pid statistics (committed at DONE);
        ``coordinator_stats`` absorbs any serially-drained remainder if the
        entire pool is lost.  The output-history callback ``emit`` runs in
        the coordinator, in task-commit order.
        """
        from multiprocessing.connection import wait as conn_wait

        pending: Deque[Tuple] = deque(encode_items(items))
        timed_out = False
        while pending or any(not w.idle for w in self._alive):
            now = time.monotonic()
            if deadline is not None and now > deadline:
                timed_out = True
            if timed_out:
                pending.clear()  # stop feeding; running tasks self-expire
            idle = [w for w in self._alive if w.idle]
            while pending and idle:
                worker = idle.pop()
                n = min(
                    self.controller.next_batch(len(pending), len(idle) + 1),
                    len(pending),
                )
                batch = [pending.popleft() for _ in range(n)]
                self._dispatch(worker, batch, pending, deadline, ship_outputs)
            busy = [w for w in self._alive if not w.idle]
            if not busy:
                if pending:
                    # Whole pool lost and respawns exhausted: finish on the
                    # coordinator — exactness over speed.
                    self._drain_serially(pending, deadline, emit, coordinator_stats)
                    return coordinator_stats.timed_out or timed_out
                break
            ready = conn_wait(
                [w.conn for w in busy] + [w.process.sentinel for w in busy],
                timeout=1.0,
            )
            ready_set = set(ready)
            for worker in list(busy):
                if worker.conn in ready_set:
                    if self._receive(worker, pending, emit, worker_stats):
                        timed_out = True
                        pending.clear()
                    continue
                if worker.process.sentinel in ready_set and not worker.process.is_alive():
                    self._recover(worker, pending)
        return timed_out

    # -- protocol steps ------------------------------------------------------

    def _dispatch(
        self,
        worker: _Worker,
        batch: List[Tuple],
        pending: Deque[Tuple],
        deadline: Optional[float],
        ship_outputs: bool,
    ) -> None:
        task_id = next(self._task_ids)
        time_left = (
            None if deadline is None else max(deadline - time.monotonic(), 0.0)
        )
        # Remainders and shed halves exist for rebalancing.  While the
        # queue still holds work for whoever idles next, a slice end or a
        # stack shed buys nothing but wire churn (and every item crossing
        # the wire loses its adopted relation-matrix caches) — stretch the
        # slice and disable shedding.  The dispatch that drains the queue
        # (and everything after it) runs at base grain.
        deep = bool(pending)
        slice_budget = self.task_budget * (LONG_SLICE_FACTOR if deep else 1.0)
        split = self.task_ticks if deep else self.split_threshold
        meta = (
            task_id,
            time_left,
            slice_budget,
            self.task_ticks,
            split,
            ship_outputs,
        )
        worker.task_id = task_id
        worker.inflight = batch
        worker.staged = []
        worker.sent_at = time.perf_counter()
        worker.slice_budget = slice_budget
        try:
            worker.conn.send_bytes(encode_frame(TAG_TASK, (meta, batch)))
        except (BrokenPipeError, OSError):
            # Worker died between tasks; recover exactly as for a mid-task
            # crash — the batch goes back to the queue.
            self._recover(worker, pending)
            return
        self.tasks_dispatched += 1
        self.frames_sent += 1

    def _receive(
        self,
        worker: _Worker,
        pending: Deque[Tuple],
        emit: Callable[[History], None],
        worker_stats: Dict[int, ExplorationStats],
    ) -> bool:
        """Read one frame from a busy worker; returns ``True`` on timeout."""
        try:
            frame = worker.conn.recv_bytes()
        except (EOFError, OSError):
            self._recover(worker, pending)
            return False
        tag, payload = decode_frame(frame)
        if tag == TAG_OUTPUT:
            task_id, outputs_wire = payload
            if task_id == worker.task_id:
                worker.staged.extend(history_from_wire(w) for w in outputs_wire)
            return False
        assert tag == TAG_DONE, f"coordinator received unexpected frame tag {tag}"
        (
            task_id,
            pid,
            stats,
            outputs_wire,
            returned,
            task_timed_out,
            explore_s,
            transfer_s,
        ) = payload
        assert task_id == worker.task_id, "DONE for a task this worker does not hold"
        # Commit point: everything about the task becomes visible at once.
        self.controller.record(explore_s, transfer_s, worker.slice_budget)
        bucket = worker_stats.get(pid)
        worker_stats[pid] = stats if bucket is None else bucket.merge(stats)
        for history in worker.staged:
            emit(history)
        for wire in outputs_wire:
            emit(history_from_wire(wire))
        pending.extend(returned)
        worker.task_id = None
        worker.inflight = []
        worker.staged = []
        return task_timed_out

    def _recover(self, worker: _Worker, pending: Deque[Tuple]) -> None:
        """A worker died: re-queue its seeds, drop its staged results.

        Nothing the dead worker did was committed (commit happens only in
        :meth:`_receive` on DONE), so re-exploring the whole batch keeps
        all additive counters and the output set exactly equal to a serial
        run — crash recovery cannot double-count.
        """
        self.crashes += 1
        pending.extend(worker.inflight)
        worker.task_id = None
        worker.inflight = []
        worker.staged = []
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.process.join(timeout=1.0)
        if worker in self._alive:
            self._alive.remove(worker)
        if self.respawns < self.max_respawns:
            self.respawns += 1
            self._alive.append(self._spawn(None))

    def _drain_serially(
        self,
        pending: Deque[Tuple],
        deadline: Optional[float],
        emit: Callable[[History], None],
        stats: ExplorationStats,
    ) -> None:
        items = decode_items(list(pending))
        pending.clear()
        self.engine.drain(items, stats, emit, deadline=deadline, poll_every=1)
