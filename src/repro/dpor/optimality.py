"""The Optimality condition of explore-ce: ``swapped`` and ``readLatest`` (§5.3).

Re-orderings must be restricted to avoid exploring the same history on two
branches.  A swap of ``(r, t)`` is enabled only when

* the swapped history is consistent with the exploration level, and
* every read deleted by the swap — and the re-ordered read ``r`` itself —
  (a) has not itself been swapped in the past (``¬swapped``), and
  (b) currently reads from the causally-latest valid write (``readLatest``).

These are exactly the two redundancy sources illustrated by Figs. 12 and 13
of the paper.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.events import EventId, EventType, TxnId
from ..core.history import History
from ..core.ordered_history import OrderedHistory
from ..isolation.base import IsolationLevel
from ..lang.program import Program
from ..semantics.scheduler import NextAction, extend_history
from .swaps import doomed_events, swap


def is_swapped(program: Program, oh: OrderedHistory, read: EventId) -> bool:
    """``swapped(h, <, r)`` (§5.3).

    ``r`` reads from a transaction ``t`` that the scheduler would only have
    produced *after* ``r`` (so their current order must stem from a swap),
    with two refinements that rule out spurious classifications:

    (1) ``t < r`` in the history order and ``t >or r`` in the oracle order;
    (2) there is no transaction ``t'`` before ``tr(r)`` in the oracle order
        and not wholly after ``r`` in the history order that is a causal
        successor of ``t``;
    (3) ``r`` is the po-first read of its transaction reading from ``t``,
        and no po-earlier read of the transaction is itself swapped.

    The second half of (3) realises the paper's reading of the condition —
    "after swapping r and t in h, later read events from the same
    transaction as r can[not] be considered as swapped" (§5.3) — for later
    reads whose source *differs* from ``t``: once an earlier read of the
    transaction was swapped, the transaction's block has been moved behind
    or-later writers, so a subsequent read choosing such a writer through
    ValidWrites is a re-execution, not a swap.  Without this, completeness
    fails (a 4-transaction witness lives in the test suite).
    """
    history = oh.history
    source = history.wr.get(read)
    if source is None:
        return False
    reader = read.txn
    # (1) — ``t < r`` always holds by the footnote-7 invariant.
    if not oh.txn_before_event(source, read):
        return False
    if not program.oracle_before(reader, source):
        return False
    # (2)
    matrix = oh.causal_matrix()
    for other in history.txns:
        if other == reader or not program.oracle_before(other, reader):
            continue
        if oh.event_before_txn(read, other):
            continue
        if matrix.reaches(source, other):
            return False
    # (3)
    reader_log = history.txns[reader]
    for event in reader_log.events[: read.pos]:
        if not event.is_external_read:
            continue
        if history.wr.get(event.eid) == source:
            return False
        if is_swapped(program, oh, event.eid):
            return False
    return True


def read_latest(
    oh: OrderedHistory,
    read: EventId,
    target: TxnId,
    level: IsolationLevel,
) -> bool:
    """``readLatest_I(h, <, r', t)`` (§5.3).

    Whether ``r'`` reads from the ``<``-latest transaction in its causal
    past (computed in the pruned history ``h' = h \\ {e | r' ≤ e ∧
    (tr(e), t) ∉ (so ∪ wr)*}``, i.e. with ``r'`` and its own wr dependency
    removed) from which reading is consistent with ``level``.
    """
    history = oh.history
    current_source = history.wr.get(read)
    if current_source is None:
        return True
    pruned = history.remove_events(doomed_events(oh, read, target, strict=False))
    pruned_matrix = pruned.causal_matrix()
    # Event removal is the non-monotone step saturation cannot diff across,
    # so pruned starts cache-cold: warm its consistency state once here and
    # every candidate below derives from it instead of rebuilding.
    level.satisfies(pruned)
    reader = read.txn
    var = history.event(read).var

    best: Optional[TxnId] = None
    best_pos = -1
    for log in pruned.committed_transactions():
        if not log.writes_var(var):
            continue
        if not pruned_matrix.reaches_reflexive(log.tid, reader):
            continue
        # Same derivation as ValidWrites: extend_history diffs the
        # candidate's closure (and saturation states) from pruned's
        # caches, so the consistency check never rebuilds the relation.
        candidate = _reappend_read(pruned, read, var, log.tid)
        if not level.satisfies(candidate):
            continue
        pos = oh.txn_position(log.tid)
        if pos > best_pos:
            best, best_pos = log.tid, pos
    return best == current_source


def _reappend_read(pruned: History, read: EventId, var: str, writer: TxnId) -> History:
    """``h' ⊕ r' ⊕ wr(t', r')``: put the read back with a new source."""
    reader = read.txn
    log = pruned.txns[reader]
    if len(log.events) != read.pos:
        raise AssertionError(f"pruned log of {reader!r} does not end right before {read!r}")
    return extend_history(pruned, NextAction(EventType.READ, reader, var), writer=writer)


def optimality(
    program: Program,
    oh: OrderedHistory,
    read: EventId,
    target: TxnId,
    level: IsolationLevel,
) -> Tuple[bool, Optional[OrderedHistory]]:
    """The Optimality predicate gating a swap (§5.3).

    Returns ``(enabled, swapped_history)`` — the swapped history is computed
    as part of the check (its consistency is the first conjunct), so the
    caller reuses it instead of swapping twice.
    """
    history = oh.history
    swapped_oh = swap(oh, read, target)
    if not level.satisfies(swapped_oh.history):
        return False, None
    # Reads deleted by the swap, plus the re-ordered read itself.
    doomed = doomed_events(oh, read, target, strict=True)
    affected: List[EventId] = [read]
    for event in history.reads():
        if event.eid in doomed:
            affected.append(event.eid)
    for eid in affected:
        if is_swapped(program, oh, eid):
            return False, None
        if not read_latest(oh, eid, target, level):
            return False, None
    return True, swapped_oh
