"""ComputeReorderings and Swap (paper §5.2).

``ComputeReorderings(h, <)`` proposes pairs ``(r, t)`` of a read event and
the just-completed transaction that could be re-ordered so that ``r`` reads
from ``t``; ``Swap`` performs the re-ordering, producing a history that is
*feasible by construction*: it keeps everything ordered before ``r``, the
transaction ``t`` with its complete causal past, and moves the (truncated)
transaction of ``r`` to the end of the order with ``r`` now reading from
``t``.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from ..core.events import EventId, EventType, TxnId
from ..core.history import History
from ..core.ordered_history import OrderedHistory
from ..lang.program import Program


def compute_reorderings(oh: OrderedHistory) -> List[Tuple[EventId, TxnId]]:
    """Pairs ``(r, t)`` eligible for re-ordering (§5.2).

    Non-empty only when the last added event is a COMMIT — this keeps the
    at-most-one-pending-transaction invariant, because the swap truncates
    the reader's transaction, making it the unique pending one.  Pairs
    require: ``r`` is an external read, ``t`` (the last completed
    transaction) writes ``var(r)``, ``tr(r) < t`` in the history order, and
    ``tr(r)`` and ``t`` are not causally related.

    Aborted transactions are never proposed as ``t``: they have no visible
    writes, so re-ordering them cannot produce a new history (footnote 5).
    """
    history = oh.history
    last = oh.last
    if history.event(last).type is not EventType.COMMIT:
        return []
    target = last.txn
    target_writes = history.txns[target].writes()
    if not target_writes:
        return []
    # One maintained so∪wr closure answers the causality test for every
    # candidate read — no per-pair reachability search.
    matrix = oh.causal_matrix()
    pairs: List[Tuple[EventId, TxnId]] = []
    for read in history.reads():
        if read.var not in target_writes:
            continue
        reader = read.eid.txn
        if reader == target or not oh.txn_before(reader, target):
            continue
        if matrix.reaches_reflexive(reader, target):
            continue
        pairs.append((read.eid, target))
    # Deterministic exploration order: by position of the read in <.
    pairs.sort(key=lambda pair: oh.index(pair[0]))
    return pairs


def doomed_events(oh: OrderedHistory, pivot: EventId, target: TxnId, strict: bool = True) -> Set[EventId]:
    """The deletion set ``D = {e | pivot < e ∧ (tr(e), target) ∉ (so ∪ wr)*}``.

    With ``strict=False`` the pivot itself is included (the variant used by
    ``readLatest``, §5.3).
    """
    matrix = oh.causal_matrix()
    doomed: Set[EventId] = set()
    for eid in oh.events_from(pivot, strict=strict):
        if not matrix.reaches_reflexive(eid.txn, target):
            doomed.add(eid)
    return doomed


def swap(oh: OrderedHistory, read: EventId, target: TxnId) -> OrderedHistory:
    """``Swap(h, <, r, t)`` (§5.2): re-order so that ``r`` reads from ``t``.

    Returns the new ordered history: all events before ``r`` are kept, plus
    ``t`` and its causal past; the truncated transaction of ``r`` moves to
    the end of the order, with ``r`` re-pointed (and re-valued) to read from
    ``t``.
    """
    history = oh.history
    doomed = doomed_events(oh, read, target, strict=True)
    pruned = history.remove_events(doomed)
    rebound = pruned.with_read_source(read, target)
    reader = read.txn
    reader_events = [e.eid for e in rebound.txns[reader].events]
    kept = {e.eid for e in rebound.events()}
    order = [eid for eid in oh.order if eid in kept and eid.txn != reader]
    order.extend(reader_events)
    return OrderedHistory(rebound, order)
