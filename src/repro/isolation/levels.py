"""Concrete isolation levels: RC, RA, CC, SI, SER and the trivial level.

Properties asserted here (prefix closure, causal extensibility, relative
strength) are the statements of Theorems 3.2 and 3.4 of the paper; the test
suite re-verifies them empirically on generated histories.
"""

from __future__ import annotations

from ..core.history import History
from .axioms import AXIOMS_BY_LEVEL
from .base import IsolationLevel, register
from .saturation import satisfies_by_saturation
from .serializability import satisfies_ser
from .snapshot import satisfies_si


class TrivialLevel(IsolationLevel):
    """The level ``true`` where every (well-formed) history is consistent.

    Used as the weakest exploration level for ``explore-ce*(true, I)``
    (§7.3).  It is vacuously prefix-closed and causally extensible.
    """

    name = "TRUE"
    prefix_closed = True
    causally_extensible = True
    strength = 0

    def satisfies(self, history: History) -> bool:
        return history.is_so_wr_acyclic()


class _SaturationLevel(IsolationLevel):
    """Shared implementation for the co-free-axiom levels (RC, RA, CC)."""

    prefix_closed = True
    causally_extensible = True

    def satisfies(self, history: History) -> bool:
        return satisfies_by_saturation(history, AXIOMS_BY_LEVEL[self.name])


class ReadCommitted(_SaturationLevel):
    """Read Committed (Fig. A.1(a))."""

    name = "RC"
    strength = 1


class ReadAtomic(_SaturationLevel):
    """Read Atomic, a.k.a. Repeatable Read (Fig. A.1(b))."""

    name = "RA"
    strength = 2


class CausalConsistency(_SaturationLevel):
    """Causal Consistency (Fig. 2(a))."""

    name = "CC"
    strength = 3


class SnapshotIsolation(IsolationLevel):
    """Snapshot Isolation = Prefix ∧ Conflict (Fig. 2(b,c)).

    Not causally extensible (Fig. 6), hence checked via the filtering
    algorithm ``explore-ce*`` rather than ``explore-ce`` (§6).
    """

    name = "SI"
    prefix_closed = True
    causally_extensible = False
    strength = 4

    def satisfies(self, history: History) -> bool:
        return satisfies_si(history)


class Serializability(IsolationLevel):
    """Serializability (Fig. 2(d)); not causally extensible (Fig. 6)."""

    name = "SER"
    prefix_closed = True
    causally_extensible = False
    strength = 5

    def satisfies(self, history: History) -> bool:
        return satisfies_ser(history)


TRUE = register(TrivialLevel())
RC = register(ReadCommitted())
RA = register(ReadAtomic())
CC = register(CausalConsistency())
SI = register(SnapshotIsolation())
SER = register(Serializability())
