"""The registered isolation-level lattice.

Every level — the paper's five plus the registry extensions — is declared
here as a :class:`~repro.isolation.registry.LevelSpec` and registered
weakest-first, so each spec's ``stronger_than`` neighbours already exist.
Properties asserted here (prefix closure, causal extensibility, lattice
position) are the statements of Theorems 3.2 and 3.4 of the paper,
generalized to the new levels; the test suite re-verifies them empirically
on generated histories and separates every adjacent lattice pair with a
committed fuzzer gadget (``tests/test_isolation_registry.py``).

The lattice (weaker below, 20 edges)::

                          SER
                         /   \\
                       SI     \\
                      /  \\     \\
                   PSI    PC    |
                      \\  /      |
                       CC       |
                      /  \\      |
                    RA   SESSION|
                   /  \\  /|  |\\ |
                  /    \\/ |  | \\|
                 |     /\\ |  | /\\
                 RC  RYW MR MW WFR     BS-3 sits between RC and SER
                  \\___\\___|__|__/___________/
                           TRUE
"""

from __future__ import annotations

from .axioms import AXIOMS_BY_LEVEL, ORDER_PREDICATES
from .registry import LevelSpec, register_spec
from .search import satisfies_bounded_staleness, satisfies_psi
from .serializability import satisfies_ser
from .snapshot import satisfies_pc, satisfies_si

TRUE = register_spec(
    LevelSpec(
        name="TRUE",
        strength=0,
        axioms=AXIOMS_BY_LEVEL["TRUE"],
        check=lambda history: history.is_so_wr_acyclic(),
        causally_extensible=True,
        aliases=("trivial",),
        description="the trivial level: every well-formed history is consistent",
        eviction="writers",
    )
)

RYW = register_spec(
    LevelSpec(
        name="RYW",
        strength=1,
        axioms=AXIOMS_BY_LEVEL["RYW"],
        stronger_than=("TRUE",),
        aliases=("read your writes", "read-your-writes"),
        description="session guarantee: reads see the session's own earlier writes",
        eviction="writers",
    )
)

MR = register_spec(
    LevelSpec(
        name="MR",
        strength=2,
        axioms=AXIOMS_BY_LEVEL["MR"],
        stronger_than=("TRUE",),
        aliases=("monotonic reads", "monotonic-reads"),
        description="session guarantee: a session's view of other writers never regresses",
        eviction="inert",
    )
)

MW = register_spec(
    LevelSpec(
        name="MW",
        strength=3,
        axioms=AXIOMS_BY_LEVEL["MW"],
        stronger_than=("TRUE",),
        aliases=("monotonic writes", "monotonic-writes"),
        description="session guarantee: a session's writes become visible in order",
        eviction="writers",
    )
)

WFR = register_spec(
    LevelSpec(
        name="WFR",
        strength=4,
        axioms=AXIOMS_BY_LEVEL["WFR"],
        stronger_than=("TRUE",),
        aliases=("writes follow reads", "writes-follow-reads"),
        description="session guarantee: writes are ordered after the writes they observed",
        eviction="inert",
    )
)

SESSION = register_spec(
    LevelSpec(
        name="SESSION",
        strength=5,
        axioms=AXIOMS_BY_LEVEL["SESSION"],
        stronger_than=("RYW", "MR", "MW", "WFR"),
        aliases=("session guarantees", "sessions"),
        description="all four session guarantees combined (still weaker than CC)",
        eviction="inert",
    )
)

RC = register_spec(
    LevelSpec(
        name="RC",
        strength=6,
        axioms=AXIOMS_BY_LEVEL["RC"],
        stronger_than=("TRUE",),
        aliases=("read committed", "read-committed"),
        description="Read Committed (Fig. A.1(a)): reads observe committed values",
        eviction="fresh",
    )
)

BS3 = register_spec(
    LevelSpec(
        name="BS-3",
        strength=7,
        axioms=AXIOMS_BY_LEVEL["BS-3"],
        check=lambda history: satisfies_bounded_staleness(history, 3),
        order_predicate=ORDER_PREDICATES["BS-3"],
        causally_extensible=False,
        stronger_than=("RC",),
        aliases=("bounded staleness", "bounded-staleness", "bs3"),
        description="bounded staleness: RC plus at most 2 newer versions skipped per read",
        eviction="inert",
    )
)

RA = register_spec(
    LevelSpec(
        name="RA",
        strength=8,
        axioms=AXIOMS_BY_LEVEL["RA"],
        stronger_than=("RC", "RYW"),
        aliases=("read atomic", "read-atomic", "repeatable read"),
        description="Read Atomic / Repeatable Read (Fig. A.1(b)): atomic visibility",
        eviction="writers",
    )
)

CC = register_spec(
    LevelSpec(
        name="CC",
        strength=9,
        axioms=AXIOMS_BY_LEVEL["CC"],
        stronger_than=("RA", "SESSION"),
        aliases=("causal", "causal consistency"),
        description="Causal Consistency (Fig. 2(a)): reads respect (so ∪ wr)+",
        eviction="writers",
    )
)

PSI = register_spec(
    LevelSpec(
        name="PSI",
        strength=10,
        axioms=AXIOMS_BY_LEVEL["PSI"],
        check=satisfies_psi,
        causally_extensible=False,
        stronger_than=("CC",),
        aliases=("parallel snapshot isolation", "parallel si", "parallel-si"),
        description="Parallel SI: Causal + Conflict — long forks allowed, lost updates not",
        eviction="inert",
    )
)

PC = register_spec(
    LevelSpec(
        name="PC",
        strength=11,
        axioms=AXIOMS_BY_LEVEL["PC"],
        check=satisfies_pc,
        causally_extensible=False,
        stronger_than=("CC",),
        aliases=("prefix", "prefix consistency", "prefix-consistency"),
        description="Prefix Consistency: snapshots are commit-order prefixes (SI minus Conflict)",
        eviction="inert",
    )
)

SI = register_spec(
    LevelSpec(
        name="SI",
        strength=12,
        axioms=AXIOMS_BY_LEVEL["SI"],
        check=satisfies_si,
        causally_extensible=False,
        stronger_than=("PSI", "PC"),
        aliases=("snapshot", "snapshot isolation"),
        description="Snapshot Isolation = Prefix + Conflict (Fig. 2(b,c))",
        eviction="inert",
    )
)

SER = register_spec(
    LevelSpec(
        name="SER",
        strength=13,
        axioms=AXIOMS_BY_LEVEL["SER"],
        check=satisfies_ser,
        causally_extensible=False,
        stronger_than=("SI", "BS-3"),
        aliases=("serializability", "serializable"),
        description="Serializability (Fig. 2(d)): one global order explains every read",
        eviction="inert",
    )
)
