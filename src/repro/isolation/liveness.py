"""Per-level "can this transaction still matter?" eviction predicates.

The streaming monitor (:mod:`repro.monitor`) keeps memory O(live window)
by evicting transactions that provably cannot participate in any *future*
violation at the configured isolation level.  This module is where that
proof obligation lives, derived from the axiom schema (§2.2): every axiom
instantiates as ``premise(t2, read) ⇒ ⟨t2, t1⟩ ∈ co`` for an instance
``(t1, t2, read)`` with ``⟨t1, tr(read)⟩ ∈ wr`` and ``t2`` a visible
writer of the read variable.  A transaction therefore only ever matters in
three roles — wr source (``t1``), competing writer (``t2``), or reader
(``tr(read)``) — plus as a node carrying ``so`` edges.  A transaction may
be evicted once *none* of those roles can arm a new forced edge or lie on
a new cycle:

Common gates (every level)
    * **complete** — pending transactions are trivially live;
    * **not the session's latest transaction** — the session's next
      ``begin`` takes an ``so`` edge from it (keeping one transaction per
      session live is the monitor's O(sessions) floor);
    * **settled** — no pending transaction in its causal (``so ∪ wr``)
      ancestor cone.  All so/wr edges into a complete transaction are
      frozen, but a *pending* ancestor may still issue a first write and
      thereby create a new axiom instance over the transaction's reads
      whose (frozen) premise evaluates true.  Once every ancestor is
      complete, their write sets are final and every such instance has
      already been expanded and evaluated;
    * **not a wr source of a live read** — while a read naming ``t`` is
      live, a future first-write of that variable spawns an instance
      ``(t, w, read)`` whose forced edge ``w → t`` points *into* ``t``.

Per-level refinements
    * **RC / RA / CC** additionally require **no visible writes** (aborted,
      or committed without writing): a visible writer can always be the
      ``t2`` of a future read's instance — under the default ``keep``
      retention mode any committed writer of a live variable must stay,
      which is also why exact bounded-memory monitoring of write-heavy
      streams is impossible without further assumptions.
    * **RC under "assume-fresh"** may also evict committed writers that
      the staleness assumption makes unnameable (the monitor passes the
      still-fresh writer set).  RC's premise is *static* — it inspects
      only the reading transaction's own log prefix — so a future read can
      only resurrect an unnameable writer by naming it, which the
      assumption excludes (and the replayer turns into a defined
      :class:`~repro.trace.format.EvictedTransactionError`).  RA/CC
      premises can fire through the evicted writer's *session* (a later
      same-session read arms ``⟨t2, t3⟩ ∈ so``), so freshness alone is not
      an eviction licence there and the flag is ignored.
    * **SI / SER / PSI / PC / BS-3 — and MR / WFR / SESSION** additionally
      require **no external reads**: the search levels' axioms mention the
      commit order, so a premise over an old read is never frozen — any
      transaction that read something can join a violation witness
      arbitrarily late (the classic long-fork reader) — and the monotonic
      reads / writes-follow-reads premises traverse *session-mates'* read
      logs, so a future reader's instance can re-inspect an old read.
      Only *inert* transactions (no visible writes, no external reads) are
      evictable, which still covers aborted write-free transactions and
      keeps the property tests exact at every level.

Which rule applies is declared per level in its
:class:`~repro.isolation.registry.LevelSpec` (``eviction=``), so new
levels pick a sound rule at registration time.

The monitor separately enforces a retention window (the last ``W``
completed transactions are protected regardless), and only runs eviction
while the level's verdict is still consistent — evicting nodes of an
already-closed cycle could erase the cycle from the compacted closure.
"""

from __future__ import annotations

from typing import Collection, FrozenSet, List, Optional, Set

from ..core.events import INIT_TXN, TxnId

__all__ = [
    "EvictionPolicy",
    "eviction_policy",
    "evictable_transactions",
    "FRESH_CAPABLE_LEVELS",
]

#: Levels whose policy can consume a freshness assumption (see module doc).
FRESH_CAPABLE_LEVELS: FrozenSet[str] = frozenset(("RC",))


class _View:
    """Precomputed per-GC-pass context shared by all predicate calls."""

    __slots__ = ("checker", "replayer", "matrix", "pending_mask", "wr_sources", "fresh_writers", "_history")

    def __init__(self, checker, fresh_writers: Optional[Set[TxnId]]):
        self.checker = checker
        self.replayer = checker.replayer
        self.matrix = checker.causal_matrix
        self.pending_mask = checker.pending_mask()
        self.wr_sources = checker.live_wr_sources()
        self.fresh_writers = fresh_writers
        self._history = None

    def has_external_reads(self, tid: TxnId) -> bool:
        if self._history is None:
            self._history = self.checker.history()
        return any(e.is_external_read for e in self._history.txns[tid].events)


class EvictionPolicy:
    """The common-gate predicate; levels subclass to refine (see module doc)."""

    level = "?"
    #: Visible writers must be retained (False never occurs — every level
    #: requires it; "assume-fresh" weakens it for RC via ``fresh_writers``).
    supports_fresh_eviction = False
    #: Whether transactions with external reads must be retained (SI/SER).
    requires_no_external_reads = False

    def still_matters(self, view: _View, tid: TxnId) -> bool:
        """Whether ``tid`` could participate in a future violation."""
        replayer = view.replayer
        if not replayer.is_complete(tid):
            return True
        order = replayer.session_order(tid.session)
        if order and order[-1] == tid:
            return True
        if tid in view.wr_sources:
            return True
        if view.pending_mask and (view.matrix.ancestors_mask(tid) & view.pending_mask):
            return True
        if self.supports_fresh_eviction and view.fresh_writers is not None:
            # assume-fresh: only committed writers inside the freshness
            # window are pinned; anything older (or aborted) is assumed
            # never named again — a read that breaks the assumption
            # fail-stops (EvictedTransactionError), never lies.
            if replayer.visible_writes(tid) and tid in view.fresh_writers:
                return True
        elif replayer.wrote_any(tid):
            # keep (exact) mode: any writer — committed *or aborted* — can
            # still be named as a wr source by a late (dirty) read, so
            # writers are pinned for life.  This is what makes keep mode
            # exact on arbitrary streams, and linear on write-heavy ones.
            return True
        if self.requires_no_external_reads and view.has_external_reads(tid):
            return True
        return False


class FreshCapablePolicy(EvictionPolicy):
    """``"fresh"`` rule (RC): static premises allow assume-fresh eviction."""

    level = "fresh"
    supports_fresh_eviction = True


class WriterPinningPolicy(EvictionPolicy):
    """``"writers"`` rule: the common gates alone are exact.

    Covers levels whose premises never traverse another transaction's read
    set — RA, the one-step ``so ∪ wr`` premise; CC, whose ``(so ∪ wr)+``
    premise is preserved through eviction by the compacted closure matrix;
    RYW/MW, whose session clauses consult only static ``so`` and the
    reader's own log.
    """

    level = "writers"


class InertOnlyPolicy(EvictionPolicy):
    """``"inert"`` rule: transactions with external reads stay too.

    Needed by the commit-order searches (SI/SER/PSI/PC/BS — a premise
    over an old read is never frozen) and by the session premises that
    traverse session-mates' read logs (MR/WFR/SESSION): a *future*
    reader's instance may re-inspect an earlier transaction's reads, which
    eviction would have discarded.
    """

    level = "inert"
    requires_no_external_reads = True


_POLICIES = {
    "fresh": FreshCapablePolicy(),
    "writers": WriterPinningPolicy(),
    "inert": InertOnlyPolicy(),
}


def eviction_policy(level: str) -> EvictionPolicy:
    """The eviction policy for a registered isolation level name.

    The rule comes from the level's :class:`~repro.isolation.registry.LevelSpec`
    (``spec.eviction``), so newly registered levels get sound GC without
    touching this module.
    """
    from .registry import level_spec

    try:
        spec = level_spec(level)
    except KeyError:
        raise ValueError(f"no eviction policy for level {level!r}") from None
    return _POLICIES[spec.eviction]


def evictable_transactions(
    checker,
    level: str,
    protect: Collection[TxnId] = (),
    fresh_writers: Optional[Set[TxnId]] = None,
) -> List[TxnId]:
    """All transactions the level's policy allows evicting right now.

    ``checker`` is an :class:`~repro.checking.online.OnlineChecker`;
    ``protect`` is the monitor's retention window (kept regardless);
    ``fresh_writers`` enables the assume-fresh weakening on capable levels
    (``None`` = pure ``keep`` mode).  The returned transactions can be
    passed directly to :meth:`OnlineChecker.evict`.
    """
    policy = eviction_policy(level)
    view = _View(checker, fresh_writers)
    # GC gate: compaction bakes the matrix closure into one-step rows
    # (RelationMatrix.remove_nodes), which is only sound when everything
    # in the matrix is permanent.  A fired edge whose writer is still
    # uncommitted may yet be retracted by an abort, so no one is
    # evictable until that writer completes (open fires are transient:
    # at most one per session is pending).
    pending = checker.pending_transactions()
    if pending and any(
        tid in state.fired_writers
        for state in checker.saturation_states()
        for tid in pending
    ):
        return []
    protected = set(protect)
    out: List[TxnId] = []
    for tid in view.replayer.transactions():
        if tid == INIT_TXN or tid in protected:
            continue
        if not policy.still_matters(view, tid):
            out.append(tid)
    return out
