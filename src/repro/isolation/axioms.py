"""The axiom schema of the paper (eq. (1), Fig. 2, Fig. A.1).

Every axiom has the shape::

    ∀x ∀t1 ≠ t2 ∀t3.  ⟨t1, t3⟩ ∈ wr_x ∧ t2 writes x ∧ φ(t2, t3/read) ⇒ ⟨t2, t1⟩ ∈ co

where φ varies per isolation level and may mention ``po``/``so``/``wr`` and
the commit order ``co`` itself.  This module represents axioms as premise
predicates evaluated against a candidate *total* commit order and provides
:func:`axiom_instances` (the quantifier expansion) used by the brute-force
reference checker in :mod:`repro.isolation.reference`.

Premises that do not mention ``co`` (Read Committed, Read Atomic, Causal
Consistency) admit the polynomial saturation check of
:mod:`repro.isolation.saturation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Mapping, Tuple

from ..core.events import Event, TxnId
from ..core.history import History

#: Position of each transaction in a candidate total commit order.
CoPositions = Mapping[TxnId, int]

#: φ(history, co_positions, t2, read_event) — the read event identifies both
#: t3 = tr(read) and the variable x = var(read).
Premise = Callable[[History, CoPositions, TxnId, Event], bool]


@dataclass(frozen=True)
class Axiom:
    """A named instance of the axiom schema."""

    name: str
    premise: Premise
    #: True when the premise never inspects ``co`` (enables saturation).
    co_free: bool
    #: True when the premise is fully determined the moment its quantifier
    #: instance exists: it inspects only the read's transaction up to the
    #: read (``wr ∘ po``), which is immutable once the read event is
    #: appended.  Lets the online checker evaluate the instance once and
    #: drop it instead of re-scanning it per streamed event; premises over
    #: ``so ∪ wr`` (RA) or its closure (CC) grow with the stream and stay
    #: re-checkable until they fire.
    static_premise: bool = False
    #: True when the premise is exactly "the reader read from ``t2`` at an
    #: earlier position" (``⟨t2, read⟩ ∈ wr ∘ po``).  For an instance
    #: evaluated *the moment its read is appended*, that equals membership
    #: of ``t2`` in the reader's prior wr-source set — the online hot path
    #: then decides it with one hash lookup instead of a log scan.
    prior_source_premise: bool = False


def axiom_instances(history: History) -> Iterator[Tuple[TxnId, TxnId, Event]]:
    """Expand the quantifiers of the schema for ``history``.

    Yields triples ``(t1, t2, read)`` with ``⟨t1, tr(read)⟩ ∈ wr_x``,
    ``t2 writes x`` and ``t1 ≠ t2``.  Aborted transactions never appear as
    ``t1`` or ``t2`` because their ``writes`` set is empty (§2.2.1).
    """
    writers: Dict[str, List[TxnId]] = {}
    for read, t1 in history.wr.items():
        event = history.event(read)
        var = event.var
        if var not in writers:
            writers[var] = history.writers_of(var)
        for t2 in writers[var]:
            if t2 != t1:
                yield t1, t2, event


def _wr_po_premise(history: History, co: CoPositions, t2: TxnId, read: Event) -> bool:
    """Read Committed: ⟨t2, read⟩ ∈ wr ∘ po.

    Some event po-before the read, in the same transaction, reads from t2.
    """
    t3 = read.eid.txn
    log = history.txns[t3]
    for earlier in log.events[: read.eid.pos]:
        if earlier.is_external_read and history.wr.get(earlier.eid) == t2:
            return True
    return False


def _so_wr_premise(history: History, co: CoPositions, t2: TxnId, read: Event) -> bool:
    """Read Atomic: ⟨t2, t3⟩ ∈ so ∪ wr (one step)."""
    t3 = read.eid.txn
    return history.so_before(t2, t3) or history.wr_edge(t2, t3)


def _causal_premise(history: History, co: CoPositions, t2: TxnId, read: Event) -> bool:
    """Causal Consistency: ⟨t2, t3⟩ ∈ (so ∪ wr)+."""
    return history.causally_before(t2, read.eid.txn)


def _ser_premise(history: History, co: CoPositions, t2: TxnId, read: Event) -> bool:
    """Serializability: ⟨t2, t3⟩ ∈ co."""
    return co[t2] < co[read.eid.txn]


def _prefix_premise(history: History, co: CoPositions, t2: TxnId, read: Event) -> bool:
    """Prefix (half of SI): ⟨t2, t3⟩ ∈ co* ∘ (wr ∪ so)."""
    t3 = read.eid.txn
    for t4 in history.txns:
        if t4 == t3:
            continue
        if co[t2] <= co[t4] and (history.so_before(t4, t3) or history.wr_edge(t4, t3)):
            return True
    return False


def _conflict_premise(history: History, co: CoPositions, t2: TxnId, read: Event) -> bool:
    """Conflict (other half of SI).

    t3 writes some y also written by a t4 with ⟨t2, t4⟩ ∈ co* and
    ⟨t4, t3⟩ ∈ co.
    """
    t3 = read.eid.txn
    t3_writes = history.txns[t3].writes()
    if not t3_writes:
        return False
    for var in t3_writes:
        for t4 in history.writers_of(var):
            if t4 != t3 and co[t2] <= co[t4] and co[t4] < co[t3]:
                return True
    return False


READ_COMMITTED_AXIOM = Axiom(
    "Read Committed",
    _wr_po_premise,
    co_free=True,
    static_premise=True,
    prior_source_premise=True,
)
READ_ATOMIC_AXIOM = Axiom("Read Atomic", _so_wr_premise, co_free=True)
CAUSAL_AXIOM = Axiom("Causal", _causal_premise, co_free=True)
SERIALIZABILITY_AXIOM = Axiom("Serializability", _ser_premise, co_free=False)
PREFIX_AXIOM = Axiom("Prefix", _prefix_premise, co_free=False)
CONFLICT_AXIOM = Axiom("Conflict", _conflict_premise, co_free=False)

#: Axiom sets per level name, as in Fig. 2 / Fig. A.1.
AXIOMS_BY_LEVEL: Dict[str, Tuple[Axiom, ...]] = {
    "RC": (READ_COMMITTED_AXIOM,),
    "RA": (READ_ATOMIC_AXIOM,),
    "CC": (CAUSAL_AXIOM,),
    "SI": (PREFIX_AXIOM, CONFLICT_AXIOM),
    "SER": (SERIALIZABILITY_AXIOM,),
    "TRUE": (),
}


def axioms_hold(history: History, co_order: Tuple[TxnId, ...], axioms: Tuple[Axiom, ...]) -> bool:
    """Evaluate ``⟨h, co⟩ ⊨ axioms`` for a *total* commit order ``co_order``."""
    co: Dict[TxnId, int] = {tid: i for i, tid in enumerate(co_order)}
    for t1, t2, read in axiom_instances(history):
        for axiom in axioms:
            if axiom.premise(history, co, t2, read) and not co[t2] < co[t1]:
                return False
    return True
