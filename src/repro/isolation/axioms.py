"""The axiom schema of the paper (eq. (1), Fig. 2, Fig. A.1).

Every axiom has the shape::

    ∀x ∀t1 ≠ t2 ∀t3.  ⟨t1, t3⟩ ∈ wr_x ∧ t2 writes x ∧ φ(t2, t3/read) ⇒ ⟨t2, t1⟩ ∈ co

where φ varies per isolation level and may mention ``po``/``so``/``wr`` and
the commit order ``co`` itself.  This module represents axioms as premise
predicates evaluated against a candidate *total* commit order and provides
:func:`axiom_instances` (the quantifier expansion) used by the brute-force
reference checker in :mod:`repro.isolation.reference`.

Premises that do not mention ``co`` (Read Committed, Read Atomic, Causal
Consistency) admit the polynomial saturation check of
:mod:`repro.isolation.saturation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Mapping, Tuple

from ..core.events import Event, TxnId
from ..core.history import History

#: Position of each transaction in a candidate total commit order.
CoPositions = Mapping[TxnId, int]

#: φ(history, co_positions, t2, read_event) — the read event identifies both
#: t3 = tr(read) and the variable x = var(read).
Premise = Callable[[History, CoPositions, TxnId, Event], bool]


@dataclass(frozen=True)
class Axiom:
    """A named instance of the axiom schema."""

    name: str
    premise: Premise
    #: True when the premise never inspects ``co`` (enables saturation).
    co_free: bool
    #: True when the premise is fully determined the moment its quantifier
    #: instance exists: it inspects only the read's transaction up to the
    #: read (``wr ∘ po``), which is immutable once the read event is
    #: appended.  Lets the online checker evaluate the instance once and
    #: drop it instead of re-scanning it per streamed event; premises over
    #: ``so ∪ wr`` (RA) or its closure (CC) grow with the stream and stay
    #: re-checkable until they fire.
    static_premise: bool = False
    #: True when the premise is exactly "the reader read from ``t2`` at an
    #: earlier position" (``⟨t2, read⟩ ∈ wr ∘ po``).  For an instance
    #: evaluated *the moment its read is appended*, that equals membership
    #: of ``t2`` in the reader's prior wr-source set — the online hot path
    #: then decides it with one hash lookup instead of a log scan.
    prior_source_premise: bool = False


def axiom_instances(history: History) -> Iterator[Tuple[TxnId, TxnId, Event]]:
    """Expand the quantifiers of the schema for ``history``.

    Yields triples ``(t1, t2, read)`` with ``⟨t1, tr(read)⟩ ∈ wr_x``,
    ``t2 writes x`` and ``t1 ≠ t2``.  Aborted transactions never appear as
    ``t1`` or ``t2`` because their ``writes`` set is empty (§2.2.1).
    """
    writers: Dict[str, List[TxnId]] = {}
    for read, t1 in history.wr.items():
        event = history.event(read)
        var = event.var
        if var not in writers:
            writers[var] = history.writers_of(var)
        for t2 in writers[var]:
            if t2 != t1:
                yield t1, t2, event


def _wr_po_premise(history: History, co: CoPositions, t2: TxnId, read: Event) -> bool:
    """Read Committed: ⟨t2, read⟩ ∈ wr ∘ po.

    Some event po-before the read, in the same transaction, reads from t2.
    """
    t3 = read.eid.txn
    log = history.txns[t3]
    for earlier in log.events[: read.eid.pos]:
        if earlier.is_external_read and history.wr.get(earlier.eid) == t2:
            return True
    return False


def _so_wr_premise(history: History, co: CoPositions, t2: TxnId, read: Event) -> bool:
    """Read Atomic: ⟨t2, t3⟩ ∈ so ∪ wr (one step)."""
    t3 = read.eid.txn
    return history.so_before(t2, t3) or history.wr_edge(t2, t3)


def _causal_premise(history: History, co: CoPositions, t2: TxnId, read: Event) -> bool:
    """Causal Consistency: ⟨t2, t3⟩ ∈ (so ∪ wr)+."""
    return history.causally_before(t2, read.eid.txn)


def _ser_premise(history: History, co: CoPositions, t2: TxnId, read: Event) -> bool:
    """Serializability: ⟨t2, t3⟩ ∈ co."""
    return co[t2] < co[read.eid.txn]


# -- session-guarantee premises (Terry et al. 1994, lifted to the schema) ----------
#
# Each classic session guarantee is one co-free premise — a sub-relation of
# ``(so ∪ wr)+`` — so each admits the same saturation check as RC/RA/CC and
# they compose by union (SESSION = all four, which still sits strictly below
# CC because the compositions never chain more than one ``so`` segment).
# The premises only consult the surface shared by ``History`` and the online
# checker's ``_PrefixFacts`` view (``txns[tid].events``, ``wr``,
# ``so_before``, ``wr_edge``), and they tolerate *absent* transactions
# (``wr_edge`` is total, returning False for unknown ids) so the streaming
# monitor can garbage-collect around them.


def _ryw_premise(history: History, co: CoPositions, t2: TxnId, read: Event) -> bool:
    """Read Your Writes: ⟨t2, t3⟩ ∈ so.

    A write by an earlier transaction of the reader's own session must not
    be undone by reading something older.
    """
    return history.so_before(t2, read.eid.txn)


def _monotonic_reads_premise(history: History, co: CoPositions, t2: TxnId, read: Event) -> bool:
    """Monotonic Reads: ⟨t2, t3⟩ ∈ wr ∘ so.

    Some earlier transaction of the reader's session already read from t2,
    so t2's writes are in the session's past view and must stay visible.
    """
    t3 = read.eid.txn
    return any(
        history.wr_edge(t2, TxnId(t3.session, i)) for i in range(t3.index)
    )


def _monotonic_writes_premise(history: History, co: CoPositions, t2: TxnId, read: Event) -> bool:
    """Monotonic Writes: ⟨t2, t3⟩ ∈ so ∘ wr.

    The reader observed some transaction ``src``; writes made earlier in
    ``src``'s session (t2) must be ordered before anything older the
    reader saw.
    """
    t3 = read.eid.txn
    log = history.txns[t3]
    for event in log.events:
        if event.is_external_read:
            src = history.wr.get(event.eid)
            if src is not None and history.so_before(t2, src):
                return True
    return False


def _writes_follow_reads_premise(history: History, co: CoPositions, t2: TxnId, read: Event) -> bool:
    """Writes Follow Reads: ⟨t2, t3⟩ ∈ wr ∘ so? ∘ wr.

    The reader observed ``src``, and ``src`` (or an earlier transaction of
    ``src``'s session) read from t2 — so src's writes causally follow t2's
    and t2 must be visible first.
    """
    t3 = read.eid.txn
    log = history.txns[t3]
    for event in log.events:
        if not event.is_external_read:
            continue
        src = history.wr.get(event.eid)
        if src is None:
            continue
        if history.wr_edge(t2, src):
            return True
        if any(history.wr_edge(t2, TxnId(src.session, i)) for i in range(src.index)):
            return True
    return False


def _prefix_premise(history: History, co: CoPositions, t2: TxnId, read: Event) -> bool:
    """Prefix (half of SI): ⟨t2, t3⟩ ∈ co* ∘ (wr ∪ so)."""
    t3 = read.eid.txn
    for t4 in history.txns:
        if t4 == t3:
            continue
        if co[t2] <= co[t4] and (history.so_before(t4, t3) or history.wr_edge(t4, t3)):
            return True
    return False


def _conflict_premise(history: History, co: CoPositions, t2: TxnId, read: Event) -> bool:
    """Conflict (other half of SI).

    t3 writes some y also written by a t4 with ⟨t2, t4⟩ ∈ co* and
    ⟨t4, t3⟩ ∈ co.
    """
    t3 = read.eid.txn
    t3_writes = history.txns[t3].writes()
    if not t3_writes:
        return False
    for var in t3_writes:
        for t4 in history.writers_of(var):
            if t4 != t3 and co[t2] <= co[t4] and co[t4] < co[t3]:
                return True
    return False


READ_COMMITTED_AXIOM = Axiom(
    "Read Committed",
    _wr_po_premise,
    co_free=True,
    static_premise=True,
    prior_source_premise=True,
)
READ_ATOMIC_AXIOM = Axiom("Read Atomic", _so_wr_premise, co_free=True)
CAUSAL_AXIOM = Axiom("Causal", _causal_premise, co_free=True)
SERIALIZABILITY_AXIOM = Axiom("Serializability", _ser_premise, co_free=False)
PREFIX_AXIOM = Axiom("Prefix", _prefix_premise, co_free=False)
CONFLICT_AXIOM = Axiom("Conflict", _conflict_premise, co_free=False)
READ_YOUR_WRITES_AXIOM = Axiom("Read Your Writes", _ryw_premise, co_free=True)
MONOTONIC_READS_AXIOM = Axiom("Monotonic Reads", _monotonic_reads_premise, co_free=True)
MONOTONIC_WRITES_AXIOM = Axiom("Monotonic Writes", _monotonic_writes_premise, co_free=True)
WRITES_FOLLOW_READS_AXIOM = Axiom(
    "Writes Follow Reads", _writes_follow_reads_premise, co_free=True
)

#: The four session guarantees compose by union into the SESSION level.
SESSION_AXIOMS: Tuple[Axiom, ...] = (
    READ_YOUR_WRITES_AXIOM,
    MONOTONIC_READS_AXIOM,
    MONOTONIC_WRITES_AXIOM,
    WRITES_FOLLOW_READS_AXIOM,
)

#: Axiom sets per level name, as in Fig. 2 / Fig. A.1 (paper levels) plus
#: the registry extensions (session guarantees, PSI, PC, bounded staleness).
AXIOMS_BY_LEVEL: Dict[str, Tuple[Axiom, ...]] = {
    "RC": (READ_COMMITTED_AXIOM,),
    "RA": (READ_ATOMIC_AXIOM,),
    "CC": (CAUSAL_AXIOM,),
    "SI": (PREFIX_AXIOM, CONFLICT_AXIOM),
    "SER": (SERIALIZABILITY_AXIOM,),
    "TRUE": (),
    "RYW": (READ_YOUR_WRITES_AXIOM,),
    "MR": (MONOTONIC_READS_AXIOM,),
    "MW": (MONOTONIC_WRITES_AXIOM,),
    "WFR": (WRITES_FOLLOW_READS_AXIOM,),
    "SESSION": SESSION_AXIOMS,
    "PC": (PREFIX_AXIOM,),
    "PSI": (CAUSAL_AXIOM, CONFLICT_AXIOM),
    # Bounded staleness: the RC axiom plus the counting order predicate in
    # ORDER_PREDICATES below (not expressible in the implication schema).
    "BS-3": (READ_COMMITTED_AXIOM,),
}

#: Order predicate: an extra whole-order constraint ``P(history, co)`` on a
#: candidate *total* commit order, for levels (bounded staleness) whose
#: definition counts over ``co`` rather than implying single edges.
OrderPredicate = Callable[[History, CoPositions], bool]


def bounded_staleness_predicate(k: int) -> OrderPredicate:
    """At most ``k - 1`` other writers between a read's source and the reader.

    For every external read ``x ←wr t1`` by ``t3``:
    ``|{t2 writes x, t2 ∉ {t1, t3} : co[t1] < co[t2] < co[t3]}| < k``.
    """

    def predicate(history: History, co: CoPositions) -> bool:
        for eid, t1 in history.wr.items():
            t3 = eid.txn
            var = history.event(eid).var
            stale = 0
            for t2 in history.writers_of(var):
                if t2 != t1 and t2 != t3 and co[t1] < co[t2] < co[t3]:
                    stale += 1
                    if stale >= k:
                        return False
        return True

    return predicate


#: Extra whole-order constraints per level name (empty for schema-only levels).
ORDER_PREDICATES: Dict[str, OrderPredicate] = {
    "BS-3": bounded_staleness_predicate(3),
}


def axioms_hold(history: History, co_order: Tuple[TxnId, ...], axioms: Tuple[Axiom, ...]) -> bool:
    """Evaluate ``⟨h, co⟩ ⊨ axioms`` for a *total* commit order ``co_order``."""
    co: Dict[TxnId, int] = {tid: i for i, tid in enumerate(co_order)}
    for t1, t2, read in axiom_instances(history):
        for axiom in axioms:
            if axiom.premise(history, co, t2, read) and not co[t2] < co[t1]:
                return False
    return True
