"""Declarative isolation-level specifications (the extension seam of §3).

The paper's central move is treating an isolation level as *data* — a set
of axiom-schema instances — so every algorithm (saturation, the searches,
DPOR, the online checker, the streaming monitor's GC) is parameterized by
the level rather than hard-coding it.  :class:`LevelSpec` makes that
concrete: one frozen record naming the axioms, the efficient checker, the
position in the weaker-than lattice, and the monitor eviction rule.  The
built-in levels in :mod:`repro.isolation.levels` register through it, and
new levels need nothing more than another :func:`register_spec` call.

Eviction rules (consumed by :mod:`repro.isolation.liveness`):

``"fresh"``
    Complete readers may evict even if they wrote, when the monitor runs
    in assume-fresh mode (RC: premises only look inside the reader's log).
``"writers"``
    Writers stay until their variables are overwritten; complete
    transactions whose effects are summarized elsewhere may go (RA, CC and
    the session atoms whose premises never traverse another transaction's
    read set — CC survives eviction because the compacted closure matrix
    preserves reachability through evicted nodes).
``"inert"``
    Additionally pins transactions with external reads (levels whose
    premises or searches re-inspect other transactions' reads: MR/WFR
    traverse session-mates' read logs, and the SI/SER/PSI/PC/BS searches
    re-read every read in the live window).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..core.history import History
from .axioms import Axiom, OrderPredicate
from .base import IsolationLevel, add_aliases, get_level, record_lattice, register

#: Valid eviction rule names, weakest pinning first.
EVICTION_RULES = ("fresh", "writers", "inert")


@dataclass(frozen=True)
class LevelSpec:
    """Everything the toolchain needs to know about one isolation level."""

    #: Canonical short name (registry key), e.g. ``"PSI"``.
    name: str
    #: Rank used only for display ordering; the lattice edges carry the
    #: actual weaker-than semantics.  Must be unique and respect the
    #: lattice (weaker levels get smaller ranks).
    strength: int
    #: The level's instances of the axiom schema (may be empty for TRUE).
    axioms: Tuple[Axiom, ...] = ()
    #: Efficient consistency check.  Defaults to saturation over
    #: ``axioms`` when they are all co-free; must be given otherwise.
    check: Optional[Callable[[History], bool]] = None
    #: Extra whole-order constraint (bounded staleness); None for levels
    #: fully captured by the implication schema.
    order_predicate: Optional[OrderPredicate] = None
    #: Def. 3.1 — every prefix of a consistent history is consistent.
    prefix_closed: bool = True
    #: Def. 3.3 — None derives it: co-free axioms without an order
    #: predicate are causally extensible (Thm. 3.4 generalizes: each
    #: premise is a sub-relation of ``(so ∪ wr)+``).
    causally_extensible: Optional[bool] = None
    #: Immediate *weaker* neighbours in the lattice (must already be
    #: registered — register weakest-first).
    stronger_than: Tuple[str, ...] = ()
    #: Extra case-insensitive lookup aliases.
    aliases: Tuple[str, ...] = ()
    #: One-line description for ``repro levels`` and the docs.
    description: str = ""
    #: Monitor eviction rule: ``"fresh"`` | ``"writers"`` | ``"inert"``.
    eviction: str = "inert"

    def derived_causal_extensibility(self) -> bool:
        if self.causally_extensible is not None:
            return self.causally_extensible
        return self.order_predicate is None and all(a.co_free for a in self.axioms)


class _SpecLevel(IsolationLevel):
    """An :class:`IsolationLevel` built from a :class:`LevelSpec`."""

    def __init__(self, spec: LevelSpec, check: Callable[[History], bool]):
        self.spec = spec
        self.name = spec.name
        self.prefix_closed = spec.prefix_closed
        self.causally_extensible = spec.derived_causal_extensibility()
        self.strength = spec.strength
        self._check = check

    def satisfies(self, history: History) -> bool:
        return self._check(history)

    def __reduce__(self):
        # Levels are process-global registry entries (re-registered by the
        # module imports of any interpreter), so cross process boundaries
        # by name — the derived saturation check is a closure that plain
        # pickling could not ship under the spawn start method.
        return (get_level, (self.name,))


_SPECS: Dict[str, LevelSpec] = {}


def register_spec(spec: LevelSpec) -> IsolationLevel:
    """Register a level from its declarative spec; returns the level."""
    if spec.eviction not in EVICTION_RULES:
        raise ValueError(
            f"level {spec.name!r}: unknown eviction rule {spec.eviction!r}; "
            f"expected one of {EVICTION_RULES}"
        )
    check = spec.check
    if check is None:
        if not all(a.co_free for a in spec.axioms):
            raise ValueError(
                f"level {spec.name!r} has co-dependent axioms and no explicit check"
            )
        if spec.order_predicate is not None:
            raise ValueError(
                f"level {spec.name!r} has an order predicate and no explicit check"
            )
        from .saturation import satisfies_by_saturation

        axioms = spec.axioms

        def check(history: History, _axioms: Tuple[Axiom, ...] = axioms) -> bool:
            return satisfies_by_saturation(history, _axioms)

    level = _SpecLevel(spec, check)
    key = spec.name.upper()
    for existing in _SPECS.values():
        if existing.name.upper() != key and existing.strength == spec.strength:
            raise ValueError(
                f"level {spec.name!r} reuses strength rank {spec.strength} "
                f"of {existing.name!r}"
            )
    register(level)
    record_lattice(spec.name, spec.stronger_than)
    add_aliases(spec.name, spec.aliases)
    _SPECS[key] = spec
    return level


def level_spec(name: str) -> LevelSpec:
    """The :class:`LevelSpec` behind a registered level name or alias."""
    canonical = get_level(name).name.upper()
    try:
        return _SPECS[canonical]
    except KeyError:
        raise KeyError(f"level {name!r} was registered without a spec") from None


def level_specs() -> List[LevelSpec]:
    """All registered specs, weakest display rank first."""
    return sorted(_SPECS.values(), key=lambda spec: spec.strength)


def lattice_edges() -> List[Tuple[str, str]]:
    """Direct ``(weaker, stronger)`` edges of the registered lattice."""
    edges: List[Tuple[str, str]] = []
    for spec in level_specs():
        for weaker in spec.stronger_than:
            edges.append((get_level(weaker).name, spec.name))
    return edges
