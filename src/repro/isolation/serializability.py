"""Serializability checking by memoized search over commit prefixes.

A history satisfies SER iff there is a total commit order extending
``so ∪ wr`` in which every external read of ``x`` reads from the *last*
previously-committed writer of ``x`` (this is the Fig. 2(d) axiom: every
x-writer committed before the reading transaction must be committed before
the read's source).

The search builds the commit order left to right.  A state is fully
described by the set of committed transactions plus the last committed
writer of each variable, so states are memoized on that pair — this is the
frontier argument of Biswas & Enea [OOPSLA 2019]: for a fixed number of
sessions the number of downward-closed committed sets is polynomial, which
is also why the paper's `explore-ce*(·, SER)` filter stays cheap on
histories with few sessions (§7.3).

Aborted and pending transactions take part in the order (the commit order of
Def. 2.2 is total on *all* transaction logs) but expose no writes.

The search runs on the dense indexing of the history's cached
:class:`~repro.core.bitrel.RelationMatrix`: the committed set is one int
bitmask, and a transaction is enabled iff ``ancestors_mask(t) & ~committed``
is zero — a single word-parallel test against the maintained ``so ∪ wr``
closure (valid because every committed set the search reaches is
closure-downward-closed, so ancestor- and direct-predecessor-completeness
coincide).  No per-check adjacency or predecessor map is rebuilt.
"""

from __future__ import annotations

from typing import Set, Tuple

from ..core.events import INIT_TXN
from ..core.history import History
from .summaries import dense_summaries


def satisfies_ser(history: History) -> bool:
    """Whether ``history`` is serializable.

    Runs on ``history.causal_matrix()`` — callers that already maintain
    the ``so ∪ wr`` closure (the online checker) seed it via
    ``History.adopt_causal_matrix`` so no from-scratch build happens here.
    """
    matrix = history.causal_matrix()
    if not matrix.is_acyclic():
        return False

    n = len(matrix)
    ancestors, reads_of, writes_of, _write_mask, num_vars = dense_summaries(history, matrix)

    full = (1 << n) - 1
    failed: Set[Tuple[int, Tuple[int, ...]]] = set()

    def search(committed: int, last_writer: Tuple[int, ...]) -> bool:
        if committed == full:
            return True
        state = (committed, last_writer)
        if state in failed:
            return False
        for i in range(n):
            if committed >> i & 1 or ancestors[i] & ~committed:
                continue
            # The SER axiom: each external read must read from the latest
            # committed writer of its variable at this point.
            if any(last_writer[var] != src for var, src in reads_of[i]):
                continue
            if writes_of[i]:
                updated = list(last_writer)
                for var in writes_of[i]:
                    updated[var] = i
                next_writer = tuple(updated)
            else:
                next_writer = last_writer
            if search(committed | (1 << i), next_writer):
                return True
        failed.add(state)
        return False

    # init commits first and is the initial last-writer of every variable.
    init = matrix.index_of(INIT_TXN)
    initial_writer = tuple(init for _ in range(num_vars))
    return search(1 << init, initial_writer)
