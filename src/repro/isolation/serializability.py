"""Serializability checking by memoized search over commit prefixes.

A history satisfies SER iff there is a total commit order extending
``so ∪ wr`` in which every external read of ``x`` reads from the *last*
previously-committed writer of ``x`` (this is the Fig. 2(d) axiom: every
x-writer committed before the reading transaction must be committed before
the read's source).

The search builds the commit order left to right.  A state is fully
described by the set of committed transactions plus the last committed
writer of each variable, so states are memoized on that pair — this is the
frontier argument of Biswas & Enea [OOPSLA 2019]: for a fixed number of
sessions the number of downward-closed committed sets is polynomial, which
is also why the paper's `explore-ce*(·, SER)` filter stays cheap on
histories with few sessions (§7.3).

Aborted and pending transactions take part in the order (the commit order of
Def. 2.2 is total on *all* transaction logs) but expose no writes.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from ..core.events import TxnId
from ..core.history import History


def satisfies_ser(history: History) -> bool:
    """Whether ``history`` is serializable."""
    if not history.is_so_wr_acyclic():
        return False

    txns = list(history.txns)
    predecessors: Dict[TxnId, Set[TxnId]] = {tid: set() for tid in txns}
    for src, succs in history.so_wr_adjacency().items():
        for dst in succs:
            predecessors[dst].add(src)

    # Per-transaction summaries used at each step of the search.
    reads_of: Dict[TxnId, List[Tuple[str, TxnId]]] = {}
    writes_of: Dict[TxnId, Tuple[str, ...]] = {}
    variables: Set[str] = set()
    for tid, log in history.txns.items():
        reads_of[tid] = [
            (event.var, history.wr[event.eid])
            for event in log.reads()
            if event.eid in history.wr
        ]
        writes_of[tid] = tuple(sorted(log.writes()))
        variables.update(writes_of[tid])
        variables.update(var for var, _ in reads_of[tid])
    var_order = sorted(variables)
    var_index = {var: i for i, var in enumerate(var_order)}

    all_txns: FrozenSet[TxnId] = frozenset(txns)
    failed: Set[Tuple[FrozenSet[TxnId], Tuple[TxnId, ...]]] = set()

    def search(committed: FrozenSet[TxnId], last_writer: Tuple[TxnId, ...]) -> bool:
        if committed == all_txns:
            return True
        state = (committed, last_writer)
        if state in failed:
            return False
        for tid in txns:
            if tid in committed or not predecessors[tid] <= committed:
                continue
            # The SER axiom: each external read must read from the latest
            # committed writer of its variable at this point.
            if any(last_writer[var_index[var]] != src for var, src in reads_of[tid]):
                continue
            if writes_of[tid]:
                updated = list(last_writer)
                for var in writes_of[tid]:
                    updated[var_index[var]] = tid
                next_writer = tuple(updated)
            else:
                next_writer = last_writer
            if search(committed | {tid}, next_writer):
                return True
        failed.add(state)
        return False

    # init commits first and is the initial last-writer of every variable.
    from ..core.events import INIT_TXN

    initial_writer = tuple(INIT_TXN for _ in var_order)
    return search(frozenset({INIT_TXN}), initial_writer)
