"""Axiomatic isolation levels and consistency checkers (paper §2.2, §3)."""

from .base import IsolationLevel, get_level, registered_levels
from .levels import CC, RA, RC, SER, SI, TRUE
from .reference import satisfies_reference, witness_commit_order
from .axioms import AXIOMS_BY_LEVEL
from .liveness import EvictionPolicy, eviction_policy, evictable_transactions
from .saturation import IncrementalSaturation, satisfies_by_saturation
from .serializability import satisfies_ser
from .snapshot import satisfies_si

__all__ = [
    "IsolationLevel",
    "get_level",
    "registered_levels",
    "TRUE",
    "RC",
    "RA",
    "CC",
    "SI",
    "SER",
    "satisfies_reference",
    "witness_commit_order",
    "AXIOMS_BY_LEVEL",
    "EvictionPolicy",
    "eviction_policy",
    "evictable_transactions",
    "IncrementalSaturation",
    "satisfies_by_saturation",
    "satisfies_ser",
    "satisfies_si",
]
