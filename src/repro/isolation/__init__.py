"""Axiomatic isolation levels and consistency checkers (paper §2.2, §3)."""

from .base import IsolationLevel, get_level, registered_levels
from .levels import CC, RA, RC, SER, SI, TRUE
from .reference import satisfies_reference, witness_commit_order
from .axioms import AXIOMS_BY_LEVEL

__all__ = [
    "IsolationLevel",
    "get_level",
    "registered_levels",
    "TRUE",
    "RC",
    "RA",
    "CC",
    "SI",
    "SER",
    "satisfies_reference",
    "witness_commit_order",
    "AXIOMS_BY_LEVEL",
]
