"""Axiomatic isolation levels and consistency checkers (paper §2.2, §3)."""

from .base import IsolationLevel, get_level, registered_levels
from .levels import BS3, CC, MR, MW, PC, PSI, RA, RC, RYW, SER, SESSION, SI, TRUE, WFR
from .reference import satisfies_reference, witness_commit_order
from .axioms import AXIOMS_BY_LEVEL, ORDER_PREDICATES
from .liveness import EvictionPolicy, eviction_policy, evictable_transactions
from .registry import LevelSpec, lattice_edges, level_spec, level_specs, register_spec
from .saturation import IncrementalSaturation, satisfies_by_saturation
from .search import satisfies_bounded_staleness, satisfies_psi
from .serializability import satisfies_ser
from .snapshot import satisfies_pc, satisfies_si

__all__ = [
    "IsolationLevel",
    "LevelSpec",
    "get_level",
    "registered_levels",
    "register_spec",
    "level_spec",
    "level_specs",
    "lattice_edges",
    "TRUE",
    "RC",
    "RA",
    "CC",
    "SI",
    "SER",
    "RYW",
    "MR",
    "MW",
    "WFR",
    "SESSION",
    "PSI",
    "PC",
    "BS3",
    "satisfies_reference",
    "witness_commit_order",
    "AXIOMS_BY_LEVEL",
    "ORDER_PREDICATES",
    "EvictionPolicy",
    "eviction_policy",
    "evictable_transactions",
    "IncrementalSaturation",
    "satisfies_by_saturation",
    "satisfies_ser",
    "satisfies_si",
    "satisfies_pc",
    "satisfies_psi",
    "satisfies_bounded_staleness",
]
