"""Isolation-level interface and registry (paper §2.2.2, §3).

An isolation level is defined by a set of axioms over histories: a history
satisfies the level iff there is a strict total *commit order* ``co``
extending ``so ∪ wr`` such that the axioms hold (Def. 2.2).

Each concrete level exposes:

* :meth:`IsolationLevel.satisfies` — the (efficient) consistency check used
  by the model-checking algorithms;
* :attr:`IsolationLevel.prefix_closed` / :attr:`IsolationLevel.causally_extensible`
  — the §3 properties that determine which DPOR algorithm applies;
* :attr:`IsolationLevel.strength` — position in the weaker-than order
  RC < RA < CC < SI < SER (§2.2.2).
"""

from __future__ import annotations

import abc
from typing import Dict, FrozenSet, Iterable, List

from ..core.history import History


class IsolationLevel(abc.ABC):
    """Abstract isolation level."""

    #: Short name, e.g. ``"CC"``.
    name: str = ""
    #: Whether every prefix of a consistent history is consistent (Def. 3.1).
    prefix_closed: bool = True
    #: Whether (so ∪ wr)+-maximal pending transactions can always be extended
    #: consistently (Def. 3.3).
    causally_extensible: bool = False
    #: Rank in the weaker-than order; larger = stronger.
    strength: int = 0

    @abc.abstractmethod
    def satisfies(self, history: History) -> bool:
        """Whether ``history`` is consistent with this level."""

    def is_weaker_than(self, other: "IsolationLevel") -> bool:
        """Whether every history consistent with ``other`` satisfies ``self``.

        Includes equality.  Levels registered through the
        :mod:`repro.isolation.registry` lattice are decided by the recorded
        weaker-than closure (the lattice is a partial order — PSI and PC,
        or BS-3 and SI, are incomparable); levels registered without
        lattice edges fall back to comparing strength ranks, which is exact
        for the original RC < RA < CC < SI < SER chain.
        """
        closure = _WEAKER_CLOSURE.get(other.name.upper())
        if closure is not None and self.name.upper() in _WEAKER_CLOSURE:
            return self.name.upper() in closure
        return self.strength <= other.strength

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<IsolationLevel {self.name}>"


_REGISTRY: Dict[str, IsolationLevel] = {}

#: name → every registered level weaker than or equal to it (reflexive,
#: transitive closure of the declared lattice edges).
_WEAKER_CLOSURE: Dict[str, FrozenSet[str]] = {}


def register(level: IsolationLevel) -> IsolationLevel:
    """Add a level instance to the global registry (keyed by name)."""
    _REGISTRY[level.name.upper()] = level
    return level


def record_lattice(name: str, stronger_than: Iterable[str]) -> None:
    """Record ``name``'s position in the weaker-than lattice.

    ``stronger_than`` names the level's immediate weaker neighbours, which
    must already be recorded — levels register weakest-first.
    """
    key = name.upper()
    closure = {key}
    for weaker in stronger_than:
        weaker_key = weaker.upper()
        if weaker_key not in _WEAKER_CLOSURE:
            raise KeyError(
                f"level {name!r} declared stronger than unrecorded level {weaker!r}; "
                "register weaker levels first"
            )
        closure.update(_WEAKER_CLOSURE[weaker_key])
    _WEAKER_CLOSURE[key] = frozenset(closure)


def add_aliases(name: str, aliases: Iterable[str]) -> None:
    """Register extra case-insensitive lookup aliases for a level name."""
    for alias in aliases:
        _ALIASES[alias.strip().lower()] = name.upper()


def get_level(name: str) -> IsolationLevel:
    """Look up a registered level by (case-insensitive) name.

    Accepts every registered short name (``RC``, ``RA``, ``CC``, ``SI``,
    ``SER``, ``TRUE``, ``RYW``, ``MR``, ``MW``, ``WFR``, ``SESSION``,
    ``PSI``, ``PC``, ``BS-3``) plus the long aliases (``read committed``,
    ``parallel snapshot isolation``, ``bounded staleness`` etc.) —
    ``repro levels`` on the command line lists them all.
    """
    key = _ALIASES.get(name.strip().lower(), name.strip().upper())
    try:
        return _REGISTRY[key]
    except KeyError:
        raise KeyError(f"unknown isolation level {name!r}; known: {sorted(_REGISTRY)}") from None


def registered_levels() -> List[IsolationLevel]:
    return sorted(_REGISTRY.values(), key=lambda l: l.strength)


_ALIASES = {
    "read committed": "RC",
    "read-committed": "RC",
    "read atomic": "RA",
    "read-atomic": "RA",
    "repeatable read": "RA",
    "causal": "CC",
    "causal consistency": "CC",
    "snapshot": "SI",
    "snapshot isolation": "SI",
    "serializability": "SER",
    "serializable": "SER",
    "trivial": "TRUE",
}
