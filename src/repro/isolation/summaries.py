"""Shared dense per-transaction summaries for the SER and SI searches.

Both frontier-memoized checkers run on the dense indexing of the history's
cached :class:`~repro.core.bitrel.RelationMatrix` and need the same
pre-computation: ancestor bitmasks for enabledness, per-transaction read
lists (variable index, wr-source index), write lists, and write-footprint
bitmasks.  Extracted here so the two checkers cannot drift apart.
"""

from __future__ import annotations

from typing import List, NamedTuple, Set, Tuple

from ..core.bitrel import RelationMatrix
from ..core.history import History


class DenseSummaries(NamedTuple):
    """Per-transaction summaries on a matrix's dense indexing."""

    #: ``so ∪ wr`` ancestor bitmask per transaction index.
    ancestors: List[int]
    #: (variable index, wr-source transaction index) per external read.
    reads_of: List[Tuple[Tuple[int, int], ...]]
    #: Written variable indices, sorted, per transaction index.
    writes_of: List[Tuple[int, ...]]
    #: Write footprint as a variable bitmask, per transaction index.
    write_mask: List[int]
    #: Number of distinct variables read or written.
    num_vars: int


def dense_summaries(history: History, matrix: RelationMatrix) -> DenseSummaries:
    n = len(matrix)
    variables: Set[str] = set()
    raw_reads: List[List[Tuple[str, int]]] = [[] for _ in range(n)]
    raw_writes: List[List[str]] = [[] for _ in range(n)]
    for tid, log in history.txns.items():
        i = matrix.index_of(tid)
        for event in log.reads():
            if event.eid in history.wr:
                raw_reads[i].append((event.var, matrix.index_of(history.wr[event.eid])))
        raw_writes[i] = sorted(log.writes())
        variables.update(raw_writes[i])
        variables.update(var for var, _ in raw_reads[i])
    var_index = {var: v for v, var in enumerate(sorted(variables))}
    reads_of = [tuple((var_index[var], src) for var, src in pairs) for pairs in raw_reads]
    writes_of = [tuple(var_index[var] for var in vars_) for vars_ in raw_writes]
    write_mask = [sum(1 << var for var in vars_) for vars_ in writes_of]
    return DenseSummaries(
        ancestors=[matrix.ancestors_mask(matrix.node_at(i)) for i in range(n)],
        reads_of=reads_of,
        writes_of=writes_of,
        write_mask=write_mask,
        num_vars=len(var_index),
    )
