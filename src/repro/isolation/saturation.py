"""Polynomial consistency checks for RC, RA and CC by edge saturation.

The premises of the Read Committed, Read Atomic and Causal axioms never
mention the commit order, so the axiom schema

    premise(t2, read) ⇒ ⟨t2, t1⟩ ∈ co

pins down a fixed set of *forced* commit-order edges.  A total order
satisfying the axioms and extending ``so ∪ wr`` exists iff
``so ∪ wr ∪ forced`` is acyclic:

* (⇒) any witnessing ``co`` contains all forced edges, so the union embeds
  into a total order and is acyclic;
* (⇐) if acyclic, any topological extension is a witnessing ``co`` because
  the premises, being co-free, are unaffected by the choice of extension.

This matches the polynomial-time consistency results of Biswas & Enea
[OOPSLA 2019] for these levels and is cross-validated against the
brute-force reference checker in the tests.

Implementation: the check starts from the history's cached
:class:`~repro.core.bitrel.RelationMatrix` (the ``so ∪ wr`` closure, built
once per history), copies it, and feeds forced edges into the copy
**incrementally**.  Since edges are only ever added, the union is cyclic
iff some single addition closes a cycle — which the maintained closure
answers in O(1) — so the check aborts at the first contradictory edge
instead of saturating fully and re-running a DFS cycle search.
"""

from __future__ import annotations

from typing import List, Optional, Iterator, Set, Tuple

from ..core.bitrel import RelationMatrix
from ..core.events import INIT_TXN, Event, EventType, TxnId
from ..core.history import History
from .axioms import Axiom, axiom_instances


def _check_co_free(axioms: Tuple[Axiom, ...]) -> None:
    for axiom in axioms:
        if not axiom.co_free:
            raise ValueError(f"axiom {axiom.name!r} is not co-free; saturation does not apply")


def iter_forced_edges(history: History, axioms: Tuple[Axiom, ...]) -> Iterator[Tuple[TxnId, TxnId]]:
    """Forced commit-order edges ``(t2, t1)``, streamed as they are found.

    Streaming lets :func:`satisfies_by_saturation` stop at the first edge
    that closes a cycle, skipping the remaining quantifier instances.
    """
    _check_co_free(axioms)
    for t1, t2, read in axiom_instances(history):
        for axiom in axioms:
            IncrementalSaturation.premise_evals += 1
            if axiom.premise(history, {}, t2, read):
                yield t2, t1
                break


def forced_edges(history: History, axioms: Tuple[Axiom, ...]) -> Set[Tuple[TxnId, TxnId]]:
    """All commit-order edges ``(t2, t1)`` forced by co-free axioms."""
    return set(iter_forced_edges(history, axioms))


def satisfies_by_saturation(history: History, axioms: Tuple[Axiom, ...]) -> bool:
    """Polynomial ``h ⊨ I`` for levels whose axioms are all co-free.

    The verdict is served from the history's cached
    :class:`IncrementalSaturation` state when one exists — the DPOR hot
    path derives each child node's state from its parent's
    (:func:`derive_extension_states`), making this O(1) per node.  On a
    cache miss (roots, abort rebuilds, standalone histories) the state is
    batch-built once and cached for any future extensions.
    """
    states = history.saturation_states()
    state = states.get(axioms)
    if state is None:
        if not history.causal_matrix().is_acyclic():
            return False
        state = IncrementalSaturation.from_history(history, axioms)
        states[axioms] = state
    return state.consistent


class IncrementalSaturation:
    """Online saturation state for one co-free-axiom level (RC, RA or CC).

    Where :func:`satisfies_by_saturation` re-derives every forced edge from
    scratch per history, this class maintains ``so ∪ wr ∪ forced`` across a
    *growing* history: the caller feeds transactions, base (``so``/``wr``)
    edges and freshly quantifier-expanded axiom instances as events arrive,
    and :meth:`advance` evaluates only the instances whose premise has not
    fired yet.  Correctness rests on the premises being **monotone** in the
    history prefix: they mention only ``po``/``so``/``wr`` (co-free), all of
    which grow-only, so a premise that is false now can only *become* true
    later — an instance therefore needs re-checking until it fires, never
    after.  The verdict is O(1): the maintained closure's acyclicity flag.

    The one non-monotone step is an **abort**: an aborted transaction's
    writes vanish (§2.2.1), retroactively deleting every instance it was the
    writer of — including forced edges already baked into the closure.
    :meth:`retract_writer` undoes exactly those (fired edges are recorded
    one-step in the matrix, so clearing them and re-closing is exact);
    aborts of write-free transactions need no matrix work at all.
    """

    __slots__ = (
        "axioms",
        "matrix",
        "_pending",
        "_drop_unfired",
        "_prior_source",
        "fired_edges",
        "fired_writers",
    )

    #: Axiom premise evaluations since interpreter start (batch and
    #: incremental paths both count).  The per-node cost profile of the
    #: exploration reports deltas of this counter — it is the "saturation
    #: ticks" axis of ``scripts/profile_explore.py``.
    premise_evals: int = 0

    def __init__(self, axioms: Tuple[Axiom, ...], matrix: Optional[RelationMatrix] = None):
        _check_co_free(axioms)
        self.axioms = axioms
        #: The maintained ``so ∪ wr ∪ forced`` relation, closure kept by add_edge.
        self.matrix = RelationMatrix((INIT_TXN,)) if matrix is None else matrix
        self._pending: List[Tuple[TxnId, TxnId, Event]] = []
        #: With only static premises (RC), an unfired instance can never
        #: fire later — evaluate once and drop instead of re-scanning.
        self._drop_unfired = all(axiom.static_premise for axiom in axioms)
        self._prior_source = bool(axioms) and all(
            axiom.prior_source_premise for axiom in axioms
        )
        #: Forced edges ``(t2, t1)`` actually fired so far.  Premises
        #: are monotone and unaffected by aborts of *other* transactions,
        #: so a fired edge stays valid until its writer ``t2`` aborts —
        #: which lets the online checker (a) retract a never-fired aborted
        #: writer by just dropping its pending instances, and (b) restore
        #: edges fired by since-evicted readers after a rebuild, with no
        #: evict-time re-derivation.
        self.fired_edges: Set[Tuple[TxnId, TxnId]] = set()
        #: Distinct writers with at least one fired edge — the O(1) index
        #: behind :meth:`has_fired_writer` and the monitor's GC gate
        #: ("compact only when every fired edge's writer is committed").
        self.fired_writers: Set[TxnId] = set()

    @classmethod
    def from_history(cls, history: History, axioms: Tuple[Axiom, ...]) -> "IncrementalSaturation":
        """Batch-build the state for an existing history (abort rebuilds).

        Starts from a copy of the history's cached ``so ∪ wr`` closure and
        replays the full quantifier expansion once.
        """
        state = cls(axioms, matrix=history.causal_matrix().copy())
        state._pending = list(axiom_instances(history))
        state.advance(history)
        return state

    def add_transaction(self, tid: TxnId) -> None:
        """Grow the node universe by one (isolated) transaction."""
        self.matrix.add_node(tid)

    def add_base_edge(self, src: TxnId, dst: TxnId) -> None:
        """Record a new ``so`` or ``wr`` edge."""
        if src != dst:
            self.matrix.add_edge(src, dst)

    def add_instance(self, t1: TxnId, t2: TxnId, read: Event) -> None:
        """Queue a new axiom instance ``(t1, t2, read)`` for evaluation."""
        self._pending.append((t1, t2, read))

    def evaluate_instance(self, t1: TxnId, t2: TxnId, read: Event, facts) -> bool:
        """Evaluate one instance right now instead of queuing it.

        Only meaningful for states whose premises are all *static* (RC):
        the verdict is final the moment the instance exists, so the online
        hot path evaluates against its O(1) prefix-facts view and never
        queues.  ``facts`` is anything premise-compatible with a
        :class:`~repro.core.history.History`.  Returns whether the
        instance fired (its forced edge was added).
        """
        for axiom in self.axioms:
            IncrementalSaturation.premise_evals += 1
            if axiom.premise(facts, {}, t2, read):
                self.force_edge(t2, t1)
                return True
        return False

    def force_edge(self, t2: TxnId, t1: TxnId) -> None:
        """Apply and record one forced edge whose premise was decided."""
        self.matrix.add_edge(t2, t1)
        self.fired_edges.add((t2, t1))
        self.fired_writers.add(t2)

    def has_fired_writer(self, tid: TxnId) -> bool:
        """Whether any fired edge is quantified over ``tid`` as writer."""
        return tid in self.fired_writers

    def retract_writer(self, tid: TxnId) -> None:
        """Undo an aborted writer's contribution, in place and exactly.

        An abort retroactively empties ``tid``'s write set (§2.2.1):
        every instance quantifying ``tid`` as writer never existed, so its
        fired edges leave the relation and its pending instances are
        dropped.  Premises are co-free, so un-firing ``tid``'s edges
        cannot un-fire anyone else's — clearing the one-step bits and
        re-closing the matrix (:meth:`RelationMatrix.retract_edges`)
        reproduces exactly the state a from-scratch rebuild without
        ``tid``-as-writer instances would build, at O(live²) bit ops
        instead of a full history re-expansion.
        """
        if tid in self.fired_writers:
            dead_edges = [edge for edge in self.fired_edges if edge[0] == tid]
            self.matrix.retract_edges(dead_edges)
            self.fired_edges.difference_update(dead_edges)
            self.fired_writers.discard(tid)
        if self._pending:
            self._pending = [inst for inst in self._pending if inst[1] != tid]

    def advance(self, history: History) -> None:
        """Evaluate pending premises against the current prefix history.

        Instances whose premise holds contribute their forced edge ``⟨t2,
        t1⟩`` to the maintained closure and are retired; the rest stay
        pending.  One pass suffices per fed event: co-free premises cannot
        be enabled by the forced edges this pass adds.

        Once the closure is cyclic the pass is skipped entirely — more
        edges cannot un-close a cycle, and the only event that can restore
        consistency (an abort retracting a writer) goes through a
        :meth:`from_history` rebuild anyway.  This mirrors the batch
        checker's first-contradiction early exit.
        """
        if not self.matrix.is_acyclic():
            return
        still: List[Tuple[TxnId, TxnId, Event]] = []
        pending = self._pending
        for idx, (t1, t2, read) in enumerate(pending):
            fired = False
            for axiom in self.axioms:
                IncrementalSaturation.premise_evals += 1
                if axiom.premise(history, {}, t2, read):
                    fired = True
                    break
            if fired:
                self.force_edge(t2, t1)
                if not self.matrix.is_acyclic():
                    # First contradiction: the verdict is settled for this
                    # history and every append-extension; keep the
                    # unevaluated tail pending (an abort rebuild discards
                    # this state anyway) and stop scanning.
                    still.extend(pending[idx + 1 :])
                    break
            elif not self._drop_unfired:
                still.append((t1, t2, read))
        self._pending = still

    def evict(self, drop: Set[TxnId]) -> None:
        """Compact the state to the transactions outside ``drop``.

        The matrix is restricted via
        :meth:`~repro.core.bitrel.RelationMatrix.remove_nodes` (closure
        shortcuts through dropped nodes are preserved), and every pending
        instance mentioning a dropped participant — as source ``t1``,
        writer ``t2`` or reader — is discarded.  Exactness is the caller's
        contract: the monitor's per-level eviction predicates
        (:mod:`repro.isolation.liveness`) only nominate transactions whose
        dropped instances are provably frozen-false or whose forced edges
        could never lie on a future cycle, and only while the state is
        consistent (evicting nodes of an already-closed cycle could
        otherwise erase the cycle).
        """
        if not drop:
            return
        self.matrix = self.matrix.remove_nodes(drop)
        # A fired edge with an evicted endpoint leaves the record: its
        # closure contribution is already baked in (and survives
        # remove_nodes as shortcut edges), and rebuilds are restricted to
        # the live window anyway.
        self.fired_edges = {
            edge for edge in self.fired_edges
            if edge[0] not in drop and edge[1] not in drop
        }
        self.fired_writers = {edge[0] for edge in self.fired_edges}
        self._pending = [
            (t1, t2, read)
            for t1, t2, read in self._pending
            if t1 not in drop and t2 not in drop and read.eid.txn not in drop
        ]

    def prune_pending(self, dead) -> int:
        """Drop pending instances ``dead(t1, t2, read)`` says can never fire.

        ``dead`` must only answer ``True`` for instances whose premise is
        *frozen* false — e.g. RA's one-step ``so ∪ wr`` premise once the
        reading transaction is complete, or CC's causal premise once the
        reader's ancestor cone has no pending transaction.  Returns the
        number of instances dropped.  This is what keeps the monitor's
        pending list O(live window) instead of O(history).
        """
        if not self._pending:
            return 0
        kept = [inst for inst in self._pending if not dead(*inst)]
        dropped = len(self._pending) - len(kept)
        self._pending = kept
        return dropped

    def fork(self) -> "IncrementalSaturation":
        """An independent state to extend for a child history.

        O(n): the matrix rows are copied (word-packed memcpy for ≤ 64
        transactions) and the pending-instance list is copied shallowly
        (instances are immutable tuples).  The original is untouched, so a
        parent node's state can be forked once per child branch.
        """
        dup = object.__new__(IncrementalSaturation)
        dup.axioms = self.axioms
        dup.matrix = self.matrix.copy_mutable()
        dup._pending = list(self._pending)
        dup._drop_unfired = self._drop_unfired
        dup._prior_source = self._prior_source
        dup.fired_edges = set(self.fired_edges)
        dup.fired_writers = set(self.fired_writers)
        return dup

    @property
    def static_only(self) -> bool:
        """All premises static: instances decide eagerly, never queue."""
        return self._drop_unfired

    @property
    def prior_source_only(self) -> bool:
        """Every premise is ``⟨t2, read⟩ ∈ wr ∘ po`` (the RC shape): a new
        read's instances reduce to hash lookups in the reader's prior
        wr-source set."""
        return self._prior_source

    @property
    def pending_instances(self) -> int:
        """Number of instances whose premise has not fired yet."""
        return len(self._pending)

    @property
    def consistent(self) -> bool:
        """O(1) verdict: ``so ∪ wr ∪ forced`` acyclic on the current prefix."""
        return self.matrix.is_acyclic()


def derive_extension_states(
    parent: History,
    child: History,
    kind: "EventType",
    tid: TxnId,
    event: Optional[Event] = None,
    writer: Optional[TxnId] = None,
) -> None:
    """Derive ``child``'s saturation states from ``parent``'s by diffing.

    ``child`` must be ``parent`` extended by exactly one step of kind
    ``kind`` on transaction ``tid`` (``event`` is the appended event for
    non-BEGIN kinds; ``writer`` the wr-source for an external read).  For
    every axiom set with a state cached on the parent, the child gets a
    state reflecting just the delta — shared outright when the step cannot
    change the verdict, forked and minimally advanced otherwise — instead
    of re-deriving every forced edge from scratch per node.

    The one step this cannot express is an **abort of a transaction with
    writes**: retired instances and already-forced edges would have to be
    retracted.  In that case nothing is derived — the child's cache stays
    empty and :func:`satisfies_by_saturation` falls back to the
    :meth:`IncrementalSaturation.from_history` rebuild (the correctness
    escape hatch).
    """
    states = parent.saturation_states()
    if not states:
        return
    if kind is EventType.ABORT and any(
        e.type is EventType.WRITE for e in parent.txns[tid].events
    ):
        return
    child_states = child.saturation_states()
    for axioms, state in states.items():
        child_states[axioms] = _derive_state(state, parent, child, kind, tid, event, writer)


def _derive_state(
    state: IncrementalSaturation,
    parent: History,
    child: History,
    kind: "EventType",
    tid: TxnId,
    event: Optional[Event],
    writer: Optional[TxnId],
) -> IncrementalSaturation:
    """One derived state; shares ``state`` itself whenever the verdict and
    instance set are provably unchanged by the step."""
    if not state.consistent:
        # Monotone: append-extensions never un-close a cycle (aborts of
        # writers take the rebuild path above), so the inconsistent state
        # is shared verbatim with the whole subtree.  Its matrix may lag
        # the node universe; only the O(1) verdict is ever read.
        return state
    if kind is EventType.BEGIN:
        # New sink node: no reads, no writes — no new instances, and no
        # pending premise can fire through a fresh sink's so edge.
        forked = state.fork()
        forked.add_transaction(tid)
        order = child.sessions[tid.session]
        prev = order[-2] if len(order) > 1 else INIT_TXN
        forked.add_base_edge(prev, tid)
        return forked
    if kind is EventType.READ and writer is not None:
        # New wr edge + new instances quantified over the read; the edge
        # can also enable pending so∪wr (RA) / causal (CC) premises, so a
        # full pending re-scan runs against the child.
        forked = state.fork()
        forked.add_base_edge(writer, tid)
        assert event is not None
        for t2 in child.writers_of(event.var):
            if t2 != writer:
                forked.add_instance(writer, t2, event)
        forked.advance(child)
        return forked
    if kind is EventType.WRITE:
        assert event is not None
        if event.var in parent.txns[tid].writes():
            # Overwrite: writers_of and wr are unchanged — no new
            # instances, no new edges, premises see the same relations.
            return state
        # First write of ``var`` by ``tid``: exactly the instances pairing
        # the new writer with every existing read of ``var`` are new.  A
        # write adds no so/wr edge, so pending instances cannot newly
        # fire — only the fresh instances need evaluating.
        forked = None
        for read_eid, t1 in child.wr.items():
            if t1 == tid or child.event(read_eid).var != event.var:
                continue
            read_ev = child.event(read_eid)
            fired = False
            for axiom in state.axioms:
                IncrementalSaturation.premise_evals += 1
                if axiom.premise(child, {}, tid, read_ev):
                    fired = True
                    break
            if fired:
                if forked is None:
                    forked = state.fork()
                forked.force_edge(tid, t1)
            elif not state._drop_unfired:
                if forked is None:
                    forked = state.fork()
                forked.add_instance(t1, tid, read_ev)
        return state if forked is None else forked
    # COMMIT, local READ, write-free ABORT: writes() visibility, wr and so
    # are all unchanged — the state transfers verbatim.
    return state
