"""Polynomial consistency checks for RC, RA and CC by edge saturation.

The premises of the Read Committed, Read Atomic and Causal axioms never
mention the commit order, so the axiom schema

    premise(t2, read) ⇒ ⟨t2, t1⟩ ∈ co

pins down a fixed set of *forced* commit-order edges.  A total order
satisfying the axioms and extending ``so ∪ wr`` exists iff
``so ∪ wr ∪ forced`` is acyclic:

* (⇒) any witnessing ``co`` contains all forced edges, so the union embeds
  into a total order and is acyclic;
* (⇐) if acyclic, any topological extension is a witnessing ``co`` because
  the premises, being co-free, are unaffected by the choice of extension.

This matches the polynomial-time consistency results of Biswas & Enea
[OOPSLA 2019] for these levels and is cross-validated against the
brute-force reference checker in the tests.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from ..core.events import TxnId
from ..core.history import History
from ..core.relations import is_acyclic
from .axioms import Axiom, axiom_instances


def forced_edges(history: History, axioms: Tuple[Axiom, ...]) -> Set[Tuple[TxnId, TxnId]]:
    """All commit-order edges ``(t2, t1)`` forced by co-free axioms."""
    edges: Set[Tuple[TxnId, TxnId]] = set()
    for axiom in axioms:
        if not axiom.co_free:
            raise ValueError(f"axiom {axiom.name!r} is not co-free; saturation does not apply")
    for t1, t2, read in axiom_instances(history):
        for axiom in axioms:
            if axiom.premise(history, {}, t2, read):
                edges.add((t2, t1))
                break
    return edges


def satisfies_by_saturation(history: History, axioms: Tuple[Axiom, ...]) -> bool:
    """Polynomial ``h ⊨ I`` for levels whose axioms are all co-free."""
    if not history.is_so_wr_acyclic():
        return False
    adjacency: Dict[TxnId, Set[TxnId]] = {
        tid: set(succs) for tid, succs in history.so_wr_adjacency().items()
    }
    for src, dst in forced_edges(history, axioms):
        if src == dst:
            return False
        adjacency[src].add(dst)
    return is_acyclic(adjacency)
