"""Polynomial consistency checks for RC, RA and CC by edge saturation.

The premises of the Read Committed, Read Atomic and Causal axioms never
mention the commit order, so the axiom schema

    premise(t2, read) ⇒ ⟨t2, t1⟩ ∈ co

pins down a fixed set of *forced* commit-order edges.  A total order
satisfying the axioms and extending ``so ∪ wr`` exists iff
``so ∪ wr ∪ forced`` is acyclic:

* (⇒) any witnessing ``co`` contains all forced edges, so the union embeds
  into a total order and is acyclic;
* (⇐) if acyclic, any topological extension is a witnessing ``co`` because
  the premises, being co-free, are unaffected by the choice of extension.

This matches the polynomial-time consistency results of Biswas & Enea
[OOPSLA 2019] for these levels and is cross-validated against the
brute-force reference checker in the tests.

Implementation: the check starts from the history's cached
:class:`~repro.core.bitrel.RelationMatrix` (the ``so ∪ wr`` closure, built
once per history), copies it, and feeds forced edges into the copy
**incrementally**.  Since edges are only ever added, the union is cyclic
iff some single addition closes a cycle — which the maintained closure
answers in O(1) — so the check aborts at the first contradictory edge
instead of saturating fully and re-running a DFS cycle search.
"""

from __future__ import annotations

from typing import Iterator, Set, Tuple

from ..core.events import TxnId
from ..core.history import History
from .axioms import Axiom, axiom_instances


def _check_co_free(axioms: Tuple[Axiom, ...]) -> None:
    for axiom in axioms:
        if not axiom.co_free:
            raise ValueError(f"axiom {axiom.name!r} is not co-free; saturation does not apply")


def iter_forced_edges(history: History, axioms: Tuple[Axiom, ...]) -> Iterator[Tuple[TxnId, TxnId]]:
    """Forced commit-order edges ``(t2, t1)``, streamed as they are found.

    Streaming lets :func:`satisfies_by_saturation` stop at the first edge
    that closes a cycle, skipping the remaining quantifier instances.
    """
    _check_co_free(axioms)
    for t1, t2, read in axiom_instances(history):
        for axiom in axioms:
            if axiom.premise(history, {}, t2, read):
                yield t2, t1
                break


def forced_edges(history: History, axioms: Tuple[Axiom, ...]) -> Set[Tuple[TxnId, TxnId]]:
    """All commit-order edges ``(t2, t1)`` forced by co-free axioms."""
    return set(iter_forced_edges(history, axioms))


def satisfies_by_saturation(history: History, axioms: Tuple[Axiom, ...]) -> bool:
    """Polynomial ``h ⊨ I`` for levels whose axioms are all co-free."""
    base = history.causal_matrix()
    if not base.is_acyclic():
        return False
    work = base.copy()
    for src, dst in iter_forced_edges(history, axioms):
        if work.would_close_cycle(src, dst):
            return False
        work.add_edge(src, dst)
    return True
