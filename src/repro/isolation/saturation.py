"""Polynomial consistency checks for RC, RA and CC by edge saturation.

The premises of the Read Committed, Read Atomic and Causal axioms never
mention the commit order, so the axiom schema

    premise(t2, read) ⇒ ⟨t2, t1⟩ ∈ co

pins down a fixed set of *forced* commit-order edges.  A total order
satisfying the axioms and extending ``so ∪ wr`` exists iff
``so ∪ wr ∪ forced`` is acyclic:

* (⇒) any witnessing ``co`` contains all forced edges, so the union embeds
  into a total order and is acyclic;
* (⇐) if acyclic, any topological extension is a witnessing ``co`` because
  the premises, being co-free, are unaffected by the choice of extension.

This matches the polynomial-time consistency results of Biswas & Enea
[OOPSLA 2019] for these levels and is cross-validated against the
brute-force reference checker in the tests.

Implementation: the check starts from the history's cached
:class:`~repro.core.bitrel.RelationMatrix` (the ``so ∪ wr`` closure, built
once per history), copies it, and feeds forced edges into the copy
**incrementally**.  Since edges are only ever added, the union is cyclic
iff some single addition closes a cycle — which the maintained closure
answers in O(1) — so the check aborts at the first contradictory edge
instead of saturating fully and re-running a DFS cycle search.
"""

from __future__ import annotations

from typing import List, Optional, Iterator, Set, Tuple

from ..core.bitrel import RelationMatrix
from ..core.events import INIT_TXN, Event, TxnId
from ..core.history import History
from .axioms import Axiom, axiom_instances


def _check_co_free(axioms: Tuple[Axiom, ...]) -> None:
    for axiom in axioms:
        if not axiom.co_free:
            raise ValueError(f"axiom {axiom.name!r} is not co-free; saturation does not apply")


def iter_forced_edges(history: History, axioms: Tuple[Axiom, ...]) -> Iterator[Tuple[TxnId, TxnId]]:
    """Forced commit-order edges ``(t2, t1)``, streamed as they are found.

    Streaming lets :func:`satisfies_by_saturation` stop at the first edge
    that closes a cycle, skipping the remaining quantifier instances.
    """
    _check_co_free(axioms)
    for t1, t2, read in axiom_instances(history):
        for axiom in axioms:
            if axiom.premise(history, {}, t2, read):
                yield t2, t1
                break


def forced_edges(history: History, axioms: Tuple[Axiom, ...]) -> Set[Tuple[TxnId, TxnId]]:
    """All commit-order edges ``(t2, t1)`` forced by co-free axioms."""
    return set(iter_forced_edges(history, axioms))


def satisfies_by_saturation(history: History, axioms: Tuple[Axiom, ...]) -> bool:
    """Polynomial ``h ⊨ I`` for levels whose axioms are all co-free."""
    base = history.causal_matrix()
    if not base.is_acyclic():
        return False
    work = base.copy()
    for src, dst in iter_forced_edges(history, axioms):
        if work.would_close_cycle(src, dst):
            return False
        work.add_edge(src, dst)
    return True


class IncrementalSaturation:
    """Online saturation state for one co-free-axiom level (RC, RA or CC).

    Where :func:`satisfies_by_saturation` re-derives every forced edge from
    scratch per history, this class maintains ``so ∪ wr ∪ forced`` across a
    *growing* history: the caller feeds transactions, base (``so``/``wr``)
    edges and freshly quantifier-expanded axiom instances as events arrive,
    and :meth:`advance` evaluates only the instances whose premise has not
    fired yet.  Correctness rests on the premises being **monotone** in the
    history prefix: they mention only ``po``/``so``/``wr`` (co-free), all of
    which grow-only, so a premise that is false now can only *become* true
    later — an instance therefore needs re-checking until it fires, never
    after.  The verdict is O(1): the maintained closure's acyclicity flag.

    The one non-monotone step is an **abort**: an aborted transaction's
    writes vanish (§2.2.1), retroactively deleting every instance it was the
    writer of — and possibly forced edges already baked into the closure,
    which cannot be removed.  The caller must detect that case and rebuild
    via :meth:`from_history` (see ``OnlineChecker``); aborts of write-free
    transactions need no rebuild.
    """

    __slots__ = ("axioms", "matrix", "_pending", "_drop_unfired")

    def __init__(self, axioms: Tuple[Axiom, ...], matrix: Optional[RelationMatrix] = None):
        _check_co_free(axioms)
        self.axioms = axioms
        #: The maintained ``so ∪ wr ∪ forced`` relation, closure kept by add_edge.
        self.matrix = RelationMatrix((INIT_TXN,)) if matrix is None else matrix
        self._pending: List[Tuple[TxnId, TxnId, Event]] = []
        #: With only static premises (RC), an unfired instance can never
        #: fire later — evaluate once and drop instead of re-scanning.
        self._drop_unfired = all(axiom.static_premise for axiom in axioms)

    @classmethod
    def from_history(cls, history: History, axioms: Tuple[Axiom, ...]) -> "IncrementalSaturation":
        """Batch-build the state for an existing history (abort rebuilds).

        Starts from a copy of the history's cached ``so ∪ wr`` closure and
        replays the full quantifier expansion once.
        """
        state = cls(axioms, matrix=history.causal_matrix().copy())
        state._pending = list(axiom_instances(history))
        state.advance(history)
        return state

    def add_transaction(self, tid: TxnId) -> None:
        """Grow the node universe by one (isolated) transaction."""
        self.matrix.add_node(tid)

    def add_base_edge(self, src: TxnId, dst: TxnId) -> None:
        """Record a new ``so`` or ``wr`` edge."""
        if src != dst:
            self.matrix.add_edge(src, dst)

    def add_instance(self, t1: TxnId, t2: TxnId, read: Event) -> None:
        """Queue a new axiom instance ``(t1, t2, read)`` for evaluation."""
        self._pending.append((t1, t2, read))

    def advance(self, history: History) -> None:
        """Evaluate pending premises against the current prefix history.

        Instances whose premise holds contribute their forced edge ``⟨t2,
        t1⟩`` to the maintained closure and are retired; the rest stay
        pending.  One pass suffices per fed event: co-free premises cannot
        be enabled by the forced edges this pass adds.

        Once the closure is cyclic the pass is skipped entirely — more
        edges cannot un-close a cycle, and the only event that can restore
        consistency (an abort retracting a writer) goes through a
        :meth:`from_history` rebuild anyway.  This mirrors the batch
        checker's first-contradiction early exit.
        """
        if not self.matrix.is_acyclic():
            return
        still: List[Tuple[TxnId, TxnId, Event]] = []
        for t1, t2, read in self._pending:
            fired = False
            for axiom in self.axioms:
                if axiom.premise(history, {}, t2, read):
                    fired = True
                    break
            if fired:
                self.matrix.add_edge(t2, t1)
            elif not self._drop_unfired:
                still.append((t1, t2, read))
        self._pending = still

    @property
    def pending_instances(self) -> int:
        """Number of instances whose premise has not fired yet."""
        return len(self._pending)

    @property
    def consistent(self) -> bool:
        """O(1) verdict: ``so ∪ wr ∪ forced`` acyclic on the current prefix."""
        return self.matrix.is_acyclic()
