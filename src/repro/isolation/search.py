"""Generic commit-order search for levels with at-commit-decidable axioms.

PSI and bounded staleness do not fit the two specialised searches: PSI's
Conflict axiom quantifies over *any* earlier conflicting writer (not just
interval overlap, so the SI timeline does not apply without Prefix), and
bounded staleness counts intervening writers (so the "last committed
writer" frontier of the SER search is too coarse).  Both, however, share a
useful shape:

* their co-free axioms (Causal for PSI, Read Committed for BS-k) force
  commit-order edges by saturation exactly as in
  :mod:`repro.isolation.saturation`;
* their remaining, co-dependent constraint on a reader ``t3`` is **fully
  decided the moment t3 commits** — it only mentions transactions ordered
  strictly before ``t3`` in ``co``.

So the search here builds the total commit order left to right (as the SER
checker does), prunes a commit the moment its at-commit predicate fails,
and memoizes failing states on ``(committed set, committed-writer
sequence)`` — the writer sequence is exactly the information future
at-commit predicates may consult, so the memo key is sound.

The search runs on the dense indexing of the history's cached
:class:`~repro.core.bitrel.RelationMatrix`; enabledness is one
word-parallel mask test against the ``so ∪ wr`` closure, widened with the
saturation-forced direct edges (direct predecessors suffice: every
reachable committed set is downward-closed, so ancestor- and
direct-predecessor-completeness coincide).
"""

from __future__ import annotations

from typing import Callable, Set, Tuple

from ..core.events import INIT_TXN
from ..core.history import History
from .axioms import AXIOMS_BY_LEVEL, Axiom
from .saturation import forced_edges, satisfies_by_saturation
from .summaries import DenseSummaries, dense_summaries

#: An at-commit predicate: ``check(i, writer_seq)`` is True when committing
#: transaction index ``i`` right after the committed-writer sequence
#: ``writer_seq`` violates no axiom instance whose reader is ``i``.
CommitCheck = Callable[[int, Tuple[int, ...]], bool]


def _commit_order_search(
    history: History,
    co_free_axioms: Tuple[Axiom, ...],
    make_check: Callable[[DenseSummaries], CommitCheck],
) -> bool:
    """Is there a total co extending ``so ∪ wr`` ∪ forced edges passing ``check``?"""
    # The co-free part first: forced edges + acyclicity, served from the
    # history's cached saturation state.  Doubles as the base-acyclic gate.
    if not satisfies_by_saturation(history, co_free_axioms):
        return False

    matrix = history.causal_matrix()
    n = len(matrix)
    summaries = dense_summaries(history, matrix)
    writes_of = summaries.writes_of

    preds = list(summaries.ancestors)
    for t2, t1 in forced_edges(history, co_free_axioms):
        preds[matrix.index_of(t1)] |= 1 << matrix.index_of(t2)

    check = make_check(summaries)
    full = (1 << n) - 1
    failed: Set[Tuple[int, Tuple[int, ...]]] = set()

    def search(committed: int, writer_seq: Tuple[int, ...]) -> bool:
        if committed == full:
            return True
        state = (committed, writer_seq)
        if state in failed:
            return False
        for i in range(n):
            if committed >> i & 1 or preds[i] & ~committed:
                continue
            if not check(i, writer_seq):
                continue
            next_seq = writer_seq + (i,) if writes_of[i] else writer_seq
            if search(committed | (1 << i), next_seq):
                return True
        failed.add(state)
        return False

    # init is an ancestor of everything, so it commits first; it writes the
    # initial value of every variable and heads the writer sequence.
    init = matrix.index_of(INIT_TXN)
    initial_seq = (init,) if writes_of[init] else ()
    return search(1 << init, initial_seq)


def satisfies_psi(history: History) -> bool:
    """Whether ``history`` satisfies Parallel Snapshot Isolation.

    PSI = Causal ∧ Conflict [Sovran et al., SOSP 2011; Cerone & Gotsman,
    J.ACM 2018]: the SI axioms with Prefix weakened to Causal, so sibling
    snapshots may diverge (the long fork is allowed) but write-write
    conflicting transactions still order their observations (lost updates
    stay forbidden).  The Causal half saturates; the Conflict half is the
    at-commit predicate:

    for reader ``t3`` with an external read ``x ←wr t1``, every x-writer
    ``t2`` committed at or before the *latest* committed write-conflicting
    ``t4`` must satisfy ``co[t2] < co[t1]`` — i.e. no x-writer may sit
    between the read's source and the latest conflicting writer.
    """
    return _commit_order_search(history, AXIOMS_BY_LEVEL["CC"], _make_psi_check)


def _make_psi_check(summaries: DenseSummaries) -> CommitCheck:
    reads_of = summaries.reads_of
    write_mask = summaries.write_mask

    def check(i: int, writer_seq: Tuple[int, ...]) -> bool:
        mask = write_mask[i]
        if not mask or not reads_of[i]:
            return True
        conflict_pos = -1
        for pos in range(len(writer_seq) - 1, -1, -1):
            if write_mask[writer_seq[pos]] & mask:
                conflict_pos = pos
                break
        if conflict_pos < 0:
            return True
        for var, src in reads_of[i]:
            bit = 1 << var
            # src writes var and is a co-ancestor of i, hence in writer_seq.
            src_pos = writer_seq.index(src)
            for pos in range(conflict_pos, src_pos, -1):
                if write_mask[writer_seq[pos]] & bit:
                    return False
        return True

    return check


def satisfies_bounded_staleness(history: History, k: int = 3) -> bool:
    """Whether ``history`` satisfies bounded staleness with bound ``k``.

    BS-k strengthens Read Committed with a *counting* constraint: an
    external read may be stale, but fewer than ``k`` other writers of the
    variable may commit between the read's source and the reader
    (k-staleness in the Pileus/Azure sense, counted in versions rather
    than seconds).  The RC axiom saturates; the count is the at-commit
    predicate — both the source and every intervening writer are committed
    when the reader commits, so the count is exact at that point.
    """
    if k < 1:
        raise ValueError(f"staleness bound must be >= 1, got {k}")
    return _commit_order_search(
        history, AXIOMS_BY_LEVEL["RC"], lambda summaries: _make_bs_check(summaries, k)
    )


def _make_bs_check(summaries: DenseSummaries, k: int) -> CommitCheck:
    reads_of = summaries.reads_of
    write_mask = summaries.write_mask

    def check(i: int, writer_seq: Tuple[int, ...]) -> bool:
        for var, src in reads_of[i]:
            bit = 1 << var
            src_pos = writer_seq.index(src)
            stale = 0
            for pos in range(src_pos + 1, len(writer_seq)):
                if write_mask[writer_seq[pos]] & bit:
                    stale += 1
                    if stale >= k:
                        return False
        return True

    return check
