"""Snapshot Isolation checking via the start/commit interval semantics.

A history satisfies SI (the Prefix ∧ Conflict axioms of Fig. 2(b,c)) iff its
transactions can be assigned start and commit points on a single timeline
such that

* a transaction starts only after all its ``so ∪ wr`` predecessors have
  committed (session guarantees / co extends so ∪ wr);
* every external read of ``x`` reads from the **last writer of x committed
  before the reader's start** (the snapshot; this captures Prefix);
* two transactions that both write some variable have **disjoint**
  start–commit intervals (the first-committer-wins rule; this captures
  Conflict).

This is the classical timestamp characterisation of (strong session) SI
[Berenson et al. 1995; Cerone & Gotsman, J.ACM 2018], and is cross-validated
against the brute-force axiomatic checker in the tests.

The search interleaves start/commit actions and memoizes failing states on
``(started, committed, last-writer map)`` — polynomial for a fixed number of
sessions by the same frontier argument as the SER checker.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from ..core.events import INIT_TXN, TxnId
from ..core.history import History


def satisfies_si(history: History) -> bool:
    """Whether ``history`` satisfies Snapshot Isolation."""
    if not history.is_so_wr_acyclic():
        return False

    txns = list(history.txns)
    predecessors: Dict[TxnId, Set[TxnId]] = {tid: set() for tid in txns}
    for src, succs in history.so_wr_adjacency().items():
        for dst in succs:
            predecessors[dst].add(src)

    reads_of: Dict[TxnId, List[Tuple[str, TxnId]]] = {}
    writes_of: Dict[TxnId, Tuple[str, ...]] = {}
    variables: Set[str] = set()
    for tid, log in history.txns.items():
        reads_of[tid] = [
            (event.var, history.wr[event.eid])
            for event in log.reads()
            if event.eid in history.wr
        ]
        writes_of[tid] = tuple(sorted(log.writes()))
        variables.update(writes_of[tid])
        variables.update(var for var, _ in reads_of[tid])
    var_order = sorted(variables)
    var_index = {var: i for i, var in enumerate(var_order)}

    all_txns: FrozenSet[TxnId] = frozenset(txns)
    State = Tuple[FrozenSet[TxnId], FrozenSet[TxnId], Tuple[TxnId, ...]]
    failed: Set[State] = set()

    def search(started: FrozenSet[TxnId], committed: FrozenSet[TxnId], last_writer: Tuple[TxnId, ...]) -> bool:
        if committed == all_txns:
            return True
        state = (started, committed, last_writer)
        if state in failed:
            return False
        active = started - committed
        # Commit an active transaction.
        for tid in active:
            if writes_of[tid]:
                updated = list(last_writer)
                for var in writes_of[tid]:
                    updated[var_index[var]] = tid
                next_writer = tuple(updated)
            else:
                next_writer = last_writer
            if search(started, committed | {tid}, next_writer):
                return True
        # Start a new transaction whose causal predecessors have committed.
        for tid in txns:
            if tid in started or not predecessors[tid] <= committed:
                continue
            # Snapshot reads: every external read sees the snapshot at start.
            if any(last_writer[var_index[var]] != src for var, src in reads_of[tid]):
                continue
            # First-committer-wins: no overlapping writer of a common variable.
            if writes_of[tid]:
                mine = set(writes_of[tid])
                if any(mine.intersection(writes_of[other]) for other in active):
                    continue
            if search(started | {tid}, committed, last_writer):
                return True
        failed.add(state)
        return False

    initial_writer = tuple(INIT_TXN for _ in var_order)
    return search(frozenset({INIT_TXN}), frozenset({INIT_TXN}), initial_writer)
