"""Snapshot Isolation and Prefix Consistency via interval semantics.

A history satisfies SI (the Prefix ∧ Conflict axioms of Fig. 2(b,c)) iff its
transactions can be assigned start and commit points on a single timeline
such that

* a transaction starts only after all its ``so ∪ wr`` predecessors have
  committed (session guarantees / co extends so ∪ wr);
* every external read of ``x`` reads from the **last writer of x committed
  before the reader's start** (the snapshot; this captures Prefix);
* two transactions that both write some variable have **disjoint**
  start–commit intervals (the first-committer-wins rule; this captures
  Conflict).

This is the classical timestamp characterisation of (strong session) SI
[Berenson et al. 1995; Cerone & Gotsman, J.ACM 2018], and is cross-validated
against the brute-force axiomatic checker in the tests.

**Prefix Consistency** (PC) is exactly SI minus Conflict — each transaction
still reads a prefix-closed snapshot of the commit order, but conflicting
writers may overlap (lost updates return; the long fork stays forbidden).
Dropping the first-committer-wins rule from the same search decides it:
soundness in both directions follows because the commit points of any
interval assignment form a witnessing ``co`` for Prefix, and conversely a
``co`` satisfying Prefix yields an assignment by starting each transaction
just after its latest ``co*∘(wr ∪ so)`` predecessor commits.

The search interleaves start/commit actions and memoizes failing states on
``(started, committed, last-writer map)`` — polynomial for a fixed number of
sessions by the same frontier argument as the SER checker.

Like the SER checker, the search runs on the dense indexing of the
history's cached :class:`~repro.core.bitrel.RelationMatrix`: ``started``
and ``committed`` are int bitmasks, start-eligibility is one word-parallel
``ancestors_mask(t) & ~committed`` test against the maintained closure, and
first-committer-wins is a write-footprint bitmask intersection over the
active set.  No per-check adjacency or predecessor map is rebuilt.
"""

from __future__ import annotations

from typing import Set, Tuple

from ..core.bitrel import iter_bits
from ..core.events import INIT_TXN
from ..core.history import History
from .summaries import dense_summaries


def satisfies_si(history: History) -> bool:
    """Whether ``history`` satisfies Snapshot Isolation.

    Runs on ``history.causal_matrix()`` — callers that already maintain
    the ``so ∪ wr`` closure (the online checker) seed it via
    ``History.adopt_causal_matrix`` so no from-scratch build happens here.
    """
    return _interval_search(history, first_committer_wins=True)


def satisfies_pc(history: History) -> bool:
    """Whether ``history`` satisfies Prefix Consistency (SI minus Conflict)."""
    return _interval_search(history, first_committer_wins=False)


def _interval_search(history: History, first_committer_wins: bool) -> bool:
    matrix = history.causal_matrix()
    if not matrix.is_acyclic():
        return False

    n = len(matrix)
    ancestors, reads_of, writes_of, write_mask, num_vars = dense_summaries(history, matrix)

    full = (1 << n) - 1
    failed: Set[Tuple[int, int, Tuple[int, ...]]] = set()

    def search(started: int, committed: int, last_writer: Tuple[int, ...]) -> bool:
        if committed == full:
            return True
        state = (started, committed, last_writer)
        if state in failed:
            return False
        active = started & ~committed
        # Commit an active transaction.
        for i in iter_bits(active):
            if writes_of[i]:
                updated = list(last_writer)
                for var in writes_of[i]:
                    updated[var] = i
                next_writer = tuple(updated)
            else:
                next_writer = last_writer
            if search(started, committed | (1 << i), next_writer):
                return True
        # Start a new transaction whose causal predecessors have committed.
        if first_committer_wins:
            active_writes = 0
            for other in iter_bits(active):
                active_writes |= write_mask[other]
        for i in range(n):
            if started >> i & 1 or ancestors[i] & ~committed:
                continue
            # Snapshot reads: every external read sees the snapshot at start.
            if any(last_writer[var] != src for var, src in reads_of[i]):
                continue
            # First-committer-wins: no overlapping writer of a common
            # variable (SI only; PC lets conflicting writers overlap).
            if first_committer_wins and write_mask[i] & active_writes:
                continue
            if search(started | (1 << i), committed, last_writer):
                return True
        failed.add(state)
        return False

    init = matrix.index_of(INIT_TXN)
    initial_writer = tuple(init for _ in range(num_vars))
    return search(1 << init, 1 << init, initial_writer)
