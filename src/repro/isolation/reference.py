"""Brute-force reference consistency checker.

Implements Def. 2.2 literally: a history satisfies an isolation level iff
*some* strict total order ``co`` extending ``so ∪ wr`` satisfies the level's
axioms.  Enumerates every topological extension — exponential, so this is
only used on small histories, as the ground truth that the efficient
checkers (:mod:`repro.isolation.saturation`,
:mod:`repro.isolation.serializability`, :mod:`repro.isolation.snapshot`) are
validated against in the test suite.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..core.events import TxnId
from ..core.history import History
from ..core.relations import topological_orders
from .axioms import AXIOMS_BY_LEVEL, Axiom, axioms_hold


def witness_commit_order(history: History, axioms: Tuple[Axiom, ...]) -> Optional[Tuple[TxnId, ...]]:
    """A total commit order satisfying ``axioms``, or None if none exists."""
    if not history.is_so_wr_acyclic():
        return None
    adjacency = history.so_wr_adjacency()
    for order in topological_orders(adjacency):
        if axioms_hold(history, order, axioms):
            return order
    return None


def satisfies_reference(history: History, level_name: str) -> bool:
    """Ground-truth consistency check by exhaustive commit-order search."""
    axioms = AXIOMS_BY_LEVEL[level_name.upper()]
    if not axioms:
        return history.is_so_wr_acyclic()
    return witness_commit_order(history, axioms) is not None
