"""Brute-force reference consistency checker.

Implements Def. 2.2 literally: a history satisfies an isolation level iff
*some* strict total order ``co`` extending ``so ∪ wr`` satisfies the level's
axioms.  Enumerates every topological extension — exponential, so this is
only used on small histories, as the ground truth that the efficient
checkers (:mod:`repro.isolation.saturation`,
:mod:`repro.isolation.serializability`, :mod:`repro.isolation.snapshot`) are
validated against in the test suite.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..core.events import TxnId
from ..core.history import History
from ..core.relations import topological_orders
from .axioms import AXIOMS_BY_LEVEL, ORDER_PREDICATES, Axiom, OrderPredicate, axioms_hold


def witness_commit_order(
    history: History,
    axioms: Tuple[Axiom, ...],
    order_predicate: Optional[OrderPredicate] = None,
) -> Optional[Tuple[TxnId, ...]]:
    """A total commit order satisfying ``axioms``, or None if none exists.

    ``order_predicate`` adds a whole-order constraint (bounded staleness)
    that each candidate order must also pass.
    """
    if not history.is_so_wr_acyclic():
        return None
    adjacency = history.so_wr_adjacency()
    for order in topological_orders(adjacency):
        if not axioms_hold(history, order, axioms):
            continue
        if order_predicate is not None:
            co = {tid: i for i, tid in enumerate(order)}
            if not order_predicate(history, co):
                continue
        return order
    return None


def satisfies_reference(history: History, level_name: str) -> bool:
    """Ground-truth consistency check by exhaustive commit-order search."""
    name = level_name.upper()
    axioms = AXIOMS_BY_LEVEL[name]
    order_predicate = ORDER_PREDICATES.get(name)
    if not axioms and order_predicate is None:
        return history.is_so_wr_acyclic()
    return witness_commit_order(history, axioms, order_predicate) is not None
