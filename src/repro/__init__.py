"""repro — stateless model checking of database-backed applications under
weak transaction isolation levels, with optimal dynamic partial order
reduction.

Reproduction of Bouajjani, Enea & Román-Calvo, *Dynamic Partial Order
Reduction for Checking Correctness against Transaction Isolation Levels*,
PLDI 2023 (PACM PL 7(PLDI):129).

Quickstart::

    from repro import ProgramBuilder, ModelChecker, L

    p = ProgramBuilder("lost-update")
    for who in ("alice", "bob"):
        t = p.session(who).transaction("incr")
        t.read("a", "counter")
        t.write("counter", L("a") + 1)

    result = ModelChecker(p.build(), isolation="CC").run()
    print(result.summary())
"""

from .checking import (
    Assertion,
    CheckResult,
    ModelChecker,
    Outcome,
    Violation,
    assertion,
    check_program,
    local_equals,
    local_in,
)
from .core import History, HistoryBuilder, HistorySet, format_history
from .dpor import ExplorationResult, ExplorationStats, dfs_baseline, explore_ce, explore_ce_star
from .isolation import IsolationLevel, get_level, registered_levels, satisfies_reference
from .lang import (
    L,
    Program,
    ProgramBuilder,
    Transaction,
    abort,
    assign,
    concat,
    contains,
    fn,
    if_,
    read,
    set_add,
    set_remove,
    write,
)
from .semantics import enumerate_histories

__version__ = "1.0.0"

__all__ = [
    "Assertion",
    "CheckResult",
    "ModelChecker",
    "Outcome",
    "Violation",
    "assertion",
    "check_program",
    "local_equals",
    "local_in",
    "History",
    "HistoryBuilder",
    "HistorySet",
    "format_history",
    "ExplorationResult",
    "ExplorationStats",
    "dfs_baseline",
    "explore_ce",
    "explore_ce_star",
    "IsolationLevel",
    "get_level",
    "registered_levels",
    "satisfies_reference",
    "L",
    "Program",
    "ProgramBuilder",
    "Transaction",
    "abort",
    "assign",
    "concat",
    "contains",
    "fn",
    "if_",
    "read",
    "set_add",
    "set_remove",
    "write",
    "enumerate_histories",
    "__version__",
]

from .lang import ParseError, parse_program, parse_transaction

__all__ += ["ParseError", "parse_program", "parse_transaction"]

from .checking import LevelComparison, compare_levels
from .core import history_to_dot

__all__ += ["LevelComparison", "compare_levels", "history_to_dot"]

from .checking import OnlineChecker, OnlineStep, check_trace
from .core import OrderedHistory
from .trace import Trace, TraceEvent, TraceFormatError, TraceHeader

__all__ += [
    "OnlineChecker",
    "OnlineStep",
    "check_trace",
    "OrderedHistory",
    "Trace",
    "TraceEvent",
    "TraceFormatError",
    "TraceHeader",
]

from .apps import WorkloadSpec, generate_program, resolve_workload
from .isolation import (
    LevelSpec,
    lattice_edges,
    level_spec,
    level_specs,
    register_spec,
    satisfies_bounded_staleness,
    satisfies_pc,
    satisfies_psi,
)

__all__ += [
    "WorkloadSpec",
    "generate_program",
    "resolve_workload",
    "LevelSpec",
    "lattice_edges",
    "level_spec",
    "level_specs",
    "register_spec",
    "satisfies_bounded_staleness",
    "satisfies_pc",
    "satisfies_psi",
]
