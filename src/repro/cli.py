"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``levels``
    List every registered isolation level (the classical five plus prefix
    consistency, session guarantees, PSI and bounded staleness) with its
    axioms, monitor eviction rule and position in the lattice.

``check FILE``
    Parse a program in the paper's concrete syntax and enumerate its
    histories under one isolation level (any name ``repro levels``
    prints), printing each history (or just the count) and exploration
    statistics.

``compare FILE``
    Run the program up the RC → RA → CC → SI → SER ladder and report
    history counts per level (the anomaly-visibility profile).

``bench``
    Run a small Fig. 14-style comparison of all seven algorithm
    configurations on the built-in application suite.

``bench diff BASELINE CURRENT``
    Compare two ``BENCH_*.json`` benchmark result files (or two result
    directories, matched by filename): per-case speedup, geometric mean,
    and a non-zero exit when any case regresses below the threshold.

``record [FILE | --app NAME]``
    Model-check a program (from a file, a built-in application workload,
    a generator preset like ``gen-hotspot``, or an inline
    ``gen:knob=value,...`` workload spec) and dump one of its histories
    as a portable JSONL trace (see ``docs/trace_format.md``).

``replay TRACE``
    Load a recorded trace and decide which isolation levels it satisfies,
    either in batch or — with ``--online`` — event by event with the
    incremental checker, reporting where each level is first violated.

``monitor (--stdin | --port PORT)``
    Long-running bounded-memory monitor: ingest JSONL trace events from
    stdin or one TCP connection, decide a single isolation level
    continuously with garbage-collected checker state
    (:mod:`repro.monitor`), print periodic stats lines, and exit 1 when
    the stream violated the level.

``difftest``
    Run workloads on the in-process threaded MVCC engine
    (:mod:`repro.engine`) across scheduler seeds, record each commit log
    as a trace, replay it through the online checker, and report each
    engine configuration's *claimed* vs. *detected* isolation level.
    Exits 1 when any config fails to uphold its claim (which is the
    expected outcome for the seeded-bug configs).

Examples::

    python -m repro levels --verbose
    python -m repro check program.txn --isolation CC --show-histories
    python -m repro check program.txn --isolation PSI
    python -m repro bench --apps gen:keys=4,skew=2.0 --programs 2
    python -m repro record --app gen-hotspot --isolation CC
    python -m repro compare program.txn
    python -m repro bench --sessions 2 --txns 2 --programs 2
    python -m repro bench diff benchmarks/baseline benchmarks/results
    python -m repro record program.txn --isolation CC --out run.trace.jsonl
    python -m repro replay run.trace.jsonl --online
    python -m repro record --app twitter | python -m repro monitor --stdin --isolation RC
    python -m repro monitor --port 7007 --isolation RC --stale assume-fresh --stats-every 100000
    python -m repro difftest --config serializable --app tpcc --seeds 20
    python -m repro difftest --config no_read_locks --out traces/
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .bench.experiments import fig14
from .bench.reporting import render_fig14
from .checking.checker import ModelChecker
from .core.canonical import format_history
from .core.dot import history_to_dot
from .lang.parser import ParseError, parse_program


def _read_program(path: str):
    try:
        with open(path) as handle:
            text = handle.read()
    except OSError as err:
        raise SystemExit(f"error: cannot read {path}: {err}")
    try:
        return parse_program(text, name=path)
    except ParseError as err:
        raise SystemExit(f"error: {path}: {err}")


def _cmd_check(args: argparse.Namespace) -> int:
    from .dpor.pool import PoolUnavailableError

    program = _read_program(args.file)
    checker = ModelChecker(
        program, isolation=args.isolation, method=args.method, workers=args.workers
    )
    shown = 0
    try:
        result = checker.run(
            timeout=args.timeout, keep_outcomes=bool(args.show_histories or args.dot)
        )
    except PoolUnavailableError as err:
        # --workers > 1 on a platform with no usable pool: fail loudly with
        # the documented fallback instead of hanging or silently serialising.
        raise SystemExit(f"error: {err}")
    print(result.summary())
    stats = result.stats
    print(
        f"  explore calls: {stats.explore_calls}, end states: {stats.end_states}, "
        f"swaps: {stats.swaps_applied}/{stats.swap_candidates}, "
        f"peak work-stack: {stats.peak_stack}"
    )
    if result.outcomes:
        for index, outcome in enumerate(result.outcomes):
            if args.show_histories:
                print(f"\nhistory #{index}:")
                print(format_history(outcome.history, indent="  "))
            if args.dot:
                path = f"{args.dot}-{index}.dot"
                with open(path, "w") as handle:
                    handle.write(history_to_dot(outcome.history, title=f"history {index}"))
                shown += 1
        if args.dot:
            print(f"\nwrote {shown} DOT files to {args.dot}-*.dot")
    return 1 if result.timed_out else 0


def _cmd_compare(args: argparse.Namespace) -> int:
    program = _read_program(args.file)
    from .checking.report import compare_levels

    comparison = compare_levels(program, assertions=[], timeout=args.timeout)
    rows = comparison.verdict_table()
    from .bench.reporting import format_table

    print(f"{program.name}: histories per isolation level")
    print(format_table(["isolation", "histories", "verdict", "time (s)"], rows))
    counts = [r.history_count for r in comparison.results.values()]
    if counts and counts[0] > counts[-1]:
        print(
            f"\n{counts[0] - counts[-1]} behaviour(s) of the weakest level are "
            f"anomalies w.r.t. the strongest."
        )
    return 0


def _cmd_record(args: argparse.Namespace) -> int:
    from .trace.format import Trace

    if (args.file is None) == (args.app is None):
        raise SystemExit("error: record needs exactly one of FILE or --app NAME")
    if args.app is not None:
        from .apps.workloads import record_workload_trace

        try:
            trace = record_workload_trace(
                args.app,
                sessions=args.sessions,
                txns_per_session=args.txns,
                seed=args.seed,
                isolation=args.isolation,
                index=args.index,
                timeout=args.timeout,
            )
        except KeyError as err:
            raise SystemExit(f"error: {err.args[0]}")
        except ValueError as err:
            raise SystemExit(f"error: {err}")
    else:
        program = _read_program(args.file)
        result = ModelChecker(program, isolation=args.isolation).run(
            timeout=args.timeout, keep_outcomes=args.index + 1
        )
        outcomes = result.outcomes or []
        if args.index >= len(outcomes):
            raise SystemExit(
                f"error: {program.name} has only {len(outcomes)} histories under "
                f"{args.isolation}; cannot record index {args.index}"
            )
        trace = Trace.from_history(
            outcomes[args.index].history,
            name=f"{program.name}-{args.isolation}-{args.index}",
            meta={"program": program.name, "isolation": args.isolation, "history_index": args.index},
        )
    if args.out == "-":
        sys.stdout.write(trace.dumps())
    else:
        trace.dump(args.out)
        print(f"wrote {len(trace)} events to {args.out} ({trace.header.name})")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from .checking.online import DEFAULT_LEVELS, OnlineChecker
    from .isolation.base import get_level
    from .trace.format import Trace, TraceFormatError

    try:
        if args.trace == "-":
            trace = Trace.load(sys.stdin)
        else:
            trace = Trace.load(args.trace)
    except OSError as err:
        raise SystemExit(f"error: cannot read {args.trace}: {err}")
    except TraceFormatError as err:
        raise SystemExit(f"error: {args.trace}: {err}")

    levels = list(DEFAULT_LEVELS) if args.isolation.lower() == "all" else [args.isolation]
    try:
        levels = [get_level(name).name for name in levels]
    except KeyError as err:
        raise SystemExit(f"error: {err.args[0]}")

    print(f"{trace.header.name}: {len(trace)} events, variables {list(trace.header.variables)}")
    try:
        if args.online:
            try:
                checker = OnlineChecker.from_trace(trace, levels=levels)
            except ValueError as err:
                raise SystemExit(f"error: {err}")
            checker.replay(trace)
            verdicts = checker.verdicts
            for name in levels:
                if verdicts[name]:
                    print(f"  {name:4s}: consistent")
                else:
                    step = checker.first_violation(name)
                    where = f"event #{step.index} ({_describe_trace_event(step.event)})"
                    print(f"  {name:4s}: VIOLATION first observed at {where}")
        else:
            history = trace.to_history(strict=False)
            verdicts = {name: get_level(name).satisfies(history) for name in levels}
            for name in levels:
                verdict = "consistent" if verdicts[name] else "VIOLATION"
                print(f"  {name:4s}: {verdict}")
    except TraceFormatError as err:
        raise SystemExit(f"error: {args.trace}: {err}")
    return 0 if all(verdicts.values()) else 1


def _cmd_monitor(args: argparse.Namespace) -> int:
    from .monitor import MonitorConfig, MonitorStaleReadError, monitor_stream, serve
    from .trace.format import TraceFormatError

    if (args.port is None) == (not args.stdin):
        raise SystemExit("error: monitor needs exactly one of --stdin or --port PORT")
    try:
        config = MonitorConfig(
            isolation=args.isolation,
            window=args.window,
            gc_every=args.gc_every,
            evict_batch=args.evict_batch,
            mode=args.stale,
        )
    except ValueError as err:
        raise SystemExit(f"error: {err}")
    try:
        if args.stdin:
            report = monitor_stream(
                sys.stdin, config, shards=args.shards, stats_every=args.stats_every
            )
        else:
            report = serve(
                args.port, config, shards=args.shards, stats_every=args.stats_every
            )
    except MonitorStaleReadError as err:
        raise SystemExit(f"error: {err}")
    except TraceFormatError as err:
        raise SystemExit(f"error: {err}")
    stats = report.stats
    print(
        f"{config.isolation}: {'consistent' if report.ok else 'VIOLATION'} "
        f"after {stats.events} events "
        f"(live window {stats.live}, peak {report.peak_live}, "
        f"{stats.evicted} evicted over {stats.collections} collections)"
    )
    if report.first_violation is not None:
        step = report.first_violation
        print(
            f"  first violated at event #{step.index} "
            f"({_describe_trace_event(step.event)})"
        )
    return report.exit_code


def _describe_trace_event(event) -> str:
    core = f"{event.op} {event.session}/{event.txn}"
    if event.var is not None:
        core += f" {event.var}"
    if event.source is not None:
        core += f" <- {event.source[0]}/{event.source[1]}"
    return core


def _cmd_difftest(args: argparse.Namespace) -> int:
    import os

    from .engine.harness import run_difftest
    from .engine.locks import EngineError

    on_run = None
    if args.out is not None:
        os.makedirs(args.out, exist_ok=True)

        def on_run(result):
            run = result.run
            safe = run.trace.header.name.replace("/", "_").replace(":", "_")
            path = os.path.join(args.out, f"{safe}.trace.jsonl")
            run.trace.dump(path)
            status = "ok" if result.claim_holds else "VIOLATES CLAIM"
            print(f"wrote {path} ({len(run.trace)} events, {status})")

    configs = args.config or None
    workloads = args.app or None
    seeds = [args.seed] if args.seed is not None else range(args.seeds)
    try:
        report = run_difftest(
            configs=configs,
            workloads=workloads,
            seeds=seeds,
            sessions=args.threads,
            txns_per_session=args.txns,
            on_run=on_run,
        )
    except (EngineError, KeyError) as err:
        raise SystemExit(f"error: {err.args[0] if err.args else err}")
    print(report.render())
    if report.liars:
        print(f"\n{len(report.liars)} config(s) failed to uphold their claimed level.")
        return 1
    print("\nall configs upheld their claimed isolation levels.")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.apps:
        from .apps.workloads import resolve_workload

        try:
            for app in args.apps:
                resolve_workload(app)  # fail fast with the full choice list
        except KeyError as err:
            raise SystemExit(f"error: {err.args[0]}")
    result = fig14(
        sessions=args.sessions,
        txns_per_session=args.txns,
        programs_per_app=args.programs,
        timeout=args.timeout,
        workers=args.workers,
        apps=args.apps or None,
    )
    print(render_fig14(result))
    return 0


def _cmd_levels(args: argparse.Namespace) -> int:
    from .bench.reporting import format_table
    from .isolation import lattice_edges, level_specs

    specs = level_specs()
    rows = []
    for spec in specs:
        axioms = ", ".join(axiom.name for axiom in spec.axioms) or "-"
        if spec.axioms and spec.check is not None:
            axioms += " (+search)"
        rows.append(
            (
                spec.strength,
                spec.name,
                axioms,
                spec.eviction,
                ", ".join(spec.stronger_than) or "-",
            )
        )
    print(f"{len(specs)} registered isolation levels (weakest first):\n")
    print(format_table(["#", "level", "axioms", "eviction", "directly above"], rows))
    print("\nlattice edges (weaker -> stronger):")
    for weaker, stronger in lattice_edges():
        print(f"  {weaker} < {stronger}")
    if args.verbose:
        print()
        for spec in specs:
            print(f"{spec.name}: {spec.description}")
            if spec.aliases:
                print(f"  aliases: {', '.join(spec.aliases)}")
    return 0


def _cmd_bench_diff(args: argparse.Namespace) -> int:
    from .bench.diff import BenchFormatError, diff_paths, render_diff

    try:
        diffs = diff_paths(args.baseline, args.current)
    except BenchFormatError as err:
        raise SystemExit(f"error: {err}")
    print(render_diff(diffs, threshold=args.threshold))
    regressed = sum(len(d.regressions(args.threshold)) for d in diffs)
    if regressed:
        print(f"\n{regressed} case(s) regressed below {args.threshold:.2f}x baseline speed.")
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Stateless model checking of transactional programs "
        "against weak isolation levels (PLDI 2023 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    levels = sub.add_parser(
        "levels", help="list every registered isolation level and the lattice"
    )
    levels.add_argument(
        "--verbose", action="store_true", help="include descriptions and aliases"
    )
    levels.set_defaults(fn=_cmd_levels)

    check = sub.add_parser("check", help="enumerate histories of a program")
    check.add_argument("file", help="program in the paper's concrete syntax")
    check.add_argument(
        "--isolation",
        default="SER",
        help="any registered level — see 'repro levels' (default SER)",
    )
    check.add_argument("--method", default="dpor", choices=("dpor", "dfs"))
    check.add_argument("--timeout", type=float, default=None, help="seconds")
    check.add_argument(
        "--workers",
        type=int,
        default=1,
        help="exploration worker processes (default 1 = in-process, 0 = one per CPU)",
    )
    check.add_argument("--show-histories", action="store_true", help="print each history")
    check.add_argument("--dot", metavar="PREFIX", help="write Graphviz files PREFIX-<i>.dot")
    check.set_defaults(fn=_cmd_check)

    compare = sub.add_parser("compare", help="history counts up the isolation ladder")
    compare.add_argument("file")
    compare.add_argument("--timeout", type=float, default=None)
    compare.set_defaults(fn=_cmd_compare)

    record = sub.add_parser("record", help="model-check a program and dump one history as a JSONL trace")
    record.add_argument("file", nargs="?", default=None, help="program in the paper's concrete syntax")
    record.add_argument(
        "--app",
        default=None,
        help="record a workload instead of FILE: an application name, a "
        "generator preset (gen-hotspot, ...) or a gen:knob=value,... spec",
    )
    record.add_argument("--isolation", default="SER", help="exploration level (default SER)")
    record.add_argument("--index", type=int, default=0, help="which enumerated history to record (default 0)")
    record.add_argument("--sessions", type=int, default=2, help="app workload sessions (with --app)")
    record.add_argument("--txns", type=int, default=2, help="app workload transactions per session (with --app)")
    record.add_argument("--seed", type=int, default=0, help="app workload seed (with --app)")
    record.add_argument("--timeout", type=float, default=None, help="seconds")
    record.add_argument("--out", default="-", help="output path ('-' = stdout, default)")
    record.set_defaults(fn=_cmd_record)

    monitor = sub.add_parser(
        "monitor",
        help="bounded-memory streaming isolation monitor (stdin or TCP)",
    )
    monitor.add_argument(
        "--isolation",
        default="RC",
        help="any registered level — see 'repro levels' (default RC)",
    )
    monitor.add_argument("--stdin", action="store_true", help="read JSONL trace events from stdin")
    monitor.add_argument("--port", type=int, default=None, help="listen on TCP PORT for one connection instead")
    monitor.add_argument("--stats-every", type=int, default=0, help="print a stats line every N events (0 = never)")
    monitor.add_argument("--window", type=int, default=64, help="retention / freshness window (default 64)")
    monitor.add_argument("--gc-every", type=int, default=128, help="events between collections (default 128)")
    monitor.add_argument("--evict-batch", type=int, default=16, help="victims batched per compaction (default 16)")
    monitor.add_argument("--shards", type=int, default=1, help="checker shards by variable (0 = one per CPU, default 1 = exact)")
    monitor.add_argument(
        "--stale",
        default="keep",
        choices=("keep", "assume-fresh"),
        help="retention mode: keep = exact, assume-fresh = bounded memory, fail-stop on stale reads",
    )
    monitor.set_defaults(fn=_cmd_monitor)

    replay = sub.add_parser("replay", help="check a recorded JSONL trace against isolation levels")
    replay.add_argument("trace", help="trace file ('-' = stdin)")
    replay.add_argument(
        "--isolation",
        default="all",
        help="any registered level, or 'all' for the classical five "
        "(default all) — see 'repro levels'",
    )
    replay.add_argument(
        "--online",
        action="store_true",
        help="check event-by-event with the incremental online checker "
        "and report where each level is first violated",
    )
    replay.set_defaults(fn=_cmd_replay)

    difftest = sub.add_parser(
        "difftest",
        help="differential-test the threaded MVCC engine against the online checker",
    )
    difftest.add_argument(
        "--config",
        action="append",
        metavar="NAME",
        help="engine config (honest name, base+bug, or bare bug name); "
        "repeatable; default: all honest and bugged configs",
    )
    difftest.add_argument(
        "--app",
        action="append",
        metavar="WORKLOAD",
        help="workload: hotkeys, increments, demo:<bug>, an application "
        "name (tpcc, twitter, ...), a generator preset (gen-hotspot, ...) "
        "or a gen:knob=value,... spec; repeatable; default: hotkeys plus "
        "the config's bug demo",
    )
    difftest.add_argument("--seeds", type=int, default=8, help="sweep scheduler seeds 0..N-1 (default 8)")
    difftest.add_argument("--seed", type=int, default=None, help="run exactly one scheduler seed")
    difftest.add_argument("--threads", type=int, default=2, help="sessions/threads per workload (default 2)")
    difftest.add_argument("--txns", type=int, default=2, help="transactions per session (default 2)")
    difftest.add_argument("--out", metavar="DIR", default=None, help="write every recorded trace to DIR")
    difftest.set_defaults(fn=_cmd_difftest)

    bench = sub.add_parser("bench", help="small Fig. 14-style algorithm comparison")
    bench.add_argument("--sessions", type=int, default=2)
    bench.add_argument("--txns", type=int, default=2)
    bench.add_argument("--programs", type=int, default=2)
    bench.add_argument(
        "--apps",
        action="append",
        metavar="WORKLOAD",
        help="override the suite's workloads: application names, generator "
        "presets or gen:knob=value,... specs; repeatable; default: the "
        "five paper applications",
    )
    bench.add_argument("--timeout", type=float, default=30.0)
    bench.add_argument(
        "--workers",
        type=int,
        default=1,
        help="exploration worker processes per run (default 1, 0 = one per CPU)",
    )
    bench.set_defaults(fn=_cmd_bench)
    # Optional sub-subcommand: plain ``repro bench`` (above) keeps working.
    bench_sub = bench.add_subparsers(dest="bench_command")
    bench_diff = bench_sub.add_parser(
        "diff", help="compare two BENCH_*.json result files or directories"
    )
    bench_diff.add_argument("baseline", help="baseline BENCH_*.json file or directory")
    bench_diff.add_argument("current", help="current BENCH_*.json file or directory")
    bench_diff.add_argument(
        "--threshold",
        type=float,
        default=0.8,
        help="speedup below which a case counts as a regression (default 0.8)",
    )
    bench_diff.add_argument(
        "--tolerance",
        dest="threshold",
        type=float,
        default=argparse.SUPPRESS,
        help="alias for --threshold",
    )
    bench_diff.set_defaults(fn=_cmd_bench_diff)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
