"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``check FILE``
    Parse a program in the paper's concrete syntax and enumerate its
    histories under one isolation level, printing each history (or just the
    count) and exploration statistics.

``compare FILE``
    Run the program up the RC → RA → CC → SI → SER ladder and report
    history counts per level (the anomaly-visibility profile).

``bench``
    Run a small Fig. 14-style comparison of all seven algorithm
    configurations on the built-in application suite.

Examples::

    python -m repro check program.txn --isolation CC --show-histories
    python -m repro compare program.txn
    python -m repro bench --sessions 2 --txns 2 --programs 2
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .bench.experiments import fig14
from .bench.reporting import render_fig14
from .checking.checker import ModelChecker
from .core.canonical import format_history
from .core.dot import history_to_dot
from .lang.parser import ParseError, parse_program


def _read_program(path: str):
    try:
        with open(path) as handle:
            text = handle.read()
    except OSError as err:
        raise SystemExit(f"error: cannot read {path}: {err}")
    try:
        return parse_program(text, name=path)
    except ParseError as err:
        raise SystemExit(f"error: {path}: {err}")


def _cmd_check(args: argparse.Namespace) -> int:
    program = _read_program(args.file)
    checker = ModelChecker(
        program, isolation=args.isolation, method=args.method, workers=args.workers
    )
    shown = 0
    result = checker.run(timeout=args.timeout, keep_outcomes=bool(args.show_histories or args.dot))
    print(result.summary())
    stats = result.stats
    print(
        f"  explore calls: {stats.explore_calls}, end states: {stats.end_states}, "
        f"swaps: {stats.swaps_applied}/{stats.swap_candidates}, "
        f"peak work-stack: {stats.peak_stack}"
    )
    if result.outcomes:
        for index, outcome in enumerate(result.outcomes):
            if args.show_histories:
                print(f"\nhistory #{index}:")
                print(format_history(outcome.history, indent="  "))
            if args.dot:
                path = f"{args.dot}-{index}.dot"
                with open(path, "w") as handle:
                    handle.write(history_to_dot(outcome.history, title=f"history {index}"))
                shown += 1
        if args.dot:
            print(f"\nwrote {shown} DOT files to {args.dot}-*.dot")
    return 1 if result.timed_out else 0


def _cmd_compare(args: argparse.Namespace) -> int:
    program = _read_program(args.file)
    from .checking.report import compare_levels

    comparison = compare_levels(program, assertions=[], timeout=args.timeout)
    rows = comparison.verdict_table()
    from .bench.reporting import format_table

    print(f"{program.name}: histories per isolation level")
    print(format_table(["isolation", "histories", "verdict", "time (s)"], rows))
    counts = [r.history_count for r in comparison.results.values()]
    if counts and counts[0] > counts[-1]:
        print(
            f"\n{counts[0] - counts[-1]} behaviour(s) of the weakest level are "
            f"anomalies w.r.t. the strongest."
        )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    result = fig14(
        sessions=args.sessions,
        txns_per_session=args.txns,
        programs_per_app=args.programs,
        timeout=args.timeout,
        workers=args.workers,
    )
    print(render_fig14(result))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Stateless model checking of transactional programs "
        "against weak isolation levels (PLDI 2023 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="enumerate histories of a program")
    check.add_argument("file", help="program in the paper's concrete syntax")
    check.add_argument("--isolation", default="SER", help="RC|RA|CC|SI|SER|TRUE (default SER)")
    check.add_argument("--method", default="dpor", choices=("dpor", "dfs"))
    check.add_argument("--timeout", type=float, default=None, help="seconds")
    check.add_argument(
        "--workers",
        type=int,
        default=1,
        help="exploration worker processes (default 1 = in-process, 0 = one per CPU)",
    )
    check.add_argument("--show-histories", action="store_true", help="print each history")
    check.add_argument("--dot", metavar="PREFIX", help="write Graphviz files PREFIX-<i>.dot")
    check.set_defaults(fn=_cmd_check)

    compare = sub.add_parser("compare", help="history counts up the isolation ladder")
    compare.add_argument("file")
    compare.add_argument("--timeout", type=float, default=None)
    compare.set_defaults(fn=_cmd_compare)

    bench = sub.add_parser("bench", help="small Fig. 14-style algorithm comparison")
    bench.add_argument("--sessions", type=int, default=2)
    bench.add_argument("--txns", type=int, default=2)
    bench.add_argument("--programs", type=int, default=2)
    bench.add_argument("--timeout", type=float, default=30.0)
    bench.add_argument(
        "--workers",
        type=int,
        default=1,
        help="exploration worker processes per run (default 1, 0 = one per CPU)",
    )
    bench.set_defaults(fn=_cmd_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
