"""Exhaustive stateless enumeration of program histories — ``DFS(I)``.

This is the baseline algorithm of the paper's evaluation (§7.3): a standard
depth-first traversal of the operational semantics of §2.3, restricted (for
fairness, like the paper) so that at most one transaction is pending at any
time.  It branches over

* which session starts the next transaction (all interleavings!), and
* which committed transaction each external read reads from (ValidWrites);

so unlike the DPOR algorithms it typically visits the *same history* many
times.  It doubles as the ground-truth enumerator for the completeness and
optimality tests: ``hist_I(P)`` is exactly the set of distinct histories it
reaches.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..core.canonical import HistorySet
from ..core.events import EventType
from ..core.history import History
from ..isolation.base import IsolationLevel
from ..lang.program import Program
from .scheduler import (
    NextAction,
    extend_history,
    next_action,
    pending_transaction,
    unstarted_transactions,
    valid_writes,
)


class ExplorationTimeout(Exception):
    """Raised when an enumeration/exploration exceeds its time budget."""


@dataclass
class EnumerationResult:
    """Outcome of an exhaustive DFS enumeration."""

    histories: HistorySet
    end_states: int = 0
    blocked: int = 0
    steps: int = 0
    seconds: float = 0.0
    timed_out: bool = False

    @property
    def distinct_histories(self) -> int:
        return len(self.histories)


def enumerate_histories(
    program: Program,
    level: IsolationLevel,
    timeout: Optional[float] = None,
    on_output: Optional[Callable[[History], None]] = None,
) -> EnumerationResult:
    """Run ``DFS(level)`` on ``program``.

    ``end_states`` counts leaves of the execution tree (histories *with*
    duplicates); ``histories`` deduplicates them up to read-from
    equivalence.  ``blocked`` counts branches where an external read had no
    valid write to read from (impossible for causally-extensible levels, see
    Theorem 3.4 — asserted in tests).
    """
    result = EnumerationResult(HistorySet())
    deadline = time.monotonic() + timeout if timeout else None

    def rec(history: History) -> None:
        result.steps += 1
        if deadline is not None and result.steps % 64 == 0 and time.monotonic() > deadline:
            raise ExplorationTimeout

        pending = pending_transaction(history)
        if pending is None:
            starts = unstarted_transactions(program, history)
            startable = [
                tid for tid in starts if tid.index == len(history.sessions.get(tid.session, ()))
            ]
            if not startable:
                result.end_states += 1
                result.histories.add(history)
                if on_output is not None:
                    on_output(history)
                return
            for tid in startable:
                # Through extend_history so the child derives the parent's
                # cached closure/saturation states (same hot path as DPOR).
                rec(extend_history(history, NextAction(EventType.BEGIN, tid)))
            return

        action = next_action(program, history)
        assert action is not None and action.txn == pending
        if action.is_external_read:
            choices = valid_writes(history, action, level)
            if not choices:
                result.blocked += 1
                return
            for _writer, extended in choices:
                rec(extended)
            return
        extended = extend_history(history, action)
        if action.kind is EventType.WRITE and not level.satisfies(extended):
            # The write rule of the semantics (Appendix B) requires the
            # extension to stay consistent; unreachable for the
            # causally-extensible levels.
            result.blocked += 1
            return
        rec(extended)

    start = time.monotonic()
    root = program.initial_history()
    root.causal_matrix()
    level.satisfies(root)  # warm the root caches; children derive from them
    try:
        rec(root)
    except ExplorationTimeout:
        result.timed_out = True
    result.seconds = time.monotonic() - start
    return result
