"""Deterministic transaction execution with resumption by replay.

The DPOR algorithms repeatedly need "the next database operation of this
pending transaction, given what it has executed so far".  The paper threads
a ``locals`` map through the exploration for this; we instead *replay* the
transaction's recorded events through a generator that interprets the body
(rules if-true/if-false/local of Appendix B happen silently inside), which
is equivalent because the language is deterministic given read values.

``next_operation(txn, log)`` returns the next :class:`ReadOp`/:class:`WriteOp`
or the terminal :class:`CommitOp`/:class:`AbortOp`, plus the local-variable
valuation at that point.

Replay is the hottest loop of the exploration (one full replay per
``Next`` query, several per explored node), so transaction bodies are
**compiled once** into a flat tuple of instruction tuples — expressions
become argument-capturing closures, ``if`` blocks become conditional jumps
— and replay runs a plain dispatch loop over the compiled code.  The
compiled form is cached on the :class:`~repro.lang.program.Transaction`
object itself, so every history sharing a program compiles each body
exactly once per process.  The generator interpreter :func:`_run` over the
raw AST is kept: the differential-testing engine harness replays through it,
and it documents the reference semantics the compiler must match.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Hashable, List, Optional, Tuple, Union

from ..core.events import EventType
from ..core.history import TransactionLog
from ..lang.ast import Abort, Assign, Body, If, Read, Write, resolve_var
from ..lang.expr import BinOp, Const, Env, Expr, Fn, Local, UnOp
from ..lang.program import Transaction

#: Compiled instructions dispatched since interpreter start (replay loops of
#: :func:`next_operation` and :func:`final_env`).  The per-node cost profile
#: of the exploration reports deltas of this counter.
INSTRUCTIONS_EXECUTED = 0


@dataclass(frozen=True)
class ReadOp:
    """The transaction's next instruction reads global ``var``."""

    var: str


@dataclass(frozen=True)
class WriteOp:
    """The transaction's next instruction writes ``value`` to ``var``."""

    var: str
    value: Hashable


@dataclass(frozen=True)
class CommitOp:
    """The body is exhausted: the next event is COMMIT."""


@dataclass(frozen=True)
class AbortOp:
    """An ``abort`` instruction was reached: the next event is ABORT."""


Operation = Union[ReadOp, WriteOp, CommitOp, AbortOp]


def _run(instrs: Body, env: Env) -> Generator[Operation, Hashable, bool]:
    """Interpret a body, yielding DB operations; returns True on abort.

    Read operations receive the observed value via ``send``; write
    operations receive ``None``.
    """
    for instr in instrs:
        if isinstance(instr, Assign):
            env[instr.target] = instr.expr.evaluate(env)
        elif isinstance(instr, Read):
            value = yield ReadOp(resolve_var(instr.var, env))
            env[instr.target] = value
        elif isinstance(instr, Write):
            yield WriteOp(resolve_var(instr.var, env), instr.expr.evaluate(env))
        elif isinstance(instr, If):
            branch = instr.then if instr.cond.evaluate(env) else instr.orelse
            aborted = yield from _run(branch, env)
            if aborted:
                return True
        elif isinstance(instr, Abort):
            return True
        else:  # pragma: no cover - unreachable with the public DSL
            raise TypeError(f"unknown instruction {instr!r}")
    return False


class ReplayMismatch(AssertionError):
    """A recorded event does not match the operation the body produces.

    This always indicates a bug in history maintenance (e.g. a Swap that
    kept events invalidated by a changed read), so it is an assertion-style
    error rather than a user-facing one.
    """


# -- the body compiler ---------------------------------------------------------

#: Opcodes of the compiled form.  A compiled body is a tuple of
#: ``(opcode, a, b)`` triples; jump targets are absolute indices.
_OP_ASSIGN, _OP_READ, _OP_WRITE, _OP_JUMP, _OP_JUMP_IF_FALSE, _OP_ABORT = range(6)

#: An evaluated operand: a closure over the (compiled) expression, applied
#: to the locals valuation.
_Thunk = Callable[[Env], Hashable]


def _compile_expr(expr: Expr) -> _Thunk:
    """Compile an expression tree into a nest of argument-capturing closures.

    Each node's children and function are captured in cell variables, so
    evaluation performs no attribute lookups — only calls.  Unknown
    :class:`Expr` subclasses fall back to their own ``evaluate`` method.
    """
    if isinstance(expr, Const):
        value = expr.value
        return lambda env: value
    if isinstance(expr, Local):
        return expr.evaluate  # bound method; already a minimal closure
    if isinstance(expr, BinOp):
        fn = expr.fn
        left = _compile_expr(expr.left)
        right = _compile_expr(expr.right)
        return lambda env: fn(left(env), right(env))
    if isinstance(expr, UnOp):
        fn = expr.fn
        operand = _compile_expr(expr.operand)
        return lambda env: fn(operand(env))
    if isinstance(expr, Fn):
        fn = expr.fn
        args = tuple(_compile_expr(a) for a in expr.args)
        return lambda env: fn(*(thunk(env) for thunk in args))
    return expr.evaluate


def _compile_var(ref) -> Union[str, _Thunk]:
    """A literal name stays a ``str``; a computed reference compiles to a
    thunk that validates the result exactly like :func:`resolve_var`."""
    if isinstance(ref, str):
        return ref
    thunk = _compile_expr(ref)

    def resolver(env: Env) -> str:
        name = thunk(env)
        if not isinstance(name, str):
            raise TypeError(f"variable reference {ref!r} evaluated to non-string {name!r}")
        return name

    return resolver


def _compile_body(body: Body, code: List[Tuple]) -> None:
    for instr in body:
        if isinstance(instr, Assign):
            code.append((_OP_ASSIGN, instr.target, _compile_expr(instr.expr)))
        elif isinstance(instr, Read):
            code.append((_OP_READ, instr.target, _compile_var(instr.var)))
        elif isinstance(instr, Write):
            code.append((_OP_WRITE, _compile_var(instr.var), _compile_expr(instr.expr)))
        elif isinstance(instr, If):
            cond = _compile_expr(instr.cond)
            branch_at = len(code)
            code.append(None)  # patched below
            _compile_body(instr.then, code)
            if instr.orelse:
                jump_at = len(code)
                code.append(None)
                code[branch_at] = (_OP_JUMP_IF_FALSE, cond, len(code))
                _compile_body(instr.orelse, code)
                code[jump_at] = (_OP_JUMP, len(code), None)
            else:
                code[branch_at] = (_OP_JUMP_IF_FALSE, cond, len(code))
        elif isinstance(instr, Abort):
            code.append((_OP_ABORT, None, None))
        else:  # pragma: no cover - unreachable with the public DSL
            raise TypeError(f"unknown instruction {instr!r}")


def compiled_code(txn: Transaction) -> Tuple[Tuple, ...]:
    """The compiled form of ``txn.body``, cached on the transaction object.

    :class:`~repro.lang.program.Transaction` is a frozen dataclass, so the
    cache is planted with ``object.__setattr__``; tying it to the object
    (rather than an external table) makes staleness impossible — builders
    produce a fresh ``Transaction`` whenever a body changes.
    """
    try:
        return txn._compiled  # type: ignore[attr-defined]
    except AttributeError:
        pass
    code: List[Tuple] = []
    _compile_body(txn.body, code)
    compiled = tuple(code)
    object.__setattr__(txn, "_compiled", compiled)
    return compiled


# -- replay over compiled code -------------------------------------------------


def next_operation(txn: Transaction, log: TransactionLog) -> Tuple[Operation, Env]:
    """The next operation of ``txn`` after the events recorded in ``log``.

    ``log`` must be pending; its READ/WRITE events are replayed in program
    order, then the next pending operation and the locals valuation are
    returned.
    """
    if log.is_complete:
        raise ValueError(f"transaction {log.tid!r} is complete")
    global INSTRUCTIONS_EXECUTED
    code = compiled_code(txn)
    env: Env = {}
    recorded = [e for e in log.events if e.type in (EventType.READ, EventType.WRITE)]
    size = len(code)
    replay_to = len(recorded)
    pos = 0
    pc = 0
    steps = 0
    while pc < size:
        op, a, b = code[pc]
        pc += 1
        steps += 1
        if op == _OP_ASSIGN:
            env[a] = b(env)
        elif op == _OP_READ:
            var = b if type(b) is str else b(env)
            if pos < replay_to:
                event = recorded[pos]
                if event.type is not EventType.READ or var != event.var:
                    raise ReplayMismatch(
                        f"{log.tid!r}: expected {ReadOp(var)!r}, recorded {event!r}"
                    )
                env[a] = event.value
                pos += 1
            else:
                INSTRUCTIONS_EXECUTED += steps
                return ReadOp(var), env
        elif op == _OP_WRITE:
            var = a if type(a) is str else a(env)
            value = b(env)
            if pos < replay_to:
                event = recorded[pos]
                if event.type is not EventType.WRITE or var != event.var or value != event.value:
                    raise ReplayMismatch(
                        f"{log.tid!r}: expected {WriteOp(var, value)!r}, recorded {event!r}"
                    )
                pos += 1
            else:
                INSTRUCTIONS_EXECUTED += steps
                return WriteOp(var, value), env
        elif op == _OP_JUMP_IF_FALSE:
            if not a(env):
                pc = b
        elif op == _OP_JUMP:
            pc = a
        else:  # _OP_ABORT
            if pos < replay_to:
                raise ReplayMismatch(f"{log.tid!r}: body ended before recorded {recorded[pos]!r}")
            INSTRUCTIONS_EXECUTED += steps
            return AbortOp(), env
    if pos < replay_to:
        raise ReplayMismatch(f"{log.tid!r}: body ended before recorded {recorded[pos]!r}")
    INSTRUCTIONS_EXECUTED += steps
    return CommitOp(), env


def final_env(txn: Transaction, log: TransactionLog) -> Env:
    """Local-variable valuation of a *complete* transaction log.

    Used for user assertions over final states.  Replay is positional and
    non-validating (complete logs were validated when built): reads take
    the recorded value, writes are skipped — their expressions cannot bind
    locals — and an abort instruction or an exhausted record ends replay.
    """
    global INSTRUCTIONS_EXECUTED
    code = compiled_code(txn)
    env: Env = {}
    recorded = [e for e in log.events if e.type in (EventType.READ, EventType.WRITE)]
    size = len(code)
    replay_to = len(recorded)
    pos = 0
    pc = 0
    steps = 0
    while pc < size:
        op, a, b = code[pc]
        pc += 1
        steps += 1
        if op == _OP_ASSIGN:
            env[a] = b(env)
        elif op == _OP_READ:
            if pos >= replay_to:
                break
            event = recorded[pos]
            env[a] = event.value if event.type is EventType.READ else None
            pos += 1
        elif op == _OP_WRITE:
            if pos >= replay_to:
                break
            pos += 1
        elif op == _OP_JUMP_IF_FALSE:
            if not a(env):
                pc = b
        elif op == _OP_JUMP:
            pc = a
        else:  # _OP_ABORT
            break
    INSTRUCTIONS_EXECUTED += steps
    return env
