"""Deterministic transaction execution with resumption by replay.

The DPOR algorithms repeatedly need "the next database operation of this
pending transaction, given what it has executed so far".  The paper threads
a ``locals`` map through the exploration for this; we instead *replay* the
transaction's recorded events through a generator that interprets the body
(rules if-true/if-false/local of Appendix B happen silently inside), which
is equivalent because the language is deterministic given read values.

``next_operation(txn, log)`` returns the next :class:`ReadOp`/:class:`WriteOp`
or the terminal :class:`CommitOp`/:class:`AbortOp`, plus the local-variable
valuation at that point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Hashable, Optional, Tuple, Union

from ..core.events import Event, EventType
from ..core.history import TransactionLog
from ..lang.ast import Abort, Assign, Body, If, Instr, Read, Write, resolve_var
from ..lang.expr import Env
from ..lang.program import Transaction


@dataclass(frozen=True)
class ReadOp:
    """The transaction's next instruction reads global ``var``."""

    var: str


@dataclass(frozen=True)
class WriteOp:
    """The transaction's next instruction writes ``value`` to ``var``."""

    var: str
    value: Hashable


@dataclass(frozen=True)
class CommitOp:
    """The body is exhausted: the next event is COMMIT."""


@dataclass(frozen=True)
class AbortOp:
    """An ``abort`` instruction was reached: the next event is ABORT."""


Operation = Union[ReadOp, WriteOp, CommitOp, AbortOp]


def _run(instrs: Body, env: Env) -> Generator[Operation, Hashable, bool]:
    """Interpret a body, yielding DB operations; returns True on abort.

    Read operations receive the observed value via ``send``; write
    operations receive ``None``.
    """
    for instr in instrs:
        if isinstance(instr, Assign):
            env[instr.target] = instr.expr.evaluate(env)
        elif isinstance(instr, Read):
            value = yield ReadOp(resolve_var(instr.var, env))
            env[instr.target] = value
        elif isinstance(instr, Write):
            yield WriteOp(resolve_var(instr.var, env), instr.expr.evaluate(env))
        elif isinstance(instr, If):
            branch = instr.then if instr.cond.evaluate(env) else instr.orelse
            aborted = yield from _run(branch, env)
            if aborted:
                return True
        elif isinstance(instr, Abort):
            return True
        else:  # pragma: no cover - unreachable with the public DSL
            raise TypeError(f"unknown instruction {instr!r}")
    return False


class ReplayMismatch(AssertionError):
    """A recorded event does not match the operation the body produces.

    This always indicates a bug in history maintenance (e.g. a Swap that
    kept events invalidated by a changed read), so it is an assertion-style
    error rather than a user-facing one.
    """


def next_operation(txn: Transaction, log: TransactionLog) -> Tuple[Operation, Env]:
    """The next operation of ``txn`` after the events recorded in ``log``.

    ``log`` must be pending; its READ/WRITE events are replayed in program
    order, then the next pending operation and the locals valuation are
    returned.
    """
    if log.is_complete:
        raise ValueError(f"transaction {log.tid!r} is complete")
    env: Env = {}
    gen = _run(txn.body, env)
    recorded = [e for e in log.events if e.type in (EventType.READ, EventType.WRITE)]

    def step(send_value: Optional[Hashable], first: bool) -> Optional[Operation]:
        try:
            return next(gen) if first else gen.send(send_value)
        except StopIteration as stop:
            return AbortOp() if stop.value else None

    op = step(None, first=True)
    for event in recorded:
        if op is None or isinstance(op, AbortOp):
            raise ReplayMismatch(f"{log.tid!r}: body ended before recorded {event!r}")
        if event.type is EventType.READ:
            if not isinstance(op, ReadOp) or op.var != event.var:
                raise ReplayMismatch(f"{log.tid!r}: expected {op!r}, recorded {event!r}")
            op = step(event.value, first=False)
        else:
            if not isinstance(op, WriteOp) or op.var != event.var or op.value != event.value:
                raise ReplayMismatch(f"{log.tid!r}: expected {op!r}, recorded {event!r}")
            op = step(None, first=False)
    if op is None:
        return CommitOp(), env
    return op, env


def final_env(txn: Transaction, log: TransactionLog) -> Env:
    """Local-variable valuation of a *complete* transaction log.

    Used for user assertions over final states.
    """
    env: Env = {}
    gen = _run(txn.body, env)
    recorded = [e for e in log.events if e.type in (EventType.READ, EventType.WRITE)]
    try:
        next(gen)
    except StopIteration:
        return env
    for event in recorded:
        try:
            gen.send(event.value if event.type is EventType.READ else None)
        except StopIteration:
            break
    return env
