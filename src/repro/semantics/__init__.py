"""Operational semantics (paper §2.3, Appendix B) and the DFS baseline."""

from .executor import AbortOp, CommitOp, Operation, ReadOp, ReplayMismatch, WriteOp, final_env, next_operation
from .scheduler import (
    NextAction,
    apply_action,
    extend_history,
    next_action,
    pending_transaction,
    unstarted_transactions,
    valid_writes,
)
from .enumerate import EnumerationResult, ExplorationTimeout, enumerate_histories

__all__ = [
    "AbortOp",
    "CommitOp",
    "Operation",
    "ReadOp",
    "ReplayMismatch",
    "WriteOp",
    "final_env",
    "next_operation",
    "NextAction",
    "apply_action",
    "extend_history",
    "next_action",
    "pending_transaction",
    "unstarted_transactions",
    "valid_writes",
    "EnumerationResult",
    "ExplorationTimeout",
    "enumerate_histories",
]
