"""The Next scheduler, ValidWrites, and history extension (paper §5.1).

``Next`` is deterministic: it completes the (unique) pending transaction if
one exists, otherwise starts the oracle-order-smallest not-yet-started
transaction of the program.  This maintains the central invariant of
``explore-ce`` — explored histories have *at most one* pending transaction,
which is then necessarily ``(so ∪ wr)+``-maximal, so causal extensibility
guarantees the exploration is never blocked.

``ValidWrites(h, e)`` computes the committed transactions a fresh external
read may read from while keeping the history consistent with the isolation
level under exploration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from ..core.bitrel import RelationMatrix
from ..core.events import INIT_TXN, Event, EventId, EventType, TxnId
from ..core.history import History
from ..core.ordered_history import OrderedHistory
from ..isolation.base import IsolationLevel
from ..isolation.saturation import derive_extension_states
from ..lang.program import Program
from .executor import AbortOp, CommitOp, ReadOp, WriteOp, next_operation


@dataclass(frozen=True)
class NextAction:
    """The event ``Next`` wants to add, before any wr choice is made.

    For an external read (``kind == READ`` and not ``local``) the value is
    unresolved: it depends on the wr source chosen by the caller.
    """

    kind: EventType
    txn: TxnId
    var: Optional[str] = None
    value: Hashable = None
    local: bool = False

    @property
    def is_external_read(self) -> bool:
        return self.kind is EventType.READ and not self.local


def pending_transaction(history: History) -> Optional[TxnId]:
    """The unique pending transaction, if any (invariant: at most one)."""
    pending = history.pending_transactions()
    if len(pending) > 1:
        raise AssertionError(f"history has {len(pending)} pending transactions")
    return pending[0].tid if pending else None


def unstarted_transactions(program: Program, history: History) -> List[TxnId]:
    """Transactions of the program with no log in the history yet."""
    missing: List[TxnId] = []
    for session in program.sessions:
        started = len(history.sessions.get(session, ()))
        for index in range(started, program.session_length(session)):
            missing.append(TxnId(session, index))
    return missing


def next_action(program: Program, history: History) -> Optional[NextAction]:
    """The deterministic ``Next`` of §5.1; ``None`` when the program finished."""
    pending = pending_transaction(history)
    if pending is not None:
        return _pending_action(program, history, pending)
    candidates = unstarted_transactions(program, history)
    if not candidates:
        return None
    # Only session-minimal transactions are startable; the oracle-smallest
    # candidate is the startable one with the least oracle key.
    startable = [tid for tid in candidates if tid.index == len(history.sessions.get(tid.session, ()))]
    chosen = min(startable, key=program.oracle_key)
    return NextAction(EventType.BEGIN, chosen)


def _pending_action(program: Program, history: History, tid: TxnId) -> NextAction:
    log = history.txns[tid]
    op, _env = next_operation(program.transaction(tid), log)
    if isinstance(op, ReadOp):
        last_write = log.last_write_before(op.var, len(log.events))
        if last_write is not None:
            # read-local rule: value fixed by the latest own write.
            return NextAction(EventType.READ, tid, op.var, last_write.value, local=True)
        return NextAction(EventType.READ, tid, op.var)
    if isinstance(op, WriteOp):
        return NextAction(EventType.WRITE, tid, op.var, op.value)
    if isinstance(op, CommitOp):
        return NextAction(EventType.COMMIT, tid)
    assert isinstance(op, AbortOp)
    return NextAction(EventType.ABORT, tid)


def apply_action(
    oh: OrderedHistory,
    action: NextAction,
    writer: Optional[TxnId] = None,
) -> OrderedHistory:
    """Extend an ordered history with the event described by ``action``.

    ``writer`` must be given exactly for external reads (the wr choice).
    """
    history = oh.history
    if writer is not None and not action.is_external_read:
        raise ValueError(f"{action.kind} takes no wr source")
    if action.kind is EventType.BEGIN:
        eid = EventId(action.txn, 0)
    else:
        eid = EventId(action.txn, len(history.txns[action.txn].events))
    return oh.extended(extend_history(history, action, writer), eid)


def extend_history(history: History, action: NextAction, writer: Optional[TxnId] = None) -> History:
    """``h ⊕ e`` (and ``⊕ wr(writer, e)`` for external reads).

    This is the single chokepoint through which the explorer, the DFS
    baseline and ``readLatest`` grow histories, so it is also where the
    child's hot-path caches are **derived** from the parent's instead of
    being rebuilt per node: the ``so ∪ wr`` closure matrix by a copy plus
    at most one ``add_edge``, and any cached saturation states by the
    sibling-shared diffing of
    :func:`~repro.isolation.saturation.derive_extension_states`.
    """
    if action.kind is EventType.BEGIN:
        extended, tid = history.begin_transaction(action.txn.session)
        assert tid == action.txn, f"begin produced {tid!r}, expected {action.txn!r}"
        _derive_extension_caches(history, extended, action, None)
        return extended
    tid = action.txn
    eid = EventId(tid, len(history.txns[tid].events))
    if action.is_external_read:
        if writer is None:
            raise ValueError("external read needs a wr source")
        value = history.visible_write_value(writer, action.var)
        event = Event(eid, EventType.READ, action.var, value)
        extended = history.append_event(tid.session, event).add_wr(writer, eid)
    else:
        event = Event(eid, action.kind, action.var, action.value, local=action.local)
        extended = history.append_event(tid.session, event)
    _derive_extension_caches(history, extended, action, writer)
    return extended


def _derive_extension_caches(
    parent: History,
    child: History,
    action: NextAction,
    writer: Optional[TxnId],
) -> None:
    """Seed ``child``'s caches by diffing from ``parent``'s (both lazy:
    nothing is derived that the parent has not already computed)."""
    base = parent.cached_causal_matrix()
    if base is not None:
        tid = action.txn
        if action.kind is EventType.BEGIN:
            derived = base.copy_mutable()
            derived.add_node(tid)
            order = child.sessions[tid.session]
            prev = order[-2] if len(order) > 1 else INIT_TXN
            derived.add_edge(prev, tid)
            child.adopt_causal_matrix(derived)
        elif action.is_external_read:
            if writer == tid:
                child.adopt_causal_matrix(base)  # self-wr adds no edge
            else:
                derived = base.copy_mutable()
                derived.add_edge(writer, tid)
                child.adopt_causal_matrix(derived)
        else:
            # Same transactions, same so ∪ wr — the frozen matrix is shared.
            child.adopt_causal_matrix(base)
    derive_extension_states(
        parent,
        child,
        action.kind,
        action.txn,
        event=None if action.kind is EventType.BEGIN else child.txns[action.txn].last_event,
        writer=writer,
    )


def valid_writes(
    history: History,
    action: NextAction,
    level: IsolationLevel,
) -> List[Tuple[TxnId, History]]:
    """``ValidWrites(h, e)`` (§5.1): committed writers of ``var`` such that
    ``h ⊕ e ⊕ wr(t, e)`` satisfies the isolation level.

    Returns (writer, extended history) pairs so callers don't re-extend.

    Each candidate differs from ``history`` by one read event and one wr
    edge over the *same* transaction set, so :func:`extend_history` derives
    its ``so ∪ wr`` closure (and any cached saturation states) from the
    base history's caches — the consistency check below never rebuilds the
    relation and, on the saturation levels, is O(1) per candidate.
    """
    assert action.is_external_read
    base = history.causal_matrix()  # ensure the base closure exists to derive from
    base_states = history.saturation_states()
    results: List[Tuple[TxnId, History]] = []
    for log in history.committed_transactions():
        if not log.writes_var(action.var):
            continue
        candidate = extend_history(history, action, log.tid)
        if level.satisfies(candidate):
            results.append((log.tid, candidate))
        else:
            _recycle_candidate_caches(candidate, base, base_states)
    return results


def _recycle_candidate_caches(
    candidate: History,
    base: "RelationMatrix",
    base_states: Dict[Tuple, object],
) -> None:
    """Return a rejected candidate's derived row buffers to the scratch pool.

    A rejected ``ValidWrites`` candidate is dropped on the floor, so every
    matrix derived *for it* — its causal closure and the matrices inside
    its forked saturation states — is exclusively owned garbage.  Releasing
    them lets the next candidate's :meth:`~repro.core.bitrel.RelationMatrix.copy`
    refill the buffers instead of allocating: the hot path stops paying the
    allocator per rejected candidate.  Caches *shared* with the base
    history (identity-compared: the self-wr closure share, the verbatim
    saturation-state shares) are live and must not be touched.
    """
    matrix = candidate.cached_causal_matrix()
    if matrix is not None and matrix is not base:
        matrix.release()
    for axioms, state in candidate.saturation_states().items():
        if base_states.get(axioms) is not state:
            state.matrix.release()
