"""Instruction AST of the transactional language (paper Fig. 1).

A program is a parallel composition of *sessions*; a session is a sequence
of *transactions*; a transaction body is a sequence of instructions::

    Instr   ::= a := read(x) | write(x, a) | abort | a := e | if(φ(ā)){ Instr* } [else { Instr* }]

Extensions over the paper's minimal grammar (all strictly sugar, they do not
enlarge the state space):

* ``if`` may carry an ``else`` branch and guards a block, not a single
  instruction;
* database variable names may be *computed* from locals (needed to model SQL
  row access where the row id was read from a table's id-set variable).

Programs must be bounded (no loops), as usual for stateless model checking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple, Union

from .expr import Env, Expr, ExprLike, to_expr

#: A database variable reference: a literal name or an expression computing one.
VarRef = Union[str, Expr]


def resolve_var(ref: VarRef, env: Env) -> str:
    """Evaluate a variable reference to a concrete global-variable name."""
    if isinstance(ref, str):
        return ref
    name = ref.evaluate(env)
    if not isinstance(name, str):
        raise TypeError(f"variable reference {ref!r} evaluated to non-string {name!r}")
    return name


class Instr:
    """Base class of instructions."""

    __slots__ = ()


@dataclass(frozen=True)
class Assign(Instr):
    """``a := e`` — local assignment."""

    target: str
    expr: Expr

    def __repr__(self) -> str:
        return f"{self.target} := {self.expr!r}"


@dataclass(frozen=True)
class Read(Instr):
    """``a := read(x)`` — read global ``x`` into local ``a``."""

    target: str
    var: VarRef

    def __repr__(self) -> str:
        return f"{self.target} := read({self.var!r})"


@dataclass(frozen=True)
class Write(Instr):
    """``write(x, e)`` — write the value of ``e`` to global ``x``."""

    var: VarRef
    expr: Expr

    def __repr__(self) -> str:
        return f"write({self.var!r}, {self.expr!r})"


@dataclass(frozen=True)
class If(Instr):
    """``if(φ){...} else {...}`` — conditional block."""

    cond: Expr
    then: Tuple[Instr, ...]
    orelse: Tuple[Instr, ...] = ()

    def __repr__(self) -> str:
        text = f"if({self.cond!r}){{{'; '.join(map(repr, self.then))}}}"
        if self.orelse:
            text += f" else {{{'; '.join(map(repr, self.orelse))}}}"
        return text


@dataclass(frozen=True)
class Abort(Instr):
    """``abort`` — end the enclosing transaction, discarding its writes."""

    def __repr__(self) -> str:
        return "abort"


# -- convenience constructors (the public DSL surface) -------------------------


def read(target: str, var: VarRef) -> Read:
    """``target := read(var)``."""
    return Read(target, var)


def write(var: VarRef, value: ExprLike) -> Write:
    """``write(var, value)``."""
    return Write(var, to_expr(value))


def assign(target: str, value: ExprLike) -> Assign:
    """``target := value``."""
    return Assign(target, to_expr(value))


def if_(cond: ExprLike, then, orelse=()) -> If:
    """``if (cond) { then } else { orelse }``."""
    return If(to_expr(cond), tuple(then), tuple(orelse))


def abort() -> Abort:
    """``abort``."""
    return Abort()


Body = Tuple[Instr, ...]
