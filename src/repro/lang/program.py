"""Programs, sessions and transactions (paper Fig. 1, §2.3).

A :class:`Program` is a partial function from session identifiers to
sequences of transactions; the *oracle order* of the DPOR scheduler (§5.1)
is derived from the declaration order of sessions, then transaction order
within each session.

Programs must declare (or be able to infer) the universe of global variables
they may touch: the distinguished ``init`` transaction writes an initial
value to each of them (Def. 2.1).  Static variable names are inferred from
the instruction tree; dynamically computed names (``VarRef`` expressions)
must be covered by ``extra_variables``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

from ..core.events import TxnId
from .ast import Abort, Assign, Body, If, Instr, Read, Write


@dataclass(frozen=True)
class Transaction:
    """A named transaction body (begin/commit are implicit)."""

    name: str
    body: Body

    def __repr__(self) -> str:
        return f"Transaction({self.name!r}, {len(self.body)} instrs)"

    # The executor caches its compiled instruction form on the instance
    # (``_compiled``, a tree of closures).  Closures don't pickle, and the
    # receiver recompiles lazily anyway, so pickling ships only the AST —
    # this is what lets the worker pool's spawn path move a program whose
    # *source* is picklable even after it has been executed locally.
    def __getstate__(self):
        return {"name": self.name, "body": self.body}

    def __setstate__(self, state):
        object.__setattr__(self, "name", state["name"])
        object.__setattr__(self, "body", state["body"])


def static_variables(body: Iterable[Instr]) -> Set[str]:
    """Global-variable names appearing literally in a body."""
    found: Set[str] = set()
    stack: List[Instr] = list(body)
    while stack:
        instr = stack.pop()
        if isinstance(instr, (Read, Write)) and isinstance(instr.var, str):
            found.add(instr.var)
        elif isinstance(instr, If):
            stack.extend(instr.then)
            stack.extend(instr.orelse)
    return found


def has_dynamic_variables(body: Iterable[Instr]) -> bool:
    """Whether the body contains computed variable references."""
    stack: List[Instr] = list(body)
    while stack:
        instr = stack.pop()
        if isinstance(instr, (Read, Write)) and not isinstance(instr.var, str):
            return True
        if isinstance(instr, If):
            stack.extend(instr.then)
            stack.extend(instr.orelse)
    return False


class Program:
    """A bounded transactional program: sessions of transactions.

    Parameters
    ----------
    sessions:
        Mapping session id → list of transactions; iteration order defines
        the oracle order between sessions.
    name:
        Human-readable program name (used in benchmark reports).
    extra_variables:
        Global variables not literally present in any instruction (e.g. row
        variables addressed through computed names).
    initial_value:
        The default value the ``init`` transaction writes to every variable.
    initial_values:
        Per-variable overrides of the initial value.
    """

    def __init__(
        self,
        sessions: Dict[str, List[Transaction]],
        name: str = "program",
        extra_variables: Iterable[str] = (),
        initial_value: Hashable = 0,
        initial_values: Optional[Dict[str, Hashable]] = None,
    ):
        self.name = name
        self.sessions: Dict[str, Tuple[Transaction, ...]] = {
            sid: tuple(txns) for sid, txns in sessions.items()
        }
        self.initial_value = initial_value
        self.initial_values: Dict[str, Hashable] = dict(initial_values or {})
        self._session_rank = {sid: i for i, sid in enumerate(self.sessions)}
        variables = set(extra_variables)
        for txns in self.sessions.values():
            for txn in txns:
                variables |= static_variables(txn.body)
        self.variables: Tuple[str, ...] = tuple(sorted(variables))

    def initial_history(self):
        """The initial history for this program (init writes every variable)."""
        from ..core.history import History

        return History.initial(self.variables, self.initial_value, self.initial_values)

    # -- lookup -----------------------------------------------------------------

    def transaction(self, tid: TxnId) -> Transaction:
        """The program text of the transaction with id ``tid``."""
        return self.sessions[tid.session][tid.index]

    def session_length(self, session: str) -> int:
        return len(self.sessions[session])

    def transaction_count(self) -> int:
        return sum(len(t) for t in self.sessions.values())

    def all_transaction_ids(self) -> Iterator[TxnId]:
        for sid, txns in self.sessions.items():
            for index in range(len(txns)):
                yield TxnId(sid, index)

    # -- oracle order (§5.1) ------------------------------------------------------

    def oracle_key(self, tid: TxnId) -> Tuple[int, int]:
        """Position of a transaction in the oracle order ``<or``.

        Sessions are ordered by declaration, transactions within a session
        by session order — the concrete oracle instantiation suggested by
        the paper.  The ``init`` transaction precedes everything.
        """
        if tid.is_init:
            return (-1, -1)
        return (self._session_rank[tid.session], tid.index)

    def oracle_before(self, a: TxnId, b: TxnId) -> bool:
        """``a <or b``."""
        return self.oracle_key(a) < self.oracle_key(b)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        sizes = {sid: len(txns) for sid, txns in self.sessions.items()}
        return f"Program({self.name!r}, sessions={sizes})"


class ProgramBuilder:
    """Fluent construction of programs::

        p = ProgramBuilder("transfer")
        s = p.session("alice")
        t = s.transaction("deposit")
        t.read("a", "acct")
        t.write("acct", L("a") + 100)
        program = p.build()
    """

    class _SessionBuilder:
        def __init__(self, owner: "ProgramBuilder", sid: str):
            self._owner = owner
            self.sid = sid
            self.transactions: List[Transaction] = []

        def transaction(self, name: Optional[str] = None) -> "ProgramBuilder._TxnBuilder":
            return ProgramBuilder._TxnBuilder(self, name or f"txn{len(self.transactions)}")

        def add(self, transaction: Transaction) -> "ProgramBuilder._SessionBuilder":
            self.transactions.append(transaction)
            return self

    class _TxnBuilder:
        def __init__(self, session: "ProgramBuilder._SessionBuilder", name: str):
            self._session = session
            self._name = name
            self._instrs: List[Instr] = []
            session.transactions.append(Transaction(name, ()))
            self._slot = len(session.transactions) - 1

        def _emit(self, instr: Instr) -> "ProgramBuilder._TxnBuilder":
            self._instrs.append(instr)
            self._session.transactions[self._slot] = Transaction(self._name, tuple(self._instrs))
            return self

        def read(self, target: str, var) -> "ProgramBuilder._TxnBuilder":
            from .ast import read as _read

            return self._emit(_read(target, var))

        def write(self, var, value) -> "ProgramBuilder._TxnBuilder":
            from .ast import write as _write

            return self._emit(_write(var, value))

        def assign(self, target: str, value) -> "ProgramBuilder._TxnBuilder":
            from .ast import assign as _assign

            return self._emit(_assign(target, value))

        def if_(self, cond, then, orelse=()) -> "ProgramBuilder._TxnBuilder":
            from .ast import if_ as _if

            return self._emit(_if(cond, then, orelse))

        def abort(self) -> "ProgramBuilder._TxnBuilder":
            from .ast import abort as _abort

            return self._emit(_abort())

    def __init__(
        self,
        name: str = "program",
        extra_variables: Iterable[str] = (),
        initial_value: Hashable = 0,
        initial_values: Optional[Dict[str, Hashable]] = None,
    ):
        self.name = name
        self.extra_variables = tuple(extra_variables)
        self.initial_value = initial_value
        self.initial_values = dict(initial_values or {})
        self._sessions: "Dict[str, ProgramBuilder._SessionBuilder]" = {}

    def session(self, sid: Optional[str] = None) -> "_SessionBuilder":
        sid = sid or f"s{len(self._sessions)}"
        if sid not in self._sessions:
            self._sessions[sid] = ProgramBuilder._SessionBuilder(self, sid)
        return self._sessions[sid]

    def build(self) -> Program:
        return Program(
            {sid: sb.transactions for sid, sb in self._sessions.items()},
            name=self.name,
            extra_variables=self.extra_variables,
            initial_value=self.initial_value,
            initial_values=self.initial_values,
        )
