"""The bounded transactional programming language of the paper (Fig. 1)."""

from .ast import Abort, Assign, Body, If, Instr, Read, Write, abort, assign, if_, read, write
from .expr import Const, Expr, Fn, L, Local, concat, contains, fn, set_add, set_remove, to_expr
from .program import Program, ProgramBuilder, Transaction

__all__ = [
    "Abort",
    "Assign",
    "Body",
    "If",
    "Instr",
    "Read",
    "Write",
    "abort",
    "assign",
    "if_",
    "read",
    "write",
    "Const",
    "Expr",
    "Fn",
    "L",
    "Local",
    "concat",
    "contains",
    "fn",
    "set_add",
    "set_remove",
    "to_expr",
    "Program",
    "ProgramBuilder",
    "Transaction",
]

from .parser import ParseError, parse_program, parse_transaction

__all__ += ["ParseError", "parse_program", "parse_transaction"]
