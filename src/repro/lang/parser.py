"""A parser for the concrete syntax of the paper's language (Fig. 1).

Grammar (whitespace-insensitive; ``//`` line comments)::

    program  ::= session+
    session  ::= "session" IDENT "{" transaction+ "}"
    transaction ::= "transaction" [IDENT] "{" instr* "}"
    instr    ::= IDENT ":=" "read" "(" var ")" ";"
               | "write" "(" var "," expr ")" ";"
               | IDENT ":=" expr ";"
               | "if" "(" expr ")" block ["else" block]
               | "abort" ";"
    block    ::= "{" instr* "}"
    var      ::= IDENT                       -- global variable name
    expr     ::= comparison (("&&" | "||") comparison)*
    comparison ::= sum [("==" | "!=" | "<=" | ">=" | "<" | ">") sum]
    sum      ::= term (("+" | "-") term)*
    term     ::= atom ("*" atom)*
    atom     ::= NUMBER | IDENT | "!" atom | "(" expr ")"

Inside expressions, identifiers refer to *local* variables.  Example::

    session alice {
      transaction deposit {
        a := read(acct);
        write(acct, a + 100);
      }
    }
    session bob {
      transaction audit {
        b := read(acct);
        if (b < 0) { abort; }
      }
    }

``parse_program(text)`` returns a :class:`~repro.lang.program.Program`.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from .ast import Abort, Assign, If, Instr, Read, Write
from .expr import BinOp, Const, Expr, Local, UnOp, to_expr
from .program import Program, Transaction


class ParseError(ValueError):
    """Syntax error, with 1-based line/column of the offending token."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|//[^\n]*)
  | (?P<number>\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op>:=|==|!=|<=|>=|&&|\|\||[{}();,<>+\-*!])
    """,
    re.VERBOSE,
)

_KEYWORDS = frozenset({"session", "transaction", "read", "write", "if", "else", "abort"})


class _Token:
    __slots__ = ("kind", "text", "line", "column")

    def __init__(self, kind: str, text: str, line: int, column: int):
        self.kind = kind  # "number" | "ident" | "op" | "eof"
        self.text = text
        self.line = line
        self.column = column

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.kind}:{self.text!r}@{self.line}:{self.column}"


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    line, line_start = 1, 0
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r}", line, pos - line_start + 1)
        if match.lastgroup != "ws":
            tokens.append(
                _Token(match.lastgroup, match.group(), line, match.start() - line_start + 1)
            )
        newlines = match.group().count("\n")
        if newlines:
            line += newlines
            line_start = match.start() + match.group().rindex("\n") + 1
        pos = match.end()
    tokens.append(_Token("eof", "", line, pos - line_start + 1))
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.tokens = _tokenize(text)
        self.pos = 0

    # -- token plumbing ----------------------------------------------------

    @property
    def current(self) -> _Token:
        return self.tokens[self.pos]

    def _error(self, message: str) -> ParseError:
        tok = self.current
        got = tok.text or "end of input"
        return ParseError(f"{message}, got {got!r}", tok.line, tok.column)

    def accept(self, text: str) -> bool:
        if self.current.text == text and self.current.kind in ("op", "ident"):
            self.pos += 1
            return True
        return False

    def expect(self, text: str) -> _Token:
        if not self.accept(text):
            raise self._error(f"expected {text!r}")
        return self.tokens[self.pos - 1]

    def expect_ident(self, what: str) -> str:
        tok = self.current
        if tok.kind != "ident" or tok.text in _KEYWORDS:
            raise self._error(f"expected {what}")
        self.pos += 1
        return tok.text

    # -- grammar --------------------------------------------------------------

    def program(self, name: str) -> Program:
        sessions = {}
        while self.current.kind != "eof":
            sid, txns = self.session()
            if sid in sessions:
                raise self._error(f"duplicate session {sid!r}")
            sessions[sid] = txns
        if not sessions:
            raise self._error("expected at least one session")
        return Program(sessions, name=name)

    def session(self) -> Tuple[str, List[Transaction]]:
        self.expect("session")
        sid = self.expect_ident("session name")
        self.expect("{")
        txns: List[Transaction] = []
        while not self.accept("}"):
            txns.append(self.transaction(default_name=f"txn{len(txns)}"))
        if not txns:
            raise self._error("session needs at least one transaction")
        return sid, txns

    def transaction(self, default_name: str) -> Transaction:
        self.expect("transaction")
        if self.current.kind == "ident" and self.current.text != "{" and self.current.text not in _KEYWORDS:
            name = self.expect_ident("transaction name")
        else:
            name = default_name
        body = self.block()
        return Transaction(name, tuple(body))

    def block(self) -> List[Instr]:
        self.expect("{")
        instrs: List[Instr] = []
        while not self.accept("}"):
            instrs.append(self.instruction())
        return instrs

    def instruction(self) -> Instr:
        if self.accept("abort"):
            self.expect(";")
            return Abort()
        if self.accept("if"):
            self.expect("(")
            cond = self.expression()
            self.expect(")")
            then = self.block()
            orelse: List[Instr] = []
            if self.accept("else"):
                orelse = self.block()
            return If(cond, tuple(then), tuple(orelse))
        if self.accept("write"):
            self.expect("(")
            var = self.expect_ident("global variable")
            self.expect(",")
            value = self.expression()
            self.expect(")")
            self.expect(";")
            return Write(var, value)
        target = self.expect_ident("local variable")
        self.expect(":=")
        if self.accept("read"):
            self.expect("(")
            var = self.expect_ident("global variable")
            self.expect(")")
            self.expect(";")
            return Read(target, var)
        value = self.expression()
        self.expect(";")
        return Assign(target, value)

    # -- expressions (precedence climbing) ------------------------------------------

    def expression(self) -> Expr:
        left = self.comparison()
        while True:
            if self.accept("&&"):
                left = left & self.comparison()
            elif self.accept("||"):
                left = left | self.comparison()
            else:
                return left

    def comparison(self) -> Expr:
        left = self.sum()
        for symbol in ("==", "!=", "<=", ">=", "<", ">"):
            if self.accept(symbol):
                right = self.sum()
                return {
                    "==": left == right,
                    "!=": left != right,
                    "<=": left <= right,
                    ">=": left >= right,
                    "<": left < right,
                    ">": left > right,
                }[symbol]
        return left

    def sum(self) -> Expr:
        left = self.term()
        while True:
            if self.accept("+"):
                left = left + self.term()
            elif self.accept("-"):
                left = left - self.term()
            else:
                return left

    def term(self) -> Expr:
        left = self.atom()
        while self.accept("*"):
            left = left * self.atom()
        return left

    def atom(self) -> Expr:
        if self.accept("!"):
            return ~self.atom()
        if self.accept("("):
            inner = self.expression()
            self.expect(")")
            return inner
        tok = self.current
        if tok.kind == "number":
            self.pos += 1
            return Const(int(tok.text))
        if tok.kind == "ident" and tok.text not in _KEYWORDS:
            self.pos += 1
            return Local(tok.text)
        raise self._error("expected an expression")


def parse_program(text: str, name: str = "program") -> Program:
    """Parse the concrete syntax into a :class:`Program`."""
    return _Parser(text).program(name)


def parse_transaction(text: str, name: str = "txn") -> Transaction:
    """Parse a bare instruction block (``{...}`` optional) as one transaction."""
    stripped = text.strip()
    if not stripped.startswith("{"):
        stripped = "{" + stripped + "}"
    parser = _Parser(stripped)
    body = parser.block()
    if parser.current.kind != "eof":
        raise parser._error("trailing input after transaction body")
    return Transaction(name, tuple(body))
