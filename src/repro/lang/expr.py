"""Expression language over local variables (paper Fig. 1).

The paper leaves the syntax of expressions ``e`` and Boolean conditions
``φ(ā)`` unspecified; we provide a small, deterministic, side-effect-free
expression tree with Python operator overloading for ergonomic program
construction::

    L("a") + 1            # arithmetic
    L("a") == 3           # comparison (builds an Expr, not a bool!)
    (L("a") > 0) & flag   # conjunction — use &/| (not `and`/`or`)
    contains(L("s"), 5)   # membership
    fn("len", lambda s: len(s), L("s"))

Values are required to be hashable (they are stored on events); tuples and
``frozenset`` are the idiomatic containers for modelling SQL-style sets.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Dict, Hashable, Tuple, Union

Env = Dict[str, Hashable]


class Expr:
    """Base class of expression trees; subclasses implement :meth:`evaluate`."""

    def evaluate(self, env: Env) -> Hashable:
        raise NotImplementedError

    # -- operator sugar ----------------------------------------------------

    def __add__(self, other: "ExprLike") -> "Expr":
        return BinOp("+", operator.add, self, to_expr(other))

    def __radd__(self, other: "ExprLike") -> "Expr":
        return BinOp("+", operator.add, to_expr(other), self)

    def __sub__(self, other: "ExprLike") -> "Expr":
        return BinOp("-", operator.sub, self, to_expr(other))

    def __rsub__(self, other: "ExprLike") -> "Expr":
        return BinOp("-", operator.sub, to_expr(other), self)

    def __mul__(self, other: "ExprLike") -> "Expr":
        return BinOp("*", operator.mul, self, to_expr(other))

    def __eq__(self, other: object) -> "Expr":  # type: ignore[override]
        return BinOp("==", operator.eq, self, to_expr(other))

    def __ne__(self, other: object) -> "Expr":  # type: ignore[override]
        return BinOp("!=", operator.ne, self, to_expr(other))

    def __lt__(self, other: "ExprLike") -> "Expr":
        return BinOp("<", operator.lt, self, to_expr(other))

    def __le__(self, other: "ExprLike") -> "Expr":
        return BinOp("<=", operator.le, self, to_expr(other))

    def __gt__(self, other: "ExprLike") -> "Expr":
        return BinOp(">", operator.gt, self, to_expr(other))

    def __ge__(self, other: "ExprLike") -> "Expr":
        return BinOp(">=", operator.ge, self, to_expr(other))

    def __and__(self, other: "ExprLike") -> "Expr":
        return BinOp("and", lambda a, b: bool(a) and bool(b), self, to_expr(other))

    def __or__(self, other: "ExprLike") -> "Expr":
        return BinOp("or", lambda a, b: bool(a) or bool(b), self, to_expr(other))

    def __invert__(self) -> "Expr":
        return UnOp("not", operator.not_, self)

    # Expr overloads __eq__, so instances must stay unhashable-by-identity
    # to avoid silently using structural comparison in sets.
    __hash__ = None  # type: ignore[assignment]


ExprLike = Union[Expr, Hashable]


class Const(Expr):
    """A literal value."""

    def __init__(self, value: Hashable):
        self.value = value

    def evaluate(self, env: Env) -> Hashable:
        return self.value

    def __repr__(self) -> str:
        return repr(self.value)


class Local(Expr):
    """Reference to a local variable (``LVars`` of the paper)."""

    def __init__(self, name: str):
        self.name = name

    def evaluate(self, env: Env) -> Hashable:
        try:
            return env[self.name]
        except KeyError:
            raise NameError(f"local variable {self.name!r} used before assignment") from None

    def __repr__(self) -> str:
        return self.name


class BinOp(Expr):
    """Binary operation, with a printable symbol."""

    def __init__(self, symbol: str, fn: Callable[[Any, Any], Hashable], left: Expr, right: Expr):
        self.symbol = symbol
        self.fn = fn
        self.left = left
        self.right = right

    def evaluate(self, env: Env) -> Hashable:
        return self.fn(self.left.evaluate(env), self.right.evaluate(env))

    def __repr__(self) -> str:
        return f"({self.left!r} {self.symbol} {self.right!r})"


class UnOp(Expr):
    """Unary operation."""

    def __init__(self, symbol: str, fn: Callable[[Any], Hashable], operand: Expr):
        self.symbol = symbol
        self.fn = fn
        self.operand = operand

    def evaluate(self, env: Env) -> Hashable:
        return self.fn(self.operand.evaluate(env))

    def __repr__(self) -> str:
        return f"{self.symbol}({self.operand!r})"


class Fn(Expr):
    """Arbitrary deterministic function of sub-expressions."""

    def __init__(self, name: str, fn: Callable[..., Hashable], *args: ExprLike):
        self.name = name
        self.fn = fn
        self.args: Tuple[Expr, ...] = tuple(to_expr(a) for a in args)

    def evaluate(self, env: Env) -> Hashable:
        return self.fn(*(a.evaluate(env) for a in self.args))

    def __repr__(self) -> str:
        return f"{self.name}({', '.join(map(repr, self.args))})"


def to_expr(value: ExprLike) -> Expr:
    """Lift a plain value to :class:`Const`; pass expressions through."""
    return value if isinstance(value, Expr) else Const(value)


def L(name: str) -> Local:
    """Shorthand constructor for a local-variable reference."""
    return Local(name)


def fn(name: str, callable_: Callable[..., Hashable], *args: ExprLike) -> Fn:
    """Shorthand constructor for :class:`Fn`."""
    return Fn(name, callable_, *args)


def contains(container: ExprLike, item: ExprLike) -> Expr:
    """``item in container`` as an expression."""
    return Fn("contains", lambda c, i: i in c, container, item)


def set_add(container: ExprLike, item: ExprLike) -> Expr:
    """``container ∪ {item}`` over frozensets (SQL INSERT modelling)."""
    return Fn("set_add", lambda c, i: frozenset(c) | {i}, container, item)


def set_remove(container: ExprLike, item: ExprLike) -> Expr:
    """``container \\ {item}`` over frozensets (SQL DELETE modelling)."""
    return Fn("set_remove", lambda c, i: frozenset(c) - {i}, container, item)


def concat(prefix: ExprLike, suffix: ExprLike) -> Expr:
    """String concatenation — used to compute dynamic variable names."""
    return Fn("concat", lambda a, b: f"{a}{b}", prefix, suffix)
