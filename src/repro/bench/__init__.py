"""Benchmark harness reproducing every figure and table of the evaluation."""

from .diff import (
    BenchDiff,
    BenchFormatError,
    CaseDiff,
    diff_bench,
    diff_paths,
    load_bench,
    render_diff,
)
from .experiments import (
    FIG14_ALGORITHMS,
    CactusData,
    Fig14Result,
    ScalingPoint,
    fig14,
    fig15_sessions,
    fig15_transactions,
    table_f1,
    table_f2,
    table_f3,
)
from .harness import ALGORITHMS, RunRecord, run_suite
from .reporting import (
    format_table,
    render_cactus,
    render_fig14,
    render_records_table,
    render_scaling,
)

__all__ = [
    "BenchDiff",
    "BenchFormatError",
    "CaseDiff",
    "diff_bench",
    "diff_paths",
    "load_bench",
    "render_diff",
    "FIG14_ALGORITHMS",
    "CactusData",
    "Fig14Result",
    "ScalingPoint",
    "fig14",
    "fig15_sessions",
    "fig15_transactions",
    "table_f1",
    "table_f2",
    "table_f3",
    "ALGORITHMS",
    "RunRecord",
    "run_suite",
    "format_table",
    "render_cactus",
    "render_fig14",
    "render_records_table",
    "render_scaling",
]
