"""Benchmark harness: run algorithms on programs, record what the paper reports.

For every (algorithm, program) pair the paper's evaluation reports

* running time (with a timeout),
* memory consumption (we report the Python-heap peak via ``tracemalloc``
  plus the explorer's live-event peak — the polynomial-space quantity of
  Theorem 5.1),
* the number of *histories* output, and
* the number of *end states* (histories of complete executions before the
  ``Valid`` filter of explore-ce*; for DFS: leaves of the execution tree).
"""

from __future__ import annotations

import tracemalloc
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

from ..dpor.algorithms import dfs_baseline, explore_ce, explore_ce_star
from ..lang.program import Program


@dataclass
class RunRecord:
    """One (algorithm, program) measurement."""

    program: str
    algorithm: str
    seconds: float
    timed_out: bool
    histories: int
    end_states: int
    explore_calls: int
    blocked: int
    peak_stack: int
    peak_live_events: int
    peak_heap_bytes: int
    #: Worker processes used by the exploration (1 = in-process).
    workers: int = 1

    def row(self) -> Dict[str, object]:
        """Flat dict for table rendering."""
        return {
            "program": self.program,
            "algorithm": self.algorithm,
            "workers": self.workers,
            "histories": self.histories,
            "end_states": self.end_states,
            "time_s": round(self.seconds, 4),
            "timeout": self.timed_out,
            "peak_heap_kb": self.peak_heap_bytes // 1024,
            "peak_live_events": self.peak_live_events,
        }


#: An algorithm is a callable (program, timeout, workers=1) → RunRecord.
Algorithm = Callable[[Program, Optional[float], int], RunRecord]


def _measure(fn: Callable[[], RunRecord]) -> RunRecord:
    """Run ``fn`` twice: a plain pass for the reported time, then a
    ``tracemalloc`` pass for the Python-heap peak.

    The two quantities are measured in *separate* passes because
    ``tracemalloc`` hooks every allocation and slows allocation-heavy
    explorations by ~4x: timing under it measures the instrumentation, not
    the algorithm (and skews cross-algorithm comparisons toward whatever
    allocates least).  The runs are deterministic, so the second pass peaks
    at the same heap profile the first one had.  A timed-out run skips the
    memory pass — its partial-run peak would not be comparable anyway.
    """
    record = fn()
    if record.timed_out:
        return record
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    record.peak_heap_bytes = peak
    return record


def _dpor_algorithm(
    label: str, explore_level: str, valid_level: Optional[str]
) -> Algorithm:
    def run(program: Program, timeout: Optional[float], workers: int = 1) -> RunRecord:
        def body() -> RunRecord:
            if valid_level is None:
                result = explore_ce(
                    program,
                    explore_level,
                    collect_histories=False,
                    timeout=timeout,
                    workers=workers,
                )
            else:
                result = explore_ce_star(
                    program,
                    explore_level,
                    valid_level,
                    collect_histories=False,
                    timeout=timeout,
                    workers=workers,
                )
            stats = result.stats
            return RunRecord(
                program=program.name,
                algorithm=label,
                seconds=stats.seconds,
                timed_out=stats.timed_out,
                histories=stats.outputs,
                end_states=stats.end_states,
                explore_calls=stats.explore_calls,
                blocked=stats.blocked,
                peak_stack=stats.peak_stack,
                peak_live_events=stats.peak_live_events,
                peak_heap_bytes=0,
                workers=workers,
            )

        return _measure(body)

    return run


def _dfs_algorithm(label: str, level: str) -> Algorithm:
    def run(program: Program, timeout: Optional[float], workers: int = 1) -> RunRecord:
        # The DFS baseline has no parallel driver; ``workers`` is accepted
        # for a uniform Algorithm signature and recorded as 1.
        def body() -> RunRecord:
            result = dfs_baseline(program, level, timeout=timeout)
            return RunRecord(
                program=program.name,
                algorithm=label,
                seconds=result.seconds,
                timed_out=result.timed_out,
                histories=len(result.histories),
                end_states=result.end_states,
                explore_calls=result.steps,
                blocked=result.blocked,
                peak_stack=0,
                peak_live_events=0,
                peak_heap_bytes=0,
            )

        return _measure(body)

    return run


#: The seven algorithm configurations of Fig. 14, by the paper's labels.
ALGORITHMS: Dict[str, Algorithm] = {
    "CC": _dpor_algorithm("CC", "CC", None),
    "CC+SI": _dpor_algorithm("CC+SI", "CC", "SI"),
    "CC+SER": _dpor_algorithm("CC+SER", "CC", "SER"),
    "RA+CC": _dpor_algorithm("RA+CC", "RA", "CC"),
    "RC+CC": _dpor_algorithm("RC+CC", "RC", "CC"),
    "true+CC": _dpor_algorithm("true+CC", "TRUE", "CC"),
    "DFS(CC)": _dfs_algorithm("DFS(CC)", "CC"),
}


def run_suite(
    programs: Sequence[Program],
    algorithms: Sequence[str],
    timeout: Optional[float] = None,
    workers: int = 1,
) -> Dict[str, Dict[str, RunRecord]]:
    """Run each named algorithm on each program.

    ``workers`` > 1 runs each DPOR exploration on a process pool of that
    size (0 = one per CPU); the DFS baseline always runs in-process.
    Returns ``records[algorithm][program_name]``.
    """
    records: Dict[str, Dict[str, RunRecord]] = {}
    for name in algorithms:
        algorithm = ALGORITHMS[name]
        per_program: Dict[str, RunRecord] = {}
        for program in programs:
            per_program[program.name] = algorithm(program, timeout, workers)
        records[name] = per_program
    return records
