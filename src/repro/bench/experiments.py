"""The experiments of the evaluation section, one function per figure/table.

Each function returns plain data (rows / series) that the ``benchmarks/``
pytest targets print and assert shape properties over, and that
``repro.bench.reporting`` renders for EXPERIMENTS.md.

Sizes are parameters.  The paper runs 3 sessions × 3 transactions with a
30-minute timeout on an Apple M1 (JPF/Java); the defaults here are sized for
the pure-Python substrate so the full suite completes in minutes, and can be
dialed up to the paper's sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..apps.workloads import (
    application_suite,
    session_scaling_suite,
    transaction_scaling_suite,
)
from .harness import ALGORITHMS, RunRecord, run_suite

#: Fig. 14's algorithm line-up, in the paper's order.
FIG14_ALGORITHMS: Sequence[str] = (
    "CC",
    "CC+SI",
    "CC+SER",
    "RA+CC",
    "RC+CC",
    "true+CC",
    "DFS(CC)",
)


@dataclass
class CactusData:
    """Cactus-plot data: per algorithm, solved-instance metrics sorted ascending."""

    metric: str
    series: Dict[str, List[float]] = field(default_factory=dict)
    timeouts: Dict[str, int] = field(default_factory=dict)

    def add(self, algorithm: str, records: Sequence[RunRecord], value) -> None:
        solved = [r for r in records if not r.timed_out]
        self.series[algorithm] = sorted(value(r) for r in solved)
        self.timeouts[algorithm] = sum(1 for r in records if r.timed_out)


@dataclass
class Fig14Result:
    """All three cactus plots of Fig. 14 plus the raw records."""

    time: CactusData
    memory: CactusData
    end_states: CactusData
    records: Dict[str, Dict[str, RunRecord]]


def fig14(
    sessions: int = 3,
    txns_per_session: int = 2,
    programs_per_app: int = 5,
    timeout: Optional[float] = 60.0,
    algorithms: Sequence[str] = FIG14_ALGORITHMS,
    workers: int = 1,
    apps: Optional[Sequence[str]] = None,
) -> Fig14Result:
    """Fig. 14: compare the seven algorithm configurations on the app suite.

    ``apps`` overrides the suite's workload list; it accepts anything
    :func:`repro.apps.workloads.resolve_workload` does (application names,
    generator presets, ``gen:`` spec strings).  The default — the five
    hand-written applications — is what the checked-in benchmark baselines
    measure, so CI comparisons stay apples-to-apples.
    """
    if apps is None:
        suite = application_suite(sessions, txns_per_session, programs_per_app)
    else:
        suite = application_suite(sessions, txns_per_session, programs_per_app, apps=apps)
    records = run_suite(suite, algorithms, timeout=timeout, workers=workers)
    time_data = CactusData("time_s")
    memory_data = CactusData("peak_heap_kb")
    end_data = CactusData("end_states")
    for algorithm, per_program in records.items():
        rows = list(per_program.values())
        time_data.add(algorithm, rows, lambda r: r.seconds)
        memory_data.add(algorithm, rows, lambda r: r.peak_heap_bytes / 1024.0)
        end_data.add(algorithm, rows, lambda r: float(r.end_states))
    return Fig14Result(time_data, memory_data, end_data, records)


@dataclass
class ScalingPoint:
    """One x-axis point of Fig. 15: averages over the programs at that size."""

    size: int
    avg_seconds: float
    avg_peak_heap_kb: float
    avg_histories: float
    timeouts: int
    records: List[RunRecord]


def _scaling(suites: Dict[int, List], timeout: Optional[float]) -> List[ScalingPoint]:
    points: List[ScalingPoint] = []
    for size in sorted(suites):
        programs = suites[size]
        records = run_suite(programs, ["CC"], timeout=timeout)["CC"]
        rows = list(records.values())
        n = max(len(rows), 1)
        points.append(
            ScalingPoint(
                size=size,
                avg_seconds=sum(r.seconds for r in rows) / n,
                avg_peak_heap_kb=sum(r.peak_heap_bytes for r in rows) / n / 1024.0,
                avg_histories=sum(r.histories for r in rows) / n,
                timeouts=sum(1 for r in rows if r.timed_out),
                records=rows,
            )
        )
    return points


def fig15_sessions(
    max_sessions: int = 4,
    txns_per_session: int = 2,
    programs_per_app: int = 2,
    timeout: Optional[float] = 60.0,
) -> List[ScalingPoint]:
    """Fig. 15(a): explore-ce(CC) as the number of sessions grows."""
    return _scaling(
        session_scaling_suite(max_sessions, txns_per_session, programs_per_app), timeout
    )


def fig15_transactions(
    max_txns: int = 4,
    sessions: int = 2,
    programs_per_app: int = 2,
    timeout: Optional[float] = 60.0,
) -> List[ScalingPoint]:
    """Fig. 15(b): explore-ce(CC) as transactions per session grow."""
    return _scaling(
        transaction_scaling_suite(max_txns, sessions, programs_per_app), timeout
    )


def table_f1(
    sessions: int = 3,
    txns_per_session: int = 2,
    programs_per_app: int = 5,
    timeout: Optional[float] = 60.0,
    algorithms: Sequence[str] = FIG14_ALGORITHMS,
    workers: int = 1,
) -> Dict[str, Dict[str, RunRecord]]:
    """Table F.1: per-program rows for every algorithm configuration."""
    suite = application_suite(sessions, txns_per_session, programs_per_app)
    return run_suite(suite, algorithms, timeout=timeout, workers=workers)


def table_f2(
    max_sessions: int = 4,
    txns_per_session: int = 2,
    programs_per_app: int = 2,
    timeout: Optional[float] = 60.0,
) -> Dict[int, Dict[str, RunRecord]]:
    """Table F.2: per-program session-scalability rows for explore-ce(CC)."""
    suites = session_scaling_suite(max_sessions, txns_per_session, programs_per_app)
    return {
        size: run_suite(programs, ["CC"], timeout=timeout)["CC"]
        for size, programs in sorted(suites.items())
    }


def table_f3(
    max_txns: int = 4,
    sessions: int = 2,
    programs_per_app: int = 2,
    timeout: Optional[float] = 60.0,
) -> Dict[int, Dict[str, RunRecord]]:
    """Table F.3: per-program transaction-scalability rows for explore-ce(CC)."""
    suites = transaction_scaling_suite(max_txns, sessions, programs_per_app)
    return {
        size: run_suite(programs, ["CC"], timeout=timeout)["CC"]
        for size, programs in sorted(suites.items())
    }
