"""Plain-text rendering of benchmark results (tables and cactus series).

The paper presents Fig. 14 as cactus plots and Appendix F as tables; in a
terminal we print the cactus *series* (per-algorithm sorted metric values)
and aligned tables with the same columns as the appendix.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

from .experiments import CactusData, Fig14Result, ScalingPoint
from .harness import RunRecord


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Align columns; numbers right-aligned, text left-aligned."""
    materialized = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in materialized:
        lines.append(
            "  ".join(
                cell.rjust(widths[i]) if _numeric(cell) else cell.ljust(widths[i])
                for i, cell in enumerate(row)
            )
        )
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def _numeric(cell: str) -> bool:
    return bool(cell) and cell.replace(".", "", 1).replace("-", "", 1).isdigit()


def render_cactus(data: CactusData) -> str:
    """One line per algorithm: timeouts + the sorted metric series."""
    lines = [f"cactus[{data.metric}]"]
    for algorithm in data.series:
        series = ", ".join(_fmt(v) for v in data.series[algorithm])
        timeouts = data.timeouts.get(algorithm, 0)
        lines.append(f"  {algorithm:8s} (timeouts={timeouts}): [{series}]")
    return "\n".join(lines)


def render_fig14(result: Fig14Result) -> str:
    return "\n\n".join(
        [
            render_cactus(result.time),
            render_cactus(result.memory),
            render_cactus(result.end_states),
        ]
    )


def render_records_table(records: Mapping[str, Mapping[str, RunRecord]]) -> str:
    """Appendix-F-style table: one row per (program, algorithm)."""
    headers = [
        "program",
        "algorithm",
        "histories",
        "end states",
        "time (s)",
        "timeout",
        "peak heap (KB)",
        "live events",
    ]
    rows: List[Sequence[object]] = []
    programs = sorted({p for per in records.values() for p in per})
    for program in programs:
        for algorithm, per in records.items():
            if program not in per:
                continue
            r = per[program]
            rows.append(
                [
                    program,
                    algorithm,
                    r.histories,
                    r.end_states,
                    r.seconds,
                    "TL" if r.timed_out else "",
                    r.peak_heap_bytes // 1024,
                    r.peak_live_events,
                ]
            )
    return format_table(headers, rows)


def render_scaling(points: Sequence[ScalingPoint], axis: str) -> str:
    headers = [axis, "avg time (s)", "avg peak heap (KB)", "avg histories", "timeouts"]
    rows = [
        [p.size, p.avg_seconds, p.avg_peak_heap_kb, p.avg_histories, p.timeouts]
        for p in points
    ]
    return format_table(headers, rows)
