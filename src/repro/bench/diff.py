"""Compare two benchmark result files (``repro bench diff``).

The benchmark suites under ``benchmarks/`` emit machine-readable
``BENCH_<name>.json`` files (schema ``repro-bench-v1``, written by
``benchmarks/conftest.py``): a list of named cases with wall-clock seconds,
stamped with the commit hash and Python version that produced them.  This
module diffs two such files — or two directories of them — case by case:

* per-case **speedup** = baseline seconds / current seconds (> 1 is faster);
* the **geometric mean** of the speedups (the headline number — robust to
  cases of wildly different magnitude);
* **regressions**: cases whose speedup falls below a threshold (default
  0.8, i.e. more than 25% slower than baseline).

CI runs this against the committed baseline after every benchmark job;
the non-zero exit on regression is what makes the check automatable.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .reporting import format_table

#: Speedups below this are regressions (20% slower than baseline).
DEFAULT_THRESHOLD = 0.8

#: The JSON schema tag written by ``benchmarks/conftest.py``.
SCHEMA = "repro-bench-v1"


class BenchFormatError(ValueError):
    """A result file is not a valid ``repro-bench-v1`` document."""


@dataclass(frozen=True)
class CaseDiff:
    """One benchmark case present in both result files."""

    name: str
    baseline_s: float
    current_s: float

    @property
    def speedup(self) -> float:
        """baseline / current — greater than 1 means the case got faster."""
        return self.baseline_s / self.current_s

    def regressed(self, threshold: float = DEFAULT_THRESHOLD) -> bool:
        return self.speedup < threshold


@dataclass
class BenchDiff:
    """All comparable cases of one benchmark file pair."""

    name: str
    cases: List[CaseDiff]
    #: Case names present in only one of the two files (never compared).
    only_baseline: List[str] = field(default_factory=list)
    only_current: List[str] = field(default_factory=list)
    #: Cases skipped because one side recorded a timeout.
    skipped_timeouts: List[str] = field(default_factory=list)

    @property
    def geomean_speedup(self) -> Optional[float]:
        """Geometric mean of the per-case speedups (``None`` if no cases)."""
        if not self.cases:
            return None
        return math.exp(sum(math.log(c.speedup) for c in self.cases) / len(self.cases))

    def regressions(self, threshold: float = DEFAULT_THRESHOLD) -> List[CaseDiff]:
        return [c for c in self.cases if c.regressed(threshold)]


def load_bench(path: Path) -> Dict:
    """Load and validate one ``BENCH_*.json`` document."""
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as err:
        raise BenchFormatError(f"{path}: {err}") from None
    if not isinstance(doc, dict) or not isinstance(doc.get("cases"), list):
        raise BenchFormatError(f"{path}: missing 'cases' list (not a {SCHEMA} file?)")
    for case in doc["cases"]:
        if not isinstance(case, dict) or "name" not in case or "seconds" not in case:
            raise BenchFormatError(f"{path}: malformed case {case!r}")
    return doc


def diff_bench(baseline_path: Path, current_path: Path) -> BenchDiff:
    """Case-by-case diff of two result files.

    Cases are matched by name.  Pairs where either side timed out are
    excluded from the speedup statistics (a timeout's recorded time bounds
    nothing) and reported in :attr:`BenchDiff.skipped_timeouts`.
    """
    base_doc = load_bench(baseline_path)
    curr_doc = load_bench(current_path)
    base = {c["name"]: c for c in base_doc["cases"]}
    curr = {c["name"]: c for c in curr_doc["cases"]}
    diff = BenchDiff(name=Path(current_path).stem, cases=[])
    diff.only_baseline = sorted(set(base) - set(curr))
    diff.only_current = sorted(set(curr) - set(base))
    for name in sorted(set(base) & set(curr)):
        b, c = base[name], curr[name]
        if b.get("timed_out") or c.get("timed_out"):
            diff.skipped_timeouts.append(name)
            continue
        if not b["seconds"] or not c["seconds"]:
            continue  # degenerate zero-time case; nothing to compare
        diff.cases.append(CaseDiff(name, float(b["seconds"]), float(c["seconds"])))
    return diff


def matching_pairs(baseline_dir: Path, current_dir: Path) -> List[Tuple[Path, Path]]:
    """``BENCH_*.json`` files present in both directories, by filename."""
    baseline_dir, current_dir = Path(baseline_dir), Path(current_dir)
    names = {p.name for p in baseline_dir.glob("BENCH_*.json")}
    names &= {p.name for p in current_dir.glob("BENCH_*.json")}
    return [(baseline_dir / n, current_dir / n) for n in sorted(names)]


def diff_paths(baseline: Path, current: Path) -> List[BenchDiff]:
    """Diff two files, or every same-named ``BENCH_*.json`` of two directories."""
    baseline, current = Path(baseline), Path(current)
    if baseline.is_dir() != current.is_dir():
        raise BenchFormatError("baseline and current must both be files or both be directories")
    if baseline.is_dir():
        pairs = matching_pairs(baseline, current)
        if not pairs:
            raise BenchFormatError(
                f"no BENCH_*.json present in both {baseline} and {current}"
            )
        return [diff_bench(b, c) for b, c in pairs]
    return [diff_bench(baseline, current)]


def render_diff(diffs: List[BenchDiff], threshold: float = DEFAULT_THRESHOLD) -> str:
    """Human-readable report: one table per file plus a summary line each."""
    blocks: List[str] = []
    for diff in diffs:
        rows = [
            (
                case.name,
                f"{case.baseline_s:.4g}",
                f"{case.current_s:.4g}",
                f"{case.speedup:.2f}x" + ("  << REGRESSION" if case.regressed(threshold) else ""),
            )
            for case in diff.cases
        ]
        table = format_table(["case", "baseline (s)", "current (s)", "speedup"], rows)
        geomean = diff.geomean_speedup
        summary = [
            f"{diff.name}: {len(diff.cases)} cases, "
            + (f"geomean speedup {geomean:.2f}x" if geomean else "nothing comparable")
        ]
        if diff.skipped_timeouts:
            summary.append(f"  skipped (timeout on either side): {len(diff.skipped_timeouts)}")
        if diff.only_baseline or diff.only_current:
            summary.append(
                f"  unmatched cases: {len(diff.only_baseline)} baseline-only, "
                f"{len(diff.only_current)} current-only"
            )
        regressions = diff.regressions(threshold)
        if regressions:
            summary.append(
                f"  {len(regressions)} regression(s) below {threshold:.2f}x: "
                + ", ".join(c.name for c in regressions)
            )
        blocks.append(table + "\n" + "\n".join(summary))
    return "\n\n".join(blocks)
