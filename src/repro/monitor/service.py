"""The monitor service loop: JSONL in, stats lines and a verdict out.

:func:`monitor_stream` wires a line iterable (stdin, a file, a socket
makefile) through the streaming reader (:func:`repro.trace.stream
.stream_trace`) into a :class:`~repro.monitor.core.Monitor` (or a
:class:`~repro.monitor.shard.ShardedMonitor` when ``shards > 1``),
emitting a one-line stats report every ``stats_every`` events::

    [monitor] events=200000 ev/s=112903 live=41 evicted=24310 violations=0

:func:`serve` binds a TCP port and monitors one connection's stream to
EOF — the long-running-service entry point behind ``repro monitor
--port``.  Both return the :class:`~repro.monitor.core.MonitorReport`
whose ``exit_code`` the CLI propagates (0 clean, 1 violated).
"""

from __future__ import annotations

import socket
import sys
import time
from typing import Callable, Iterable, Optional

from ..trace.stream import stream_trace
from .core import Monitor, MonitorConfig, MonitorReport
from .shard import ShardedMonitor


def _stats_line(monitor, events: int, elapsed: float) -> str:
    stats = monitor.stats()
    rate = events / elapsed if elapsed > 0 else 0.0
    return (
        f"[monitor] events={events} ev/s={rate:.0f} live={stats.live} "
        f"evicted={stats.evicted} violations={int(stats.violated)}"
    )


def monitor_stream(
    lines: Iterable[str],
    config: MonitorConfig = MonitorConfig(),
    shards: int = 1,
    stats_every: int = 0,
    emit: Optional[Callable[[str], None]] = None,
) -> MonitorReport:
    """Monitor one JSONL trace stream to EOF; returns the final report.

    ``shards > 1`` routes through :class:`ShardedMonitor` (faster, may
    miss cross-shard anomalies — see its docstring); ``stats_every = N``
    emits a stats line every N events via ``emit`` (default: stderr).
    """
    if emit is None:
        emit = lambda line: print(line, file=sys.stderr, flush=True)
    header, events = stream_trace(lines)
    monitor = (
        ShardedMonitor(header, config, shards=shards)
        if shards != 1
        else Monitor(header, config)
    )
    started = time.perf_counter()
    count = 0
    for event in events:
        monitor.feed(event)
        count += 1
        if stats_every and count % stats_every == 0:
            emit(_stats_line(monitor, count, time.perf_counter() - started))
    report = monitor.report()
    if stats_every:
        emit(_stats_line(monitor, count, time.perf_counter() - started))
    return report


def serve(
    port: int,
    config: MonitorConfig = MonitorConfig(),
    host: str = "127.0.0.1",
    shards: int = 1,
    stats_every: int = 0,
    emit: Optional[Callable[[str], None]] = None,
    ready: Optional[Callable[[int], None]] = None,
) -> MonitorReport:
    """Listen on ``host:port``, monitor one connection's stream to EOF.

    ``port=0`` binds an ephemeral port; ``ready`` (if given) receives the
    bound port once the socket is listening — how tests and supervisors
    learn where to connect.  The connection's bytes are decoded as UTF-8
    JSONL exactly like a file; the report is returned when the peer
    closes its end.
    """
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as server:
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind((host, port))
        server.listen(1)
        if ready is not None:
            ready(server.getsockname()[1])
        conn, _ = server.accept()
        with conn, conn.makefile("r", encoding="utf-8") as lines:
            return monitor_stream(
                lines, config, shards=shards, stats_every=stats_every, emit=emit
            )
