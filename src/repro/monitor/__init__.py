"""`repro monitor`: a bounded-memory streaming isolation monitor.

This package turns the per-event :class:`~repro.checking.online.OnlineChecker`
into a *long-running service*: ingest v1 JSONL trace events forever (stdin
or socket), decide the configured isolation level after every event, and
keep memory O(live window) instead of O(history) by garbage-collecting
transactions that provably cannot participate in any future violation
(:mod:`repro.isolation.liveness` holds the per-level predicates; the
equivalence with the unbounded checker is property-tested on every prefix
in ``tests/test_monitor_gc.py``).

Three layers:

* :class:`Monitor` (:mod:`.core`) — one GC'd checker plus the eviction
  driver: retention window, periodic collection, freshness tracking for
  the ``assume-fresh`` mode, and live stats;
* :class:`ShardedMonitor` (:mod:`.shard`) — hash-partitions reads/writes
  by variable across forked worker processes (control events are
  replicated), multiplying throughput; sound (never a false alarm) but
  blind to violations whose variables land on different shards;
* :func:`monitor_stream` / :func:`serve` (:mod:`.service`) — the
  stdin/socket ingestion loop with periodic stats lines, backing the
  ``repro monitor`` CLI command.
"""

from .core import (
    Monitor,
    MonitorConfig,
    MonitorReport,
    MonitorStaleReadError,
    MonitorStats,
)
from .shard import ShardedMonitor
from .service import monitor_stream, serve

__all__ = [
    "Monitor",
    "MonitorConfig",
    "MonitorReport",
    "MonitorStaleReadError",
    "MonitorStats",
    "ShardedMonitor",
    "monitor_stream",
    "serve",
]
