"""Sharded monitoring: partition checker state by variable across processes.

One monitor's per-event cost grows with the density of reads and writers
per variable, and a single Python process caps throughput regardless.
:class:`ShardedMonitor` splits the stream by **variable**: each ``read``
and ``write`` event is routed to the shard owning its variable
(``crc32(var) % shards`` — deterministic across runs and machines, unlike
the randomised builtin ``hash``), while ``begin``/``commit``/``abort``
are replicated to every shard so all projections agree on sessions,
session order and transaction fates::

    stream ──┬── begin/commit/abort ──► every shard
             └── read/write x ───────► shard crc32(x) % N

                shard 0: Monitor over {vars with crc32%N == 0}
                shard 1: Monitor over {vars with crc32%N == 1}
                ...

**Soundness** (no false alarms): each shard checks the projection of the
history onto its variables.  Every axiom instance of the projection —
a read, its wr source, a visible writer of the *same* variable — is an
instance of the full history, and RC/RA/CC premises only consult ``so``
and ``wr`` edges, all of which the projection preserves among its
transactions... except wr edges of *other* shards' variables, which can
only make a premise true in the full history that is false in the
projection.  Forced edges are therefore a subset of the full history's,
so a cycle found by any shard is a cycle of the full history: a sharded
violation verdict is always real, at every level.

**Completeness caveat**: an anomaly whose witness cycle threads reads of
variables owned by *different* shards (e.g. the classic RC gadget over
``x`` and ``y``) is invisible when those variables are split.  Sharding
trades exhaustiveness for throughput — production monitoring of a
firehose, not certification.  ``shards=1`` is exact and equals a plain
:class:`~repro.monitor.core.Monitor`.

Workers are forked processes fed ``(global_index, event)`` batches over
pipes (reusing the fork-pool conventions of :mod:`repro.dpor.parallel`);
on platforms without ``fork`` the shards run inline in one process —
same verdicts, no parallel speedup.
"""

from __future__ import annotations

import zlib
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from ..checking.online import OnlineStep
from ..dpor.parallel import _forkable, resolve_workers
from ..trace.format import TraceEvent, TraceHeader
from .core import Monitor, MonitorConfig, MonitorReport, MonitorStaleReadError, MonitorStats

#: Events buffered per shard before a batch is shipped to its worker.
BATCH_SIZE = 512

#: Event kinds replicated to every shard (everything non-variable).
_CONTROL_OPS = frozenset(("begin", "commit", "abort"))


def shard_of(var: str, shards: int) -> int:
    """The shard owning ``var`` — stable across runs, machines, pythons."""
    return zlib.crc32(var.encode("utf-8")) % shards


class _ShardWorker:
    """One shard's monitor plus its first-violation bookkeeping.

    Runs identically inline (coordinator process) and inside a forked
    worker — the pipe protocol in :func:`_worker_main` is a thin shell
    around this.
    """

    def __init__(self, header: TraceHeader, config: MonitorConfig):
        self.monitor = Monitor(header, config)
        self.first: Optional[Tuple[int, OnlineStep]] = None

    def feed(self, global_index: int, event: TraceEvent) -> None:
        step = self.monitor.feed(event)
        if step.newly_violated and self.first is None:
            self.first = (global_index, step)

    def result(self) -> Tuple[MonitorStats, int, Optional[Tuple[int, OnlineStep]]]:
        return self.monitor.stats(), self.monitor.peak_live, self.first


def _worker_main(conn, header: TraceHeader, config: MonitorConfig) -> None:
    """Forked worker loop: drain batches, answer stats, report on done."""
    worker = _ShardWorker(header, config)
    try:
        while True:
            kind, payload = conn.recv()
            if kind == "batch":
                for global_index, event in payload:
                    worker.feed(global_index, event)
            elif kind == "stats":
                conn.send(("stats", worker.monitor.stats()))
            else:  # "done"
                conn.send(("result", worker.result()))
                return
    except MonitorStaleReadError as err:
        conn.send(("error", str(err)))
    finally:
        conn.close()


class ShardedMonitor:
    """Variable-sharded streaming monitor (see module docstring).

    Same surface as :class:`~repro.monitor.core.Monitor`: :meth:`feed`
    per event, :meth:`run` for an iterable, :meth:`stats` /
    :meth:`report` for results — :meth:`close` (or :meth:`report`, which
    calls it) must run before the final verdict is complete.  With
    ``processes=True`` (the default where ``fork`` exists) each shard is
    a forked worker; pass ``processes=False`` to force inline shards.
    """

    def __init__(
        self,
        header: TraceHeader,
        config: MonitorConfig = MonitorConfig(),
        shards: int = 0,
        processes: Optional[bool] = None,
    ):
        self.header = header
        self.config = config
        self.shards = resolve_workers(shards)
        if processes is None:
            processes = _forkable() and self.shards > 1
        if processes and not _forkable():
            raise RuntimeError("sharded worker processes require the fork start method")
        self.processes = processes
        self._events = 0
        self._closed = False
        self._report: Optional[MonitorReport] = None
        if not processes:
            self._workers: List[_ShardWorker] = [
                _ShardWorker(header, config) for _ in range(self.shards)
            ]
            self._conns = None
        else:
            import multiprocessing

            ctx = multiprocessing.get_context("fork")
            self._conns = []
            self._procs = []
            for _ in range(self.shards):
                parent, child = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main, args=(child, header, config), daemon=True
                )
                proc.start()
                child.close()
                self._conns.append(parent)
                self._procs.append(proc)
            self._batches: List[List[Tuple[int, TraceEvent]]] = [
                [] for _ in range(self.shards)
            ]

    # -- ingestion --------------------------------------------------------------

    def feed(self, event: TraceEvent) -> None:
        """Route one event: control events to all shards, data to one."""
        if self._closed:
            raise RuntimeError("cannot feed a closed ShardedMonitor")
        global_index = self._events
        self._events += 1
        if event.op in _CONTROL_OPS:
            targets = range(self.shards)
        else:
            targets = (shard_of(event.var, self.shards),)
        if self._conns is None:
            for i in targets:
                self._workers[i].feed(global_index, event)
        else:
            for i in targets:
                batch = self._batches[i]
                batch.append((global_index, event))
                if len(batch) >= BATCH_SIZE:
                    self._send(i, ("batch", batch))
                    self._batches[i] = []

    def run(self, events) -> MonitorReport:
        """Feed every event, then close and return the merged report."""
        for event in events:
            self.feed(event)
        return self.report()

    # -- results ----------------------------------------------------------------

    @property
    def events(self) -> int:
        """Events ingested by the coordinator so far."""
        return self._events

    def stats(self) -> MonitorStats:
        """Merged point-in-time stats across the shards (synchronous:
        process workers first drain their queued batches)."""
        if self._conns is None:
            parts = [w.monitor.stats() for w in self._workers]
        else:
            self._flush()
            for i in range(self.shards):
                self._send(i, ("stats", None))
            parts = [self._recv(i, "stats") for i in range(self.shards)]
        return self._merge_stats(parts)

    def close(self) -> MonitorReport:
        """Flush, collect every shard's result and merge the verdicts."""
        if self._report is not None:
            return self._report
        self._closed = True
        if self._conns is None:
            results = [w.result() for w in self._workers]
        else:
            self._flush()
            for i in range(self.shards):
                self._send(i, ("done", None))
            results = [self._recv(i, "result") for i in range(self.shards)]
            for proc in self._procs:
                proc.join()
        stats = self._merge_stats([r[0] for r in results])
        peak = max((r[1] for r in results), default=0)
        firsts = [r[2] for r in results if r[2] is not None]
        first: Optional[OnlineStep] = None
        if firsts:
            global_index, step = min(firsts, key=lambda pair: pair[0])
            first = replace(step, index=global_index)
        self._report = MonitorReport(
            config=self.config,
            ok=not firsts,
            stats=stats,
            first_violation=first,
            peak_live=peak,
        )
        return self._report

    def report(self) -> MonitorReport:
        return self.close()

    # -- plumbing ---------------------------------------------------------------

    def _merge_stats(self, parts: List[MonitorStats]) -> MonitorStats:
        return MonitorStats(
            events=self._events,
            live=sum(p.live for p in parts),
            evicted=sum(p.evicted for p in parts),
            pruned=sum(p.pruned for p in parts),
            collections=sum(p.collections for p in parts),
            pending=max((p.pending for p in parts), default=0),
            violated=any(p.violated for p in parts),
        )

    def _flush(self) -> None:
        for i, batch in enumerate(self._batches):
            if batch:
                self._send(i, ("batch", batch))
                self._batches[i] = []

    def _send(self, shard: int, message) -> None:
        try:
            self._conns[shard].send(message)
        except (BrokenPipeError, OSError):
            # The worker fail-stopped mid-stream; its parting message on
            # the pipe explains why (e.g. a stale read in assume-fresh
            # mode) — surface that instead of the broken pipe.
            try:
                kind, payload = self._conns[shard].recv()
            except EOFError:
                raise RuntimeError(f"shard {shard} died unexpectedly") from None
            if kind == "error":
                raise MonitorStaleReadError(f"shard {shard}: {payload}") from None
            raise RuntimeError(f"shard {shard} died after sending {kind!r}") from None

    def _recv(self, shard: int, expected: str):
        kind, payload = self._conns[shard].recv()
        if kind == "error":
            raise MonitorStaleReadError(f"shard {shard}: {payload}")
        if kind != expected:
            raise RuntimeError(f"shard {shard}: expected {expected}, got {kind}")
        return payload
