"""The streaming monitor: a GC'd :class:`OnlineChecker` plus its eviction driver.

:class:`Monitor` decides **one** isolation level over an unbounded event
stream with bounded memory.  Per event it feeds the checker; every
``gc_every`` events it *collects*: prune the quantifier state of settled
readers (:meth:`OnlineChecker.prune_settled`), then — only while the
verdict is still consistent, so a closed violation cycle is never
compacted away — evict every transaction the level's liveness predicate
(:func:`repro.isolation.liveness.evictable_transactions`) clears, minus a
retention window of the ``window`` most recently completed transactions
(cheap insurance against borderline races; correctness never depends on
it in ``keep`` mode).

Two retention modes:

* ``keep`` (default) — *exact*: committed writers are retained while
  their variable's reads may still quantify over them, so every prefix
  verdict and the first-violation event equal the unbounded checker's.
  Live state is bounded on streams whose variables keep being overwritten
  (dead writers settle and go), but a variable written once and read
  forever pins its writer.
* ``assume-fresh`` — *bounded unconditionally*, for levels in
  :data:`~repro.isolation.liveness.FRESH_CAPABLE_LEVELS`: committed
  writers outside the freshness window (the last ``window`` committed
  writers per variable) are evicted too, under the assumption that no
  future read names them.  A read that breaks the assumption raises
  :class:`MonitorStaleReadError` — fail-stop, never a silent wrong
  verdict.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, Optional, Set, Tuple

from ..checking.online import Frontier, OnlineChecker, OnlineStep
from ..core.events import TxnId
from ..isolation.base import get_level
from ..isolation.liveness import FRESH_CAPABLE_LEVELS, evictable_transactions
from ..trace.format import EvictedTransactionError, TraceEvent, TraceHeader

#: Retention modes (see module docstring).
MODES: Tuple[str, ...] = ("keep", "assume-fresh")


class MonitorStaleReadError(RuntimeError):
    """A read named a writer the ``assume-fresh`` mode already evicted.

    The stream's actual staleness exceeds the monitor's ``window``: either
    raise the window or run in ``keep`` mode.  The monitor fails stop —
    the verdict so far is still exact, but the stream cannot be continued.
    """


@dataclass(frozen=True)
class MonitorConfig:
    """Tuning knobs for a :class:`Monitor`.

    ``isolation`` — the single level to decide (any registered name —
    the classical five, the session guarantees, PSI, PC or BS-3; see
    ``repro levels``);
    ``window`` — completed transactions shielded from eviction, and (in
    ``assume-fresh`` mode) the per-variable freshness horizon;
    ``gc_every`` — events between collections (1 = collect per event,
    maximally tight memory, maximal GC overhead);
    ``evict_batch`` — victims accumulated before the matrices are
    physically compacted: compaction cost is O(live²) regardless of how
    many nodes leave, so batching divides the amortised cost at the price
    of a proportionally higher live-window ceiling (1 = compact whenever
    anything is evictable, tightest memory);
    ``mode`` — ``keep`` (exact) or ``assume-fresh`` (bounded, fail-stop).
    """

    isolation: str = "RC"
    window: int = 64
    gc_every: int = 128
    evict_batch: int = 16
    mode: str = "keep"

    def __post_init__(self) -> None:
        try:
            canonical = get_level(self.isolation).name
        except KeyError as err:
            raise ValueError(err.args[0]) from None
        object.__setattr__(self, "isolation", canonical)
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.gc_every < 1:
            raise ValueError(f"gc_every must be >= 1, got {self.gc_every}")
        if self.evict_batch < 1:
            raise ValueError(f"evict_batch must be >= 1, got {self.evict_batch}")
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")
        if self.mode == "assume-fresh" and self.isolation not in FRESH_CAPABLE_LEVELS:
            raise ValueError(
                f"assume-fresh eviction is only exact-under-assumption at "
                f"{sorted(FRESH_CAPABLE_LEVELS)} (static premises); "
                f"{self.isolation} premises can fire through an evicted "
                f"writer's session — use mode='keep'"
            )


@dataclass(frozen=True)
class MonitorStats:
    """A point-in-time counters snapshot (one per stats interval)."""

    events: int
    live: int
    evicted: int
    pruned: int
    collections: int
    pending: int
    violated: bool


@dataclass(frozen=True)
class MonitorReport:
    """The end-of-stream summary the CLI and sharding layer consume."""

    config: MonitorConfig
    ok: bool
    stats: MonitorStats
    first_violation: Optional[OnlineStep] = None
    peak_live: int = 0

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1


class Monitor:
    """Bounded-memory streaming decision of one isolation level.

    Feed :class:`~repro.trace.format.TraceEvent` objects via :meth:`feed`
    (or a whole iterable via :meth:`run`); read :attr:`ok`,
    :meth:`stats` and :meth:`report` at any point.  Equivalence with the
    unbounded checker on every prefix is property-tested in
    ``tests/test_monitor_gc.py``.
    """

    def __init__(self, header: TraceHeader, config: MonitorConfig = MonitorConfig()):
        self.config = config
        self.checker = OnlineChecker(
            header.variables,
            initial=header.initial,
            levels=(config.isolation,),
            record_steps=False,
        )
        #: The most recently completed transactions, shielded from eviction.
        self._recent: Deque[TxnId] = deque(maxlen=config.window)
        #: assume-fresh only: per variable, the last ``window`` committed
        #: writers — the transactions a well-behaved stream may still name
        #: as a read source.  Everything older is fair game.
        self._fresh: Optional[Dict[str, Deque[TxnId]]] = (
            {var: deque(maxlen=config.window) for var in header.variables}
            if config.mode == "assume-fresh"
            else None
        )
        self._since_gc = 0
        self._pruned = 0
        self._collections = 0
        self._peak_live = 0
        self._violated = False

    # -- ingestion --------------------------------------------------------------

    def feed(self, event: TraceEvent) -> OnlineStep:
        """Ingest one event; returns the checker's step for it."""
        try:
            step = self.checker.feed(event)
        except EvictedTransactionError as err:
            raise MonitorStaleReadError(
                f"stream staleness exceeds the assume-fresh window "
                f"(window={self.config.window}): {err}"
            ) from err
        if step.newly_violated:
            self._violated = True
        if event.op in ("commit", "abort"):
            self._recent.append(event.tid)
            if self._fresh is not None and event.op == "commit":
                for var in self.checker.replayer.visible_writes(event.tid):
                    self._fresh[var].append(event.tid)
        self._since_gc += 1
        if self._since_gc >= self.config.gc_every:
            self.collect()
        live = self.checker.live_transaction_count
        if live > self._peak_live:
            self._peak_live = live
        return step

    def run(self, events: Iterable[TraceEvent]) -> MonitorReport:
        """Feed every event, then return the final :meth:`report`."""
        for event in events:
            self.feed(event)
        return self.report()

    # -- garbage collection ------------------------------------------------------

    def collect(self) -> int:
        """One collection: prune settled quantifier state, evict dead
        transactions.  Returns the number of transactions evicted.

        Eviction is skipped while the level is violated: compacting nodes
        of a closed cycle out of the maintained closure could erase the
        violation, and a violated monitor has nothing left to decide.
        """
        self._since_gc = 0
        self._collections += 1
        self._pruned += self.checker.prune_settled()
        if self._violated:
            return 0
        fresh: Optional[Set[TxnId]] = None
        if self._fresh is not None:
            fresh = set()
            for writers in self._fresh.values():
                fresh.update(writers)
        victims = evictable_transactions(
            self.checker,
            self.config.isolation,
            protect=self._recent,
            fresh_writers=fresh,
        )
        if len(victims) < self.config.evict_batch:
            return 0
        return self.checker.evict(victims)

    # -- results ----------------------------------------------------------------

    @property
    def ok(self) -> bool:
        """Whether the level still holds on the whole stream so far."""
        return not self._violated

    def frontier(self) -> Frontier:
        return self.checker.frontier()

    def stats(self) -> MonitorStats:
        return MonitorStats(
            events=self.checker.replayer.event_count,
            live=self.checker.live_transaction_count,
            evicted=self.checker.evicted_count,
            pruned=self._pruned,
            collections=self._collections,
            pending=len(self.checker.pending_transactions()),
            violated=self._violated,
        )

    @property
    def peak_live(self) -> int:
        """The largest live-transaction window seen so far."""
        return self._peak_live

    def first_violation(self) -> Optional[OnlineStep]:
        """The step that first violated the level, if any (exact: the
        checker records newly-violating steps even with recording off)."""
        return self.checker.first_violation(self.config.isolation)

    def report(self) -> MonitorReport:
        return MonitorReport(
            config=self.config,
            ok=self.ok,
            stats=self.stats(),
            first_violation=self.first_violation(),
            peak_live=self._peak_live,
        )
