"""Ordered histories ``(h, <)`` — the objects the DPOR algorithms explore.

The exploration algorithms of §4–§6 work with a history plus a total order
``<`` over all its events, consistent with ``po``, ``so`` and ``wr``.  The
order records the succession in which events were *added* to the history
(modulo swaps), and drives ``ComputeReorderings``/``Swap``/``Optimality``.

Invariants maintained by the exploration (checked in tests):

* at most one transaction is pending, so transactions occupy *contiguous
  blocks* of ``<``; this makes ``<`` induce a total order on transactions;
* every read event follows the transaction it reads from (footnote 7 of the
  paper).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .bitrel import RelationMatrix
from .events import Event, EventId, TxnId
from .history import History


class OrderedHistory:
    """An immutable pair of a :class:`History` and a total event order."""

    __slots__ = ("history", "order", "_index")

    def __init__(self, history: History, order: Sequence[EventId]):
        self.history = history
        self.order: Tuple[EventId, ...] = tuple(order)
        self._index: Optional[Dict[EventId, int]] = None

    # -- construction ----------------------------------------------------------

    @classmethod
    def initial(cls, history: History) -> "OrderedHistory":
        """Order the initial history: the init transaction's events first."""
        from .events import INIT_TXN

        order = [e.eid for e in history.txns[INIT_TXN].events]
        return cls(history, order)

    def extended(self, history: History, eid: EventId) -> "OrderedHistory":
        """``(h, <) ⊕ e``: new ordered history with ``eid`` appended to ``<``.

        The parent's position index (if already built) is *shared* with the
        child and extended by the one appended event, instead of the child
        rebuilding it from scratch on its first query — the exploration
        extends long chains of histories one event at a time, so rebuilding
        made position queries O(n) per node.  Sharing is sound because
        lookups verify ``order[i] == eid`` (see :meth:`index`): when sibling
        branches later diverge and map the same event id to different
        positions, the mismatching branch detects it and rebuilds privately.
        """
        child = OrderedHistory(history, self.order + (eid,))
        index = self._index
        if index is not None:
            # setdefault: never clobber a sibling chain's entry — a stale or
            # foreign entry is caught by the lookup guard, an overwritten one
            # would corrupt the sibling silently.
            index.setdefault(eid, len(self.order))
            child._index = index
        return child

    def replaced(self, history: History) -> "OrderedHistory":
        """Same order, updated history (used when only wr/values changed)."""
        replacement = OrderedHistory(history, self.order)
        replacement._index = self._index
        return replacement

    def to_wire(self):
        """Compact tuple encoding (see :mod:`repro.core.wire`)."""
        from .wire import ordered_history_to_wire

        return ordered_history_to_wire(self)

    @classmethod
    def from_wire(cls, wire) -> "OrderedHistory":
        from .wire import ordered_history_from_wire

        return ordered_history_from_wire(wire)

    def __reduce__(self):
        from .wire import ordered_history_from_wire

        return (ordered_history_from_wire, (self.to_wire(),))

    def causal_matrix(self) -> RelationMatrix:
        """The history's cached ``so ∪ wr`` closure (see ``History.causal_matrix``).

        Swap computation issues one reachability query per (read, target)
        candidate and per ordered event; routing them through the shared
        matrix means the closure is built once per explored history rather
        than once per query.
        """
        return self.history.causal_matrix()

    # -- position queries ---------------------------------------------------------

    def index(self, eid: EventId) -> int:
        index = self._index
        if index is not None:
            i = index.get(eid)
            if i is not None and i < len(self.order) and self.order[i] == eid:
                return i
            if i is None and len(index) >= len(self.order):
                # The shared dict covers every position of this order (it
                # only ever lags by the entries a parent hadn't appended),
                # so an absent key means the event is genuinely not in <.
                raise KeyError(eid)
        # First query, or the shared index diverged on this branch: build a
        # private exact index.
        self._index = {e: i for i, e in enumerate(self.order)}
        return self._index[eid]

    def before(self, first: EventId, second: EventId) -> bool:
        """``first < second`` in the history order."""
        return self.index(first) < self.index(second)

    @property
    def last(self) -> EventId:
        return self.order[-1]

    def last_event(self) -> Event:
        return self.history.event(self.order[-1])

    def events_from(self, eid: EventId, strict: bool = True) -> Iterator[EventId]:
        """Events ``e`` with ``eid < e`` (or ``eid ≤ e`` if not strict)."""
        start = self.index(eid) + (1 if strict else 0)
        return iter(self.order[start:])

    # -- the induced transaction order ----------------------------------------------

    def txn_position(self, tid: TxnId) -> int:
        """Position of a transaction in ``<``: index of its first event.

        Well-defined because transaction blocks are contiguous in ``<``.
        """
        return self.index(EventId(tid, 0))

    def txn_before(self, a: TxnId, b: TxnId) -> bool:
        """``a < b`` on transactions."""
        return self.txn_position(a) < self.txn_position(b)

    def event_before_txn(self, eid: EventId, tid: TxnId) -> bool:
        """``e < t``: the event precedes every event of ``t`` in ``<``.

        With contiguous transaction blocks this is exactly ``e`` before the
        first event of ``t``.
        """
        return self.index(eid) < self.txn_position(tid)

    def txn_before_event(self, tid: TxnId, eid: EventId) -> bool:
        """``t < e``: every present event of ``t`` precedes ``e`` in ``<``."""
        log = self.history.txns[tid]
        return self.index(log.last_event.eid) < self.index(eid)

    def txns_in_order(self) -> List[TxnId]:
        """All transactions sorted by their block position in ``<``."""
        return sorted(self.history.txns, key=self.txn_position)

    # -- validation (tests) ----------------------------------------------------------

    def validate(self) -> None:
        """Check the ordered-history invariants listed in the module docstring."""
        present = {e.eid for e in self.history.events()}
        if set(self.order) != present or len(self.order) != len(present):
            raise AssertionError("order is not a permutation of the history's events")
        # po compatibility + contiguity of transaction blocks.
        seen_complete = set()
        current: Optional[TxnId] = None
        for eid in self.order:
            if eid.txn != current:
                if eid.txn in seen_complete:
                    raise AssertionError(f"transaction block {eid.txn!r} is not contiguous")
                if current is not None:
                    seen_complete.add(current)
                current = eid.txn
                expected = 0
            if eid.pos != expected:
                raise AssertionError(f"{eid!r} out of po order in <")
            expected = eid.pos + 1
        # wr compatibility: reads follow their source transaction.
        for read, writer in self.history.wr.items():
            if not self.txn_before_event(writer, read):
                raise AssertionError(f"read {read!r} precedes its wr source {writer!r}")
        if len(self.history.pending_transactions()) > 1:
            raise AssertionError("more than one pending transaction")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"OrderedHistory(order={[repr(e) for e in self.order]})"
