"""Bitset relation engine: dense node indexing + word-parallel closure.

:class:`RelationMatrix` is the workhorse behind every reachability,
acyclicity and closure query in the library.  Nodes (transaction ids in
practice, but any hashables) are indexed densely at construction; each
adjacency row is a single Python ``int`` used as a bitset, so set union is
``|`` and membership is a shift-and-mask — one machine word covers 64 nodes
and CPython big-int arithmetic extends this word-parallelism to arbitrary
sizes.

The matrix maintains the **strict transitive closure in both directions**
(descendant and ancestor rows).  The initial closure is computed with the
bitset Floyd–Warshall sweep (``n`` row unions of ``n``-bit words); after
that, :meth:`add_edge` updates the closure *incrementally* in O(affected
rows): adding ``u → v`` unions ``{v} ∪ desc(v)`` into every ancestor of
``u`` and ``{u} ∪ anc(u)`` into every descendant of ``v``.  Edges are never
removed — the relations of this code base (``so ∪ wr`` plus forced
commit-order edges) only ever grow, and closure under deletion would not
admit such cheap maintenance.

The engine deliberately knows nothing about histories; :mod:`repro.core.history`
caches one matrix per history (``History.causal_matrix``) and the isolation
and DPOR layers query/extend it instead of rebuilding dict-of-set graphs
per query.  The dict-of-set facade in :mod:`repro.core.relations` remains
for heterogeneous event graphs and for the brute-force reference checker.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Set, Tuple

Node = Hashable


def iter_bits(mask: int) -> Iterator[int]:
    """Indices of the set bits of ``mask``, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class RelationMatrix:
    """A binary relation over a fixed node universe, closed under composition.

    The node set is fixed at construction (dense indexing requires it);
    edges may be added at any time and the strict transitive closure is
    maintained incrementally.  All query methods run on the maintained
    closure — no traversal ever happens at query time.
    """

    __slots__ = ("_nodes", "_index", "_succ", "_desc", "_anc", "_acyclic", "_frozen")

    #: Number of full (closure-computing) constructions since interpreter
    #: start.  :meth:`copy` and :meth:`add_edge` do not count — the
    #: regression tests use this to assert that checkers build the relation
    #: once per history instead of once per query.
    full_builds: int = 0

    def __init__(self, nodes: Iterable[Node], edges: Iterable[Tuple[Node, Node]] = ()):
        self._nodes: Tuple[Node, ...] = tuple(nodes)
        self._index: Dict[Node, int] = {n: i for i, n in enumerate(self._nodes)}
        if len(self._index) != len(self._nodes):
            raise ValueError("duplicate nodes in RelationMatrix universe")
        n = len(self._nodes)
        succ = [0] * n
        for src, dst in edges:
            i = self._index.get(src)
            j = self._index.get(dst)
            if i is None or j is None:
                raise ValueError(f"edge ({src!r}, {dst!r}) has endpoint outside node set")
            succ[i] |= 1 << j
        self._succ: List[int] = succ
        self._close()
        self._frozen = False
        RelationMatrix.full_builds += 1

    def _close(self) -> None:
        """Bitset Floyd–Warshall: closure rows from scratch, then transpose."""
        desc = list(self._succ)
        for k in range(len(desc)):
            bit = 1 << k
            via_k = desc[k]
            for i, row in enumerate(desc):
                if row & bit:
                    desc[i] = row | via_k
        anc = [0] * len(desc)
        for i, row in enumerate(desc):
            bit = 1 << i
            for j in iter_bits(row):
                anc[j] |= bit
        self._desc = desc
        self._anc = anc
        self._acyclic = all(not (row >> i) & 1 for i, row in enumerate(desc))

    # -- structure ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: Node) -> bool:
        return node in self._index

    @property
    def nodes(self) -> Tuple[Node, ...]:
        return self._nodes

    def index_of(self, node: Node) -> int:
        """Dense index of ``node`` (stable for the lifetime of the matrix)."""
        return self._index[node]

    def node_at(self, index: int) -> Node:
        return self._nodes[index]

    def mask_of(self, nodes: Iterable[Node]) -> int:
        """Bitmask with the bit of every node in ``nodes`` set."""
        mask = 0
        for node in nodes:
            mask |= 1 << self._index[node]
        return mask

    def nodes_of_mask(self, mask: int) -> Set[Node]:
        return {self._nodes[i] for i in iter_bits(mask)}

    def copy(self) -> "RelationMatrix":
        """An independent matrix sharing the (immutable) node indexing.

        O(n) — rows are immutable ints, so copying the row lists suffices.
        Used by the saturation checker to extend a history's cached closure
        with forced edges without disturbing the cache.
        """
        dup = object.__new__(RelationMatrix)
        dup._nodes = self._nodes
        dup._index = self._index
        dup._succ = list(self._succ)
        dup._desc = list(self._desc)
        dup._anc = list(self._anc)
        dup._acyclic = self._acyclic
        dup._frozen = False
        return dup

    def freeze(self) -> "RelationMatrix":
        """Make :meth:`add_edge` raise on this instance (but not on copies).

        Matrices cached on a history are shared by every consumer of that
        history; freezing turns an in-place mutation — which would silently
        corrupt all future causal queries — into an immediate error.
        """
        self._frozen = True
        return self

    # -- incremental growth -------------------------------------------------

    def add_node(self, node: Node) -> int:
        """Append ``node`` to the universe and return its dense index.

        The new node starts isolated (no edges), so the maintained closure
        and the acyclicity flag are unaffected — appending is O(n) (the node
        tuple and index map are rebuilt; the closure rows just gain one zero
        row).  This is what lets the online checker grow a relation one
        transaction at a time instead of rebuilding the matrix per event.

        The index map is *re-created* rather than mutated in place because
        :meth:`copy` shares it between copies; mutating the shared dict
        would silently desynchronise a sibling matrix's indexing.
        """
        if self._frozen:
            raise ValueError("matrix is frozen (cached on a history); copy() it before add_node")
        if node in self._index:
            raise ValueError(f"node {node!r} already in RelationMatrix universe")
        index = len(self._nodes)
        self._nodes = self._nodes + (node,)
        self._index = dict(self._index)
        self._index[node] = index
        self._succ.append(0)
        self._desc.append(0)
        self._anc.append(0)
        return index

    def add_edge(self, src: Node, dst: Node) -> bool:
        """Add ``src → dst`` and update the maintained closure incrementally.

        Returns ``False`` when the edge was already implied by the closure
        (nothing changed).  Cost is O(affected rows): one ``|=`` per
        ancestor of ``src`` and per descendant of ``dst``.
        """
        if self._frozen:
            raise ValueError("matrix is frozen (cached on a history); copy() it before add_edge")
        i = self._index[src]
        j = self._index[dst]
        self._succ[i] |= 1 << j
        gained_desc = self._desc[j] | (1 << j)
        if not (gained_desc & ~self._desc[i]) and i != j:
            # dst and its descendants were already descendants of src.
            return False
        gained_anc = self._anc[i] | (1 << i)
        for a in iter_bits(gained_anc):
            self._desc[a] |= gained_desc
        for d in iter_bits(gained_desc):
            self._anc[d] |= gained_anc
        if i == j or (self._desc[j] >> i) & 1:
            self._acyclic = False
        return True

    def add_edges(self, edges: Iterable[Tuple[Node, Node]]) -> None:
        for src, dst in edges:
            self.add_edge(src, dst)

    def would_close_cycle(self, src: Node, dst: Node) -> bool:
        """Whether adding ``src → dst`` would create (or hit) a cycle."""
        if src == dst:
            return True
        return (self._desc[self._index[dst]] >> self._index[src]) & 1 == 1

    # -- queries on the maintained closure -----------------------------------

    def reaches(self, src: Node, dst: Node) -> bool:
        """``(src, dst) ∈ R+`` — a single shift-and-mask."""
        return (self._desc[self._index[src]] >> self._index[dst]) & 1 == 1

    def reaches_reflexive(self, src: Node, dst: Node) -> bool:
        """``(src, dst) ∈ R*``."""
        return src == dst or self.reaches(src, dst)

    def descendants_mask(self, node: Node) -> int:
        return self._desc[self._index[node]]

    def ancestors_mask(self, node: Node) -> int:
        return self._anc[self._index[node]]

    def descendants(self, node: Node) -> Set[Node]:
        """Strict descendants ``{d | (node, d) ∈ R+}`` as a node set."""
        return self.nodes_of_mask(self._desc[self._index[node]])

    def ancestors(self, node: Node) -> Set[Node]:
        """Strict ancestors ``{a | (a, node) ∈ R+}`` as a node set."""
        return self.nodes_of_mask(self._anc[self._index[node]])

    def successors_mask(self, node: Node) -> int:
        """Direct (one-step) successors, as a bitmask."""
        return self._succ[self._index[node]]

    def is_acyclic(self) -> bool:
        """O(1): the cycle flag is maintained across :meth:`add_edge`."""
        return self._acyclic

    def transitive_closure(self) -> Dict[Node, Set[Node]]:
        """The closure as a node → descendant-set map (compatibility/tests)."""
        return {node: self.nodes_of_mask(self._desc[i]) for i, node in enumerate(self._nodes)}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        edges = sum(bin(row).count("1") for row in self._succ)
        return f"<RelationMatrix {len(self._nodes)} nodes, {edges} edges, acyclic={self._acyclic}>"
