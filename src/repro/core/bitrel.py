"""Bitset relation engine: dense node indexing + word-parallel closure.

:class:`RelationMatrix` is the workhorse behind every reachability,
acyclicity and closure query in the library.  Nodes (transaction ids in
practice, but any hashables) are indexed densely at construction; each
adjacency row is a single Python ``int`` used as a bitset, so set union is
``|`` and membership is a shift-and-mask — one machine word covers 64 nodes
and CPython big-int arithmetic extends this word-parallelism to arbitrary
sizes.

The matrix maintains the **strict transitive closure in both directions**
(descendant and ancestor rows).  The initial closure is computed with the
bitset Floyd–Warshall sweep (``n`` row unions of ``n``-bit words); after
that, :meth:`add_edge` updates the closure *incrementally* in O(affected
rows): adding ``u → v`` unions ``{v} ∪ desc(v)`` into every ancestor of
``u`` and ``{u} ∪ anc(u)`` into every descendant of ``v``.  Edges are never
removed — the relations of this code base (``so ∪ wr`` plus forced
commit-order edges) only ever grow, and closure under deletion would not
admit such cheap maintenance.

Row storage is **word-packed**: while the universe fits one machine word
(≤ 64 nodes — every DPOR exploration workload), the three row containers
are ``array('Q')`` buffers of raw 64-bit words, so :meth:`copy` — the
hottest operation on the matrix, one per candidate extension and per
saturation fork — is a refcount-free ``memcpy`` instead of a pointer-list
copy.  The row *values* are plain ints either way, so every bit-twiddling
code path is shared.  When :meth:`add_node` grows the universe past 64
nodes the rows widen transparently to Python bigints (the mandatory pure
fallback); for wide universes the initial Floyd–Warshall sweep optionally
vectorises over NumPy when it is importable — never required, and only
engaged where it measurably wins.

The engine deliberately knows nothing about histories; :mod:`repro.core.history`
caches one matrix per history (``History.causal_matrix``) and the isolation
and DPOR layers query/extend it instead of rebuilding dict-of-set graphs
per query.  The dict-of-set facade in :mod:`repro.core.relations` remains
for heterogeneous event graphs and for the brute-force reference checker.
"""

from __future__ import annotations

from array import array
from typing import Dict, Hashable, Iterable, Iterator, List, Set, Tuple

try:  # Optional acceleration for wide (> 64 node) full closures only.
    import numpy as _np
except ImportError:  # pragma: no cover - numpy-less environments (CI matrix)
    _np = None

Node = Hashable

#: Bits per packed row word; universes up to this size use ``array('Q')``.
_WORD_BITS = 64

#: Node count from which the NumPy Floyd–Warshall pays for its per-call
#: overhead (measured: ≥ 1.5x faster already at 65 nodes, 3x+ at 200).
#: Below this the word-packed regime applies and the bigint sweep wins.
_NUMPY_MIN_NODES = 65

#: Per-process free list of released mutable row containers, keyed by row
#: count: ``{n: [(succ, desc, anc), ...]}``.  The DPOR hot path derives
#: one matrix per candidate extension (:meth:`RelationMatrix.copy_mutable`
#: + ``add_edge``) and rejects most of them; recycling the rejected
#: candidates' list triples (:meth:`RelationMatrix.release`) makes the
#: steady state container-allocation-free.  Bounded per key.
_SCRATCH: Dict[int, List[Tuple[list, list, list]]] = {}

#: Ceiling on retained triples per row count — the pool exists to absorb
#: the steady-state candidate churn, not to hoard.
_SCRATCH_MAX = 128


try:  # Python ≥ 3.10: C-speed popcount (used for the word_ops accounting).
    _popcount = int.bit_count
except AttributeError:  # pragma: no cover - py3.9

    def _popcount(mask: int) -> int:
        return bin(mask).count("1")


def iter_bits(mask: int) -> Iterator[int]:
    """Indices of the set bits of ``mask``, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class RelationMatrix:
    """A binary relation over a fixed node universe, closed under composition.

    The node set is fixed at construction (dense indexing requires it);
    edges may be added at any time and the strict transitive closure is
    maintained incrementally.  All query methods run on the maintained
    closure — no traversal ever happens at query time.
    """

    __slots__ = ("_nodes", "_index", "_succ", "_desc", "_anc", "_acyclic", "_frozen")

    #: Number of full (closure-computing) constructions since interpreter
    #: start.  :meth:`copy` and :meth:`add_edge` do not count — the
    #: regression tests use this to assert that checkers build the relation
    #: once per history instead of once per query.
    full_builds: int = 0

    #: Closure row-word updates since interpreter start: every row union
    #: performed by :meth:`_close` or :meth:`add_edge` counts the row's
    #: word width.  The per-node cost profile of the exploration
    #: (``repro.dpor.stats``/``scripts/profile_explore.py``) reports deltas
    #: of this counter.
    word_ops: int = 0

    #: Row-buffer triples recycled from the scratch pool by :meth:`copy`
    #: since interpreter start (the regression tests assert the DPOR hot
    #: path actually recycles instead of allocating per candidate).
    buffer_reuses: int = 0

    def __init__(self, nodes: Iterable[Node], edges: Iterable[Tuple[Node, Node]] = ()):
        self._nodes: Tuple[Node, ...] = tuple(nodes)
        self._index: Dict[Node, int] = {n: i for i, n in enumerate(self._nodes)}
        if len(self._index) != len(self._nodes):
            raise ValueError("duplicate nodes in RelationMatrix universe")
        n = len(self._nodes)
        succ = [0] * n
        for src, dst in edges:
            i = self._index.get(src)
            j = self._index.get(dst)
            if i is None or j is None:
                raise ValueError(f"edge ({src!r}, {dst!r}) has endpoint outside node set")
            succ[i] |= 1 << j
        self._succ: List[int] = succ
        self._close()
        if n <= _WORD_BITS:
            # Word-packed rows: raw 64-bit buffers make copy() a memcpy.
            self._succ = array("Q", self._succ)
            self._desc = array("Q", self._desc)
            self._anc = array("Q", self._anc)
        self._frozen = False
        RelationMatrix.full_builds += 1

    def _close(self) -> None:
        """Closure rows from scratch (semi-naive sweep), then transpose.

        Rows are processed in *descending* index order and each row unions
        the rows of its set bits; the sweep repeats until a pass changes
        nothing.  The relations of this code base point almost exclusively
        from lower to higher indices (transactions are indexed in creation
        order and ``so ∪ wr`` edges point forward in time), so the first
        pass already computes the fixpoint and the second merely verifies
        it — total work O(edges of the closure) row unions, instead of the
        O(n²) row *scans* of the classic Floyd–Warshall sweep.  Back edges
        and cycles just cost extra passes.
        """
        n = len(self._succ)
        if _np is not None and n >= _NUMPY_MIN_NODES:
            self._close_wide_numpy()
            return
        succ = self._succ
        desc = list(succ)
        # Decode each row's set bits to an index list once; the fixpoint
        # passes below then iterate plain int lists.
        adj: List[List[int]] = []
        edge_unions = 0
        for i in range(n):
            remaining = succ[i]
            row: List[int] = []
            while remaining:
                low = remaining & -remaining
                row.append(low.bit_length() - 1)
                remaining ^= low
            edge_unions += len(row)
            adj.append(row)
        passes = 0
        changed = True
        while changed:
            passes += 1
            changed = False
            for i in range(n - 1, -1, -1):
                targets = adj[i]
                if not targets:
                    continue
                new = succ[i]
                for j in targets:
                    new |= desc[j]
                if new != desc[i]:
                    desc[i] = new
                    changed = True
        # Ancestor rows by the mirrored sweep over the sparse predecessor
        # lists (ascending order — predecessors precede their successors),
        # instead of transposing the *dense* descendant closure bit by bit.
        pred_mask = [0] * n
        pred_adj: List[List[int]] = [[] for _ in range(n)]
        for i, targets in enumerate(adj):
            bit = 1 << i
            for j in targets:
                pred_mask[j] |= bit
                pred_adj[j].append(i)
        anc = list(pred_mask)
        changed = True
        while changed:
            passes += 1
            changed = False
            for i in range(n):
                sources = pred_adj[i]
                if not sources:
                    continue
                new = pred_mask[i]
                for j in sources:
                    new |= anc[j]
                if new != anc[i]:
                    anc[i] = new
                    changed = True
        self._desc = desc
        self._anc = anc
        self._acyclic = all(not (row >> i) & 1 for i, row in enumerate(desc))
        RelationMatrix.word_ops += max(passes * edge_unions, n) * ((n + 63) >> 6)

    def _close_wide_numpy(self) -> None:
        """Vectorised Floyd–Warshall for wide universes (optional fast path).

        Same single-pass bitset sweep as :meth:`_close`, with the inner row
        union running over a ``(n, words)`` uint64 matrix; rows convert back
        to Python ints afterwards so every other method is unaffected.
        """
        n = len(self._succ)
        words = (n + 63) >> 6
        rowbytes = words * 8
        desc = _np.zeros((n, words), dtype=_np.uint64)
        for i, row in enumerate(self._succ):
            if row:
                desc[i] = _np.frombuffer(row.to_bytes(rowbytes, "little"), dtype=_np.uint64)
        one = _np.uint64(1)
        for k in range(n):
            shift = _np.uint64(k & 63)
            has_k = (desc[:, k >> 6] >> shift) & one
            rows = _np.nonzero(has_k)[0]
            if rows.size:
                desc[rows] |= desc[k]
                RelationMatrix.word_ops += int(rows.size) * words
        buf = desc.tobytes()
        self._desc = [
            int.from_bytes(buf[i * rowbytes : (i + 1) * rowbytes], "little") for i in range(n)
        ]
        bits = _np.unpackbits(
            _np.frombuffer(buf, dtype=_np.uint8).reshape(n, rowbytes), axis=1, bitorder="little"
        )[:, :n]
        packed = _np.packbits(bits.T, axis=1, bitorder="little")
        self._anc = [int.from_bytes(packed[j].tobytes(), "little") for j in range(n)]
        self._acyclic = not bits[_np.arange(n), _np.arange(n)].any()

    # -- structure ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: Node) -> bool:
        return node in self._index

    @property
    def nodes(self) -> Tuple[Node, ...]:
        return self._nodes

    def index_of(self, node: Node) -> int:
        """Dense index of ``node`` (stable for the lifetime of the matrix)."""
        return self._index[node]

    def node_at(self, index: int) -> Node:
        return self._nodes[index]

    def mask_of(self, nodes: Iterable[Node]) -> int:
        """Bitmask with the bit of every node in ``nodes`` set."""
        mask = 0
        for node in nodes:
            mask |= 1 << self._index[node]
        return mask

    def nodes_of_mask(self, mask: int) -> Set[Node]:
        return {self._nodes[i] for i in iter_bits(mask)}

    def copy(self) -> "RelationMatrix":
        """An independent matrix sharing the (immutable) node indexing.

        O(n) — rows are immutable ints, so copying the row containers
        suffices; slicing preserves the representation (a packed
        ``array('Q')`` duplicates as a raw buffer memcpy, a bigint list as
        a pointer copy).  Used by the saturation checker to extend a
        history's cached closure with forced edges without disturbing the
        cache, and by the scheduler to derive each child node's matrix
        from its parent's.
        """
        dup = object.__new__(RelationMatrix)
        dup._nodes = self._nodes
        dup._index = self._index
        dup._succ = self._succ[:]
        dup._desc = self._desc[:]
        dup._anc = self._anc[:]
        dup._acyclic = self._acyclic
        dup._frozen = False
        return dup

    def copy_mutable(self) -> "RelationMatrix":
        """A copy whose rows are *already* mutable lists, recycled when possible.

        :meth:`add_edge` widens packed rows to list-land before its first
        mutation, so a copy made specifically to grow — one candidate
        extension's closure, one saturation fork — pays copy *and* widen.
        This goes straight to list rows and refills a triple from the
        :data:`_SCRATCH` free list (see :meth:`release`) when one is
        available: the hot path's reject-derive churn then runs without
        allocating row containers at all.
        """
        dup = object.__new__(RelationMatrix)
        dup._nodes = self._nodes
        dup._index = self._index
        free = _SCRATCH.get(len(self._nodes))
        if free:
            succ, desc, anc = free.pop()
            succ[:] = self._succ
            desc[:] = self._desc
            anc[:] = self._anc
            dup._succ, dup._desc, dup._anc = succ, desc, anc
            RelationMatrix.buffer_reuses += 1
        else:
            dup._succ = list(self._succ)
            dup._desc = list(self._desc)
            dup._anc = list(self._anc)
        dup._acyclic = self._acyclic
        dup._frozen = False
        return dup

    def freeze(self) -> "RelationMatrix":
        """Make :meth:`add_edge` raise on this instance (but not on copies).

        Matrices cached on a history are shared by every consumer of that
        history; freezing turns an in-place mutation — which would silently
        corrupt all future causal queries — into an immediate error.
        """
        self._frozen = True
        return self

    def release(self) -> None:
        """Return this matrix's row containers to the per-process scratch pool.

        Only for matrices the caller **exclusively owns** — e.g. the
        closure derived for a candidate extension the isolation check just
        rejected (nothing else ever saw it; being frozen does not imply
        sharing there).  List rows are handed to :data:`_SCRATCH` for the
        next :meth:`copy_mutable` to refill, and this instance is poisoned
        (its row slots become ``None``) so any later query raises instead
        of silently reading recycled bits.  Idempotent; a no-op for
        packed-array rows (those copies are already a plain memcpy).
        """
        if type(self._succ) is not list:
            return
        pool = _SCRATCH.setdefault(len(self._nodes), [])
        if len(pool) < _SCRATCH_MAX:
            pool.append((self._succ, self._desc, self._anc))
        self._succ = self._desc = self._anc = None  # poison

    # -- wire transport -----------------------------------------------------

    def closure_rows(self) -> Tuple[Tuple[int, ...], Tuple[int, ...], Tuple[int, ...]]:
        """The maintained closure as plain int rows: ``(succ, desc, anc)``.

        Row ``i``'s bit ``j`` refers to node index ``j`` — meaningful only
        to a receiver that reconstructs the *same node order*, which is what
        the wire encoding of :mod:`repro.core.wire` guarantees for a
        history's transaction table.
        """
        return (tuple(self._succ), tuple(self._desc), tuple(self._anc))

    @classmethod
    def from_closure(
        cls,
        nodes: Iterable[Node],
        rows: Tuple[Tuple[int, ...], Tuple[int, ...], Tuple[int, ...]],
    ) -> "RelationMatrix":
        """Rebuild a matrix from :meth:`closure_rows` without re-closing.

        The inverse of :meth:`closure_rows` for wire transport: the closure
        fixpoint was already computed on the sending side, so restoring it
        is O(n) row copies instead of an O(edges · passes) sweep.  Does not
        count as a :attr:`full_builds` construction — it builds nothing.
        """
        succ, desc, anc = rows
        matrix = object.__new__(cls)
        matrix._nodes = tuple(nodes)
        matrix._index = {n: i for i, n in enumerate(matrix._nodes)}
        n = len(matrix._nodes)
        if len(matrix._index) != n:
            raise ValueError("duplicate nodes in RelationMatrix universe")
        if not (len(succ) == len(desc) == len(anc) == n):
            raise ValueError(
                f"closure rows for {len(succ)} nodes do not match universe of {n}"
            )
        if n <= _WORD_BITS:
            matrix._succ = array("Q", succ)
            matrix._desc = array("Q", desc)
            matrix._anc = array("Q", anc)
        else:
            matrix._succ = list(succ)
            matrix._desc = list(desc)
            matrix._anc = list(anc)
        matrix._acyclic = all(not (row >> i) & 1 for i, row in enumerate(desc))
        matrix._frozen = False
        return matrix

    # -- incremental growth -------------------------------------------------

    def add_node(self, node: Node) -> int:
        """Append ``node`` to the universe and return its dense index.

        The new node starts isolated (no edges), so the maintained closure
        and the acyclicity flag are unaffected — appending is O(n) (the node
        tuple and index map are rebuilt; the closure rows just gain one zero
        row).  This is what lets the online checker grow a relation one
        transaction at a time instead of rebuilding the matrix per event.

        The index map is *re-created* rather than mutated in place because
        :meth:`copy` shares it between copies; mutating the shared dict
        would silently desynchronise a sibling matrix's indexing.
        """
        if self._frozen:
            raise ValueError("matrix is frozen (cached on a history); copy() it before add_node")
        if node in self._index:
            raise ValueError(f"node {node!r} already in RelationMatrix universe")
        index = len(self._nodes)
        if index >= _WORD_BITS and isinstance(self._succ, array):
            self._widen()
        self._nodes = self._nodes + (node,)
        self._index = dict(self._index)
        self._index[node] = index
        self._succ.append(0)
        self._desc.append(0)
        self._anc.append(0)
        return index

    def _widen(self) -> None:
        """Switch packed ``array('Q')`` rows to bigint lists.

        Called when the universe outgrows one word — and by :meth:`add_edge`
        before its first mutation: a packed row store pays boxing on every
        item assignment, so arrays serve as the cheap-to-``copy`` *shared*
        representation while mutation always happens in list-land.  The
        one-time conversion costs what a pointer-list copy would have cost
        anyway.
        """
        self._succ = list(self._succ)
        self._desc = list(self._desc)
        self._anc = list(self._anc)

    def add_edge(self, src: Node, dst: Node) -> bool:
        """Add ``src → dst`` and update the maintained closure incrementally.

        Returns ``False`` when the edge was already implied by the closure
        (nothing changed).  Cost is O(affected rows): one ``|=`` per
        ancestor of ``src`` and per descendant of ``dst``.
        """
        if self._frozen:
            raise ValueError("matrix is frozen (cached on a history); copy() it before add_edge")
        if type(self._succ) is array:
            self._widen()
        i = self._index[src]
        j = self._index[dst]
        self._succ[i] |= 1 << j
        gained_desc = self._desc[j] | (1 << j)
        if not (gained_desc & ~self._desc[i]) and i != j:
            # dst and its descendants were already descendants of src.
            return False
        gained_anc = self._anc[i] | (1 << i)
        desc = self._desc
        anc = self._anc
        remaining = gained_anc  # inline iter_bits: this is the hot loop
        while remaining:
            low = remaining & -remaining
            desc[low.bit_length() - 1] |= gained_desc
            remaining ^= low
        remaining = gained_desc
        while remaining:
            low = remaining & -remaining
            anc[low.bit_length() - 1] |= gained_anc
            remaining ^= low
        RelationMatrix.word_ops += (_popcount(gained_anc) + _popcount(gained_desc)) * (
            (len(self._nodes) + 63) >> 6
        )
        if i == j or (self._desc[j] >> i) & 1:
            self._acyclic = False
        return True

    def add_edges(self, edges: Iterable[Tuple[Node, Node]]) -> None:
        for src, dst in edges:
            self.add_edge(src, dst)

    def retract_edges(self, edges: Iterable[Tuple[Node, Node]]) -> None:
        """Remove one-step edges and recompute the closure from ``succ``.

        The inverse of :meth:`add_edge`, for the one retractable edge kind
        this code base has: an aborted writer's fired ``co`` edges (its
        axiom instances never existed, §2.2.1).  Clearing the ``succ`` bits
        and re-closing is exact because ``succ`` holds every *permanent*
        edge — base ``so ∪ wr`` edges, committed writers' fires, and the
        closure rows :meth:`remove_nodes` bakes in (all permanent by the
        monitor's GC gate: compaction never runs while an uncommitted
        writer has fired edges) — plus, as one-step bits, exactly the
        still-retractable fires.  Cost is one :meth:`_close` sweep.
        """
        if self._frozen:
            raise ValueError("matrix is frozen (cached on a history); copy() it before retract_edges")
        if type(self._succ) is array:
            self._widen()
        for src, dst in edges:
            self._succ[self._index[src]] &= ~(1 << self._index[dst])
        self._close()

    # -- compaction (streaming-monitor GC) -----------------------------------

    #: Number of :meth:`remove_nodes` compactions since interpreter start.
    compactions: int = 0

    def remove_nodes(self, drop: Iterable[Node]) -> "RelationMatrix":
        """A new matrix over the surviving nodes, closure restricted exactly.

        The result's descendant/ancestor rows are this matrix's maintained
        closure rows with the dropped bit positions squeezed out, so every
        path that ran *through* a dropped node survives as a closure edge
        between its surviving endpoints.  Consequently, as long as no future
        :meth:`add_edge` would ever have been incident to a dropped node,
        every future reachability/acyclicity answer on the compacted matrix
        equals the answer the uncompacted matrix would have given restricted
        to survivors — the exactness contract the streaming monitor's
        eviction relies on.  ``succ`` rows are promoted to the restricted
        closure as well, so :meth:`retract_edges` (which re-closes from
        ``succ``) stays exact across compactions; see the inline comment.

        Cost is O(survivors²) bit ops; the monitor amortises it by evicting
        in batches.  Dropping a node outside the universe raises
        ``ValueError``.
        """
        dropset = set(drop)
        unknown = dropset - set(self._index)
        if unknown:
            raise ValueError(f"remove_nodes: {sorted(map(repr, unknown))} not in universe")
        keep = [i for i, node in enumerate(self._nodes) if node not in dropset]
        keep_mask = 0
        for old_j in keep:
            keep_mask |= 1 << old_j
        plan = self._compress_plan(keep_mask, len(self._nodes))
        compact = self._compress_row
        dup = object.__new__(RelationMatrix)
        dup._nodes = tuple(self._nodes[i] for i in keep)
        dup._index = {node: j for j, node in enumerate(dup._nodes)}
        # succ is *promoted* to the restricted closure, not merely
        # restricted: a path that ran through a dropped node must survive as
        # a one-step edge so a later retract_edges() re-close cannot lose
        # it.  Sound because the monitor's GC gate guarantees everything in
        # the matrix at compaction time is permanent (no uncommitted
        # writer has fired edges).
        succ = [compact(self._desc[i], keep_mask, plan) for i in keep]
        desc = [compact(self._desc[i], keep_mask, plan) for i in keep]
        anc = [compact(self._anc[i], keep_mask, plan) for i in keep]
        if len(keep) <= _WORD_BITS:
            succ = array("Q", succ)
            desc = array("Q", desc)
            anc = array("Q", anc)
        dup._succ = succ
        dup._desc = desc
        dup._anc = anc
        dup._acyclic = all(not (desc[j] >> j) & 1 for j in range(len(keep)))
        dup._frozen = False
        RelationMatrix.compactions += 1
        RelationMatrix.word_ops += 3 * len(keep) * ((len(self._nodes) + 63) >> 6)
        return dup

    @staticmethod
    def _compress_plan(mask: int, width: int) -> List[int]:
        """Move masks for the parallel-suffix compress of ``mask``.

        Hacker's Delight 7-4 ("compress", the software PEXT), generalised
        to arbitrary width: level ``i``'s mask selects the bits that must
        move right by ``2**i`` so that after all ``ceil(log2(width))``
        levels the bits under ``mask`` sit densely at the bottom, in
        order.  Built once per :meth:`remove_nodes` and applied to every
        row, so each row costs O(log width) bigint ops instead of a
        Python loop over its set bits.
        """
        full = (1 << width) - 1
        plan: List[int] = []
        m = mask
        mk = (~m << 1) & full
        shift = 1
        for _ in range((width - 1).bit_length() if width > 1 else 0):
            mp = mk
            s = 1
            while s < width:
                mp ^= mp << s
                s <<= 1
            mv = mp & m
            plan.append(mv)
            m = (m ^ mv) | (mv >> shift)
            mk &= ~mp
            shift <<= 1
        return plan

    @staticmethod
    def _compress_row(row: int, keep_mask: int, plan: List[int]) -> int:
        """``row``'s bits under ``keep_mask``, squeezed dense at the bottom."""
        row &= keep_mask
        shift = 1
        for mv in plan:
            t = row & mv
            row = (row ^ t) | (t >> shift)
            shift <<= 1
        return row

    def would_close_cycle(self, src: Node, dst: Node) -> bool:
        """Whether adding ``src → dst`` would create (or hit) a cycle."""
        if src == dst:
            return True
        return (self._desc[self._index[dst]] >> self._index[src]) & 1 == 1

    # -- queries on the maintained closure -----------------------------------

    def reaches(self, src: Node, dst: Node) -> bool:
        """``(src, dst) ∈ R+`` — a single shift-and-mask."""
        return (self._desc[self._index[src]] >> self._index[dst]) & 1 == 1

    def reaches_reflexive(self, src: Node, dst: Node) -> bool:
        """``(src, dst) ∈ R*``."""
        return src == dst or self.reaches(src, dst)

    def descendants_mask(self, node: Node) -> int:
        return self._desc[self._index[node]]

    def ancestors_mask(self, node: Node) -> int:
        return self._anc[self._index[node]]

    def descendants(self, node: Node) -> Set[Node]:
        """Strict descendants ``{d | (node, d) ∈ R+}`` as a node set."""
        return self.nodes_of_mask(self._desc[self._index[node]])

    def ancestors(self, node: Node) -> Set[Node]:
        """Strict ancestors ``{a | (a, node) ∈ R+}`` as a node set."""
        return self.nodes_of_mask(self._anc[self._index[node]])

    def successors_mask(self, node: Node) -> int:
        """Direct (one-step) successors, as a bitmask."""
        return self._succ[self._index[node]]

    def is_acyclic(self) -> bool:
        """O(1): the cycle flag is maintained across :meth:`add_edge`."""
        return self._acyclic

    def transitive_closure(self) -> Dict[Node, Set[Node]]:
        """The closure as a node → descendant-set map (compatibility/tests)."""
        return {node: self.nodes_of_mask(self._desc[i]) for i, node in enumerate(self._nodes)}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        edges = sum(bin(row).count("1") for row in self._succ)
        return f"<RelationMatrix {len(self._nodes)} nodes, {edges} edges, acyclic={self._acyclic}>"
