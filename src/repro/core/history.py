"""Transaction logs and histories (paper §2.2.1, Def. 2.1).

A :class:`History` is the abstract representation of the interaction between
a program and the database in one execution: a set of transaction logs, a
session order ``so`` and a write-read relation ``wr``.

Design notes
------------
* Histories are **persistent** (copy-on-write): every mutating operation
  returns a new ``History`` sharing unchanged transaction logs.  The DPOR
  recursion branches aggressively, and persistence makes sharing safe.
* Transaction and event identifiers are structural (session, index,
  position), so histories reached on different exploration branches compare
  equal exactly when they are read-from equivalent (same events, same
  ``po``/``so``/``wr``) — the equivalence the paper's algorithms are optimal
  for.
* The distinguished ``init`` transaction (session :data:`~repro.core.events.INIT_SESSION`)
  writes the initial value of every global variable and precedes all other
  transactions in ``so``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from .bitrel import RelationMatrix
from .events import INIT_TXN, Event, EventId, EventType, TxnId
from .relations import downward_closed, make_adjacency, reachable_from


class TransactionLog:
    """A transaction log ⟨t, E, po_t⟩: an id and a po-ordered event tuple.

    The program order ``po_t`` is the tuple order of :attr:`events`.  The
    minimal element is always a BEGIN event; a COMMIT or ABORT event, if
    present, is maximal.
    """

    __slots__ = ("tid", "events", "_final", "_writes", "_descriptor")

    def __init__(self, tid: TxnId, events: Tuple[Event, ...]):
        self.tid = tid
        self.events = events
        # Terminal event type, computed once: the completion-status
        # properties below are the most-called functions of the whole
        # exploration, so they must be single identity compares.
        self._final = events[-1].type if events else None

    # -- construction -----------------------------------------------------

    @classmethod
    def begin(cls, tid: TxnId) -> "TransactionLog":
        """A fresh transaction log containing only its BEGIN event."""
        return cls(tid, (Event(EventId(tid, 0), EventType.BEGIN),))

    def appended(self, event: Event) -> "TransactionLog":
        """Copy of this log with ``event`` appended as the po-maximal event."""
        if self.is_complete:
            raise ValueError(f"cannot extend complete transaction {self.tid!r}")
        if event.eid != EventId(self.tid, len(self.events)):
            raise ValueError(f"event id {event.eid!r} does not extend {self.tid!r}")
        return TransactionLog(self.tid, self.events + (event,))

    def prefix(self, length: int) -> "TransactionLog":
        """The po-downward-closed prefix keeping the first ``length`` events."""
        if not 0 < length <= len(self.events):
            raise ValueError(f"invalid prefix length {length} for {self.tid!r}")
        return TransactionLog(self.tid, self.events[:length])

    # -- status ------------------------------------------------------------

    @property
    def last_event(self) -> Event:
        return self.events[-1]

    @property
    def is_committed(self) -> bool:
        return self._final is EventType.COMMIT

    @property
    def is_aborted(self) -> bool:
        return self._final is EventType.ABORT

    @property
    def is_complete(self) -> bool:
        """Complete = carries a COMMIT or an ABORT event (paper §2.2.1)."""
        return self._final is EventType.COMMIT or self._final is EventType.ABORT

    @property
    def is_pending(self) -> bool:
        return not (self._final is EventType.COMMIT or self._final is EventType.ABORT)

    # -- reads and writes ---------------------------------------------------

    def reads(self) -> Tuple[Event, ...]:
        """``reads(t)``: external READ events (no earlier same-var write in po)."""
        return tuple(e for e in self.events if e.is_external_read)

    def writes(self) -> Dict[str, Event]:
        """``writes(t)``: var → last WRITE event; empty for aborted logs.

        Only the po-last write to each variable is visible to other
        transactions; aborted transactions expose no writes at all.

        Logs are immutable, so the map is computed once and cached — the
        axiom quantifier expansion and ``ValidWrites`` ask for it per
        variable per node, which made the per-call scan a hot path.  The
        returned dict is shared: callers must not mutate it.
        """
        try:
            return self._writes
        except AttributeError:
            pass
        visible: Dict[str, Event] = {}
        if not self.is_aborted:
            for event in self.events:
                if event.type is EventType.WRITE:
                    visible[event.var] = event
        self._writes = visible
        return visible

    def writes_var(self, var: str) -> bool:
        """``t writes x``: whether ``writes(t)`` contains a write to ``var``."""
        return var in self.writes()

    def last_write_before(self, var: str, pos: int) -> Optional[Event]:
        """Latest WRITE to ``var`` strictly before po-position ``pos``.

        Used by the read-local rule: such a read returns this write's value.
        """
        for event in reversed(self.events[:pos]):
            if event.type is EventType.WRITE and event.var == var:
                return event
        return None

    # -- misc ----------------------------------------------------------------

    def descriptor(self) -> Tuple:
        """Hashable structural summary used for canonical history keys.

        Cached: logs are immutable and shared between a history and its
        extensions, so end-state deduplication re-uses the tuples of every
        log that did not change along the branch.
        """
        try:
            return self._descriptor
        except AttributeError:
            pass
        desc = (
            self.tid,
            tuple((e.type.value, e.var, e.value, e.local) for e in self.events),
        )
        self._descriptor = desc
        return desc

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TransactionLog({self.tid!r}, {list(self.events)!r})"


class History:
    """A history ⟨T, so, wr⟩ (paper Def. 2.1).

    ``sessions`` maps each session id to the po-ordered tuple of its
    transaction ids (the functional representation of ``so`` from §2.3);
    ``txns`` maps transaction ids to logs; ``wr`` maps each external read
    *event* to the transaction id it reads from.
    """

    __slots__ = ("sessions", "txns", "wr", "_cache")

    def __init__(
        self,
        sessions: Mapping[str, Tuple[TxnId, ...]],
        txns: Mapping[TxnId, TransactionLog],
        wr: Mapping[EventId, TxnId],
    ):
        self.sessions: Dict[str, Tuple[TxnId, ...]] = dict(sessions)
        self.txns: Dict[TxnId, TransactionLog] = dict(txns)
        self.wr: Dict[EventId, TxnId] = dict(wr)
        self._cache: Dict[str, object] = {}

    # -- construction -------------------------------------------------------

    @classmethod
    def initial(
        cls,
        variables: Iterable[str],
        initial_value: Hashable = 0,
        overrides: Optional[Mapping[str, Hashable]] = None,
    ) -> "History":
        """The initial history: a single committed ``init`` transaction that
        writes an initial value to every variable in ``variables``.

        ``initial_value`` is the default; ``overrides`` supplies
        per-variable initial values (e.g. ``frozenset()`` for the id-set
        variables of SQL-table modelling).
        """
        overrides = overrides or {}
        events: List[Event] = [Event(EventId(INIT_TXN, 0), EventType.BEGIN)]
        for var in sorted(set(variables)):
            value = overrides.get(var, initial_value)
            events.append(Event(EventId(INIT_TXN, len(events)), EventType.WRITE, var, value))
        events.append(Event(EventId(INIT_TXN, len(events)), EventType.COMMIT))
        log = TransactionLog(INIT_TXN, tuple(events))
        return cls({}, {INIT_TXN: log}, {})

    def _evolve(self, sessions=None, txns=None, wr=None) -> "History":
        """Trusted persistent update: maps the caller did not change are
        *shared* with the child (no method ever mutates them in place, so
        sharing is safe), and already-copied maps are adopted without the
        defensive re-copy of ``__init__``.  This keeps per-event history
        extension — the allocation hot spot of the exploration — down to
        the one map that actually changed."""
        child = object.__new__(History)
        child.sessions = self.sessions if sessions is None else sessions
        child.txns = self.txns if txns is None else txns
        child.wr = self.wr if wr is None else wr
        child._cache = {}
        return child

    def begin_transaction(self, session: str) -> Tuple["History", TxnId]:
        """``h ⊕_j (e, begin)``: append a fresh transaction log to session ``j``."""
        order = self.sessions.get(session, ())
        tid = TxnId(session, len(order))
        if tid in self.txns:
            raise ValueError(f"transaction {tid!r} already exists")
        sessions = dict(self.sessions)
        sessions[session] = order + (tid,)
        txns = dict(self.txns)
        txns[tid] = TransactionLog.begin(tid)
        child = self._evolve(sessions=sessions, txns=txns)
        self._derive_status_lists(child, txns[tid])
        return child, tid

    def append_event(self, session: str, event: Event) -> "History":
        """``h ⊕_j e``: add ``event`` to the last transaction of session ``j``."""
        order = self.sessions.get(session)
        if not order:
            raise ValueError(f"session {session!r} has no transaction to extend")
        tid = order[-1]
        txns = dict(self.txns)
        txns[tid] = txns[tid].appended(event)
        child = self._evolve(txns=txns)
        self._derive_status_lists(child, txns[tid])
        return child

    def add_wr(self, writer: TxnId, read: EventId) -> "History":
        """``h ⊕ wr(t, e)``: set/replace the wr source of read event ``read``."""
        if writer not in self.txns:
            raise ValueError(f"unknown writer transaction {writer!r}")
        wr = dict(self.wr)
        wr[read] = writer
        return self._evolve(wr=wr)

    def with_read_source(self, read: EventId, writer: TxnId) -> "History":
        """Re-point read event ``read`` to read from ``writer``.

        Unlike :meth:`add_wr`, this also refreshes the value cached on the
        read event (the observed value is determined by the wr relation).
        Used by ``Swap``, which changes the wr dependency of the re-ordered
        read.
        """
        event = self.event(read)
        if not event.is_external_read:
            raise ValueError(f"{read!r} is not an external read")
        value = self.visible_write_value(writer, event.var)
        txns = dict(self.txns)
        log = txns[read.txn]
        events = list(log.events)
        events[read.pos] = event.with_value(value)
        txns[read.txn] = TransactionLog(log.tid, tuple(events))
        wr = dict(self.wr)
        wr[read] = writer
        return self._evolve(txns=txns, wr=wr)

    def remove_events(self, doomed: Set[EventId]) -> "History":
        """``h \\ D``: delete events, dropping emptied transaction logs.

        The caller is responsible for ``doomed`` being po-upward closed per
        transaction (we delete suffixes only); this is asserted because a
        violation means a broken Swap computation.
        """
        if not doomed:
            return self
        sessions: Dict[str, Tuple[TxnId, ...]] = {}
        txns: Dict[TxnId, TransactionLog] = {}
        for session, order in self.sessions.items():
            kept: List[TxnId] = []
            dropped = False
            for tid in order:
                log = self.txns[tid]
                keep = [e for e in log.events if e.eid not in doomed]
                if len(keep) < len(log.events) and keep != list(log.events[: len(keep)]):
                    raise AssertionError(f"non-suffix deletion in {tid!r}")
                if keep:
                    if dropped:
                        # Dropped transactions must form a session-order
                        # suffix, otherwise so would have holes.
                        raise AssertionError(f"hole in session {session!r}")
                    txns[tid] = TransactionLog(tid, tuple(keep))
                    kept.append(tid)
                else:
                    dropped = True
            if kept:
                sessions[session] = tuple(kept)
        txns[INIT_TXN] = self.txns[INIT_TXN]
        kept_ids = set(txns)
        wr = {read: writer for read, writer in self.wr.items() if read not in doomed and writer in kept_ids and read.txn in kept_ids}
        return History(sessions, txns, wr)

    # -- basic queries --------------------------------------------------------

    def __contains__(self, tid: TxnId) -> bool:
        return tid in self.txns

    def __iter__(self) -> Iterator[TransactionLog]:
        return iter(self.txns.values())

    def log(self, tid: TxnId) -> TransactionLog:
        return self.txns[tid]

    def event(self, eid: EventId) -> Event:
        return self.txns[eid.txn].events[eid.pos]

    def has_event(self, eid: EventId) -> bool:
        log = self.txns.get(eid.txn)
        return log is not None and eid.pos < len(log.events)

    def events(self) -> Iterator[Event]:
        for log in self.txns.values():
            yield from log.events

    def event_count(self) -> int:
        count = self._cache.get("event_count")
        if count is None:
            count = sum(len(log) for log in self.txns.values())
            self._cache["event_count"] = count
        return count

    def transaction_ids(self) -> Set[TxnId]:
        return set(self.txns)

    def last_transaction(self, session: str) -> Optional[TransactionLog]:
        """``last(h, j)``: the last transaction log in session order of ``j``."""
        order = self.sessions.get(session)
        return self.txns[order[-1]] if order else None

    def pending_transactions(self) -> List[TransactionLog]:
        logs = self._cache.get("pending_txns")
        if logs is None:
            logs = [log for log in self.txns.values() if log.is_pending]
            self._cache["pending_txns"] = logs
        return logs

    def _derive_status_lists(self, child: "History", changed: TransactionLog) -> None:
        """Diff the pending/committed lists onto a single-log extension.

        Only the log ``changed`` differs between ``self`` and ``child``, so
        the child's status lists are a constant-size edit of the parent's
        (computed only if the parent has them — laziness mirrors the other
        derived caches).  The lists are shared when unchanged; callers
        treat them as read-only.
        """
        tid = changed.tid
        pending = self._cache.get("pending_txns")
        if pending is not None:
            if changed.is_pending:
                if any(log.tid == tid for log in pending):
                    derived = [changed if log.tid == tid else log for log in pending]
                else:
                    derived = pending + [changed]
            else:
                derived = [log for log in pending if log.tid != tid]
            child._cache["pending_txns"] = derived
        committed = self._cache.get("committed_txns")
        if committed is not None:
            child._cache["committed_txns"] = (
                committed + [changed] if changed.is_committed else committed
            )

    def committed_transactions(self) -> List[TransactionLog]:
        """``commTrans(h)``: committed transaction logs (incl. ``init``)."""
        logs = self._cache.get("committed_txns")
        if logs is None:
            logs = [log for log in self.txns.values() if log.is_committed]
            self._cache["committed_txns"] = logs
        return logs

    def reads(self) -> List[Event]:
        """``reads(h)``: all external read events."""
        return [e for log in self.txns.values() for e in log.reads()]

    def writers_of(self, var: str) -> List[TxnId]:
        """Transactions ``t`` with ``t writes var``."""
        return [tid for tid, log in self.txns.items() if log.writes_var(var)]

    def visible_write_value(self, tid: TxnId, var: str) -> Hashable:
        """The value another transaction observes when reading ``var`` from ``tid``."""
        writes = self.txns[tid].writes()
        if var not in writes:
            raise KeyError(f"{tid!r} does not (visibly) write {var!r}")
        return writes[var].value

    # -- relations -------------------------------------------------------------

    def so_before(self, a: TxnId, b: TxnId) -> bool:
        """``(a, b) ∈ so``: same-session order, or ``a`` is ``init`` (≠ b)."""
        if a == b:
            return False
        if a == INIT_TXN:
            return True
        return a.session == b.session and a.index < b.index

    def wr_edge(self, a: TxnId, b: TxnId) -> bool:
        """``(a, b) ∈ wr`` lifted to transactions: some read of ``b`` reads from ``a``.

        The lifted pair set is cached on first query (histories are
        persistent, so ``wr`` never changes) — the Read Atomic premise asks
        this once per axiom instance, which made a linear scan of ``wr``
        the hot path of both batch and online saturation.
        """
        pairs = self._cache.get("wr_pairs")
        if pairs is None:
            pairs = {(writer, read.txn) for read, writer in self.wr.items()}
            self._cache["wr_pairs"] = pairs
        return (a, b) in pairs

    def so_pairs(self) -> Iterator[Tuple[TxnId, TxnId]]:
        """Session-order edges on transactions (transitively reduced).

        ``init`` precedes the first transaction of every session; within a
        session, consecutive transactions are ordered.
        """
        for order in self.sessions.values():
            prev = INIT_TXN
            for tid in order:
                yield prev, tid
                prev = tid

    def wr_pairs(self) -> Iterator[Tuple[TxnId, TxnId]]:
        """wr lifted to transactions: (writer, reader) pairs."""
        for read, writer in self.wr.items():
            yield writer, read.txn

    def so_wr_adjacency(self, exclude_read: Optional[EventId] = None) -> Dict[TxnId, Set[TxnId]]:
        """Adjacency of ``so ∪ wr`` on transactions.

        ``exclude_read`` drops the wr edge contributed by one read event —
        needed by ``readLatest`` (§5.3), which reasons about a read's causal
        past *excluding the read's own wr dependency*.
        """
        if exclude_read is None:
            cached = self._cache.get("so_wr")
            if cached is not None:
                return cached  # type: ignore[return-value]
        adj: Dict[TxnId, Set[TxnId]] = {tid: set() for tid in self.txns}
        for src, dst in self.so_pairs():
            adj[src].add(dst)
        for read, writer in self.wr.items():
            if read == exclude_read:
                continue
            if writer != read.txn:
                adj[writer].add(read.txn)
        if exclude_read is None:
            self._cache["so_wr"] = adj
        return adj

    def causal_matrix(self) -> RelationMatrix:
        """The ``so ∪ wr`` relation as a :class:`RelationMatrix` with its
        transitive closure maintained.

        Built once per history and cached — histories are persistent, so
        the relation never changes after construction.  Checkers that need
        ``so ∪ wr`` plus extra edges copy this matrix and grow the copy
        incrementally (:meth:`RelationMatrix.add_edge`).
        """
        matrix = self._cache.get("causal_matrix")
        if matrix is None:
            edges: List[Tuple[TxnId, TxnId]] = list(self.so_pairs())
            edges.extend((writer, read.txn) for read, writer in self.wr.items() if writer != read.txn)
            matrix = RelationMatrix(self.txns, edges).freeze()
            self._cache["causal_matrix"] = matrix
        return matrix

    def cached_causal_matrix(self) -> Optional[RelationMatrix]:
        """The cached ``so ∪ wr`` closure, or ``None`` if not built yet.

        Lets extension derivation stay lazy: a child history's matrix is
        diffed from the parent's only when the parent already paid for one.
        """
        return self._cache.get("causal_matrix")  # type: ignore[return-value]

    def saturation_states(self) -> Dict[Tuple, object]:
        """Per-axiom-set incremental saturation states cached on this history.

        Maps an axiom tuple (the keys of
        :data:`~repro.isolation.axioms.AXIOMS_BY_LEVEL`) to the
        :class:`~repro.isolation.saturation.IncrementalSaturation` carrying
        ``so ∪ wr ∪ forced`` for this history.  States cached here are
        *shared* between a history and any children derived from it by the
        sibling-shared saturation of the DPOR hot path, so they must never
        be mutated — derivations fork first.  Internal plumbing between
        :mod:`repro.semantics.scheduler` and
        :mod:`repro.isolation.saturation`.
        """
        states = self._cache.get("sat_states")
        if states is None:
            states = {}
            self._cache["sat_states"] = states
        return states

    def adopt_causal_matrix(self, matrix: RelationMatrix) -> None:
        """Seed the causal-closure cache with an incrementally-derived matrix.

        Used by ``ValidWrites``: a candidate extension differs from its base
        history by a single wr edge, so its matrix is the base's closure
        plus one ``add_edge`` — adopting it avoids a full rebuild.  The
        matrix must be over exactly this history's transactions.
        """
        if matrix.nodes != tuple(self.txns):
            raise ValueError("adopted matrix does not match this history's transactions")
        self._cache["causal_matrix"] = matrix.freeze()

    def causally_before(self, a: TxnId, b: TxnId, exclude_read: Optional[EventId] = None) -> bool:
        """``(a, b) ∈ (so ∪ wr)+``."""
        if exclude_read is None:
            return self.causal_matrix().reaches(a, b)
        return b in self.causal_descendants(a, exclude_read)

    def causally_before_eq(self, a: TxnId, b: TxnId, exclude_read: Optional[EventId] = None) -> bool:
        """``(a, b) ∈ (so ∪ wr)*``."""
        return a == b or self.causally_before(a, b, exclude_read)

    def causal_descendants(self, a: TxnId, exclude_read: Optional[EventId] = None) -> Set[TxnId]:
        if exclude_read is None:
            return self.causal_matrix().descendants(a)
        return reachable_from(self.so_wr_adjacency(exclude_read), a)

    def causal_past(self, a: TxnId, exclude_read: Optional[EventId] = None) -> Set[TxnId]:
        """All ``t ≠ a`` with ``(t, a) ∈ (so ∪ wr)+``.

        ``a`` is excluded even when it lies on a cycle (only possible on
        not-yet-validated histories), matching the DFS fallback branch.
        """
        if exclude_read is None:
            past = self.causal_matrix().ancestors(a)
            past.discard(a)
            return past
        adj = self.so_wr_adjacency(exclude_read)
        return {t for t in adj if t != a and a in reachable_from(adj, t)}

    def is_so_wr_acyclic(self) -> bool:
        """Def. 2.1 requires ``so ∪ wr`` acyclic; O(1) on the cached closure."""
        return self.causal_matrix().is_acyclic()

    def maximal_in_causal_order(self, tid: TxnId) -> bool:
        """``t`` is (so ∪ wr)+-maximal in h (paper §3.2)."""
        return self.causal_matrix().descendants_mask(tid) == 0

    # -- cross-process shipping ---------------------------------------------------

    def to_wire(self):
        """Compact tuple encoding (see :mod:`repro.core.wire`)."""
        from .wire import history_to_wire

        return history_to_wire(self)

    @classmethod
    def from_wire(cls, wire) -> "History":
        from .wire import history_from_wire

        return history_from_wire(wire)

    def __reduce__(self):
        # Route pickling through the wire encoding: drops the cached
        # RelationMatrix closure (rebuilt lazily by the receiver) and the
        # per-event dataclass overhead.
        from .wire import history_from_wire

        return (history_from_wire, (self.to_wire(),))

    # -- structural equivalence --------------------------------------------------

    def canonical_key(self) -> Tuple:
        """Hashable key identifying this history up to read-from equivalence.

        Two histories have the same key iff they have the same transaction
        logs (same events in the same po), the same session order and the
        same write-read relation — exactly the equality of histories the
        paper's optimality notion is stated for.
        """
        logs = tuple(self.txns[tid].descriptor() for tid in sorted(self.txns))
        wr = tuple(sorted(self.wr.items()))
        return (logs, wr)

    def validate(self) -> None:
        """Check the well-formedness conditions of Def. 2.1 (used by tests)."""
        for read, writer in self.wr.items():
            event = self.event(read)
            if not event.is_external_read:
                raise AssertionError(f"wr source set for non-external-read {read!r}")
            if not self.txns[writer].writes_var(event.var):
                raise AssertionError(f"wr source {writer!r} does not write {event.var!r}")
        for log in self.txns.values():
            if log.events[0].type is not EventType.BEGIN:
                raise AssertionError(f"{log.tid!r} does not start with begin")
            for event in log.events[1:]:
                if event.type is EventType.BEGIN:
                    raise AssertionError(f"{log.tid!r} has a non-minimal begin")
            for event in log.events[:-1]:
                if event.type in (EventType.COMMIT, EventType.ABORT):
                    raise AssertionError(f"{log.tid!r} has a non-maximal commit/abort")
        if not self.is_so_wr_acyclic():
            raise AssertionError("so ∪ wr is cyclic")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = []
        for tid in sorted(self.txns):
            log = self.txns[tid]
            parts.append(f"  {tid!r}: {[repr(e) for e in log.events]}")
        wr = ", ".join(f"{r!r}<-{w!r}" for r, w in sorted(self.wr.items()))
        return "History(\n" + "\n".join(parts) + f"\n  wr: {wr})"


def is_prefix(candidate: History, full: History) -> bool:
    """Whether ``candidate`` is a prefix of ``full`` (paper §3.1).

    Every transaction log of the candidate must be a po-prefix of the log
    with the same id in ``full``, the candidate's event set must be
    ``(po ∪ so ∪ wr)*``-downward closed in ``full``, and the restricted
    ``so``/``wr`` must agree.
    """
    kept_events: Set[EventId] = set()
    for tid, log in candidate.txns.items():
        if tid not in full.txns:
            return False
        other = full.txns[tid]
        if len(log.events) > len(other.events) or log.events != other.events[: len(log.events)]:
            return False
        kept_events.update(e.eid for e in log.events)
    # so restriction: session sequences must be prefixes.
    for session, order in candidate.sessions.items():
        if order != full.sessions.get(session, ())[: len(order)]:
            return False
    # wr restriction must agree on kept reads.
    for read, writer in full.wr.items():
        if read in kept_events:
            if candidate.wr.get(read) != writer:
                return False
    for read in candidate.wr:
        if read not in full.wr or candidate.wr[read] != full.wr[read]:
            return False
    # downward closure w.r.t. po ∪ so ∪ wr on events.
    nodes = {e.eid for e in full.events()}
    edges: List[Tuple[EventId, EventId]] = []
    for log in full.txns.values():
        for first, second in zip(log.events, log.events[1:]):
            edges.append((first.eid, second.eid))
    for src, dst in full.so_pairs():
        edges.append((full.txns[src].last_event.eid, full.txns[dst].events[0].eid))
    for read, writer in full.wr.items():
        var = full.event(read).var
        write_event = full.txns[writer].writes().get(var)
        if write_event is not None:
            edges.append((write_event.eid, read))
    adj = make_adjacency(nodes, edges)
    return downward_closed(kept_events, adj)
