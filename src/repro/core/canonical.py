"""Canonical forms and pretty-printing for histories.

The DPOR algorithms are optimal w.r.t. *read-from equivalence*: two
executions are equivalent iff their histories are equal (same events, same
``po``/``so``/``wr``).  :func:`canonical_key` produces a hashable key with
exactly that discriminating power; :class:`HistorySet` collects histories up
to this equivalence and is the workhorse of the completeness/optimality
tests and of end-state counting in the benchmark harness.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .events import EventType
from .history import History


def canonical_key(history: History) -> Tuple:
    """Hashable identity of ``history`` up to read-from equivalence."""
    return history.canonical_key()


class HistorySet:
    """A set of histories modulo read-from equivalence.

    Keeps one representative per equivalence class and counts how many times
    each class was added — the duplicate counts are what distinguish an
    *optimal* enumeration (all counts 1) from the naive DFS baseline.
    """

    def __init__(self) -> None:
        self._members: Dict[Tuple, History] = {}
        self._counts: Dict[Tuple, int] = {}

    def add(self, history: History) -> bool:
        """Add a history; returns True iff its class was not seen before."""
        key = canonical_key(history)
        self._counts[key] = self._counts.get(key, 0) + 1
        if key in self._members:
            return False
        self._members[key] = history
        return True

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, history: History) -> bool:
        return canonical_key(history) in self._members

    def __iter__(self) -> Iterator[History]:
        return iter(self._members.values())

    @property
    def total_added(self) -> int:
        """Number of ``add`` calls, duplicates included."""
        return sum(self._counts.values())

    @property
    def duplicates(self) -> int:
        return self.total_added - len(self)

    def duplicate_classes(self) -> List[History]:
        """Representatives of classes added more than once (optimality bugs)."""
        return [self._members[k] for k, n in self._counts.items() if n > 1]

    def keys(self) -> Iterable[Tuple]:
        return self._members.keys()

    def symmetric_difference(self, other: "HistorySet") -> Tuple[List[History], List[History]]:
        """(histories only in self, histories only in other)."""
        only_self = [h for k, h in self._members.items() if k not in other._members]
        only_other = [h for k, h in other._members.items() if k not in self._members]
        return only_self, only_other


def format_history(history: History, indent: str = "") -> str:
    """Human-readable rendering of a history, for examples and debugging.

    Transactions are grouped per session; each read is annotated with the
    transaction it reads from.
    """
    lines: List[str] = []
    wr = history.wr
    sessions = sorted(history.sessions)
    for session in sessions:
        lines.append(f"{indent}session {session}:")
        for tid in history.sessions[session]:
            log = history.txns[tid]
            status = "committed" if log.is_committed else "aborted" if log.is_aborted else "pending"
            lines.append(f"{indent}  txn {tid.index} [{status}]")
            for event in log.events:
                if event.type is EventType.READ:
                    source: Optional[str] = None
                    if event.eid in wr:
                        src = wr[event.eid]
                        source = f" <- {src.session}/{src.index}"
                    elif event.local:
                        source = " (local)"
                    lines.append(f"{indent}    read({event.var}) = {event.value!r}{source or ''}")
                elif event.type is EventType.WRITE:
                    lines.append(f"{indent}    write({event.var}, {event.value!r})")
                else:
                    lines.append(f"{indent}    {event.type.value}")
    return "\n".join(lines)
