"""JSON value codec for the portable trace format.

Event values in this code base are arbitrary hashables: the DSL produces
ints and strings, the SQL-table modelling of :mod:`repro.apps.tables` uses
``frozenset`` id-sets, and tuples appear in composite values.  JSON has no
native encoding for the container types, so the trace serializer routes
every value through the hooks here:

* scalars (``None``, ``bool``, ``int``, ``float``, ``str``) pass through
  unchanged;
* ``tuple`` → ``{"$tuple": [...]}``, elements encoded recursively;
* ``frozenset`` → ``{"$frozenset": [...]}``, elements encoded recursively
  and sorted by ``(type name, repr)`` so the encoding is deterministic —
  equal values always serialize to byte-identical JSON.

Decoding inverts the markers exactly; any other dict is rejected (values
are hashable, so a plain dict can never be a legal value).  Unsupported
types raise :class:`ValueError` at encode time rather than producing a
lossy representation.
"""

from __future__ import annotations

from typing import Any, Hashable

_SCALARS = (bool, int, float, str)

#: Marker keys for container values (a one-key dict each).
TUPLE_KEY = "$tuple"
FROZENSET_KEY = "$frozenset"


def to_jsonable(value: Hashable) -> Any:
    """Encode a history event value into JSON-serializable form.

    Raises :class:`ValueError` for types the trace format does not cover.
    """
    if value is None or isinstance(value, _SCALARS):
        return value
    if isinstance(value, tuple):
        return {TUPLE_KEY: [to_jsonable(item) for item in value]}
    if isinstance(value, frozenset):
        encoded = [to_jsonable(item) for item in value]
        encoded.sort(key=lambda item: (type(item).__name__, repr(item)))
        return {FROZENSET_KEY: encoded}
    raise ValueError(f"value {value!r} of type {type(value).__name__} is not trace-serializable")


def from_jsonable(obj: Any) -> Hashable:
    """Decode a value produced by :func:`to_jsonable`."""
    if obj is None or isinstance(obj, _SCALARS):
        return obj
    if isinstance(obj, dict):
        if len(obj) == 1:
            if TUPLE_KEY in obj:
                return tuple(from_jsonable(item) for item in obj[TUPLE_KEY])
            if FROZENSET_KEY in obj:
                return frozenset(from_jsonable(item) for item in obj[FROZENSET_KEY])
        raise ValueError(f"unknown value encoding {obj!r}")
    if isinstance(obj, list):
        raise ValueError("bare JSON arrays are not valid trace values (use $tuple/$frozenset)")
    raise ValueError(f"cannot decode trace value {obj!r}")
