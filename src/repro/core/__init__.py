"""Core data model: events, transaction logs, histories, ordered histories,
and the bitset relation engine backing their causality queries."""

from .bitrel import RelationMatrix
from .events import INIT_SESSION, INIT_TXN, Event, EventId, EventType, TxnId
from .history import History, TransactionLog, is_prefix
from .ordered_history import OrderedHistory
from .canonical import HistorySet, canonical_key, format_history

__all__ = [
    "RelationMatrix",
    "INIT_SESSION",
    "INIT_TXN",
    "Event",
    "EventId",
    "EventType",
    "TxnId",
    "History",
    "TransactionLog",
    "is_prefix",
    "OrderedHistory",
    "HistorySet",
    "canonical_key",
    "format_history",
]

from .hbuilder import HistoryBuilder, TxnHandle

__all__ += ["HistoryBuilder", "TxnHandle"]

from .dot import history_to_dot

__all__ += ["history_to_dot"]

from .serde import from_jsonable, to_jsonable

__all__ += ["from_jsonable", "to_jsonable"]
