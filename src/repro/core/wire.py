"""Compact cross-process encoding of histories and ordered histories.

The parallel exploration driver ships work items (ordered histories) and
output histories between the coordinator and worker processes.  Pickling
the object graphs directly is wasteful: every :class:`~repro.core.events.Event`
drags its nested ``EventId``/``TxnId`` dataclasses, and a history's cached
:class:`~repro.core.bitrel.RelationMatrix` closure is pure dead weight on
the wire (the receiver rebuilds it lazily on first causality query anyway).

The wire format here is plain tuples of ints, strings and event payloads:

* a **transaction table** — ``(session, index)`` pairs in the history's
  transaction-dict insertion order (the order ``RelationMatrix`` indexing
  and ``adopt_causal_matrix`` depend on, so it must survive the round
  trip);
* per-table-entry **event tuples** ``(type_code, var, value, local)`` —
  event ids are implicit (table position + program-order position);
* the **wr relation** as ``(reader_index, read_pos, writer_index)`` triples;
* the **session map** as ``(session, transaction_count)`` pairs (session
  transaction ids are always ``0..n-1``, so the count suffices);
* for ordered histories, the order ``<`` as ``(txn_index, pos)`` pairs.

``History``, ``OrderedHistory`` and ``Event`` install ``__reduce__`` hooks
that route plain ``pickle`` through this encoding, so multiprocessing
queues get the compact form with no cooperation from callers.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .events import Event, EventId, EventType, TxnId
from .history import History, TransactionLog
from .ordered_history import OrderedHistory

#: Stable small-int codes for event types (order of declaration in EventType).
_TYPE_CODE: Dict[EventType, int] = {t: i for i, t in enumerate(EventType)}
_CODE_TYPE: Tuple[EventType, ...] = tuple(EventType)

#: ``(sessions, txn_table, logs, wr)`` — see the module docstring.
HistoryWire = Tuple[Tuple, Tuple, Tuple, Tuple]
#: ``(history_wire, order)``.
OrderedHistoryWire = Tuple[HistoryWire, Tuple]


def history_to_wire(history: History) -> HistoryWire:
    """Encode a history as nested tuples of ints/strings/values."""
    txn_ids = tuple(history.txns)
    txn_index = {tid: i for i, tid in enumerate(txn_ids)}
    table = tuple((tid.session, tid.index) for tid in txn_ids)
    logs = tuple(
        tuple(
            (_TYPE_CODE[e.type], e.var, e.value, e.local)
            for e in history.txns[tid].events
        )
        for tid in txn_ids
    )
    wr = tuple(
        (txn_index[read.txn], read.pos, txn_index[writer])
        for read, writer in history.wr.items()
    )
    sessions = tuple((session, len(order)) for session, order in history.sessions.items())
    return (sessions, table, logs, wr)


def history_from_wire(wire: HistoryWire) -> History:
    """Rebuild a history; the cached relation matrix is *not* restored."""
    sessions_wire, table, logs, wr_wire = wire
    tids = tuple(TxnId(session, index) for session, index in table)
    txns: Dict[TxnId, TransactionLog] = {}
    for tid, log in zip(tids, logs):
        events = tuple(
            Event(EventId(tid, pos), _CODE_TYPE[code], var, value, local)
            for pos, (code, var, value, local) in enumerate(log)
        )
        txns[tid] = TransactionLog(tid, events)
    sessions = {
        session: tuple(TxnId(session, i) for i in range(count))
        for session, count in sessions_wire
    }
    wr = {
        EventId(tids[reader], pos): tids[writer]
        for reader, pos, writer in wr_wire
    }
    return History(sessions, txns, wr)


def ordered_history_to_wire(oh: OrderedHistory) -> OrderedHistoryWire:
    """Encode an ordered history: history wire + ``<`` as index pairs."""
    history_wire = history_to_wire(oh.history)
    txn_index = {tid: i for i, tid in enumerate(oh.history.txns)}
    order = tuple((txn_index[eid.txn], eid.pos) for eid in oh.order)
    return (history_wire, order)


def ordered_history_from_wire(wire: OrderedHistoryWire) -> OrderedHistory:
    history_wire, order_wire = wire
    history = history_from_wire(history_wire)
    tids = tuple(history.txns)
    order = [EventId(tids[txn_i], pos) for txn_i, pos in order_wire]
    return OrderedHistory(history, order)


def encode_items(items: List[Tuple[int, OrderedHistory]]) -> List[Tuple[int, OrderedHistoryWire]]:
    """Encode a batch of work-stack items (kind, ordered history)."""
    return [(kind, ordered_history_to_wire(oh)) for kind, oh in items]


def decode_items(items: List[Tuple[int, OrderedHistoryWire]]) -> List[Tuple[int, OrderedHistory]]:
    return [(kind, ordered_history_from_wire(wire)) for kind, wire in items]
