"""Compact cross-process encoding of histories and ordered histories.

The parallel exploration driver ships work items (ordered histories) and
output histories between the coordinator and worker processes.  Pickling
the object graphs directly is wasteful: every :class:`~repro.core.events.Event`
drags its nested ``EventId``/``TxnId`` dataclasses; here everything
travels as flat tuples and the one cache worth keeping — the transitive
closure of ``so ∪ wr`` — travels as packed int rows.

The wire format here is plain tuples of ints, strings and event payloads:

* a **transaction table** — ``(session, index)`` pairs in the history's
  transaction-dict insertion order (the order ``RelationMatrix`` indexing
  and ``adopt_causal_matrix`` depend on, so it must survive the round
  trip);
* per-table-entry **event tuples** ``(type_code, var, value, local)`` —
  event ids are implicit (table position + program-order position);
* the **wr relation** as ``(reader_index, read_pos, writer_index)`` triples;
* the **session map** as ``(session, transaction_count)`` pairs (session
  transaction ids are always ``0..n-1``, so the count suffices);
* the **causal closure**, when the sender had one cached: the packed
  ``so ∪ wr`` :meth:`~repro.core.bitrel.RelationMatrix.closure_rows` —
  three ``n``-bit ints per transaction.  The closure is a *fixpoint* the
  receiver would otherwise recompute from scratch on its first causality
  query (DPOR work items hit one immediately), while on the wire it is a
  few dozen small ints; shipping it makes a decoded work item as cheap to
  step as the original.  ``None`` when the sender never built one;
* for ordered histories, the order ``<`` as ``(txn_index, pos)`` pairs.

``History``, ``OrderedHistory`` and ``Event`` install ``__reduce__`` hooks
that route plain ``pickle`` through this encoding, so multiprocessing
queues get the compact form with no cooperation from callers.

Batched framing
---------------

The persistent worker pool (:mod:`repro.dpor.pool`) does not ship one
pickled ``History`` per task.  It ships **frames**: a fixed header
(magic, version, tag, payload length) followed by one pickle of a whole
*batch* of wire tuples — many seeds per message, one serialisation call,
one length-prefixed unit the receiver can validate before trusting.
:func:`encode_frame` / :func:`decode_frame` implement the framing;
:func:`encode_seed_batch` / :func:`decode_seed_batch` specialise it for
work-item batches.  Truncated, corrupt and oversized frames all raise
:class:`FrameError` instead of feeding garbage to ``pickle``.
"""

from __future__ import annotations

import pickle
import struct
from typing import Dict, List, Optional, Tuple

from .bitrel import RelationMatrix
from .events import Event, EventId, EventType, TxnId
from .history import History, TransactionLog
from .ordered_history import OrderedHistory

#: Stable small-int codes for event types (order of declaration in EventType).
_TYPE_CODE: Dict[EventType, int] = {t: i for i, t in enumerate(EventType)}
_CODE_TYPE: Tuple[EventType, ...] = tuple(EventType)

#: ``(sessions, txn_table, logs, wr, closure)`` — see the module docstring.
HistoryWire = Tuple[Tuple, Tuple, Tuple, Tuple, Optional[Tuple]]
#: ``(history_wire, order)``.
OrderedHistoryWire = Tuple[HistoryWire, Tuple]


def history_to_wire(history: History) -> HistoryWire:
    """Encode a history as nested tuples of ints/strings/values."""
    txn_ids = tuple(history.txns)
    txn_index = {tid: i for i, tid in enumerate(txn_ids)}
    table = tuple((tid.session, tid.index) for tid in txn_ids)
    logs = tuple(
        tuple(
            (_TYPE_CODE[e.type], e.var, e.value, e.local)
            for e in history.txns[tid].events
        )
        for tid in txn_ids
    )
    wr = tuple(
        (txn_index[read.txn], read.pos, txn_index[writer])
        for read, writer in history.wr.items()
    )
    sessions = tuple((session, len(order)) for session, order in history.sessions.items())
    matrix = history.cached_causal_matrix()
    closure = matrix.closure_rows() if matrix is not None else None
    return (sessions, table, logs, wr, closure)


def history_from_wire(wire: HistoryWire) -> History:
    """Rebuild a history, restoring the causal closure when it was shipped."""
    sessions_wire, table, logs, wr_wire, closure = wire
    tids = tuple(TxnId(session, index) for session, index in table)
    txns: Dict[TxnId, TransactionLog] = {}
    for tid, log in zip(tids, logs):
        events = tuple(
            Event(EventId(tid, pos), _CODE_TYPE[code], var, value, local)
            for pos, (code, var, value, local) in enumerate(log)
        )
        txns[tid] = TransactionLog(tid, events)
    sessions = {
        session: tuple(TxnId(session, i) for i in range(count))
        for session, count in sessions_wire
    }
    wr = {
        EventId(tids[reader], pos): tids[writer]
        for reader, pos, writer in wr_wire
    }
    history = History(sessions, txns, wr)
    if closure is not None:
        history.adopt_causal_matrix(RelationMatrix.from_closure(tids, closure))
    return history


def ordered_history_to_wire(oh: OrderedHistory) -> OrderedHistoryWire:
    """Encode an ordered history: history wire + ``<`` as index pairs."""
    history_wire = history_to_wire(oh.history)
    txn_index = {tid: i for i, tid in enumerate(oh.history.txns)}
    order = tuple((txn_index[eid.txn], eid.pos) for eid in oh.order)
    return (history_wire, order)


def ordered_history_from_wire(wire: OrderedHistoryWire) -> OrderedHistory:
    history_wire, order_wire = wire
    history = history_from_wire(history_wire)
    tids = tuple(history.txns)
    order = [EventId(tids[txn_i], pos) for txn_i, pos in order_wire]
    return OrderedHistory(history, order)


def encode_items(items: List[Tuple[int, OrderedHistory]]) -> List[Tuple[int, OrderedHistoryWire]]:
    """Encode a batch of work-stack items (kind, ordered history)."""
    return [(kind, ordered_history_to_wire(oh)) for kind, oh in items]


def decode_items(items: List[Tuple[int, OrderedHistoryWire]]) -> List[Tuple[int, OrderedHistory]]:
    return [(kind, ordered_history_from_wire(wire)) for kind, wire in items]


# -- length-prefixed frames ---------------------------------------------------

#: Frame header: 2-byte magic, 1-byte format version, 1-byte tag (the
#: pool's message kind), 4-byte big-endian payload length.
_FRAME_HEADER = struct.Struct(">2sBBI")

FRAME_MAGIC = b"RW"
FRAME_VERSION = 1

#: Hard ceiling on one frame's payload.  A coordinator/worker pair never
#: legitimately approaches this (the granularity controller keeps batches
#: in the kilobyte range); anything larger is a protocol error, not data.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class FrameError(ValueError):
    """A wire frame is truncated, corrupt, oversized, or mis-tagged."""


def encode_frame(tag: int, payload: object, max_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """One length-prefixed frame: header + a single pickle of ``payload``.

    ``payload`` must already be in wire form (plain tuples of ints,
    strings and event values — see :func:`encode_seed_batch`); the point
    of the frame is that a batch of any size costs exactly one
    serialisation call and one message.
    """
    if not 0 <= tag <= 0xFF:
        raise FrameError(f"frame tag must fit one byte, got {tag}")
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    if len(body) > max_bytes:
        raise FrameError(f"frame payload {len(body)} bytes exceeds limit {max_bytes}")
    return _FRAME_HEADER.pack(FRAME_MAGIC, FRAME_VERSION, tag, len(body)) + body


def decode_frame(frame: bytes, max_bytes: int = MAX_FRAME_BYTES) -> Tuple[int, object]:
    """Validate and decode one frame; returns ``(tag, payload)``.

    Every malformation short of a valid header + exactly-matching payload
    raises :class:`FrameError` *before* the payload reaches ``pickle`` —
    a truncated or over-long byte string is never partially trusted.
    """
    if len(frame) < _FRAME_HEADER.size:
        raise FrameError(f"truncated frame: {len(frame)} bytes < {_FRAME_HEADER.size}-byte header")
    magic, version, tag, length = _FRAME_HEADER.unpack_from(frame)
    if magic != FRAME_MAGIC:
        raise FrameError(f"bad frame magic {magic!r}")
    if version != FRAME_VERSION:
        raise FrameError(f"unsupported frame version {version}")
    if length > max_bytes:
        raise FrameError(f"frame declares {length} bytes, exceeds limit {max_bytes}")
    body = frame[_FRAME_HEADER.size:]
    if len(body) != length:
        kind = "truncated" if len(body) < length else "trailing garbage in"
        raise FrameError(f"{kind} frame: header declares {length} bytes, got {len(body)}")
    return tag, pickle.loads(body)


def encode_seed_batch(tag: int, items: List[Tuple[int, OrderedHistory]], extra: Tuple = ()) -> bytes:
    """Frame a batch of work items (plus per-task metadata ``extra``).

    The batch is wire-encoded first (plain tuples, no object graphs) and
    the whole ``(extra, encoded items)`` pair pickled once — the batched
    replacement for the one-pickled-``History``-per-task protocol.
    """
    return encode_frame(tag, (extra, encode_items(items)))


def decode_seed_batch(frame: bytes) -> Tuple[int, Tuple, List[Tuple[int, OrderedHistory]]]:
    """Inverse of :func:`encode_seed_batch`: ``(tag, extra, items)``."""
    tag, payload = decode_frame(frame)
    if (
        not isinstance(payload, tuple)
        or len(payload) != 2
        or not isinstance(payload[1], list)
    ):
        raise FrameError("seed-batch frame payload is not (extra, items)")
    extra, items_wire = payload
    return tag, extra, decode_items(items_wire)
