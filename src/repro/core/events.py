"""Events and transaction identifiers (paper §2.2.1).

Programs interact with the database by issuing transactions formed of
``begin``, ``commit``, ``abort``, ``read`` and ``write`` instructions.  The
effect of executing one such instruction is represented by an *event*.

Identifiers are structural and deterministic so that histories produced on
different exploration branches can be compared for read-from equivalence:

* a transaction is identified by ``TxnId(session, index)`` — the ``index``-th
  transaction (0-based) issued by session ``session``;
* an event is identified by ``EventId(txn, pos)`` — the ``pos``-th event
  (0-based, in program order ``po``) of transaction ``txn``.

The distinguished transaction writing the initial values of all global
variables (paper Def. 2.1) uses the reserved session id :data:`INIT_SESSION`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Hashable, NamedTuple, Optional

#: Reserved session identifier of the ``init`` transaction.
INIT_SESSION: str = "__init__"


class TxnId(NamedTuple):
    """Identifier of a transaction log: session id + position in session.

    A named tuple rather than a dataclass: identifiers key every map of the
    exploration (``txns``, ``wr``, relation indices, canonical keys), so
    their hashing and equality must run at C speed.  Ordering is the same
    lexicographic (session, index) order the frozen dataclass had.
    """

    session: str
    index: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"t({self.session},{self.index})"

    @property
    def is_init(self) -> bool:
        """Whether this is the distinguished initial transaction."""
        return self.session == INIT_SESSION


#: The id of the distinguished transaction writing all initial values.
INIT_TXN: TxnId = TxnId(INIT_SESSION, 0)


class EventId(NamedTuple):
    """Identifier of an event: owning transaction + program-order position."""

    txn: TxnId
    pos: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"e({self.txn.session},{self.txn.index},{self.pos})"


class EventType(enum.Enum):
    """The five event types of the paper (§2.2.1)."""

    BEGIN = "begin"
    COMMIT = "commit"
    ABORT = "abort"
    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class Event:
    """An event ⟨e, type⟩, possibly carrying a variable and a value.

    ``var`` is set for READ and WRITE events.  ``value`` is set for WRITE
    events (the written value) and for READ events (the value observed; for
    an external read this is derived from the write-read relation and cached
    here for convenience — it is *not* part of read-from equivalence, it is
    determined by it).

    ``local`` marks READ events that are preceded by a write to the same
    variable in the same transaction (paper §2.2.1): such reads return the
    value of the latest program-order-preceding write and do not take part
    in the write-read relation, in ``reads(t)``, or in swaps.
    """

    eid: EventId
    type: EventType
    var: Optional[str] = None
    value: Hashable = None
    local: bool = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.type is EventType.READ:
            tag = "lread" if self.local else "read"
            return f"{tag}({self.var})={self.value!r}@{self.eid!r}"
        if self.type is EventType.WRITE:
            return f"write({self.var},{self.value!r})@{self.eid!r}"
        return f"{self.type.value}@{self.eid!r}"

    def __reduce__(self):
        # Positional-args reconstruction: cheaper to pickle than the default
        # per-field state dict (events dominate cross-process payloads).
        return (Event, (self.eid, self.type, self.var, self.value, self.local))

    @property
    def is_external_read(self) -> bool:
        """READ event that takes part in the write-read relation."""
        return self.type is EventType.READ and not self.local

    def with_value(self, value: Hashable) -> "Event":
        """Copy of this event with a different observed/written value."""
        return Event(self.eid, self.type, self.var, value, self.local)
