"""Small relation/graph utilities used throughout the library.

Histories are tiny (tens of nodes), so the implementations favour clarity
over asymptotic cleverness: reachability is DFS, closures are dict-of-set
saturations, cycle detection is iterative colouring.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Mapping, Set, Tuple

Node = Hashable
Adjacency = Mapping[Node, Set[Node]]


def make_adjacency(nodes: Iterable[Node], edges: Iterable[Tuple[Node, Node]]) -> Dict[Node, Set[Node]]:
    """Build an adjacency map over ``nodes`` from an edge iterable.

    Edge endpoints must be members of ``nodes``; this is asserted because a
    dangling endpoint always indicates a bug in history construction.
    """
    adj: Dict[Node, Set[Node]] = {n: set() for n in nodes}
    for src, dst in edges:
        if src not in adj or dst not in adj:
            raise ValueError(f"edge ({src!r}, {dst!r}) has endpoint outside node set")
        adj[src].add(dst)
    return adj


def reachable_from(adj: Adjacency, start: Node) -> Set[Node]:
    """All nodes reachable from ``start`` (excluding ``start`` unless on a cycle)."""
    seen: Set[Node] = set()
    stack = list(adj.get(start, ()))
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        stack.extend(adj.get(node, ()))
    return seen


def transitive_closure(adj: Adjacency) -> Dict[Node, Set[Node]]:
    """The strict transitive closure ``R+`` as a node → descendants map."""
    return {node: reachable_from(adj, node) for node in adj}


def reaches(adj: Adjacency, src: Node, dst: Node) -> bool:
    """Whether ``dst`` is reachable from ``src`` by a non-empty path."""
    return dst in reachable_from(adj, src)


def reaches_reflexive(adj: Adjacency, src: Node, dst: Node) -> bool:
    """Whether ``(src, dst) ∈ R*`` (reflexive-transitive closure)."""
    return src == dst or reaches(adj, src, dst)


def is_acyclic(adj: Adjacency) -> bool:
    """Cycle check by iterative three-colour DFS."""
    WHITE, GREY, BLACK = 0, 1, 2
    colour: Dict[Node, int] = {n: WHITE for n in adj}
    for root in adj:
        if colour[root] != WHITE:
            continue
        stack = [(root, iter(adj[root]))]
        colour[root] = GREY
        while stack:
            node, it = stack[-1]
            advanced = False
            for succ in it:
                if colour[succ] == GREY:
                    return False
                if colour[succ] == WHITE:
                    colour[succ] = GREY
                    stack.append((succ, iter(adj[succ])))
                    advanced = True
                    break
            if not advanced:
                colour[node] = BLACK
                stack.pop()
    return True


def topological_orders(adj: Adjacency):
    """Yield every topological order of the DAG ``adj`` (exponential!).

    Used only by the brute-force reference consistency checker on tiny
    histories and by tests.  ``adj`` maps node → successors; an order lists
    each node after all its predecessors.
    """
    indegree: Dict[Node, int] = {n: 0 for n in adj}
    for node in adj:
        for succ in adj[node]:
            indegree[succ] += 1
    order: list = []

    def backtrack():
        ready = [n for n in adj if indegree[n] == 0 and n not in placed]
        if not ready:
            if len(order) == len(adj):
                yield tuple(order)
            return
        for node in ready:
            placed.add(node)
            order.append(node)
            for succ in adj[node]:
                indegree[succ] -= 1
            yield from backtrack()
            for succ in adj[node]:
                indegree[succ] += 1
            order.pop()
            placed.discard(node)

    placed: Set[Node] = set()
    yield from backtrack()


def downward_closed(nodes: Set[Node], adj: Adjacency) -> bool:
    """Whether ``nodes`` is R-downward closed in the graph ``adj``.

    I.e. whenever it contains ``b`` it contains every ``a`` with an edge
    ``a → b`` (paper §3.1).
    """
    for node in adj:
        for succ in adj[node]:
            if succ in nodes and node not in nodes:
                return False
    return True


def restrict(adj: Adjacency, keep: Set[Node]) -> Dict[Node, Set[Node]]:
    """The restriction ``R ↓ keep × keep`` of a relation (paper §3.1)."""
    return {n: {s for s in succs if s in keep} for n, succs in adj.items() if n in keep}
