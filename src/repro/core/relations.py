"""Dict-of-set relation/graph utilities — now a thin facade over
:mod:`repro.core.bitrel`.

This module keeps the original adjacency-map API (used by the brute-force
reference checker, ``is_prefix`` on event graphs, and the tests), but the
whole-graph operations — :func:`transitive_closure` and :func:`is_acyclic`
— delegate to the bitset relation engine
(:class:`~repro.core.bitrel.RelationMatrix`), which indexes nodes densely
and computes closures word-parallel.  Results agree with the old DFS
saturations on every input ``make_adjacency`` can produce; the one
behavioural difference is that ``is_acyclic`` now tolerates successors
absent from the key set (the old three-colour DFS crashed on them).

Single-source queries (:func:`reachable_from`, :func:`reaches`) stay plain
DFS: building a dense matrix to answer one source would cost more than the
traversal.  Hot paths that issue *many* reachability queries over one
relation should not go through this facade at all — they should hold a
``RelationMatrix`` (see ``History.causal_matrix``) and query its maintained
closure directly.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Mapping, Set, Tuple

from .bitrel import RelationMatrix

Node = Hashable
Adjacency = Mapping[Node, Set[Node]]


def make_adjacency(nodes: Iterable[Node], edges: Iterable[Tuple[Node, Node]]) -> Dict[Node, Set[Node]]:
    """Build an adjacency map over ``nodes`` from an edge iterable.

    Edge endpoints must be members of ``nodes``; this is asserted because a
    dangling endpoint always indicates a bug in history construction.
    """
    adj: Dict[Node, Set[Node]] = {n: set() for n in nodes}
    for src, dst in edges:
        if src not in adj or dst not in adj:
            raise ValueError(f"edge ({src!r}, {dst!r}) has endpoint outside node set")
        adj[src].add(dst)
    return adj


def reachable_from(adj: Adjacency, start: Node) -> Set[Node]:
    """All nodes reachable from ``start`` (excluding ``start`` unless on a cycle)."""
    seen: Set[Node] = set()
    stack = list(adj.get(start, ()))
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        stack.extend(adj.get(node, ()))
    return seen


def transitive_closure(adj: Adjacency) -> Dict[Node, Set[Node]]:
    """The strict transitive closure ``R+`` as a node → descendants map.

    Delegates to the bitset engine: one dense matrix build replaces one
    DFS per node.  Like the DFS it replaced, successors that are not
    themselves keys of ``adj`` are tolerated (and appear only inside the
    descendant sets, not as keys of the result).
    """
    closure = _matrix_of(adj).transitive_closure()
    return {node: closure[node] for node in adj}


def reaches(adj: Adjacency, src: Node, dst: Node) -> bool:
    """Whether ``dst`` is reachable from ``src`` by a non-empty path."""
    return dst in reachable_from(adj, src)


def reaches_reflexive(adj: Adjacency, src: Node, dst: Node) -> bool:
    """Whether ``(src, dst) ∈ R*`` (reflexive-transitive closure)."""
    return src == dst or reaches(adj, src, dst)


def _matrix_of(adj: Adjacency) -> RelationMatrix:
    """A :class:`RelationMatrix` over ``adj``'s nodes and edges.

    The universe also covers successors that are not keys of ``adj``
    (the old DFS walked them via ``adj.get``).
    """
    universe: Dict[Node, None] = dict.fromkeys(adj)
    for succs in adj.values():
        for dst in succs:
            universe.setdefault(dst, None)
    return RelationMatrix(universe, ((src, dst) for src, succs in adj.items() for dst in succs))


def is_acyclic(adj: Adjacency) -> bool:
    """Cycle check, delegated to the bitset engine's maintained closure."""
    return _matrix_of(adj).is_acyclic()


def topological_orders(adj: Adjacency):
    """Yield every topological order of the DAG ``adj`` (exponential!).

    Used only by the brute-force reference consistency checker on tiny
    histories and by tests.  ``adj`` maps node → successors; an order lists
    each node after all its predecessors.
    """
    indegree: Dict[Node, int] = {n: 0 for n in adj}
    for node in adj:
        for succ in adj[node]:
            indegree[succ] += 1
    order: list = []

    def backtrack():
        ready = [n for n in adj if indegree[n] == 0 and n not in placed]
        if not ready:
            if len(order) == len(adj):
                yield tuple(order)
            return
        for node in ready:
            placed.add(node)
            order.append(node)
            for succ in adj[node]:
                indegree[succ] -= 1
            yield from backtrack()
            for succ in adj[node]:
                indegree[succ] += 1
            order.pop()
            placed.discard(node)

    placed: Set[Node] = set()
    yield from backtrack()


def downward_closed(nodes: Set[Node], adj: Adjacency) -> bool:
    """Whether ``nodes`` is R-downward closed in the graph ``adj``.

    I.e. whenever it contains ``b`` it contains every ``a`` with an edge
    ``a → b`` (paper §3.1).
    """
    for node in adj:
        for succ in adj[node]:
            if succ in nodes and node not in nodes:
                return False
    return True


def restrict(adj: Adjacency, keep: Set[Node]) -> Dict[Node, Set[Node]]:
    """The restriction ``R ↓ keep × keep`` of a relation (paper §3.1)."""
    return {n: {s for s in succs if s in keep} for n, succs in adj.items() if n in keep}
