"""Graphviz (DOT) rendering of histories.

Produces figures in the visual language of the paper: one box (cluster) per
transaction listing its events in program order, ``so`` edges between
session-consecutive transactions, and per-variable ``wr`` edges from the
visible write to each read.  Feed the output to ``dot -Tpdf`` or any DOT
viewer; no graphviz dependency is required to generate the text.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .events import EventType, INIT_TXN, TxnId
from .history import History


def _quote(text: str) -> str:
    return '"' + text.replace('"', '\\"') + '"'


def _node_id(tid: TxnId, pos: int) -> str:
    return f"n_{tid.session}_{tid.index}_{pos}".replace("-", "_")


def _event_label(event) -> str:
    if event.type is EventType.READ:
        suffix = " (local)" if event.local else ""
        return f"read({event.var}) = {event.value!r}{suffix}"
    if event.type is EventType.WRITE:
        return f"write({event.var}, {event.value!r})"
    return event.type.value


def history_to_dot(
    history: History,
    title: Optional[str] = None,
    include_init: bool = True,
    rankdir: str = "TB",
) -> str:
    """Render ``history`` as a DOT digraph string."""
    lines: List[str] = ["digraph history {"]
    lines.append(f"  rankdir={rankdir};")
    lines.append("  node [shape=plaintext, fontsize=10, fontname=monospace];")
    if title:
        lines.append(f"  label={_quote(title)};")
        lines.append("  labelloc=t;")

    anchors: Dict[TxnId, str] = {}
    for tid, log in sorted(history.txns.items()):
        if tid == INIT_TXN and not include_init:
            continue
        cluster = f"cluster_{tid.session}_{tid.index}".replace("-", "_")
        status = "committed" if log.is_committed else "aborted" if log.is_aborted else "pending"
        name = "init" if tid == INIT_TXN else f"{tid.session}/{tid.index}"
        lines.append(f"  subgraph {cluster} {{")
        lines.append(f"    label={_quote(f'{name} [{status}]')};")
        lines.append("    style=rounded;")
        previous: Optional[str] = None
        for event in log.events:
            node = _node_id(tid, event.eid.pos)
            lines.append(f"    {node} [label={_quote(_event_label(event))}];")
            if previous is not None:
                lines.append(f"    {previous} -> {node} [style=dotted, arrowhead=none];")
            previous = node
        lines.append("  }")
        anchors[tid] = _node_id(tid, 0)

    # so edges (transitively reduced, matching the paper's figures).
    for src, dst in history.so_pairs():
        if src == INIT_TXN and not include_init:
            continue
        if src in anchors and dst in anchors:
            src_node = _node_id(src, len(history.txns[src].events) - 1)
            lines.append(f"  {src_node} -> {anchors[dst]} [label=so, color=gray40];")

    # wr edges from the visible write event to each external read.
    for read, writer in sorted(history.wr.items()):
        if writer == INIT_TXN and not include_init:
            continue
        var = history.event(read).var
        write_event = history.txns[writer].writes().get(var)
        if write_event is None:
            continue
        src_node = _node_id(writer, write_event.eid.pos)
        dst_node = _node_id(read.txn, read.pos)
        lines.append(
            f"  {src_node} -> {dst_node} [label={_quote(f'wr[{var}]')}, color=blue, constraint=false];"
        )
    lines.append("}")
    return "\n".join(lines)
