"""Declarative construction of histories.

Histories normally arise from executing programs, but it is often useful to
write one down directly — to check a recorded execution against an isolation
level (the Biswas–Enea use case), to reproduce the paper's figures, or in
tests.  :class:`HistoryBuilder` offers exactly that::

    b = HistoryBuilder(variables=["x", "y"])
    t1 = b.txn("alice")
    t1.write("x", 1)
    t1.commit()

    t2 = b.txn("bob")
    t2.read("x", source=t1)     # bob reads x from alice's transaction
    t2.write("y", 2)
    t2.commit()

    history = b.build()
    CC.satisfies(history)

Reads resolve their observed value from the source transaction's visible
write at :meth:`HistoryBuilder.build` time, so transactions can be declared
in any order as long as sources are declared before use.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Tuple, Union

from .events import INIT_TXN, Event, EventId, EventType, TxnId
from .history import History, TransactionLog


class TxnHandle:
    """Mutable recorder for one transaction's events (builder-internal)."""

    def __init__(self, builder: "HistoryBuilder", tid: TxnId):
        self._builder = builder
        self.tid = tid
        self._specs: List[Tuple] = []  # ("read", var, source) | ("write", var, value) | ("commit"/"abort",)
        self._closed = False

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError(f"transaction {self.tid!r} already completed")

    def read(self, var: str, source: Optional[Union["TxnHandle", TxnId]] = None) -> "TxnHandle":
        """Record a read of ``var``.

        ``source`` names the transaction the read reads from and is required
        unless an earlier write to ``var`` in this same transaction makes
        this a local read.
        """
        self._check_open()
        src = source.tid if isinstance(source, TxnHandle) else source
        local = any(s[0] == "write" and s[1] == var for s in self._specs)
        if src is None and not local:
            raise ValueError(f"external read of {var!r} in {self.tid!r} needs a source")
        if src is not None and local:
            raise ValueError(f"read of {var!r} in {self.tid!r} is local; it cannot have a source")
        self._specs.append(("read", var, src))
        return self

    def write(self, var: str, value: Hashable) -> "TxnHandle":
        """Record a write of ``value`` to ``var``."""
        self._check_open()
        self._specs.append(("write", var, value))
        return self

    def commit(self) -> "TxnHandle":
        self._check_open()
        self._specs.append(("commit",))
        self._closed = True
        return self

    def abort(self) -> "TxnHandle":
        self._check_open()
        self._specs.append(("abort",))
        self._closed = True
        return self


class HistoryBuilder:
    """Builds a :class:`~repro.core.history.History` from declared transactions."""

    def __init__(self, variables: Iterable[str], initial_value: Hashable = 0):
        self._variables = sorted(set(variables))
        self._initial_value = initial_value
        self._handles: List[TxnHandle] = []
        self._session_counts: Dict[str, int] = {}

    @property
    def init(self) -> TxnId:
        """The distinguished initial transaction (valid read source)."""
        return INIT_TXN

    def txn(self, session: str) -> TxnHandle:
        """Open a new transaction in ``session`` (session order = call order)."""
        index = self._session_counts.get(session, 0)
        self._session_counts[session] = index + 1
        handle = TxnHandle(self, TxnId(session, index))
        self._handles.append(handle)
        return handle

    def build(self, auto_commit: bool = True) -> History:
        """Materialise the history; open transactions stay pending unless
        ``auto_commit``."""
        history = History.initial(self._variables, self._initial_value)
        sessions: Dict[str, Tuple[TxnId, ...]] = {}
        txns = dict(history.txns)
        wr: Dict[EventId, TxnId] = {}
        pending_reads: List[Tuple[EventId, TxnId, str]] = []

        for handle in self._handles:
            tid = handle.tid
            specs = list(handle._specs)
            if auto_commit and not handle._closed:
                specs.append(("commit",))
            events: List[Event] = [Event(EventId(tid, 0), EventType.BEGIN)]
            for spec in specs:
                eid = EventId(tid, len(events))
                if spec[0] == "read":
                    _, var, src = spec
                    if src is None:
                        last = None
                        for prev in reversed(events):
                            if prev.type is EventType.WRITE and prev.var == var:
                                last = prev
                                break
                        events.append(Event(eid, EventType.READ, var, last.value, local=True))
                    else:
                        events.append(Event(eid, EventType.READ, var, None))
                        pending_reads.append((eid, src, var))
                elif spec[0] == "write":
                    _, var, value = spec
                    events.append(Event(eid, EventType.WRITE, var, value))
                elif spec[0] == "commit":
                    events.append(Event(eid, EventType.COMMIT))
                else:
                    events.append(Event(eid, EventType.ABORT))
            txns[tid] = TransactionLog(tid, tuple(events))
            order = sessions.get(tid.session, ())
            sessions[tid.session] = order + (tid,)

        result = History(sessions, txns, wr)
        # Resolve read sources now that every transaction log exists.
        for eid, src, var in pending_reads:
            if src not in result.txns:
                raise ValueError(f"read source {src!r} was never declared")
            result = result.with_read_source(eid, src)
        result.validate()
        return result
