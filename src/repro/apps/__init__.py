"""Benchmark applications from the paper's evaluation (§7.2)."""

from . import courseware, generator, shopping_cart, tpcc, twitter, wikipedia
from .generator import (
    PRESETS,
    WorkloadSpec,
    generate_program,
    key_access_counts,
    make_workload,
    parse_spec,
)
from .tables import Table
from .workloads import (
    APPLICATIONS,
    SCALABILITY_APPS,
    application_suite,
    client_program,
    resolve_workload,
    session_scaling_suite,
    transaction_scaling_suite,
    workload_names,
)

__all__ = [
    "courseware",
    "generator",
    "shopping_cart",
    "tpcc",
    "twitter",
    "wikipedia",
    "Table",
    "APPLICATIONS",
    "SCALABILITY_APPS",
    "PRESETS",
    "WorkloadSpec",
    "application_suite",
    "client_program",
    "generate_program",
    "key_access_counts",
    "make_workload",
    "parse_spec",
    "resolve_workload",
    "session_scaling_suite",
    "transaction_scaling_suite",
    "workload_names",
]
