"""Benchmark applications from the paper's evaluation (§7.2)."""

from . import courseware, shopping_cart, tpcc, twitter, wikipedia
from .tables import Table
from .workloads import (
    APPLICATIONS,
    SCALABILITY_APPS,
    application_suite,
    client_program,
    session_scaling_suite,
    transaction_scaling_suite,
)

__all__ = [
    "courseware",
    "shopping_cart",
    "tpcc",
    "twitter",
    "wikipedia",
    "Table",
    "APPLICATIONS",
    "SCALABILITY_APPS",
    "application_suite",
    "client_program",
    "session_scaling_suite",
    "transaction_scaling_suite",
]
