"""Courseware application [Nair et al. 2020] (paper §7.2).

Manages enrollment of students in courses: open, close and delete courses,
enroll students, and list enrollments.  A student may enroll only while the
course is open and below its capacity.

Modelling: a per-(course, student) enrollment flag ``enr_c_s`` ∈ {0, 1},
a per-course ``status_c`` ∈ {CLOSED, OPEN, DELETED}, and a ``registered``
student set.  The capacity check reads all enrollment flags and counts —
this is the classic *write-skew* shape: two concurrent enrollments read
each other's flag as 0, both pass the check, and both write their own
(distinct) flag, overfilling the course.  Serializability forbids it;
CC *and* Snapshot Isolation allow it (disjoint write sets).
"""

from __future__ import annotations

import random
from typing import List, Sequence

from ..checking.assertions import Assertion
from ..lang.ast import abort, assign, if_, read, write
from ..lang.expr import L, fn, set_add, set_remove
from ..lang.program import Program, Transaction

CLOSED, OPEN, DELETED = 0, 1, 2

STUDENTS: Sequence[str] = ("s0", "s1")
COURSES: Sequence[str] = ("c0",)
CAPACITY = 1

REGISTERED = "registered"


def status_var(course: str) -> str:
    return f"status_{course}"


def enrollment_var(course: str, student: str) -> str:
    return f"enr_{course}_{student}"


def variables(students: Sequence[str] = STUDENTS, courses: Sequence[str] = COURSES) -> List[str]:
    out = [REGISTERED]
    for course in courses:
        out.append(status_var(course))
        out += [enrollment_var(course, s) for s in students]
    return out


def initial_values(students: Sequence[str] = STUDENTS, courses: Sequence[str] = COURSES):
    values = {REGISTERED: frozenset()}
    for course in courses:
        values[status_var(course)] = CLOSED
    return values


def _count_enrollments(course: str, students: Sequence[str], target: str):
    """Instructions reading every enrollment flag and summing into ``target``."""
    instrs = [read(f"e_{s}", enrollment_var(course, s)) for s in students]
    total = fn("sum", lambda *flags: sum(flags), *(L(f"e_{s}") for s in students))
    instrs.append(assign(target, total))
    return instrs


def register_student(student: str) -> Transaction:
    """Add a student to the registry."""
    return Transaction(
        f"register({student})",
        (
            read("reg", REGISTERED),
            write(REGISTERED, set_add(L("reg"), student)),
        ),
    )


def open_course(course: str) -> Transaction:
    return Transaction(f"open({course})", (write(status_var(course), OPEN),))


def close_course(course: str) -> Transaction:
    return Transaction(f"close({course})", (write(status_var(course), CLOSED),))


def delete_course(course: str, students: Sequence[str] = STUDENTS) -> Transaction:
    """Delete a course, only allowed when nobody is enrolled."""
    body = list(_count_enrollments(course, students, "count"))
    body.append(if_(L("count") > 0, then=(abort(),)))
    body.append(write(status_var(course), DELETED))
    return Transaction(f"delete({course})", tuple(body))


def enroll(
    student: str,
    course: str,
    capacity: int = CAPACITY,
    students: Sequence[str] = STUDENTS,
) -> Transaction:
    """Enroll if the course is open and has spare capacity.

    The check-then-write is exactly the application logic whose correctness
    depends on the isolation level.
    """
    body = [
        read("st", status_var(course)),
        if_(L("st") != OPEN, then=(abort(),)),
    ]
    body += _count_enrollments(course, students, "count")
    body.append(if_(L("count") >= capacity, then=(abort(),)))
    body.append(write(enrollment_var(course, student), 1))
    return Transaction(f"enroll({student},{course})", tuple(body))


def unenroll(student: str, course: str) -> Transaction:
    return Transaction(
        f"unenroll({student},{course})",
        (write(enrollment_var(course, student), 0),),
    )


def get_enrollments(course: str, students: Sequence[str] = STUDENTS) -> Transaction:
    body = [read("st", status_var(course))]
    body += _count_enrollments(course, students, "count")
    return Transaction(f"get_enrollments({course})", tuple(body))


def audit(course: str, students: Sequence[str] = STUDENTS) -> Transaction:
    """Observer transaction recording the final course state for assertions."""
    return Transaction(f"audit({course})", get_enrollments(course, students).body)


def capacity_assertion(audit_session: str, capacity: int = CAPACITY, txn_index: int = 0) -> Assertion:
    """The course never exceeds its capacity, as seen by the audit transaction."""
    return Assertion(
        f"enrollment count ≤ {capacity}",
        lambda outcome: (outcome.value(audit_session, "count", txn_index) or 0) <= capacity,
    )


def deleted_course_empty_assertion(audit_session: str, txn_index: int = 0) -> Assertion:
    """A deleted course has no enrollments, as seen by the audit transaction."""
    return Assertion(
        "deleted course has no enrollments",
        lambda outcome: outcome.value(audit_session, "st", txn_index) != DELETED
        or (outcome.value(audit_session, "count", txn_index) or 0) == 0,
    )


_TEMPLATES = ("register", "open", "close", "delete", "enroll", "unenroll", "get")


def random_transaction(
    rng: random.Random,
    students: Sequence[str] = STUDENTS,
    courses: Sequence[str] = COURSES,
    capacity: int = CAPACITY,
) -> Transaction:
    kind = rng.choice(_TEMPLATES)
    student = rng.choice(list(students))
    course = rng.choice(list(courses))
    if kind == "register":
        return register_student(student)
    if kind == "open":
        return open_course(course)
    if kind == "close":
        return close_course(course)
    if kind == "delete":
        return delete_course(course, students)
    if kind == "enroll":
        return enroll(student, course, capacity, students)
    if kind == "unenroll":
        return unenroll(student, course)
    return get_enrollments(course, students)


def make_program(
    sessions: int = 2,
    txns_per_session: int = 2,
    seed: int = 0,
    students: Sequence[str] = STUDENTS,
    courses: Sequence[str] = COURSES,
    capacity: int = CAPACITY,
    name: str = "courseware",
) -> Program:
    rng = random.Random(seed)
    program_sessions = {
        f"client{s}": [
            random_transaction(rng, students, courses, capacity) for _ in range(txns_per_session)
        ]
        for s in range(sessions)
    }
    return Program(
        program_sessions,
        name=name,
        extra_variables=variables(students, courses),
        initial_values=initial_values(students, courses),
    )


def capacity_violation_program(capacity: int = 1, name: str = "courseware-capacity") -> Program:
    """The motivating scenario: concurrent enrollments can overfill a course.

    One session opens the course; two student sessions enroll concurrently;
    an auditor session observes.  Use with :func:`capacity_assertion` on
    session ``"auditor"``.
    """
    students = ("s0", "s1")
    sessions = {
        "admin": [open_course("c0")],
        "alice": [enroll("s0", "c0", capacity, students)],
        "bob": [enroll("s1", "c0", capacity, students)],
        "auditor": [audit("c0", students)],
    }
    return Program(
        sessions,
        name=name,
        extra_variables=variables(students, ("c0",)),
        initial_values=initial_values(students, ("c0",)),
    )
