"""Configurable synthetic workload generator (§7.2's shape, parameterised).

The five benchmark applications each hard-code one access pattern.  This
module generates client programs from a declarative :class:`WorkloadSpec`
instead, with knobs for the dimensions that matter to isolation checking:

- **contention** — ``hot_key_skew`` draws keys from a zipf-like
  distribution (weight ``1/(rank+1)**skew``), so a high skew funnels
  most accesses through a few hot keys;
- **read/write mix** — ``read_ratio`` is the per-operation probability of
  a read; ``read_session_ratio`` additionally marks a fraction of sessions
  as read-mostly (95% reads), modelling reader/writer session mixes;
- **transaction length** — uniform in ``[txn_len_min, txn_len_max]``;
- **aborts** — ``abort_rate`` is the probability a transaction ends in an
  explicit abort, exercising the monitors' abort-retraction paths.

Programs are deterministic in ``(spec, sessions, txns_per_session, seed)``
and emit the same :class:`~repro.lang.program.Program` objects the
hand-written applications do, so every downstream consumer (model checker,
benchmark suite, trace recorder, difftest engine) takes them unchanged.

Specs are addressable by name (:data:`PRESETS`) or by a compact spec
string ``gen:knob=value,...`` (:func:`parse_spec`), e.g.::

    gen:keys=4,skew=2.0,reads=0.8,len=2-5,aborts=0.1

which is what ``repro bench --apps``, ``repro record --app`` and
``repro difftest --app`` accept anywhere an application name is expected.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List

from ..lang.ast import Instr, Read, Write
from ..lang.program import Program, ProgramBuilder

__all__ = [
    "WorkloadSpec",
    "PRESETS",
    "generate_program",
    "make_workload",
    "parse_spec",
    "spec_for",
    "key_access_counts",
]


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative shape of a generated workload.

    All fields have benign defaults (uniform key choice, balanced
    read/write mix, no aborts); construction validates ranges eagerly so a
    bad CLI spec string fails with a message instead of a weird program.
    """

    name: str = "gen"
    keys: int = 8
    hot_key_skew: float = 0.0
    read_ratio: float = 0.5
    txn_len_min: int = 2
    txn_len_max: int = 4
    abort_rate: float = 0.0
    read_session_ratio: float = 0.0

    def __post_init__(self) -> None:
        if self.keys < 1:
            raise ValueError(f"keys must be >= 1, got {self.keys}")
        if self.hot_key_skew < 0:
            raise ValueError(f"hot_key_skew must be >= 0, got {self.hot_key_skew}")
        if not 0.0 <= self.read_ratio <= 1.0:
            raise ValueError(f"read_ratio must be in [0, 1], got {self.read_ratio}")
        if not 0.0 <= self.abort_rate <= 1.0:
            raise ValueError(f"abort_rate must be in [0, 1], got {self.abort_rate}")
        if not 0.0 <= self.read_session_ratio <= 1.0:
            raise ValueError(
                f"read_session_ratio must be in [0, 1], got {self.read_session_ratio}"
            )
        if self.txn_len_min < 1:
            raise ValueError(f"txn_len_min must be >= 1, got {self.txn_len_min}")
        if self.txn_len_max < self.txn_len_min:
            raise ValueError(
                f"txn_len_max ({self.txn_len_max}) < txn_len_min ({self.txn_len_min})"
            )

    def key_names(self) -> List[str]:
        return [f"k{i}" for i in range(self.keys)]

    def key_weights(self) -> List[float]:
        """Zipf-like weights over key ranks: ``1/(rank+1)**skew``.

        ``skew == 0`` degenerates to uniform; larger skews concentrate
        probability mass on the low-rank (hot) keys.
        """
        return [1.0 / (rank + 1) ** self.hot_key_skew for rank in range(self.keys)]


#: Named workload shapes, usable anywhere an application name is accepted.
PRESETS: Dict[str, WorkloadSpec] = {
    "gen-uniform": WorkloadSpec(name="gen-uniform"),
    "gen-hotspot": WorkloadSpec(name="gen-hotspot", keys=8, hot_key_skew=2.0),
    "gen-readmostly": WorkloadSpec(
        name="gen-readmostly", read_ratio=0.9, read_session_ratio=0.5
    ),
    "gen-aborty": WorkloadSpec(name="gen-aborty", abort_rate=0.3, hot_key_skew=1.0),
}

#: ``gen:`` spec-string knob → WorkloadSpec field (``len`` is special-cased).
_KNOBS: Dict[str, str] = {
    "keys": "keys",
    "skew": "hot_key_skew",
    "reads": "read_ratio",
    "aborts": "abort_rate",
    "mix": "read_session_ratio",
}

SPEC_PREFIX = "gen:"


def parse_spec(text: str) -> WorkloadSpec:
    """Parse a ``gen:knob=value,...`` spec string into a WorkloadSpec.

    Knobs: ``keys=<int>``, ``skew=<float>``, ``reads=<float>``,
    ``aborts=<float>``, ``mix=<float>`` (read-session ratio) and
    ``len=<n>`` or ``len=<min>-<max>``.  A bare ``gen:`` is the default
    spec.  Raises ValueError with the offending knob on malformed input.
    """
    body = text[len(SPEC_PREFIX):] if text.startswith(SPEC_PREFIX) else text
    fields: Dict[str, object] = {"name": text if text.startswith(SPEC_PREFIX) else SPEC_PREFIX + text}
    for part in filter(None, (p.strip() for p in body.split(","))):
        if "=" not in part:
            raise ValueError(f"malformed workload knob {part!r} (expected knob=value)")
        knob, _, raw = part.partition("=")
        knob = knob.strip()
        raw = raw.strip()
        try:
            if knob == "len":
                lo, _, hi = raw.partition("-")
                fields["txn_len_min"] = int(lo)
                fields["txn_len_max"] = int(hi) if hi else int(lo)
            elif knob == "keys":
                fields["keys"] = int(raw)
            elif knob in _KNOBS:
                fields[_KNOBS[knob]] = float(raw)
            else:
                raise ValueError(
                    f"unknown workload knob {knob!r} "
                    f"(knobs: {', '.join(sorted(_KNOBS))}, len)"
                )
        except ValueError as exc:
            if "unknown workload knob" in str(exc) or "malformed" in str(exc):
                raise
            raise ValueError(f"bad value for workload knob {knob!r}: {raw!r}") from exc
    return WorkloadSpec(**fields)  # type: ignore[arg-type]


def spec_for(app: str) -> WorkloadSpec:
    """Resolve a preset name or ``gen:`` spec string to a WorkloadSpec.

    Raises KeyError for names that are neither (hand-written applications
    live in :data:`~repro.apps.workloads.APPLICATIONS`, not here).
    """
    if app in PRESETS:
        return PRESETS[app]
    if app.startswith(SPEC_PREFIX):
        return parse_spec(app)
    raise KeyError(app)


def generate_program(
    spec: WorkloadSpec,
    sessions: int = 2,
    txns_per_session: int = 2,
    seed: int = 0,
    name: str = "",
) -> Program:
    """One deterministic client program drawn from ``spec``.

    The same ``(spec, sessions, txns_per_session, seed)`` always yields an
    identical program — the property the determinism test pins down.
    """
    # Seed from the full spec so every knob change re-rolls the draw, and
    # from the shape so prefix programs at smaller sizes are independent.
    rng = random.Random(repr((spec, sessions, txns_per_session, seed)))
    keys = spec.key_names()
    weights = spec.key_weights()
    builder = ProgramBuilder(name or spec.name, extra_variables=keys)
    n_read_sessions = round(spec.read_session_ratio * sessions)
    next_value = 1
    for s in range(sessions):
        read_ratio = 0.95 if s < n_read_sessions else spec.read_ratio
        session = builder.session(f"client{s}")
        for t in range(txns_per_session):
            txn = session.transaction(f"t{t}")
            length = rng.randint(spec.txn_len_min, spec.txn_len_max)
            picks = rng.choices(range(spec.keys), weights=weights, k=length)
            for op_index, key_index in enumerate(picks):
                key = keys[key_index]
                if rng.random() < read_ratio:
                    txn.read(f"r{op_index}", key)
                else:
                    txn.write(key, next_value)
                    next_value += 1
            if rng.random() < spec.abort_rate:
                txn.abort()
    return builder.build()


def make_workload(spec: WorkloadSpec) -> Callable[..., Program]:
    """Adapt a spec to the ``APPLICATIONS`` make-callable signature."""

    def make(
        sessions: int = 2,
        txns_per_session: int = 2,
        seed: int = 0,
        name: str = "",
    ) -> Program:
        return generate_program(
            spec, sessions=sessions, txns_per_session=txns_per_session,
            seed=seed, name=name or spec.name,
        )

    make.__name__ = f"make_{spec.name.replace(':', '_').replace(',', '_')}"
    return make


def _count_instr(instr: Instr, counts: Dict[str, int]) -> None:
    if isinstance(instr, (Read, Write)) and isinstance(instr.var, str):
        counts[instr.var] = counts.get(instr.var, 0) + 1
    then = getattr(instr, "then", ())
    orelse = getattr(instr, "orelse", ())
    for child in tuple(then) + tuple(orelse):
        _count_instr(child, counts)


def key_access_counts(program: Program) -> Dict[str, int]:
    """Static per-key access counts (reads + writes) of a program.

    Used by the distribution-sanity tests and the docs to show that the
    skew knob actually concentrates traffic on hot keys.
    """
    counts: Dict[str, int] = {}
    for txns in program.sessions.values():
        for txn in txns:
            for instr in txn.body:
                _count_instr(instr, counts)
    return counts
