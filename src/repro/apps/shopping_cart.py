"""Shopping Cart application [Sivaramakrishnan et al. 2015] (paper §7.2).

Users add, get and remove items from their shopping cart and modify the
quantities of items present in the cart.  The cart of user ``u`` is a set
variable ``cart_u`` of item ids plus one quantity variable per (user, item)
pair — the SQL-table modelling of §7.2 specialised to a per-user table.
"""

from __future__ import annotations

import random
from typing import Hashable, List, Sequence

from ..lang.ast import abort, assign, if_, read, write
from ..lang.expr import L, contains, set_add, set_remove
from ..lang.program import Program, Transaction

#: Default tiny parameter space, keeping client programs tractable.
USERS: Sequence[str] = ("u0", "u1")
ITEMS: Sequence[int] = (1, 2)


def cart_var(user: str) -> str:
    return f"cart_{user}"


def qty_var(user: str, item: int) -> str:
    return f"qty_{user}_{item}"


def variables(users: Sequence[str] = USERS, items: Sequence[int] = ITEMS) -> List[str]:
    """All global variables of the application instance."""
    out = [cart_var(u) for u in users]
    out += [qty_var(u, i) for u in users for i in items]
    return out


def initial_values(users: Sequence[str] = USERS, items: Sequence[int] = ITEMS):
    """Carts start empty; quantities start at 0."""
    return {cart_var(u): frozenset() for u in users}


def add_item(user: str, item: int, qty: int = 1) -> Transaction:
    """Add ``item`` to the cart with the given quantity."""
    return Transaction(
        f"add_item({user},{item})",
        (
            read("cart", cart_var(user)),
            write(cart_var(user), set_add(L("cart"), item)),
            write(qty_var(user, item), qty),
        ),
    )


def remove_item(user: str, item: int) -> Transaction:
    """Remove ``item`` from the cart (aborts if absent)."""
    return Transaction(
        f"remove_item({user},{item})",
        (
            read("cart", cart_var(user)),
            if_(
                ~contains(L("cart"), item),
                then=(abort(),),
            ),
            write(cart_var(user), set_remove(L("cart"), item)),
            write(qty_var(user, item), 0),
        ),
    )


def change_quantity(user: str, item: int, qty: int) -> Transaction:
    """Set the quantity of ``item`` if it is present in the cart."""
    return Transaction(
        f"change_qty({user},{item},{qty})",
        (
            read("cart", cart_var(user)),
            if_(
                contains(L("cart"), item),
                then=(write(qty_var(user, item), qty),),
            ),
        ),
    )


def get_cart(user: str, items: Sequence[int] = ITEMS) -> Transaction:
    """Read the cart and the quantity of every present item."""
    body = [read("cart", cart_var(user))]
    for item in items:
        body.append(
            if_(
                contains(L("cart"), item),
                then=(read(f"q{item}", qty_var(user, item)),),
            )
        )
    return Transaction(f"get_cart({user})", tuple(body))


#: Weighted transaction mix used by the workload generator.
_TEMPLATES = ("add", "remove", "change", "get")


def random_transaction(rng: random.Random, users: Sequence[str] = USERS, items: Sequence[int] = ITEMS) -> Transaction:
    """A pseudo-random transaction from the application's mix."""
    kind = rng.choice(_TEMPLATES)
    user = rng.choice(list(users))
    item = rng.choice(list(items))
    if kind == "add":
        return add_item(user, item, rng.randint(1, 3))
    if kind == "remove":
        return remove_item(user, item)
    if kind == "change":
        return change_quantity(user, item, rng.randint(1, 3))
    return get_cart(user, items)


def make_program(
    sessions: int = 2,
    txns_per_session: int = 2,
    seed: int = 0,
    users: Sequence[str] = USERS,
    items: Sequence[int] = ITEMS,
    name: str = "shoppingCart",
) -> Program:
    """A client program: ``sessions`` sessions × ``txns_per_session`` transactions."""
    rng = random.Random(seed)
    program_sessions = {
        f"client{s}": [random_transaction(rng, users, items) for _ in range(txns_per_session)]
        for s in range(sessions)
    }
    return Program(
        program_sessions,
        name=name,
        extra_variables=variables(users, items),
        initial_values=initial_values(users, items),
    )
