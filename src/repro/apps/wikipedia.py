"""Wikipedia application [Difallah et al. 2013, OLTP-Bench] (paper §7.2).

Users fetch page content (anonymously or logged in), add/remove pages to
their watch list, and update pages.

Modelling: per-page revision counter ``rev_p`` and content variable
``text_p``; per-user watch list set variable ``watch_u``.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from ..lang.ast import if_, read, write
from ..lang.expr import L, contains, set_add, set_remove
from ..lang.program import Program, Transaction

USERS: Sequence[str] = ("u0", "u1")
PAGES: Sequence[str] = ("p0", "p1")


def rev_var(page: str) -> str:
    return f"rev_{page}"


def text_var(page: str) -> str:
    return f"text_{page}"


def watch_var(user: str) -> str:
    return f"watch_{user}"


def variables(users: Sequence[str] = USERS, pages: Sequence[str] = PAGES) -> List[str]:
    out = [watch_var(u) for u in users]
    for page in pages:
        out += [rev_var(page), text_var(page)]
    return out


def initial_values(users: Sequence[str] = USERS, pages: Sequence[str] = PAGES):
    return {watch_var(u): frozenset() for u in users}


def get_page_anonymous(page: str) -> Transaction:
    """Anonymous fetch: revision + content."""
    return Transaction(
        f"get_page_anon({page})",
        (read("rev", rev_var(page)), read("text", text_var(page))),
    )


def get_page_authenticated(user: str, page: str) -> Transaction:
    """Logged-in fetch: also consults the user's watch list."""
    return Transaction(
        f"get_page_auth({user},{page})",
        (
            read("watch", watch_var(user)),
            read("rev", rev_var(page)),
            read("text", text_var(page)),
        ),
    )


def add_watch(user: str, page: str) -> Transaction:
    return Transaction(
        f"add_watch({user},{page})",
        (
            read("watch", watch_var(user)),
            write(watch_var(user), set_add(L("watch"), page)),
        ),
    )


def remove_watch(user: str, page: str) -> Transaction:
    return Transaction(
        f"remove_watch({user},{page})",
        (
            read("watch", watch_var(user)),
            write(watch_var(user), set_remove(L("watch"), page)),
        ),
    )


def update_page(user: str, page: str, content: int) -> Transaction:
    """Edit a page: bump the revision and replace the content."""
    return Transaction(
        f"update_page({user},{page})",
        (
            read("rev", rev_var(page)),
            write(rev_var(page), L("rev") + 1),
            write(text_var(page), content),
        ),
    )


def watched_revisions(user: str, pages: Sequence[str] = PAGES) -> Transaction:
    """Read the revision of every watched page."""
    body = [read("watch", watch_var(user))]
    for page in pages:
        body.append(
            if_(contains(L("watch"), page), then=(read(f"rev_{page}", rev_var(page)),))
        )
    return Transaction(f"watched_revisions({user})", tuple(body))


_TEMPLATES = ("anon", "auth", "add_watch", "remove_watch", "update", "watched")


def random_transaction(
    rng: random.Random, users: Sequence[str] = USERS, pages: Sequence[str] = PAGES
) -> Transaction:
    kind = rng.choice(_TEMPLATES)
    user = rng.choice(list(users))
    page = rng.choice(list(pages))
    if kind == "anon":
        return get_page_anonymous(page)
    if kind == "auth":
        return get_page_authenticated(user, page)
    if kind == "add_watch":
        return add_watch(user, page)
    if kind == "remove_watch":
        return remove_watch(user, page)
    if kind == "update":
        return update_page(user, page, rng.randint(1, 5))
    return watched_revisions(user, pages)


def make_program(
    sessions: int = 2,
    txns_per_session: int = 2,
    seed: int = 0,
    users: Sequence[str] = USERS,
    pages: Sequence[str] = PAGES,
    name: str = "wikipedia",
) -> Program:
    rng = random.Random(seed)
    program_sessions = {
        f"client{s}": [random_transaction(rng, users, pages) for _ in range(txns_per_session)]
        for s in range(sessions)
    }
    return Program(
        program_sessions,
        name=name,
        extra_variables=variables(users, pages),
        initial_values=initial_values(users, pages),
    )
