"""Twitter application [Difallah et al. 2013, OLTP-Bench] (paper §7.2).

Users follow other users, publish tweets, and fetch their followers, their
own tweets, and the timeline of people they follow.

Modelling: per-user set variables ``followers_u`` / ``following_u``; a
per-user tweet-count variable ``ntweets_u``; tweet content variables
``tweet_u_k`` for the k-th tweet of user u (the bounded key space of §7.2's
table modelling).
"""

from __future__ import annotations

import random
from typing import List, Sequence

from ..lang.ast import if_, read, write
from ..lang.expr import L, contains, set_add
from ..lang.program import Program, Transaction

USERS: Sequence[str] = ("u0", "u1")
#: Max tweets a user can publish in a bounded client program.
MAX_TWEETS = 2


def followers_var(user: str) -> str:
    return f"followers_{user}"


def following_var(user: str) -> str:
    return f"following_{user}"


def ntweets_var(user: str) -> str:
    return f"ntweets_{user}"


def tweet_var(user: str, index: int) -> str:
    return f"tweet_{user}_{index}"


def variables(users: Sequence[str] = USERS, max_tweets: int = MAX_TWEETS) -> List[str]:
    out: List[str] = []
    for user in users:
        out += [followers_var(user), following_var(user), ntweets_var(user)]
        out += [tweet_var(user, k) for k in range(max_tweets)]
    return out


def initial_values(users: Sequence[str] = USERS, max_tweets: int = MAX_TWEETS):
    values = {}
    for user in users:
        values[followers_var(user)] = frozenset()
        values[following_var(user)] = frozenset()
    return values


def follow(follower: str, followee: str) -> Transaction:
    """``follower`` starts following ``followee`` (two symmetric updates)."""
    return Transaction(
        f"follow({follower},{followee})",
        (
            read("fg", following_var(follower)),
            write(following_var(follower), set_add(L("fg"), followee)),
            read("fr", followers_var(followee)),
            write(followers_var(followee), set_add(L("fr"), follower)),
        ),
    )


def publish_tweet(user: str, content: int) -> Transaction:
    """Publish a tweet: bump the count, store the content.

    The tweet slot is the current count (data-dependent variable name —
    exercised through a bounded if-cascade).
    """
    body = [read("n", ntweets_var(user))]
    for slot in range(MAX_TWEETS):
        body.append(
            if_(
                L("n") == slot,
                then=(
                    write(tweet_var(user, slot), content),
                    write(ntweets_var(user), slot + 1),
                ),
            )
        )
    return Transaction(f"tweet({user},{content})", tuple(body))


def get_followers(user: str) -> Transaction:
    """Fetch the follower set."""
    return Transaction(f"get_followers({user})", (read("fr", followers_var(user)),))


def get_tweets(user: str) -> Transaction:
    """Fetch a user's tweets: count, then each published slot."""
    body = [read("n", ntweets_var(user))]
    for slot in range(MAX_TWEETS):
        body.append(if_(L("n") > slot, then=(read(f"t{slot}", tweet_var(user, slot)),)))
    return Transaction(f"get_tweets({user})", tuple(body))


def get_timeline(user: str, users: Sequence[str] = USERS) -> Transaction:
    """Fetch the newest tweet of every followed user."""
    body = [read("fg", following_var(user))]
    for other in users:
        if other == user:
            continue
        body.append(
            if_(
                contains(L("fg"), other),
                then=(
                    read(f"n_{other}", ntweets_var(other)),
                    if_(L(f"n_{other}") > 0, then=(read(f"t_{other}", tweet_var(other, 0)),)),
                ),
            )
        )
    return Transaction(f"get_timeline({user})", tuple(body))


_TEMPLATES = ("follow", "tweet", "followers", "tweets", "timeline")


def random_transaction(rng: random.Random, users: Sequence[str] = USERS) -> Transaction:
    kind = rng.choice(_TEMPLATES)
    user = rng.choice(list(users))
    other = rng.choice([u for u in users if u != user] or list(users))
    if kind == "follow":
        return follow(user, other)
    if kind == "tweet":
        return publish_tweet(user, rng.randint(1, 5))
    if kind == "followers":
        return get_followers(user)
    if kind == "tweets":
        return get_tweets(user)
    return get_timeline(user, users)


def make_program(
    sessions: int = 2,
    txns_per_session: int = 2,
    seed: int = 0,
    users: Sequence[str] = USERS,
    name: str = "twitter",
) -> Program:
    rng = random.Random(seed)
    program_sessions = {
        f"client{s}": [random_transaction(rng, users) for _ in range(txns_per_session)]
        for s in range(sessions)
    }
    return Program(
        program_sessions,
        name=name,
        extra_variables=variables(users),
        initial_values=initial_values(users),
    )
