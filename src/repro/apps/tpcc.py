"""TPC-C application [TPC 2010] (paper §7.2).

An online shopping workload with five transaction types: reading the stock
of a product, creating a new order, getting its status, paying it and
delivering it.

Modelling (a bounded micro-TPC-C over the §7.2 table encoding):

* ``stock_i`` — per-item stock counter;
* ``neworders`` — set variable of undelivered order ids;
* ``order_o`` — per-order tuple ``(customer, item, paid, delivered)``;
* ``placed_o`` — whether order slot ``o`` was used;
* ``balance_c`` / ``ytd`` — customer balance and the district's
  year-to-date payment total.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from ..lang.ast import abort, assign, if_, read, write
from ..lang.expr import L, contains, fn, set_add, set_remove
from ..lang.program import Program, Transaction

CUSTOMERS: Sequence[str] = ("c0", "c1")
ITEMS: Sequence[int] = (1, 2)
ORDERS: Sequence[str] = ("o0", "o1")

YTD = "ytd"
NEWORDERS = "neworders"


def stock_var(item: int) -> str:
    return f"stock_{item}"


def order_var(order: str) -> str:
    return f"order_{order}"


def placed_var(order: str) -> str:
    return f"placed_{order}"


def balance_var(customer: str) -> str:
    return f"balance_{customer}"


def variables(
    customers: Sequence[str] = CUSTOMERS,
    items: Sequence[int] = ITEMS,
    orders: Sequence[str] = ORDERS,
) -> List[str]:
    out = [YTD, NEWORDERS]
    out += [stock_var(i) for i in items]
    out += [balance_var(c) for c in customers]
    for order in orders:
        out += [order_var(order), placed_var(order)]
    return out


def initial_values(
    customers: Sequence[str] = CUSTOMERS,
    items: Sequence[int] = ITEMS,
    orders: Sequence[str] = ORDERS,
    stock: int = 2,
):
    values = {NEWORDERS: frozenset()}
    for item in items:
        values[stock_var(item)] = stock
    for order in orders:
        values[order_var(order)] = (None, None, 0, 0)
    return values


def _order_row(customer: str, item: int, paid=0, delivered=0) -> Tuple:
    return (customer, item, paid, delivered)


def stock_level(item: int) -> Transaction:
    """Read an item's remaining stock."""
    return Transaction(f"stock_level({item})", (read("s", stock_var(item)),))


def new_order(customer: str, order: str, item: int) -> Transaction:
    """Place an order: decrement stock, record the order, enqueue delivery.

    Aborts when the item is out of stock (TPC-C rolls back ~1% of new-order
    transactions; here rollback is stock-driven).
    """
    return Transaction(
        f"new_order({customer},{order},{item})",
        (
            read("s", stock_var(item)),
            if_(L("s") <= 0, then=(abort(),)),
            write(stock_var(item), L("s") - 1),
            write(order_var(order), _order_row(customer, item)),
            write(placed_var(order), 1),
            read("no", NEWORDERS),
            write(NEWORDERS, set_add(L("no"), order)),
        ),
    )


def order_status(order: str) -> Transaction:
    """Read an order's row if it was placed."""
    return Transaction(
        f"order_status({order})",
        (
            read("placed", placed_var(order)),
            if_(L("placed") == 1, then=(read("row", order_var(order)),)),
        ),
    )


def payment(customer: str, order: str, amount: int = 1) -> Transaction:
    """Pay an order: mark it paid, debit the customer, credit the district."""
    mark_paid = fn("mark_paid", lambda row: (row[0], row[1], 1, row[3]), L("row"))
    return Transaction(
        f"payment({customer},{order})",
        (
            read("placed", placed_var(order)),
            if_(L("placed") != 1, then=(abort(),)),
            read("row", order_var(order)),
            write(order_var(order), mark_paid),
            read("bal", balance_var(customer)),
            write(balance_var(customer), L("bal") - amount),
            read("y", YTD),
            write(YTD, L("y") + amount),
        ),
    )


def delivery(order: str) -> Transaction:
    """Deliver an order from the new-order queue, marking it delivered."""
    mark_delivered = fn("mark_delivered", lambda row: (row[0], row[1], row[2], 1), L("row"))
    return Transaction(
        f"delivery({order})",
        (
            read("no", NEWORDERS),
            if_(~contains(L("no"), order), then=(abort(),)),
            write(NEWORDERS, set_remove(L("no"), order)),
            read("row", order_var(order)),
            write(order_var(order), mark_delivered),
        ),
    )


_TEMPLATES = ("stock", "new_order", "status", "payment", "delivery")


def random_transaction(
    rng: random.Random,
    customers: Sequence[str] = CUSTOMERS,
    items: Sequence[int] = ITEMS,
    orders: Sequence[str] = ORDERS,
) -> Transaction:
    kind = rng.choice(_TEMPLATES)
    customer = rng.choice(list(customers))
    item = rng.choice(list(items))
    order = rng.choice(list(orders))
    if kind == "stock":
        return stock_level(item)
    if kind == "new_order":
        return new_order(customer, order, item)
    if kind == "status":
        return order_status(order)
    if kind == "payment":
        return payment(customer, order)
    return delivery(order)


def make_program(
    sessions: int = 2,
    txns_per_session: int = 2,
    seed: int = 0,
    customers: Sequence[str] = CUSTOMERS,
    items: Sequence[int] = ITEMS,
    orders: Sequence[str] = ORDERS,
    name: str = "tpcc",
) -> Program:
    rng = random.Random(seed)
    program_sessions = {
        f"client{s}": [
            random_transaction(rng, customers, items, orders) for _ in range(txns_per_session)
        ]
        for s in range(sessions)
    }
    return Program(
        program_sessions,
        name=name,
        extra_variables=variables(customers, items, orders),
        initial_values=initial_values(customers, items, orders),
    )
