"""SQL-table modelling on top of global variables (paper §7.2).

    "SQL tables are modeled using a 'set' global variable whose content is
    the set of ids (primary keys) of the rows present in the table, and a
    set of global variables, one variable for each row in the table.
    INSERT and DELETE are writes on the set variable, while statements with
    a WHERE clause (SELECT, JOIN, UPDATE) are compiled to a read of the
    table's set variable followed by reads or writes of the row variables."

A :class:`Table` is declared with a *static key space* (programs are
bounded, so the candidate primary keys are known up front — this is also
what makes WHERE-scans compilable to straight-line guarded code).  Row
values are fixed-arity tuples, one slot per declared column.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Sequence, Tuple

from ..lang.ast import Instr, assign, if_, read, write
from ..lang.expr import Expr, ExprLike, L, contains, fn, set_add, set_remove, to_expr


class Table:
    """A relational table compiled to a set variable + row variables."""

    def __init__(self, name: str, columns: Sequence[str], key_space: Iterable[Hashable]):
        self.name = name
        self.columns = tuple(columns)
        self.key_space = tuple(key_space)
        if not self.columns:
            raise ValueError("a table needs at least one column")

    # -- variable naming ---------------------------------------------------------

    @property
    def ids_var(self) -> str:
        """The 'set' variable holding the present primary keys."""
        return f"{self.name}__ids"

    def row_var(self, key: Hashable) -> str:
        """The variable storing the row with primary key ``key``."""
        return f"{self.name}__row_{key}"

    def variables(self) -> List[str]:
        """Every global variable this table may occupy (for ``init``)."""
        return [self.ids_var] + [self.row_var(k) for k in self.key_space]

    # -- value helpers ------------------------------------------------------------

    def row(self, **fields: Hashable) -> Tuple[Hashable, ...]:
        """Build a row tuple from column keyword arguments."""
        missing = set(fields) - set(self.columns)
        if missing:
            raise ValueError(f"unknown columns {sorted(missing)} for table {self.name!r}")
        return tuple(fields.get(col, 0) for col in self.columns)

    def row_expr(self, **fields: ExprLike) -> Expr:
        """Build a row tuple *expression* (fields may be expressions)."""
        missing = set(fields) - set(self.columns)
        if missing:
            raise ValueError(f"unknown columns {sorted(missing)} for table {self.name!r}")
        parts = [to_expr(fields.get(col, 0)) for col in self.columns]
        return fn(f"{self.name}.row", lambda *vals: tuple(vals), *parts)

    def col(self, row: ExprLike, column: str) -> Expr:
        """Extract one column from a row(-tuple) expression."""
        index = self.columns.index(column)
        return fn(f"{self.name}.{column}", lambda r, i=index: r[i], row)

    def updated(self, row: ExprLike, **fields: ExprLike) -> Expr:
        """A copy of ``row`` with the given columns replaced (SQL UPDATE SET)."""
        indexed = {self.columns.index(c): to_expr(v) for c, v in fields.items()}

        def rebuild(r, *vals):
            out = list(r)
            for (i, _), v in zip(sorted(indexed.items()), vals):
                out[i] = v
            return tuple(out)

        return fn(f"{self.name}.update", rebuild, row, *(v for _, v in sorted(indexed.items())))

    # -- statement compilation ------------------------------------------------------

    def insert(self, key: Hashable, row_value: ExprLike, ids_local: str = "_ids") -> List[Instr]:
        """``INSERT INTO name VALUES (key, ...)``.

        A read of the id-set followed by writes of the id-set and the row.
        """
        return [
            read(ids_local, self.ids_var),
            write(self.ids_var, set_add(L(ids_local), key)),
            write(self.row_var(key), row_value),
        ]

    def delete(self, key: Hashable, ids_local: str = "_ids") -> List[Instr]:
        """``DELETE FROM name WHERE pk = key``."""
        return [
            read(ids_local, self.ids_var),
            write(self.ids_var, set_remove(L(ids_local), key)),
        ]

    def select_by_key(self, key: Hashable, target: str) -> List[Instr]:
        """``SELECT * WHERE pk = key`` with a known key: direct row read."""
        return [read(target, self.row_var(key))]

    def select_where(
        self,
        ids_local: str,
        row_prefix: str,
        guard_extra: Sequence[Instr] = (),
    ) -> List[Instr]:
        """``SELECT *`` scan: read the id-set, then each present row.

        Reads the id-set into ``ids_local``; for every key ``k`` of the
        static key space, if ``k`` is present, reads its row into
        ``{row_prefix}_{k}`` and runs ``guard_extra`` (for per-row work).
        """
        instrs: List[Instr] = [read(ids_local, self.ids_var)]
        for key in self.key_space:
            body: List[Instr] = [read(f"{row_prefix}_{key}", self.row_var(key))]
            body.extend(guard_extra)
            instrs.append(if_(contains(L(ids_local), key), then=body))
        return instrs

    def update_by_key(self, key: Hashable, target: str, **fields: ExprLike) -> List[Instr]:
        """``UPDATE ... SET fields WHERE pk = key``: read row, write back."""
        return [
            read(target, self.row_var(key)),
            write(self.row_var(key), self.updated(L(target), **fields)),
        ]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Table({self.name!r}, cols={self.columns}, keys={self.key_space})"


def empty_set() -> frozenset:
    """The initial value suited for id-set variables.

    Programs using tables should set ``initial_value=frozenset()`` or
    initialise id-set variables explicitly with a setup transaction.
    """
    return frozenset()
