"""Client-program (workload) generation for the benchmark suite (§7.2).

The paper evaluates five independent client programs per application, each
with a configurable number of sessions and transactions per session.  This
module reproduces that suite with deterministic seeds so benchmark runs are
repeatable, plus the scalability sweeps of Figs. 15(a)/(b).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..lang.program import Program
from . import courseware, generator, shopping_cart, tpcc, twitter, wikipedia

#: name → make_program(sessions, txns_per_session, seed, name=...)
#:
#: Deliberately only the five hand-written paper applications: the Fig. 14
#: suite default (and the benchmark baselines checked in CI) is
#: ``tuple(APPLICATIONS)``, so growing this dict would silently change
#: what ``repro bench`` measures.  Generated workloads are resolved by
#: :func:`resolve_workload` instead and opted into explicitly.
APPLICATIONS: Dict[str, Callable[..., Program]] = {
    "courseware": courseware.make_program,
    "shoppingCart": shopping_cart.make_program,
    "tpcc": tpcc.make_program,
    "twitter": twitter.make_program,
    "wikipedia": wikipedia.make_program,
}

#: Applications used by the scalability experiments of Fig. 15.
SCALABILITY_APPS: Sequence[str] = ("tpcc", "wikipedia")


def resolve_workload(app: str) -> Callable[..., Program]:
    """Resolve any workload name to its make-callable.

    Accepts the hand-written application names, generator preset names
    (``gen-hotspot``, ...) and inline ``gen:knob=value,...`` spec strings.
    Raises KeyError listing the valid choices for anything else.
    """
    if app in APPLICATIONS:
        return APPLICATIONS[app]
    try:
        return generator.make_workload(generator.spec_for(app))
    except KeyError:
        pass
    known = sorted(APPLICATIONS) + sorted(generator.PRESETS)
    raise KeyError(
        f"unknown workload {app!r}; choose one of {', '.join(known)} "
        f"or a spec string like 'gen:keys=4,skew=2.0,reads=0.8'"
    )


def workload_names() -> List[str]:
    """All addressable-by-name workloads (applications + generator presets)."""
    return sorted(APPLICATIONS) + sorted(generator.PRESETS)


def client_program(app: str, sessions: int, txns_per_session: int, seed: int) -> Program:
    """One client program of ``app`` with the given shape and seed."""
    make = resolve_workload(app)
    name = f"{app}-{seed + 1}"
    return make(sessions=sessions, txns_per_session=txns_per_session, seed=seed, name=name)


def application_suite(
    sessions: int = 2,
    txns_per_session: int = 2,
    programs_per_app: int = 5,
    apps: Sequence[str] = tuple(APPLICATIONS),
) -> List[Program]:
    """The Fig. 14 suite: ``programs_per_app`` independent client programs
    per application (the paper uses 5 per app, 3 sessions × 3 transactions;
    the defaults here are scaled down for the pure-Python substrate and can
    be dialed up)."""
    suite: List[Program] = []
    for app in apps:
        for seed in range(programs_per_app):
            suite.append(client_program(app, sessions, txns_per_session, seed))
    return suite


def session_scaling_suite(
    max_sessions: int,
    txns_per_session: int = 2,
    programs_per_app: int = 2,
    apps: Sequence[str] = SCALABILITY_APPS,
) -> Dict[int, List[Program]]:
    """Fig. 15(a): the same seeds at every session count.

    The paper builds the 5-session programs and removes sessions one by one;
    generating with a fixed seed at each size has the same effect (smaller
    programs are prefixes of the transaction choices).
    """
    return {
        n: [
            client_program(app, n, txns_per_session, seed)
            for app in apps
            for seed in range(programs_per_app)
        ]
        for n in range(1, max_sessions + 1)
    }


def record_workload_trace(
    app: str,
    sessions: int = 2,
    txns_per_session: int = 2,
    seed: int = 0,
    isolation: str = "SER",
    index: int = 0,
    timeout: Optional[float] = None,
):
    """Record one application-workload execution as a portable trace.

    Model-checks the ``app`` client program under ``isolation`` and
    serializes the ``index``-th enumerated history (exploration order is
    deterministic, so the same arguments always yield the same trace) with
    provenance in the header's ``meta``.  This is how the benchmark
    applications feed the trace/online-checking pipeline — and the
    implementation behind ``python -m repro record --app``.
    """
    from ..checking.checker import ModelChecker
    from ..trace.format import Trace

    program = client_program(app, sessions, txns_per_session, seed)
    result = ModelChecker(program, isolation=isolation).run(
        timeout=timeout, keep_outcomes=index + 1
    )
    if not result.outcomes or index >= len(result.outcomes):
        found = len(result.outcomes or [])
        raise ValueError(
            f"{program.name} has only {found} histories under {isolation}; "
            f"cannot record index {index}"
        )
    return Trace.from_history(
        result.outcomes[index].history,
        name=f"{program.name}-{isolation}-{index}",
        meta={
            "app": app,
            "sessions": sessions,
            "txns_per_session": txns_per_session,
            "seed": seed,
            "isolation": isolation,
            "history_index": index,
        },
    )


def transaction_scaling_suite(
    max_txns: int,
    sessions: int = 2,
    programs_per_app: int = 2,
    apps: Sequence[str] = SCALABILITY_APPS,
) -> Dict[int, List[Program]]:
    """Fig. 15(b): fixed sessions, growing transactions per session."""
    return {
        n: [
            client_program(app, sessions, n, seed)
            for app in apps
            for seed in range(programs_per_app)
        ]
        for n in range(1, max_txns + 1)
    }
