"""Streaming trace input: incremental JSONL parsing for the monitor.

:meth:`Trace.loads` parses a whole file at once — fine for recorded
traces, unusable for a long-running monitor whose input never ends.  This
module parses the same v1 JSONL format *incrementally* from any iterable
of lines (an open file, ``sys.stdin``, a socket makefile): the header is
decoded from the first non-empty line, then events are yielded one at a
time with O(1) state.  Malformed lines raise
:class:`~repro.trace.format.TraceFormatError` with the line number, same
as the batch loader.
"""

from __future__ import annotations

import json
from typing import Iterable, Iterator, Tuple

from .format import TraceEvent, TraceFormatError, TraceHeader

__all__ = ["stream_trace", "stream_events"]


def _decode_line(lineno: int, line: str) -> dict:
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as err:
        raise TraceFormatError(f"line {lineno}: invalid JSON: {err}") from None
    if not isinstance(obj, dict):
        raise TraceFormatError(f"line {lineno}: expected a JSON object")
    return obj


def stream_trace(lines: Iterable[str]) -> Tuple[TraceHeader, Iterator[TraceEvent]]:
    """Parse a JSONL trace incrementally: ``(header, lazy event iterator)``.

    The header line is consumed eagerly (so callers can size their checker
    before any event arrives); events are decoded lazily as the returned
    iterator is advanced, never buffering more than the current line.
    Blank lines and ``#`` comments are skipped, as in :meth:`Trace.loads`.
    Raises :class:`TraceFormatError` on a missing header or malformed line.
    """
    iterator = iter(enumerate(lines, start=1))
    for lineno, raw in iterator:
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        header = TraceHeader.from_json_obj(_decode_line(lineno, line))
        return header, stream_events(iterator)
    raise TraceFormatError("empty trace: no header line")


def stream_events(numbered_lines: Iterable[Tuple[int, str]]) -> Iterator[TraceEvent]:
    """Decode ``(lineno, line)`` pairs into events, one at a time."""
    for lineno, raw in numbered_lines:
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        obj = _decode_line(lineno, line)
        try:
            yield TraceEvent.from_json_obj(obj)
        except TraceFormatError as err:
            raise TraceFormatError(f"line {lineno}: {err}") from None
