"""Trace fuzzing: adversarial and violating histories for every level.

Two generators feed the trace/online-checker tests and benchmarks:

* **gadgets** — the minimal hand-built anomalies that separate the five
  levels of the paper's hierarchy (each gadget is the classical witness
  that its level is *strictly* stronger than the previous one);
* **fuzzed histories** — seeded random well-formed histories in the style
  of the test helpers, but emitted as :class:`~repro.trace.format.Trace`
  objects and biased toward conflicts (few variables, many read-write
  races, occasional aborts) so violations of every level appear within a
  small seed budget.

Everything is deterministic in the seed, so corpus membership is stable
across runs and machines.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from ..core.events import INIT_SESSION
from ..core.hbuilder import HistoryBuilder
from ..core.history import History
from ..isolation.base import get_level
from .format import Trace, TraceEvent, TraceHeader

#: The level ladder the corpus covers.
LEVELS: Tuple[str, ...] = ("RC", "RA", "CC", "SI", "SER")


# -- hand-built anomaly gadgets ---------------------------------------------------


def rc_violation() -> History:
    """Two readers observe two writers in opposite orders → violates RC
    (and therefore every stronger level): the Read Committed axiom forces
    both ``t1 < t2`` and ``t2 < t1``."""
    b = HistoryBuilder(["x", "y"])
    t1 = b.txn("w1").write("x", 1).write("y", 1).commit()
    t2 = b.txn("w2").write("x", 2).write("y", 2).commit()
    b.txn("r1").read("x", source=t1).read("y", source=t2).commit()
    b.txn("r2").read("y", source=t2).read("x", source=t1).commit()
    return b.build()


def ra_violation() -> History:
    """Fractured read: observe one of a transaction's writes but, earlier
    in program order, the initial value of another → violates Read Atomic
    but not Read Committed (the reads are ordered old-to-new, so the RC
    premise never fires)."""
    b = HistoryBuilder(["x", "y"])
    t1 = b.txn("writer").write("x", 1).write("y", 1).commit()
    b.txn("reader").read("y", source=b.init).read("x", source=t1).commit()
    return b.build()


def cc_violation() -> History:
    """The paper's Fig. 3: a stale read of a value whose overwrite is in
    the reader's causal past (via another session) → violates Causal
    Consistency but not Read Atomic."""
    b = HistoryBuilder(["x", "y"])
    t1 = b.txn("session1").write("x", 1).commit()
    t2 = b.txn("session2").read("x", source=t1).write("x", 2).commit()
    t4 = b.txn("session4").read("x", source=t2).write("y", 1).commit()
    b.txn("session3").read("x", source=t1).read("y", source=t4).commit()
    return b.build()


def si_violation() -> History:
    """Long fork: two readers see the two independent writes in opposite
    orders → violates Snapshot Isolation (Prefix) but not Causal
    Consistency."""
    b = HistoryBuilder(["x", "y"])
    w1 = b.txn("w1").write("x", 1).commit()
    w2 = b.txn("w2").write("y", 1).commit()
    b.txn("r1").read("x", source=w1).read("y", source=b.init).commit()
    b.txn("r2").read("x", source=b.init).read("y", source=w2).commit()
    return b.build()


def ser_violation() -> History:
    """Write skew: both transactions read the other's variable's initial
    value and write their own → violates Serializability but not Snapshot
    Isolation (the write sets are disjoint)."""
    b = HistoryBuilder(["x", "y"])
    b.txn("alice").read("x", source=b.init).write("y", 1).commit()
    b.txn("bob").read("y", source=b.init).write("x", 1).commit()
    return b.build()


def lost_update() -> History:
    """Both increments read the initial value and write over each other →
    violates SI and SER, consistent with RC/RA/CC."""
    b = HistoryBuilder(["x"])
    b.txn("alice").read("x", source=b.init).write("x", 1).commit()
    b.txn("bob").read("x", source=b.init).write("x", 2).commit()
    return b.build()


#: name → gadget builder; each violates exactly the levels from its name up.
GADGETS: Dict[str, Callable[[], History]] = {
    "rc_violation": rc_violation,
    "ra_violation": ra_violation,
    "cc_violation": cc_violation,
    "si_violation": si_violation,
    "ser_violation": ser_violation,
    "lost_update": lost_update,
}


def gadget_histories() -> Dict[str, History]:
    """All gadgets, built."""
    return {name: make() for name, make in GADGETS.items()}


def gadget_traces() -> Dict[str, Trace]:
    """All gadgets, recorded as traces."""
    return {
        name: Trace.from_history(history, name=name, meta={"generator": "gadget"})
        for name, history in gadget_histories().items()
    }


# -- seeded random histories -------------------------------------------------------


def fuzz_history(
    seed_or_rng: Union[int, random.Random],
    sessions: int = 3,
    txns_per_session: int = 2,
    max_ops: int = 3,
    variables: Tuple[str, ...] = ("x", "y"),
    abort_rate: float = 0.1,
) -> History:
    """One seeded random well-formed history.

    Reads draw their source from *any earlier-completed committed* writer
    of the variable (including ``init``) — never only the latest — so
    stale reads, fractured reads and write conflicts are common and the
    output frequently violates one or more isolation levels while always
    satisfying Def. 2.1 (``so ∪ wr`` acyclic by construction).
    """
    rng = seed_or_rng if isinstance(seed_or_rng, random.Random) else random.Random(seed_or_rng)
    b = HistoryBuilder(variables)
    committed_writers: Dict[str, List] = {var: [b.init] for var in variables}
    slots = [s for s in range(sessions) for _ in range(txns_per_session)]
    rng.shuffle(slots)
    for s in slots:
        t = b.txn(f"s{s}")
        wrote = set()
        for _ in range(rng.randint(1, max_ops)):
            var = rng.choice(variables)
            if rng.random() < 0.5:
                if var in wrote:
                    t.read(var)
                else:
                    t.read(var, source=rng.choice(committed_writers[var]))
            else:
                t.write(var, rng.randint(1, 3))
                wrote.add(var)
        if rng.random() < abort_rate:
            t.abort()
        else:
            t.commit()
            for var in wrote:
                committed_writers[var].append(t)
    return b.build(auto_commit=False)


def fuzz_traces(count: int, seed: int = 0, **shape) -> List[Trace]:
    """``count`` seeded random traces (seeds ``seed .. seed+count-1``)."""
    return [
        Trace.from_history(
            fuzz_history(seed + i, **shape),
            name=f"fuzz-{seed + i}",
            meta={"generator": "fuzz", "seed": seed + i},
        )
        for i in range(count)
    ]


def adversarial_corpus(
    per_level: int = 2,
    seed: int = 0,
    max_tries: int = 400,
    levels: Iterable[str] = LEVELS,
    shape: Optional[Dict] = None,
) -> Dict[str, List[History]]:
    """For each level, ``per_level`` histories that violate it.

    The matching gadget seeds each bucket, then fuzzed histories fill the
    rest by scanning seeds (deterministically) until every bucket is full
    or ``max_tries`` seeds have been drawn.  Raises if a bucket cannot be
    filled — the shape is then too tame to be called adversarial.
    """
    gadgets = gadget_histories()
    corpus: Dict[str, List[History]] = {}
    for name in levels:
        corpus[name] = [gadgets[f"{name.lower()}_violation"]][:per_level]
    checkers = {name: get_level(name) for name in corpus}
    for i in range(max_tries):
        if all(len(bucket) >= per_level for bucket in corpus.values()):
            break
        history = fuzz_history(seed + i, **(shape or {}))
        for name, bucket in corpus.items():
            if len(bucket) < per_level and not checkers[name].satisfies(history):
                bucket.append(history)
    missing = [name for name, bucket in corpus.items() if len(bucket) < per_level]
    if missing:
        raise RuntimeError(
            f"could not find {per_level} violating histories for {missing} "
            f"within {max_tries} seeds"
        )
    return corpus


# -- unbounded event streams (streaming-monitor soak) -------------------------------


def fuzz_stream(
    seed: int,
    events: int,
    sessions: int = 8,
    variables: Tuple[str, ...] = ("x", "y", "z"),
    staleness: int = 4,
    abort_rate: float = 0.05,
    read_ratio: float = 0.55,
    max_ops: int = 4,
    stale_read_rate: float = 0.0,
) -> Tuple[TraceHeader, Iterator[TraceEvent]]:
    """A seeded well-formed event *stream* with bounded read staleness.

    Returns ``(header, generator)`` where the generator lazily yields
    exactly ``events`` :class:`~repro.trace.format.TraceEvent` objects —
    nothing is ever buffered, so million-event streams cost O(sessions +
    variables) generator state.  Unlike :func:`fuzz_history`, whose reads
    may name arbitrarily *old* committed writers, every read here draws
    its source from the last ``staleness`` committed writers of the
    variable (``init`` until the window fills).  That is precisely the
    freshness assumption of the monitor's ``assume-fresh`` retention mode:
    a monitor whose window is at least ``staleness`` never sees a read
    naming an evicted writer, and its live window stays bounded while the
    unbounded checker's state grows linearly.

    By default every read names the *latest* committed writer, keeping the
    stream consistent at the weaker levels indefinitely (violations pause
    garbage collection, so a soak stream must mostly stay clean);
    ``stale_read_rate`` mixes in reads from deeper in the staleness window
    to provoke violations for adversarial tests.
    """
    header = TraceHeader(
        variables=tuple(variables),
        name=f"fuzz-stream-{seed}",
        meta={"generator": "fuzz_stream", "seed": seed, "staleness": staleness},
    )

    def generate() -> Iterator[TraceEvent]:
        rng = random.Random(seed)
        recent: Dict[str, List[Tuple[Tuple[str, int], object]]] = {
            var: [((INIT_SESSION, 0), 0)] for var in variables
        }
        next_index = [0] * sessions
        open_txn: List[Optional[Tuple[int, int, Dict[str, int]]]] = [None] * sessions
        counter = 0
        emitted = 0
        while emitted < events:
            s = rng.randrange(sessions)
            name = f"s{s}"
            state = open_txn[s]
            if state is None:
                index = next_index[s]
                next_index[s] += 1
                open_txn[s] = (index, rng.randint(1, max_ops), {})
                yield TraceEvent("begin", name, index)
                emitted += 1
                continue
            index, planned, wrote = state
            if planned <= 0:
                if rng.random() < abort_rate:
                    yield TraceEvent("abort", name, index)
                else:
                    yield TraceEvent("commit", name, index)
                    for var, value in wrote.items():
                        bucket = recent[var]
                        bucket.append(((name, index), value))
                        if len(bucket) > staleness:
                            del bucket[0]
                open_txn[s] = None
                emitted += 1
                continue
            open_txn[s] = (index, planned - 1, wrote)
            var = rng.choice(variables)
            if rng.random() < read_ratio:
                bucket = recent[var]
                if stale_read_rate and rng.random() < stale_read_rate:
                    source, value = rng.choice(bucket)
                else:
                    source, value = bucket[-1]
                yield TraceEvent("read", name, index, var, value, source=source)
            else:
                counter += 1
                wrote[var] = counter
                yield TraceEvent("write", name, index, var, counter)
            emitted += 1

    return header, generate()
