"""Trace fuzzing: adversarial and violating histories for every level.

Two generators feed the trace/online-checker tests and benchmarks:

* **gadgets** — the minimal hand-built anomalies that separate the five
  levels of the paper's hierarchy (each gadget is the classical witness
  that its level is *strictly* stronger than the previous one);
* **fuzzed histories** — seeded random well-formed histories in the style
  of the test helpers, but emitted as :class:`~repro.trace.format.Trace`
  objects and biased toward conflicts (few variables, many read-write
  races, occasional aborts) so violations of every level appear within a
  small seed budget.

Everything is deterministic in the seed, so corpus membership is stable
across runs and machines.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from ..core.events import INIT_SESSION
from ..core.hbuilder import HistoryBuilder
from ..core.history import History
from ..isolation.base import get_level
from .format import Trace, TraceEvent, TraceHeader

#: The level ladder the corpus covers.
LEVELS: Tuple[str, ...] = ("RC", "RA", "CC", "SI", "SER")


# -- hand-built anomaly gadgets ---------------------------------------------------


def rc_violation() -> History:
    """Two readers observe two writers in opposite orders → violates RC
    (and therefore every stronger level): the Read Committed axiom forces
    both ``t1 < t2`` and ``t2 < t1``."""
    b = HistoryBuilder(["x", "y"])
    t1 = b.txn("w1").write("x", 1).write("y", 1).commit()
    t2 = b.txn("w2").write("x", 2).write("y", 2).commit()
    b.txn("r1").read("x", source=t1).read("y", source=t2).commit()
    b.txn("r2").read("y", source=t2).read("x", source=t1).commit()
    return b.build()


def ra_violation() -> History:
    """Fractured read: observe one of a transaction's writes but, earlier
    in program order, the initial value of another → violates Read Atomic
    but not Read Committed (the reads are ordered old-to-new, so the RC
    premise never fires)."""
    b = HistoryBuilder(["x", "y"])
    t1 = b.txn("writer").write("x", 1).write("y", 1).commit()
    b.txn("reader").read("y", source=b.init).read("x", source=t1).commit()
    return b.build()


def cc_violation() -> History:
    """The paper's Fig. 3: a stale read of a value whose overwrite is in
    the reader's causal past (via another session) → violates Causal
    Consistency but not Read Atomic."""
    b = HistoryBuilder(["x", "y"])
    t1 = b.txn("session1").write("x", 1).commit()
    t2 = b.txn("session2").read("x", source=t1).write("x", 2).commit()
    t4 = b.txn("session4").read("x", source=t2).write("y", 1).commit()
    b.txn("session3").read("x", source=t1).read("y", source=t4).commit()
    return b.build()


def si_violation() -> History:
    """Long fork: two readers see the two independent writes in opposite
    orders → violates Snapshot Isolation (Prefix) but not Causal
    Consistency."""
    b = HistoryBuilder(["x", "y"])
    w1 = b.txn("w1").write("x", 1).commit()
    w2 = b.txn("w2").write("y", 1).commit()
    b.txn("r1").read("x", source=w1).read("y", source=b.init).commit()
    b.txn("r2").read("x", source=b.init).read("y", source=w2).commit()
    return b.build()


def ser_violation() -> History:
    """Write skew: both transactions read the other's variable's initial
    value and write their own → violates Serializability but not Snapshot
    Isolation (the write sets are disjoint)."""
    b = HistoryBuilder(["x", "y"])
    b.txn("alice").read("x", source=b.init).write("y", 1).commit()
    b.txn("bob").read("y", source=b.init).write("x", 1).commit()
    return b.build()


def lost_update() -> History:
    """Both increments read the initial value and write over each other →
    violates SI and SER, consistent with RC/RA/CC."""
    b = HistoryBuilder(["x"])
    b.txn("alice").read("x", source=b.init).write("x", 1).commit()
    b.txn("bob").read("x", source=b.init).write("x", 2).commit()
    return b.build()


def ryw_violation() -> History:
    """A session writes x then its next transaction reads the initial
    value → violates Read Your Writes (and RA); satisfies MR/MW/WFR and RC
    (the stale read is the transaction's only read)."""
    b = HistoryBuilder(["x"])
    b.txn("a").write("x", 1).commit()
    b.txn("a").read("x", source=b.init).commit()
    return b.build()


def mr_violation() -> History:
    """A session observes a writer, then its next transaction reads the
    older initial value → violates Monotonic Reads; satisfies RYW/MW/WFR
    (no session writes) and RA (each transaction alone is atomic)."""
    b = HistoryBuilder(["x"])
    w = b.txn("w").write("x", 1).commit()
    b.txn("a").read("x", source=w).commit()
    b.txn("a").read("x", source=b.init).commit()
    return b.build()


def mw_violation() -> History:
    """A session writes x then y; another session sees the later write of
    y but reads x's initial value → violates Monotonic Writes; satisfies
    RYW/MR/WFR (the reader's session has no earlier transactions and the
    observed writer read nothing) and RC (the y-read comes first)."""
    b = HistoryBuilder(["x", "y"])
    b.txn("a").write("x", 1).commit()
    t2 = b.txn("a").write("y", 1).commit()
    b.txn("b").read("y", source=t2).read("x", source=b.init).commit()
    return b.build()


def wfr_violation() -> History:
    """A writer's value is observed by a session that then writes y; a
    fourth session sees that y but reads x's initial value → violates
    Writes Follow Reads (the y-writer's write causally follows the
    x-write); satisfies RYW/MR/MW and RA."""
    b = HistoryBuilder(["x", "y"])
    w = b.txn("w").write("x", 1).commit()
    b.txn("c").read("x", source=w).commit()
    c1 = b.txn("c").write("y", 1).commit()
    b.txn("d").read("y", source=c1).read("x", source=b.init).commit()
    return b.build()


def session_cc_violation() -> History:
    """A three-hop ``wr`` chain (four distinct sessions) ending in a stale
    read → violates Causal Consistency, but every hop crosses sessions and
    no single session guarantee composes them, so all four session atoms
    (hence SESSION) are satisfied.  Separates SESSION from CC."""
    b = HistoryBuilder(["x", "y", "z"])
    w = b.txn("w").write("x", 1).commit()
    a = b.txn("a").read("x", source=w).write("y", 1).commit()
    c = b.txn("c").read("y", source=a).write("z", 1).commit()
    b.txn("d").read("z", source=c).read("x", source=b.init).commit()
    return b.build()


def bs_3_violation() -> History:
    """One session writes x three times; a reader session first sees the
    newest version, then reads the initial value — three newer committed
    versions skipped → violates BS-3 (bound 3) while satisfying RC."""
    b = HistoryBuilder(["x"])
    b.txn("w").write("x", 1).commit()
    b.txn("w").write("x", 2).commit()
    w2 = b.txn("w").write("x", 3).commit()
    b.txn("r").read("x", source=w2).commit()
    b.txn("r").read("x", source=b.init).commit()
    return b.build()


def psi_violation() -> History:
    """The lost update: two conflicting writers each read the initial
    value → violates PSI's Conflict axiom (and SI) while satisfying CC and
    PC (each snapshot is a valid prefix).  Separates CC/PC from PSI/SI."""
    b = HistoryBuilder(["x"])
    b.txn("alice").read("x", source=b.init).write("x", 1).commit()
    b.txn("bob").read("x", source=b.init).write("x", 2).commit()
    return b.build()


def pc_violation() -> History:
    """The long fork: two readers order two independent writes oppositely
    → violates PC's Prefix axiom (and SI) while satisfying CC and PSI (no
    reader writes, so Conflict is vacuous).  Separates CC/PSI from PC/SI."""
    b = HistoryBuilder(["x", "y"])
    w1 = b.txn("w1").write("x", 1).commit()
    w2 = b.txn("w2").write("y", 1).commit()
    b.txn("r1").read("x", source=w1).read("y", source=b.init).commit()
    b.txn("r2").read("x", source=b.init).read("y", source=w2).commit()
    return b.build()


#: name → gadget builder; each violates exactly the levels from its name up.
GADGETS: Dict[str, Callable[[], History]] = {
    "rc_violation": rc_violation,
    "ra_violation": ra_violation,
    "cc_violation": cc_violation,
    "si_violation": si_violation,
    "ser_violation": ser_violation,
    "lost_update": lost_update,
    "ryw_violation": ryw_violation,
    "mr_violation": mr_violation,
    "mw_violation": mw_violation,
    "wfr_violation": wfr_violation,
    "session_cc_violation": session_cc_violation,
    # SESSION is the conjunction of the four guarantees, so breaking any
    # one of them breaks SESSION — reuse the RYW gadget as its witness.
    "session_violation": ryw_violation,
    "bs_3_violation": bs_3_violation,
    "psi_violation": psi_violation,
    "pc_violation": pc_violation,
}


def gadget_name(level: str) -> str:
    """The canonical gadget key violating ``level`` (``"BS-3"`` →
    ``"bs_3_violation"``)."""
    return level.lower().replace("-", "_") + "_violation"


#: For each direct edge ``(weaker, stronger)`` of the registered lattice,
#: a gadget accepted at the weaker level and rejected at the stronger one.
#: ``tests/test_isolation_registry.py`` asserts this map covers every edge
#: of :func:`repro.isolation.registry.lattice_edges` and that each entry
#: really separates its pair; ``docs/isolation_levels.md`` renders these
#: same histories, so the documented witnesses cannot rot.
SEPARATIONS: Dict[Tuple[str, str], str] = {
    ("TRUE", "RYW"): "ryw_violation",
    ("TRUE", "MR"): "mr_violation",
    ("TRUE", "MW"): "mw_violation",
    ("TRUE", "WFR"): "wfr_violation",
    ("TRUE", "RC"): "rc_violation",
    ("RYW", "SESSION"): "mr_violation",
    ("MR", "SESSION"): "ryw_violation",
    ("MW", "SESSION"): "ryw_violation",
    ("WFR", "SESSION"): "ryw_violation",
    ("RYW", "RA"): "ra_violation",
    ("RC", "RA"): "ra_violation",
    ("RC", "BS-3"): "bs_3_violation",
    ("SESSION", "CC"): "session_cc_violation",
    ("RA", "CC"): "cc_violation",
    ("CC", "PSI"): "psi_violation",
    ("CC", "PC"): "pc_violation",
    ("PSI", "SI"): "si_violation",
    ("PC", "SI"): "psi_violation",
    ("SI", "SER"): "ser_violation",
    ("BS-3", "SER"): "ser_violation",
}


def render_history(history: History) -> str:
    """A stable, human-readable rendering of a (gadget) history.

    One line per non-init transaction in ``(session, index)`` order;
    external reads name their ``wr`` source.  Used verbatim in
    ``docs/isolation_levels.md`` — the docs test re-renders the gadgets
    and compares, so the documented witnesses track the code.
    """
    from ..core.events import EventType, INIT_TXN

    lines = []
    for tid in sorted(history.txns):
        if tid == INIT_TXN:
            continue
        log = history.txns[tid]
        ops = []
        for event in log.events:
            if event.type is EventType.READ and not event.local:
                source = history.wr.get(event.eid)
                origin = "init" if source == INIT_TXN else f"{source.session}[{source.index}]"
                ops.append(f"read {event.var} <- {origin}")
            elif event.type is EventType.READ:
                ops.append(f"local read {event.var}")
            elif event.type is EventType.WRITE:
                ops.append(f"write {event.var}={event.value}")
        status = "committed" if log.is_committed else ("aborted" if log.is_aborted else "pending")
        lines.append(f"{tid.session}[{tid.index}]: " + "; ".join(ops) + f"  [{status}]")
    return "\n".join(lines)


def gadget_histories() -> Dict[str, History]:
    """All gadgets, built."""
    return {name: make() for name, make in GADGETS.items()}


def gadget_traces() -> Dict[str, Trace]:
    """All gadgets, recorded as traces."""
    return {
        name: Trace.from_history(history, name=name, meta={"generator": "gadget"})
        for name, history in gadget_histories().items()
    }


# -- seeded random histories -------------------------------------------------------


def fuzz_history(
    seed_or_rng: Union[int, random.Random],
    sessions: int = 3,
    txns_per_session: int = 2,
    max_ops: int = 3,
    variables: Tuple[str, ...] = ("x", "y"),
    abort_rate: float = 0.1,
) -> History:
    """One seeded random well-formed history.

    Reads draw their source from *any earlier-completed committed* writer
    of the variable (including ``init``) — never only the latest — so
    stale reads, fractured reads and write conflicts are common and the
    output frequently violates one or more isolation levels while always
    satisfying Def. 2.1 (``so ∪ wr`` acyclic by construction).
    """
    rng = seed_or_rng if isinstance(seed_or_rng, random.Random) else random.Random(seed_or_rng)
    b = HistoryBuilder(variables)
    committed_writers: Dict[str, List] = {var: [b.init] for var in variables}
    slots = [s for s in range(sessions) for _ in range(txns_per_session)]
    rng.shuffle(slots)
    for s in slots:
        t = b.txn(f"s{s}")
        wrote = set()
        for _ in range(rng.randint(1, max_ops)):
            var = rng.choice(variables)
            if rng.random() < 0.5:
                if var in wrote:
                    t.read(var)
                else:
                    t.read(var, source=rng.choice(committed_writers[var]))
            else:
                t.write(var, rng.randint(1, 3))
                wrote.add(var)
        if rng.random() < abort_rate:
            t.abort()
        else:
            t.commit()
            for var in wrote:
                committed_writers[var].append(t)
    return b.build(auto_commit=False)


def fuzz_traces(count: int, seed: int = 0, **shape) -> List[Trace]:
    """``count`` seeded random traces (seeds ``seed .. seed+count-1``)."""
    return [
        Trace.from_history(
            fuzz_history(seed + i, **shape),
            name=f"fuzz-{seed + i}",
            meta={"generator": "fuzz", "seed": seed + i},
        )
        for i in range(count)
    ]


def adversarial_corpus(
    per_level: int = 2,
    seed: int = 0,
    max_tries: int = 400,
    levels: Iterable[str] = LEVELS,
    shape: Optional[Dict] = None,
) -> Dict[str, List[History]]:
    """For each level, ``per_level`` histories that violate it.

    The matching gadget seeds each bucket, then fuzzed histories fill the
    rest by scanning seeds (deterministically) until every bucket is full
    or ``max_tries`` seeds have been drawn.  Raises if a bucket cannot be
    filled — the shape is then too tame to be called adversarial.
    """
    gadgets = gadget_histories()
    corpus: Dict[str, List[History]] = {}
    for name in levels:
        corpus[name] = [gadgets[gadget_name(name)]][:per_level]
    checkers = {name: get_level(name) for name in corpus}
    for i in range(max_tries):
        if all(len(bucket) >= per_level for bucket in corpus.values()):
            break
        history = fuzz_history(seed + i, **(shape or {}))
        for name, bucket in corpus.items():
            if len(bucket) < per_level and not checkers[name].satisfies(history):
                bucket.append(history)
    missing = [name for name, bucket in corpus.items() if len(bucket) < per_level]
    if missing:
        raise RuntimeError(
            f"could not find {per_level} violating histories for {missing} "
            f"within {max_tries} seeds"
        )
    return corpus


# -- unbounded event streams (streaming-monitor soak) -------------------------------


def fuzz_stream(
    seed: int,
    events: int,
    sessions: int = 8,
    variables: Tuple[str, ...] = ("x", "y", "z"),
    staleness: int = 4,
    abort_rate: float = 0.05,
    read_ratio: float = 0.55,
    max_ops: int = 4,
    stale_read_rate: float = 0.0,
) -> Tuple[TraceHeader, Iterator[TraceEvent]]:
    """A seeded well-formed event *stream* with bounded read staleness.

    Returns ``(header, generator)`` where the generator lazily yields
    exactly ``events`` :class:`~repro.trace.format.TraceEvent` objects —
    nothing is ever buffered, so million-event streams cost O(sessions +
    variables) generator state.  Unlike :func:`fuzz_history`, whose reads
    may name arbitrarily *old* committed writers, every read here draws
    its source from the last ``staleness`` committed writers of the
    variable (``init`` until the window fills).  That is precisely the
    freshness assumption of the monitor's ``assume-fresh`` retention mode:
    a monitor whose window is at least ``staleness`` never sees a read
    naming an evicted writer, and its live window stays bounded while the
    unbounded checker's state grows linearly.

    By default every read names the *latest* committed writer, keeping the
    stream consistent at the weaker levels indefinitely (violations pause
    garbage collection, so a soak stream must mostly stay clean);
    ``stale_read_rate`` mixes in reads from deeper in the staleness window
    to provoke violations for adversarial tests.
    """
    header = TraceHeader(
        variables=tuple(variables),
        name=f"fuzz-stream-{seed}",
        meta={"generator": "fuzz_stream", "seed": seed, "staleness": staleness},
    )

    def generate() -> Iterator[TraceEvent]:
        rng = random.Random(seed)
        recent: Dict[str, List[Tuple[Tuple[str, int], object]]] = {
            var: [((INIT_SESSION, 0), 0)] for var in variables
        }
        next_index = [0] * sessions
        open_txn: List[Optional[Tuple[int, int, Dict[str, int]]]] = [None] * sessions
        counter = 0
        emitted = 0
        while emitted < events:
            s = rng.randrange(sessions)
            name = f"s{s}"
            state = open_txn[s]
            if state is None:
                index = next_index[s]
                next_index[s] += 1
                open_txn[s] = (index, rng.randint(1, max_ops), {})
                yield TraceEvent("begin", name, index)
                emitted += 1
                continue
            index, planned, wrote = state
            if planned <= 0:
                if rng.random() < abort_rate:
                    yield TraceEvent("abort", name, index)
                else:
                    yield TraceEvent("commit", name, index)
                    for var, value in wrote.items():
                        bucket = recent[var]
                        bucket.append(((name, index), value))
                        if len(bucket) > staleness:
                            del bucket[0]
                open_txn[s] = None
                emitted += 1
                continue
            open_txn[s] = (index, planned - 1, wrote)
            var = rng.choice(variables)
            if rng.random() < read_ratio:
                bucket = recent[var]
                if stale_read_rate and rng.random() < stale_read_rate:
                    source, value = rng.choice(bucket)
                else:
                    source, value = bucket[-1]
                yield TraceEvent("read", name, index, var, value, source=source)
            else:
                counter += 1
                wrote[var] = counter
                yield TraceEvent("write", name, index, var, counter)
            emitted += 1

    return header, generate()
