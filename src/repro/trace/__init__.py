"""Portable execution traces: the JSONL history format and its tooling.

This package is the bridge between the model checker and *recorded*
executions: a versioned JSONL format for histories
(:mod:`repro.trace.format`), adapters that record traces from
checker-produced histories and from plain dict/log input, and a seeded
fuzzer (:mod:`repro.trace.fuzz`) generating adversarial histories for
every isolation level.  Consistency of a trace is decided either in batch
(``Trace.to_history()`` + ``level.satisfies``) or event-by-event with
:class:`repro.checking.online.OnlineChecker`.
"""

from .format import (
    TRACE_FORMAT,
    TRACE_VERSION,
    EvictedTransactionError,
    Trace,
    TraceEvent,
    TraceFormatError,
    TraceHeader,
    TraceReplayer,
)

__all__ = [
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "EvictedTransactionError",
    "Trace",
    "TraceEvent",
    "TraceFormatError",
    "TraceHeader",
    "TraceReplayer",
]

from .fuzz import (
    SEPARATIONS,
    adversarial_corpus,
    fuzz_history,
    fuzz_stream,
    fuzz_traces,
    gadget_histories,
    gadget_name,
    gadget_traces,
    render_history,
)
from .stream import stream_events, stream_trace

__all__ += [
    "SEPARATIONS",
    "adversarial_corpus",
    "fuzz_history",
    "fuzz_stream",
    "fuzz_traces",
    "gadget_histories",
    "gadget_name",
    "gadget_traces",
    "render_history",
    "stream_events",
    "stream_trace",
]
